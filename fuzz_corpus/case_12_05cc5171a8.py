# repro-looplets fuzz repro — fixed bug: while-loop DCE deleted the condition variable's initializer (vbl outer level, empty inner extent); found by fuzz seed 12, fixed in repro.ir.optimize dead_code
# replay: python this file (or repro.fuzz corpus replay)
import json

from repro.fuzz import conform_spec

SPEC = json.loads('{"combine":"min","operands":[{"chains":[{"kind":"plain"},{"delta":1,"kind":"offset_exact"}],"data":[[1.0]],"formats":["vbl","dense"],"name":"T0","protocols":[null,null]}],"seed":12,"store":false,"template":"map2d"}')
report = conform_spec(SPEC)
assert report.ok, "\n".join(str(d) for d in report.divergences)
print("ok:", __file__)
