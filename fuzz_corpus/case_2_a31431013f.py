# repro-looplets fuzz repro — grammar-coverage anchor: reduce mul(T0[band:follow+offset2] T1[dense:walk+offset]) via min
# replay: python this file (or repro.fuzz corpus replay)
import json

from repro.fuzz import conform_spec

SPEC = json.loads('{"accum":"min","combine":"mul","operands":[{"chains":[{"d1":0,"d2":0,"kind":"offset2"}],"data":[0.0,0.0],"formats":["band"],"name":"T0","protocols":["follow"]},{"chains":[{"delta":2,"kind":"offset"}],"data":[0.0,0.0],"formats":["dense"],"name":"T1","protocols":["walk"]}],"seed":2,"template":"reduce"}')
report = conform_spec(SPEC)
assert report.ok, "\n".join(str(d) for d in report.divergences)
print("ok:", __file__)
