# repro-looplets fuzz repro — grammar-coverage anchor: map2d min(T0[band+window,sparse:walk] T1[ragged:walk,vbl:gallop]) via add
# replay: python this file (or repro.fuzz corpus replay)
import json

from repro.fuzz import conform_spec

SPEC = json.loads('{"combine":"min","operands":[{"chains":[{"hi":1,"kind":"window","lo":1},{"kind":"plain"}],"data":[[-1.0,0.0,0.0,0.0],[2.0,-3.0,-3.0,2.0],[0.0,0.0,0.0,0.0]],"formats":["band","sparse"],"name":"T0","protocols":[null,"walk"]},{"chains":[{"kind":"plain"},{"kind":"plain"}],"data":[[2.0,-3.0,-2.0,0.0],[0.0,0.0,1.0,2.0],[0.0,0.0,0.0,0.0]],"formats":["ragged","vbl"],"name":"T1","protocols":["walk","gallop"]}],"seed":50,"store":false,"template":"map2d"}')
report = conform_spec(SPEC)
assert report.ok, "\n".join(str(d) for d in report.divergences)
print("ok:", __file__)
