# repro-looplets fuzz repro — grammar-coverage anchor: spmv mul(T0[bitmap,packbits:walk+offset_of_window]) via min
# replay: python this file (or repro.fuzz corpus replay)
import json

from repro.fuzz import conform_spec

SPEC = json.loads('{"accum":"min","combine":"mul","operands":[{"chains":[{"kind":"plain"},{"delta":-2,"hi":5,"kind":"offset_of_window","lo":4}],"data":[[0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0],[0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0],[0.0,0.0,1.0,1.0,2.0,2.0,2.0,2.0],[0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0]],"formats":["bitmap","packbits"],"name":"T0","protocols":[null,"walk"]}],"seed":10,"template":"spmv"}')
report = conform_spec(SPEC)
assert report.ok, "\n".join(str(d) for d in report.divergences)
print("ok:", __file__)
