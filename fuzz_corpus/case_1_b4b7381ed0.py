# repro-looplets fuzz repro — grammar-coverage anchor: map mul(T0[packbits:walk+offset_exact]) via add
# replay: python this file (or repro.fuzz corpus replay)
import json

from repro.fuzz import conform_spec

SPEC = json.loads('{"combine":"mul","operands":[{"chains":[{"delta":5,"kind":"offset_exact"}],"data":[3.0,-2.0,-3.0,0.0,-3.0],"formats":["packbits"],"name":"T0","protocols":["walk"]}],"seed":1,"store":false,"template":"map"}')
report = conform_spec(SPEC)
assert report.ok, "\n".join(str(d) for d in report.divergences)
print("ok:", __file__)
