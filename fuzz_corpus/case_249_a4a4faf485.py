# repro-looplets fuzz repro — grammar-coverage anchor: reduce2d min(T0[bitmap:walk,rle:follow+offset] T1[dense:locate+offset_exact,vbl+offset2]) via max
# replay: python this file (or repro.fuzz corpus replay)
import json

from repro.fuzz import conform_spec

SPEC = json.loads('{"accum":"max","combine":"min","operands":[{"chains":[{"kind":"plain"},{"delta":-10,"kind":"offset"}],"data":[[1.0,1.0,1.0,1.0,1.0,1.0,1.0,1.0,1.0,1.0],[0.0,0.0,0.0,0.0,0.0,0.0,0.0,1.0,1.0,1.0],[0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0],[0.0,0.0,0.0,0.0,0.0,0.0,0.0,-1.0,2.0,0.0],[0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0]],"formats":["bitmap","rle"],"name":"T0","protocols":["walk","follow"]},{"chains":[{"delta":-2,"kind":"offset_exact"},{"d1":0,"d2":4,"kind":"offset2"}],"data":[[0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0],[0.0,0.0,0.0,2.0,-3.0,2.0,0.0,0.0,2.0,0.0],[0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0,0.0],[1.0,1.0,-1.0,3.0,-2.0,-2.0,-1.0,-3.0,-2.0,-1.0],[0.0,3.0,0.0,0.0,3.0,-1.0,0.0,0.0,0.0,0.0]],"formats":["dense","vbl"],"name":"T1","protocols":["locate",null]}],"seed":249,"template":"reduce2d"}')
report = conform_spec(SPEC)
assert report.ok, "\n".join(str(d) for d in report.divergences)
print("ok:", __file__)
