"""Small shared utilities: errors and fresh-name generation."""

from repro.util.errors import (
    DimensionError,
    FormatError,
    LoweringError,
    ParseError,
    ProtocolError,
    ReproError,
)
from repro.util.namer import Namer, sanitize

__all__ = [
    "DimensionError",
    "FormatError",
    "LoweringError",
    "Namer",
    "ParseError",
    "ProtocolError",
    "ReproError",
    "sanitize",
]
