"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
callers can catch library failures without catching unrelated bugs.
"""


class ReproError(Exception):
    """Base class for all errors raised by this library."""


class LoweringError(ReproError):
    """The compiler could not lower a program.

    Raised when style resolution fails, when an access cannot be unfurled
    in the requested loop order, or when a looplet is used outside the
    region it was declared for.
    """


class FormatError(ReproError):
    """A level format was constructed from inconsistent data."""


class ParseError(ReproError):
    """The CIN text parser rejected its input."""

    def __init__(self, message, position=None, text=None):
        self.position = position
        self.text = text
        if position is not None and text is not None:
            line = text.count("\n", 0, position) + 1
            col = position - (text.rfind("\n", 0, position) + 1) + 1
            message = "%s (line %d, column %d)" % (message, line, col)
        super().__init__(message)


class ProtocolError(ReproError):
    """A format was asked to unfurl under a protocol it does not support."""


class DimensionError(ReproError):
    """Tensor dimensions or loop extents are inconsistent."""


class BindingError(ReproError):
    """A compiled kernel could not be (re)bound to the given tensors.

    Raised when a replacement tensor's format signature differs from
    the one the kernel was compiled for, when a tensor name does not
    resolve to a binding slot, or when buffer aliasing between slots
    no longer matches the compile-time pattern.
    """


class SpecError(ReproError):
    """A kernel artifact could not be serialized or deserialized.

    Raised by :meth:`~repro.compiler.kernel.CompiledKernel.to_spec`
    for kernels pinned to compile-time data (custom formats binding
    buffers outside the tensor protocol, identity-keyed signatures)
    and by ``from_spec`` for unsupported spec versions.

    The rendered message carries the kernel's structural-key digest
    and its slot (tensor) names when the raiser knows them, so a
    failure deep inside a worker pool still names the kernel it
    belongs to.
    """

    def __init__(self, message, structural_key=None, slot_names=None):
        self.structural_key = structural_key
        self.slot_names = tuple(slot_names) if slot_names else ()
        context = []
        if structural_key is not None:
            from repro.cin.analyze import structural_digest

            context.append("skey %s" % structural_digest(structural_key))
        if self.slot_names:
            context.append("slots %s" % ", ".join(
                str(name) for name in self.slot_names))
        if context:
            message = "%s [%s]" % (message, "; ".join(context))
        super().__init__(message)


class TransientError(ReproError):
    """A failure caused by the *execution environment*, not the kernel.

    The fault-tolerance layer retries transient failures (with
    exponential backoff, on a healthy worker) because re-running the
    same dataset can succeed: the worker crashed or stalled, a
    shared-memory attach raced a teardown, a store read hit flaky IO.
    Deterministic kernel exceptions — the kernel itself raising on its
    input — are *never* classified transient and are never retried.

    Use :func:`is_transient` to classify an exception; custom kernels
    may raise their own ``TransientError`` subclass to opt a failure
    into the retry policy.
    """


def is_transient(exc):
    """Whether the retry policy may re-run the dataset that raised
    ``exc``.  Only :class:`TransientError` instances qualify — any
    other exception is presumed deterministic and surfaces
    immediately."""
    return isinstance(exc, TransientError)


class WorkerCrashError(TransientError):
    """A pool worker process died without reporting a result.

    Raised (wrapped in :class:`BatchExecutionError`) when a worker of
    :class:`repro.exec.pool.WorkerPool` exits hard mid-chunk — a
    segfault in native code, an ``os._exit``, or an OOM kill.  The
    pool reads its progress array to attribute the crash to the
    dataset that was in flight, then respawns the worker so the next
    batch runs on a full fleet.  Transient: the retry policy may
    re-run the attributed dataset on a healthy worker.
    """

    def __init__(self, worker, exitcode, index):
        self.worker = worker
        self.exitcode = exitcode
        self.index = index
        super().__init__(
            "worker %s died (exitcode %r) while running dataset %d"
            % (worker, exitcode, index))

    def __reduce__(self):
        return (type(self), (self.worker, self.exitcode, self.index))


class WorkerStallError(TransientError):
    """A pool worker wedged past the watchdog deadline and was killed.

    Raised (wrapped in :class:`BatchExecutionError`) when a worker of
    :class:`repro.exec.pool.WorkerPool` stops advancing its heartbeat
    for longer than the effective per-chunk deadline — a deadlock, an
    unbounded loop in native code, a hung IO call.  The dispatcher
    kills the process (SIGKILL), attributes the stall to the dataset
    the progress array says was in flight, and respawns the slot.
    Transient: the retry policy may re-run the dataset elsewhere.
    """

    def __init__(self, worker, index, deadline_s):
        self.worker = worker
        self.index = index
        self.deadline_s = deadline_s
        super().__init__(
            "worker %s stalled past the %.3fs deadline while running "
            "dataset %d (killed and respawned)"
            % (worker, deadline_s, index))

    def __reduce__(self):
        return (type(self), (self.worker, self.index, self.deadline_s))


class ShmAttachError(TransientError):
    """A shared-memory segment could not be attached.

    Raised when a worker races segment teardown (the parent unlinked a
    staging segment while a retry was in flight) or the attach itself
    fails transiently.  Transient: a retry re-stages the payload.
    """


class StoreIOError(TransientError):
    """A kernel-store read or write failed at the IO layer.

    The store itself degrades IO failures to cache misses internally;
    this type exists for callers that surface store IO problems into
    the retry policy instead of swallowing them.
    """


class ServiceUnreachableError(TransientError):
    """The remote kernel service could not be reached.

    Raised by :class:`repro.service.client.ServiceClient` after its
    timeout/retry budget is exhausted — connection refused, DNS
    failure, or a request timing out.  Transient by taxonomy (the
    service may come back), but the compile path never *retries on
    it*: the client catches it, emits a warn-once log line, and
    degrades to the local tiers so a dead service costs one timeout
    per cooldown window, never a failed compile.
    """


class BatchExecutionError(ReproError):
    """A batched kernel run failed on one dataset.

    Wraps the worker's exception with the index of the dataset that
    raised it, so callers of
    :func:`~repro.exec.batch.run_batch` can tell which item of the
    batch went wrong regardless of the executor that ran it.  When the
    batch engine knows them, the rendered message also names the
    failing dataset's tensors, the kernel, and the kernel's
    structural-key digest — enough to find the kernel in logs without
    re-running the batch.
    """

    def __init__(self, index, cause, dataset_names=None,
                 kernel_name=None, structural_key=None):
        self.index = index
        self.cause = cause
        self.dataset_names = tuple(dataset_names) if dataset_names \
            else ()
        self.kernel_name = kernel_name
        self.structural_key = structural_key
        message = "dataset %d" % index
        if self.dataset_names:
            message += " (%s)" % ", ".join(
                str(name) for name in self.dataset_names)
        message += " failed"
        if kernel_name is not None:
            message += " in kernel %r" % kernel_name
        if structural_key is not None:
            from repro.cin.analyze import structural_digest

            message += " [skey %s]" % structural_digest(structural_key)
        message += ": %s: %s" % (type(cause).__name__, cause)
        super().__init__(message)

    def __reduce__(self):
        # Default exception pickling replays __init__ with self.args
        # (the formatted message), which does not match this
        # signature; rebuild from the structured fields so the error
        # can cross process boundaries intact.
        return (type(self), (self.index, self.cause,
                             self.dataset_names, self.kernel_name,
                             self.structural_key))
