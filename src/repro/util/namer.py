"""Fresh-name generation for emitted code.

The compiler introduces many runtime variables (stepper positions, phase
stops, accumulators).  A :class:`Namer` hands out names that are unique
within one compilation unit while staying readable: ``p``, ``p_2``,
``p_3``, ``phase_stop``, ``phase_stop_2`` and so on.
"""

import keyword
import re

_IDENT = re.compile(r"[^0-9a-zA-Z_]+")


def sanitize(hint):
    """Turn an arbitrary hint string into a valid Python identifier."""
    name = _IDENT.sub("_", str(hint)).strip("_")
    if not name:
        name = "v"
    if name[0].isdigit():
        name = "v" + name
    if keyword.iskeyword(name):
        name = name + "_"
    return name


class Namer:
    """Generates unique, readable identifiers.

    >>> n = Namer()
    >>> n.fresh("p")
    'p'
    >>> n.fresh("p")
    'p_2'
    >>> n.fresh("while")
    'while_'
    """

    def __init__(self, reserved=()):
        self._counts = {}
        for name in reserved:
            self._counts[name] = 1

    def fresh(self, hint="v"):
        base = sanitize(hint)
        count = self._counts.get(base, 0) + 1
        self._counts[base] = count
        if count == 1:
            return base
        return "%s_%d" % (base, count)

    def reserve(self, name):
        """Mark ``name`` as taken without returning it."""
        self._counts[name] = max(self._counts.get(name, 0), 1)
