"""One front door for runtime configuration: resolve every knob once.

Nine PRs of growth left the runtime surface with three kinds of
configuration — per-call kwargs (``backend=``, ``opt_level=``, ...),
programmatic entry points (``configure_store``, ``configure_pool``),
and ``FL_*`` environment variables — whose relative precedence was
folklore.  This module makes it a single documented rule, applied by
one resolver that every ``os.environ`` read in the package routes
through:

    per-call kwarg  >  ``fl.configure(...)``  >  ``FL_*`` env  >  default

:func:`configure` records process-wide overrides (``fl.configure`` is
this function re-exported); :func:`resolve` applies the precedence for
one option, taking the per-call kwarg as its ``override`` argument;
:func:`runtime_config` snapshots the effective value — and the layer
it came from — for every registered option.

The registered options:

====================  ==========================  =======================
option                environment variable        owns
====================  ==========================  =======================
``store_path``        ``FL_KERNEL_STORE``         kernel-store directory
                                                  (or a ``KernelStore``,
                                                  or None = disabled)
``store_max_bytes``   ``FL_KERNEL_STORE_MAX_BYTES``  store size budget
``backend``           ``FL_KERNEL_BACKEND``       ``python`` / ``c``
``opt_level``         ``FL_KERNEL_OPT_LEVEL``     optimizer level
``tune``              ``FL_KERNEL_TUNE``          ``off`` / ``apply``
``service_url``       ``FL_SERVICE_URL``          remote kernel service
``service_timeout_s``  ``FL_SERVICE_TIMEOUT_S``   per-request timeout
``service_retries``   ``FL_SERVICE_RETRIES``      request retry budget
``pool_max_workers``  ``FL_POOL_MAX_WORKERS``     worker-pool width
``pool_start_method``  ``FL_POOL_START_METHOD``   fork/spawn/forkserver
``pool_chunk_target_s``  ``FL_POOL_CHUNK_TARGET_S``  chunk sizing target
``pool_deadline_s``   ``FL_POOL_DEADLINE_S``      watchdog deadline
``pool_max_retries``  ``FL_POOL_MAX_RETRIES``     transient-retry budget
``pool_backoff_s``    ``FL_POOL_BACKOFF_S``       retry backoff base
====================  ==========================  =======================

``configure_store``/``configure_pool`` survive as thin shims that
delegate here, and the legacy exception applies *within* the rule: the
autotuner winners table slots between the kwarg and ``configure``
layers for ``opt_level``/``backend`` (a measured decision outranks a
static one; see :func:`repro.compiler.kernel.compile_kernel`).

Environment values are re-read on every :func:`resolve` call (an
empty string reads as unset, matching the historical behavior of
every ``FL_*`` variable), so spawned workers and subprocesses inherit
configuration with no code changes.
"""

import os
import threading

__all__ = [
    "OPTIONS", "POOL_OPTION_NAMES", "STORE_OPTION_NAMES", "UNSET",
    "clear", "configure", "option_names", "resolve", "restore",
    "runtime_config", "snapshot", "source",
]


class _Unset:
    """Sentinel: pass ``UNSET`` to :func:`configure` to drop an
    override (distinct from ``None``, which *is* a value — e.g. an
    explicitly disabled store)."""

    __slots__ = ()

    def __repr__(self):
        return "UNSET"


UNSET = _Unset()


class Option:
    """One registered configuration knob: its env var, how to parse
    the env text, its default, and (optionally) the values it
    accepts."""

    __slots__ = ("name", "env", "parse", "default", "choices", "doc")

    def __init__(self, name, env, parse, default, choices=None,
                 doc=""):
        self.name = name
        self.env = env
        self.parse = parse
        self.default = default
        self.choices = choices
        self.doc = doc

    def validate(self, value):
        """``value`` checked (and string-coerced) for this option."""
        if isinstance(value, str) and self.parse is not str:
            value = self.parse(value)
        if (self.choices is not None and isinstance(value, str)
                and value not in self.choices):
            raise ValueError(
                "%s must be one of %s; got %r"
                % (self.name, "/".join(self.choices), value))
        return value


OPTIONS = {
    option.name: option
    for option in (
        Option("store_path", "FL_KERNEL_STORE", str, None,
               doc="kernel-store directory (a path, a KernelStore, "
                   "or None to disable the disk tier)"),
        Option("store_max_bytes", "FL_KERNEL_STORE_MAX_BYTES", int,
               None, doc="store size budget in bytes (LRU eviction)"),
        Option("backend", "FL_KERNEL_BACKEND", str, "python",
               choices=("python", "c"),
               doc="kernel execution backend"),
        Option("opt_level", "FL_KERNEL_OPT_LEVEL", int, None,
               doc="optimizer level (None = the compiler default)"),
        Option("tune", "FL_KERNEL_TUNE", str, "off",
               choices=("off", "apply"),
               doc="autotuner winners-table mode"),
        Option("service_url", "FL_SERVICE_URL", str, None,
               doc="base URL of the remote kernel service "
                   "(None = no remote tier)"),
        Option("service_timeout_s", "FL_SERVICE_TIMEOUT_S", float,
               2.0, doc="per-request timeout against the service"),
        Option("service_retries", "FL_SERVICE_RETRIES", int, 1,
               doc="extra attempts per service request"),
        Option("pool_max_workers", "FL_POOL_MAX_WORKERS", int, None,
               doc="worker-pool width (None = CPU count)"),
        Option("pool_start_method", "FL_POOL_START_METHOD", str,
               None, doc="multiprocessing start method"),
        Option("pool_chunk_target_s", "FL_POOL_CHUNK_TARGET_S",
               float, None,
               doc="measured work one pool chunk should carry"),
        Option("pool_deadline_s", "FL_POOL_DEADLINE_S", float, None,
               doc="watchdog deadline (None = EMA-derived)"),
        Option("pool_max_retries", "FL_POOL_MAX_RETRIES", int, None,
               doc="transient-failure retries per dataset"),
        Option("pool_backoff_s", "FL_POOL_BACKOFF_S", float, None,
               doc="retry backoff base seconds"),
    )
}

#: The option names :func:`repro.exec.pool.configure_pool` owns.
POOL_OPTION_NAMES = tuple(name for name in OPTIONS
                          if name.startswith("pool_"))

#: The option names :func:`repro.store.configure_store` owns.
STORE_OPTION_NAMES = ("store_path", "store_max_bytes")

_lock = threading.RLock()
_overrides = {}


def option_names():
    """The registered option names, sorted."""
    return sorted(OPTIONS)


def _unknown(names):
    return ValueError(
        "unknown configuration option(s) %s (have: %s)"
        % (", ".join(sorted(names)), ", ".join(option_names())))


def configure(**kwargs):
    """Set process-wide configuration overrides; returns the
    effective configuration (:func:`runtime_config`).

    Accepts any registered option by name (``fl.configure(
    backend="c", store_path=".fl_store", service_url="http://...")``).
    An override sits *above* the ``FL_*`` environment and *below*
    per-call kwargs in the precedence order.  Passing ``None`` is an
    explicit value (e.g. ``store_path=None`` disables the disk tier
    even when ``FL_KERNEL_STORE`` is set); pass :data:`UNSET` to drop
    an override and fall back to the environment.

    Pool-shape options take effect immediately when the process-wide
    default pool is already running (it is closed and respawned with
    the new shape, exactly like :func:`repro.exec.pool.
    configure_pool`), and lazily otherwise.
    """
    unknown = set(kwargs) - set(OPTIONS)
    if unknown:
        raise _unknown(unknown)
    touched_pool = False
    with _lock:
        for name, value in kwargs.items():
            if value is UNSET:
                _overrides.pop(name, None)
            else:
                _overrides[name] = OPTIONS[name].validate(value)
            touched_pool = touched_pool or name in POOL_OPTION_NAMES
    if touched_pool:
        # Imported lazily: the pool reads this module, so a top-level
        # import would be circular.
        from repro.exec import pool as _pool

        _pool.rebuild_default_if_open()
    return runtime_config()


def replace(names, values):
    """Clear ``names`` then install ``values`` — the replace-semantics
    primitive the delegating shims (``configure_store``,
    ``configure_pool``) build on, with no side effects."""
    unknown = (set(names) | set(values)) - set(OPTIONS)
    if unknown:
        raise _unknown(unknown)
    with _lock:
        for name in names:
            _overrides.pop(name, None)
        for name, value in values.items():
            _overrides[name] = OPTIONS[name].validate(value)


def clear(*names):
    """Drop the named overrides (all of them when called bare),
    restoring environment-driven behavior for those options."""
    unknown = set(names) - set(OPTIONS)
    if unknown:
        raise _unknown(unknown)
    with _lock:
        if not names:
            _overrides.clear()
        for name in names:
            _overrides.pop(name, None)


def snapshot(names=None):
    """The current overrides for ``names`` (default: all), as a dict
    holding only the options that actually have one — the shape
    :func:`restore` takes back."""
    with _lock:
        if names is None:
            return dict(_overrides)
        return {name: _overrides[name] for name in names
                if name in _overrides}


def restore(previous, names=None):
    """Reinstate a :func:`snapshot`: the named overrides (default:
    all) are cleared, then ``previous`` is installed verbatim."""
    with _lock:
        for name in (OPTIONS if names is None else names):
            _overrides.pop(name, None)
        _overrides.update(previous)


def _env_value(option):
    """The parsed environment value for ``option``, or None when the
    variable is unset or empty (the historical ``FL_*`` contract)."""
    raw = os.environ.get(option.env)
    if not raw:
        return None
    return option.validate(option.parse(raw))


def resolve(name, override=None):
    """The effective value of option ``name`` under the precedence
    rule.  ``override`` is the per-call kwarg: any non-None value wins
    outright; ``None`` falls through to ``configure`` overrides, then
    the environment, then the default."""
    option = OPTIONS.get(name)
    if option is None:
        raise _unknown({name})
    if override is not None:
        return option.validate(override)
    with _lock:
        if name in _overrides:
            return _overrides[name]
    value = _env_value(option)
    return option.default if value is None else value


def source(name):
    """Which precedence layer currently decides option ``name``:
    ``"configure"``, ``"env"``, or ``"default"`` (per-call kwargs are
    by definition not visible here)."""
    option = OPTIONS.get(name)
    if option is None:
        raise _unknown({name})
    with _lock:
        if name in _overrides:
            return "configure"
    return "default" if _env_value(option) is None else "env"


def runtime_config(detailed=False):
    """The effective configuration, every option resolved.

    Plain ``{name: value}`` by default; with ``detailed=True`` each
    value becomes ``{"value", "source", "env"}`` so the precedence
    table is inspectable (``fl.runtime_config(detailed=True)``), where
    ``source`` names the deciding layer and ``env`` the variable the
    option listens to.
    """
    if not detailed:
        return {name: resolve(name) for name in sorted(OPTIONS)}
    return {
        name: {
            "value": resolve(name),
            "source": source(name),
            "env": OPTIONS[name].env,
        }
        for name in sorted(OPTIONS)
    }
