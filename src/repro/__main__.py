"""``python -m repro`` — a one-screen demonstration.

Compiles the paper's motivating kernel (Figure 1), prints the emitted
code, and shows the work counts of looplets vs. the
iterator-over-nonzeros model.
"""

import numpy as np

import repro.lang as fl
from repro.baselines import twofinger


def main():
    a = np.array([0, 1.9, 0, 3.0, 0, 0, 2.7, 0, 5.5, 0, 0])
    b = np.array([0, 0, 0, 3.7, 4.7, 9.2, 1.5, 8.7, 0, 0, 0])
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    kernel = fl.compile_kernel(
        fl.forall(i, fl.increment(C[()], A[i] * B[i])), instrument=True)
    print("Emitted kernel for  C[] += A[i] * B[i]  (list x band):\n")
    print(kernel.source)
    work = kernel.run()
    a_idx, a_val = twofinger.coords_of(a)
    b_idx, b_val = twofinger.coords_of(b)
    _, merge_steps = twofinger.dot_merge(a_idx, a_val, b_idx, b_val)
    print("result: %.2f | looplet work: %d ops | two-finger merge: %d "
          "steps" % (C.value, work, merge_steps))
    print("\nSee examples/ for more, and EXPERIMENTS.md for the "
          "reproduced figures.")


if __name__ == "__main__":
    main()
