"""The canonical benchmark-figure registry: one source of truth for
every kernel the figure suite compiles.

The persistent kernel store addresses kernels by structural key, and
structural keys embed tensor *shapes* — so ahead-of-time compilation
only pays off if the pack builder and the benchmark scripts construct
bit-for-bit the same program structures.  This module is that single
source: the input sizes, seeds, and program builders live here, the
``benchmarks/bench_fig*.py`` scripts import them, and
:func:`pack_programs` enumerates every (program, compile-options)
combination those scripts compile.  ``python -m repro.store pack``
compiles this registry into the ``.flpack`` CI ships between jobs, and
:func:`warm_start_programs` is the six-figure subset the
``warm_start_table`` benchmark proves compiles zero kernels against a
warmed store.

Suites (matrices, graphs, images) are memoized at module level: the
registry is consulted by builders and benchmarks alike, and workload
construction must not dominate either.
"""

import numpy as np

import repro.lang as fl
from repro.bench.kernels import (
    SPMSPV_STRATEGIES,
    all_pairs_similarity_program,
    alpha_blend_program,
    dense_convolution_program,
    masked_convolution_program,
    spmspv_program,
    triangle_count_program,
)
from repro.workloads import graphs, images, matrices

#: The six reproduced figures, in paper order.
FIGURES = ("fig1_dot", "fig7_spmspv", "fig8_triangles",
           "fig9_convolution", "fig10_alpha", "fig11_allpairs")

# -- Figure 1: list x band dot product ------------------------------------
FIG1_N = 4000
FIG1_BAND = (1700, 1780)
FIG1_LIST_NNZ = 400
#: Dense-dot size of the optimization gate (CI smoke-perf job).
FIG1_DENSE_N = 20000
#: Per-dataset length of the batched-throughput benchmark.
FIG1_BATCH_N = 400000

# -- Figure 7: SpMSpV ------------------------------------------------------
FIG7_N = 250

# -- Figure 9: masked convolution -----------------------------------------
FIG9_GRID = 36
FIG9_FILTER = np.ones((5, 5)) / 25.0
FIG9_DENSITIES = (0.01, 0.02, 0.05, 0.10, 0.20)

# -- Figure 10: alpha blending --------------------------------------------
FIG10_ALPHA, FIG10_BETA = 0.4, 0.6
FIG10_FORMATS = ("dense", "sparse", "rle")
FIG10_KINDS = ("digit", "character", "sketch")

# -- Figure 11: all-pairs similarity --------------------------------------
FIG11_FORMATS = ("dense", "sparse", "vbl", "rle")
FIG11_COUNT = 6


def fig1_inputs(seed=0):
    """The list x band operand pair of Figure 1."""
    rng = np.random.default_rng(seed)
    a = np.zeros(FIG1_N)
    support = rng.choice(FIG1_N, FIG1_LIST_NNZ, replace=False)
    a[support] = rng.random(FIG1_LIST_NNZ) + 0.1
    b = np.zeros(FIG1_N)
    b[FIG1_BAND[0]:FIG1_BAND[1]] = \
        rng.random(FIG1_BAND[1] - FIG1_BAND[0]) + 0.1
    return a, b


def fig1_looplet_program(a, b):
    """``C[] += A[i] * B[i]`` over sparse-list x sparse-band."""
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C


def fig1_dense_dot_program(a, b):
    """The dense x dense dot (the vectorization smoke gate)."""
    A = fl.from_numpy(a, ("dense",), name="A")
    B = fl.from_numpy(b, ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C


def fig1_dense_inputs(n, seed=11):
    rng = np.random.default_rng(seed)
    return rng.random(n), rng.random(n)


_SUITES = {}


def fig7_suite():
    """The Harwell-Boeing-like matrix suite (memoized)."""
    if "fig7" not in _SUITES:
        _SUITES["fig7"] = matrices.harwell_boeing_like_suite(FIG7_N,
                                                            seed=0)
    return _SUITES["fig7"]


def fig7_vector(regime, seed=0):
    """The x regimes of Figure 7a/7b."""
    if regime == "dense10pct":
        return matrices.sparse_vector(FIG7_N, density=0.10, seed=seed)
    return matrices.sparse_vector(FIG7_N, count=10, seed=seed)


def fig8_suite():
    """The SNAP-like graph suite (memoized)."""
    if "fig8" not in _SUITES:
        _SUITES["fig8"] = graphs.snap_like_suite(seed=0)
    return _SUITES["fig8"]


def fig9_grid(density, seed=0):
    return matrices.random_sparse_matrix(FIG9_GRID, FIG9_GRID, density,
                                         seed=seed)


def fig10_image_pair(kind, seed):
    first = images.image_batch(kind, 1, seed=seed)[0]
    second = images.image_batch(kind, 1, seed=seed + 100)[0]
    return first, second


def fig11_batch(kind, size, seed=3):
    return images.linearized_batch(kind, FIG11_COUNT, size=size,
                                   seed=seed)


def warm_start_programs():
    """One headline kernel per figure: the warm-start proof set.

    Each item is ``(figure, label, make_program, compile_opts)``;
    ``make_program`` builds a structurally-canonical program over
    fresh tensors on every call.  ``warm_start_table`` compiles these
    against a warmed store and must see a 100% disk-hit rate — zero
    kernels compiled in the warm process.
    """
    a, b = fig1_inputs()
    mat = fig7_suite()["pores_like_clustered"]
    vec = fig7_vector("dense10pct", seed=7)
    adj = fig8_suite()["ca_like_powerlaw"]
    grid = fig9_grid(0.05, seed=3)
    img_b, img_c = fig10_image_pair("digit", seed=1)
    batch = fig11_batch("digit", 20)
    return [
        ("fig1_dot", "list x band dot",
         lambda: fig1_looplet_program(a, b)[0], {}),
        ("fig7_spmspv", "spmspv walk_walk",
         lambda: spmspv_program(mat, vec, "walk_walk")[0], {}),
        ("fig8_triangles", "triangle count (gallop)",
         lambda: triangle_count_program(adj, "gallop")[0], {}),
        ("fig9_convolution", "masked convolution",
         lambda: masked_convolution_program(grid, FIG9_FILTER)[0], {}),
        ("fig10_alpha", "rle alpha blend",
         lambda: alpha_blend_program(img_b, img_c, FIG10_ALPHA,
                                     FIG10_BETA, "rle")[0], {}),
        ("fig11_allpairs", "all-pairs (vbl)",
         lambda: all_pairs_similarity_program(batch, "vbl")[0], {}),
    ]


def pack_programs():
    """Every (program, compile-options) the figure scripts compile.

    The superset behind ``python -m repro.store pack``: each item is
    ``(figure, label, make_program, compile_opts)``, enumerated to
    mirror what ``benchmarks/bench_fig*.py`` actually compile — plain,
    instrumented, and ``opt_level=0`` variants included — so a store
    warmed from the pack serves the whole benchmark run.  Duplicate
    structural keys are fine; the pack builder deduplicates by
    content digest.
    """
    entries = list(warm_start_programs())

    def add(figure, label, make_program, **opts):
        entries.append((figure, label, make_program, opts))

    # Figure 1: instrumented + opt_level=0 looplet dots, the dense
    # optimization pair, and the batched-throughput dense dot.
    a, b = fig1_inputs()
    add("fig1_dot", "list x band dot (instrumented)",
        lambda: fig1_looplet_program(a, b)[0], instrument=True)
    add("fig1_dot", "list x band dot @0",
        lambda: fig1_looplet_program(a, b)[0], opt_level=0)
    da, db = fig1_dense_inputs(FIG1_DENSE_N)
    add("fig1_dot", "dense dot n=%d" % FIG1_DENSE_N,
        lambda: fig1_dense_dot_program(da, db)[0])
    add("fig1_dot", "dense dot n=%d @0" % FIG1_DENSE_N,
        lambda: fig1_dense_dot_program(da, db)[0], opt_level=0)
    ta, tb = fig1_dense_inputs(FIG1_BATCH_N, seed=23)
    add("fig1_dot", "dense dot n=%d (instrumented)" % FIG1_BATCH_N,
        lambda: fig1_dense_dot_program(ta, tb)[0], instrument=True)

    # Figure 7: every strategy, plain and instrumented, plus the
    # optimization baseline.  All suite matrices share one shape, so
    # one matrix stands in for the whole suite.
    mat = fig7_suite()["pores_like_clustered"]
    vec = fig7_vector("dense10pct", seed=7)
    for strategy in SPMSPV_STRATEGIES:
        add("fig7_spmspv", "spmspv %s" % strategy,
            lambda s=strategy: spmspv_program(mat, vec, s)[0])
        add("fig7_spmspv", "spmspv %s (instrumented)" % strategy,
            lambda s=strategy: spmspv_program(mat, vec, s)[0],
            instrument=True)
    add("fig7_spmspv", "spmspv walk_walk @0",
        lambda: spmspv_program(mat, vec, "walk_walk")[0], opt_level=0)

    # Figure 8: the graphs differ in node count (distinct structural
    # keys), so every suite graph is packed for both protocols.
    for name, adj in fig8_suite().items():
        for protocol in ("walk", "gallop"):
            add("fig8_triangles",
                "triangles %s %s (instrumented)" % (name, protocol),
                lambda g=adj, p=protocol:
                triangle_count_program(g, p)[0],
                instrument=True)
    ca = fig8_suite()["ca_like_powerlaw"]
    for protocol in ("walk", "gallop"):
        add("fig8_triangles", "triangles ca_like %s" % protocol,
            lambda p=protocol: triangle_count_program(ca, p)[0])
    p2p = fig8_suite()["p2p_like_sparse"]
    add("fig8_triangles", "triangles p2p_like gallop",
        lambda: triangle_count_program(p2p, "gallop")[0])
    add("fig8_triangles", "triangles ca_like gallop @0",
        lambda: triangle_count_program(ca, "gallop")[0], opt_level=0)

    # Figure 9: every density shares one structure per kernel kind.
    grid = fig9_grid(0.05, seed=3)
    add("fig9_convolution", "masked convolution (instrumented)",
        lambda: masked_convolution_program(grid, FIG9_FILTER)[0],
        instrument=True)
    add("fig9_convolution", "masked convolution @0",
        lambda: masked_convolution_program(grid, FIG9_FILTER)[0],
        opt_level=0)
    add("fig9_convolution", "dense convolution",
        lambda: dense_convolution_program(grid, FIG9_FILTER)[0])
    add("fig9_convolution", "dense convolution (instrumented)",
        lambda: dense_convolution_program(grid, FIG9_FILTER)[0],
        instrument=True)

    # Figure 10: image kinds differ in size (distinct keys); the
    # report instruments every kind x format, the timing tests run
    # digit and sketch plain.
    for kind in FIG10_KINDS:
        img_b, img_c = fig10_image_pair(kind, seed=10)
        for fmt in FIG10_FORMATS:
            add("fig10_alpha", "%s blend %s (instrumented)"
                % (kind, fmt),
                lambda b_=img_b, c_=img_c, f=fmt:
                alpha_blend_program(b_, c_, FIG10_ALPHA, FIG10_BETA,
                                    f)[0],
                instrument=True)
            if kind in ("digit", "sketch"):
                add("fig10_alpha", "%s blend %s" % (kind, fmt),
                    lambda b_=img_b, c_=img_c, f=fmt:
                    alpha_blend_program(b_, c_, FIG10_ALPHA,
                                        FIG10_BETA, f)[0])
    dig_b, dig_c = fig10_image_pair("digit", seed=1)
    add("fig10_alpha", "digit blend rle @0",
        lambda: alpha_blend_program(dig_b, dig_c, FIG10_ALPHA,
                                    FIG10_BETA, "rle")[0],
        opt_level=0)

    # Figure 11: digit (20x20) and character (24x24) batches.
    digit = fig11_batch("digit", 20)
    character = fig11_batch("character", 24)
    for fmt in FIG11_FORMATS:
        add("fig11_allpairs", "all-pairs digit %s" % fmt,
            lambda f=fmt: all_pairs_similarity_program(digit, f)[0])
        add("fig11_allpairs", "all-pairs digit %s (instrumented)" % fmt,
            lambda f=fmt: all_pairs_similarity_program(digit, f)[0],
            instrument=True)
        add("fig11_allpairs",
            "all-pairs character %s (instrumented)" % fmt,
            lambda f=fmt:
            all_pairs_similarity_program(character, f)[0],
            instrument=True)
    for fmt in ("vbl", "dense"):
        add("fig11_allpairs", "all-pairs digit %s @0" % fmt,
            lambda f=fmt: all_pairs_similarity_program(digit, f)[0],
            opt_level=0)
    return entries
