"""Benchmark support: kernel builders and the table/timing harness."""

from repro.bench import harness, kernels

__all__ = ["harness", "kernels"]
