"""Kernel builders shared by the benchmark harness and the examples.

Each experiment has a *program* builder (``*_program``) constructing
the paper's CIN program over fresh tensors, plus a compiling wrapper
that hands callers a :class:`~repro.compiler.kernel.Kernel` and the
output tensor(s).  The split lets the benchmarks time compilation and
execution separately (see :func:`repro.bench.harness.amortization_table`):
calling a program builder twice yields structurally-identical programs
over distinct tensors, so the second compile is a kernel-cache hit.
All wrappers accept ``instrument=True`` to compile the op-counting
variant used for asymptotic comparisons.
"""

import numpy as np

import repro.lang as fl
from repro.tensors.output import RunOutput

#: SpMSpV coiteration strategies from Figure 7 (plus a VBL-leader
#: variant showing protocols and formats compose freely).
SPMSPV_STRATEGIES = ("walk_walk", "lead_A", "follow_A", "gallop_both",
                     "vbl", "vbl_gallop")


def spmspv_program(mat, vec, strategy="walk_walk"):
    """The CIN program for ``y[i] += A[i, j] * x[j]`` (Figure 7)."""
    n_rows, n_cols = mat.shape
    fmt = ("dense", "vbl") if strategy.startswith("vbl") \
        else ("dense", "sparse")
    A = fl.from_numpy(mat, fmt, name="A")
    x = fl.from_numpy(vec, ("sparse",), name="x")
    y = fl.zeros(n_rows, name="y")
    i, j = fl.indices("i", "j")
    proto_a, proto_x = {
        "walk_walk": (fl.walk, fl.walk),
        "lead_A": (fl.gallop, fl.walk),
        "follow_A": (fl.walk, fl.gallop),
        "gallop_both": (fl.gallop, fl.gallop),
        "vbl": (fl.walk, fl.walk),
        "vbl_gallop": (fl.gallop, fl.gallop),
    }[strategy]
    prog = fl.forall(i, fl.forall(j, fl.increment(
        y[i], fl.access(A, i, proto_a(j)) * fl.access(x, proto_x(j)))))
    return prog, y


def spmspv(mat, vec, strategy="walk_walk", instrument=False):
    """``y[i] += A[i, j] * x[j]`` with the inner loop coiterating row
    and vector (the paper's Figure 7 kernel)."""
    prog, y = spmspv_program(mat, vec, strategy)
    kernel = fl.compile_kernel(prog, instrument=instrument)
    return kernel, y


def triangle_count_program(adj, protocol="walk"):
    """The CIN program for ``C[] += A[i,j] * A[j,k] * AT[i,k]``."""
    A = fl.from_numpy(adj, ("dense", "sparse"), name="A")
    AT = fl.from_numpy(adj, ("dense", "sparse"), name="AT")
    C = fl.Scalar(name="C")
    proto = {"walk": fl.walk, "gallop": fl.gallop}[protocol]
    i, j, k = fl.indices("i", "j", "k")
    # Only the innermost loop intersects two lists (rows j and i), so
    # that is where the protocol choice matters; j simply walks row i.
    prog = fl.forall(i, fl.forall(j, fl.forall(k, fl.increment(
        C[()],
        fl.access(A, i, fl.walk(j)) * fl.access(A, j, proto(k)) *
        fl.access(AT, i, proto(k))))))
    return prog, C


def triangle_count(adj, protocol="walk", instrument=False):
    """``C[] += A[i,j] * A[j,k] * AT[i,k]`` (Figure 8).

    The third operand is the transpose; adjacency matrices are
    symmetric so it shares the same dense data.
    """
    prog, C = triangle_count_program(adj, protocol)
    kernel = fl.compile_kernel(prog, instrument=instrument)
    return kernel, C


def masked_convolution_program(grid, filt):
    """The CIN program for the masked 2D convolution (Figure 9)."""
    n, m = grid.shape
    kh, kw = filt.shape
    ch, cw = kh // 2, kw // 2
    A = fl.from_numpy(grid, ("dense", "sparse"), name="A")
    Awin = fl.from_numpy(grid, ("dense", "sparse"), name="Awin")
    F = fl.from_numpy(filt, ("dense", "dense"), name="F")
    C = fl.zeros((n, m), name="C")
    i, k, j, l = fl.indices("i", "k", "j", "l")
    padded_a = fl.coalesce(fl.access(
        Awin,
        fl.permit(fl.offset(j, ch - i)),
        fl.permit(fl.offset(l, cw - k))), 0.0)
    padded_f = fl.coalesce(fl.access(F, fl.permit(j), fl.permit(l)), 0.0)
    mask = fl.ne(A[i, k], 0.0)
    body = fl.increment(C[i, k], mask * padded_a * padded_f)
    prog = fl.forall(i, fl.forall(k, fl.forall(
        j, fl.forall(l, body, ext=(0, kw)), ext=(0, kh))))
    return prog, C


def masked_convolution(grid, filt, instrument=False):
    """Masked 2D convolution over a sparse grid (Figure 9).

    ``C[i,k] += (A[i,k] != 0) * coalesce(A[...window...], 0)
    * coalesce(F[...], 0)`` — output positions restricted to the
    nonzeros of A, with permit/offset index modifiers forming the
    sliding window.
    """
    prog, C = masked_convolution_program(grid, filt)
    kernel = fl.compile_kernel(prog, instrument=instrument)
    return kernel, C


def dense_convolution_program(grid, filt):
    """The dense-baseline convolution program over all-dense formats."""
    n, m = grid.shape
    kh, kw = filt.shape
    ch, cw = kh // 2, kw // 2
    A = fl.from_numpy(grid, ("dense", "dense"), name="A")
    F = fl.from_numpy(filt, ("dense", "dense"), name="F")
    C = fl.zeros((n, m), name="C")
    i, k, j, l = fl.indices("i", "k", "j", "l")
    padded_a = fl.coalesce(fl.access(
        A, fl.permit(fl.offset(j, ch - i)),
        fl.permit(fl.offset(l, cw - k))), 0.0)
    padded_f = fl.coalesce(fl.access(F, fl.permit(j), fl.permit(l)), 0.0)
    body = fl.increment(C[i, k], padded_a * padded_f)
    prog = fl.forall(i, fl.forall(k, fl.forall(
        j, fl.forall(l, body, ext=(0, kw)), ext=(0, kh))))
    return prog, C


def dense_convolution(grid, filt, instrument=False):
    """The dense baseline: same program over all-dense formats."""
    prog, C = dense_convolution_program(grid, filt)
    kernel = fl.compile_kernel(prog, instrument=instrument)
    return kernel, C


def alpha_blend_program(img_b, img_c, alpha=0.5, beta=0.5, fmt="rle"):
    """The CIN program for the Figure 10 alpha blend."""
    n, m = img_b.shape
    row_fmt = {"rle": "rle", "sparse": "sparse", "dense": "dense"}[fmt]
    B = fl.from_numpy(img_b, ("dense", row_fmt), name="B", fill=0)
    C = fl.from_numpy(img_c, ("dense", row_fmt), name="C", fill=0)
    if fmt == "dense":
        A = fl.zeros((n, m), dtype=np.uint8, name="A")
    else:
        A = RunOutput((n, m), fill=0, dtype=np.uint8, name="A")
    i, j = fl.indices("i", "j")
    prog = fl.forall(i, fl.forall(j, fl.store(A[i, j], fl.call(
        fl.ops.ROUND_U8, alpha * B[i, j] + beta * C[i, j]))))
    return prog, A


def alpha_blend(img_b, img_c, alpha=0.5, beta=0.5, fmt="rle",
                instrument=False):
    """``A[i,j] = round_u8(alpha * B[i,j] + beta * C[i,j])`` (Figure 10).

    ``fmt`` selects the input row format; "rle" and "sparse" assemble
    the output as runs (RunOutput), "dense" writes a dense image.
    """
    prog, A = alpha_blend_program(img_b, img_c, alpha, beta, fmt)
    kernel = fl.compile_kernel(prog, instrument=instrument)
    return kernel, A


def all_pairs_similarity_program(images, fmt="vbl"):
    """The CIN program for Figure 11's pairwise distances."""
    count, pixels = images.shape
    data = images.astype(float)
    A = fl.from_numpy(data, ("dense", fmt), name="A")
    R = fl.zeros(count, name="R")
    O = fl.zeros((count, count), name="O")
    o = fl.Scalar(name="o")
    k, l, ij, ij2 = fl.indices("k", "l", "ij", "ij2")
    norms = fl.forall(k, fl.forall(ij2, fl.increment(
        R[k], A[k, ij2] * A[k, ij2])))
    inner = fl.forall(ij, fl.increment(o[()], A[k, ij] * A[l, ij]))
    distances = fl.forall(k, fl.forall(l, fl.where(
        fl.store(O[k, l], fl.call(fl.ops.SQRT, fl.maximum(
            R[k] + R[l] - 2.0 * o[()], 0.0))),
        inner)))
    prog = fl.multi(norms, distances)
    return prog, O


def all_pairs_similarity(images, fmt="vbl", instrument=False):
    """Pairwise Euclidean distances between linearized images
    (Figure 11): norms first, then
    ``O[k,l] = sqrt(R[k] + R[l] - 2*o[]) where (∀ij o[] += A[k,ij] *
    A[l,ij])``."""
    prog, O = all_pairs_similarity_program(images, fmt)
    kernel = fl.compile_kernel(prog, instrument=instrument)
    return kernel, O
