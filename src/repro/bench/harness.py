"""Benchmark harness: timing, op counting, and paper-style tables.

The benchmarks report two measures per configuration:

* wall-clock time of the compiled kernel (pytest-benchmark), and
* the instrumented *operation count* — deterministic, machine-checkable,
  and the right lens for the paper's asymptotic claims (galloping,
  block skipping, run summation).

``Table`` collects rows and renders an aligned text table, so each
benchmark can print the figure it reproduces (captured in
EXPERIMENTS.md).
"""

import time


class Table:
    """A small aligned-text table builder."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add(self, *values):
        if len(values) != len(self.columns):
            raise ValueError("expected %d values" % len(self.columns))
        self.rows.append([_fmt(v) for v in values])

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for pos, cell in enumerate(row):
                widths[pos] = max(widths[pos], len(cell))
        lines = ["== %s ==" % self.title]
        header = "  ".join(c.ljust(widths[p])
                           for p, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[p])
                                   for p, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self):
        print()
        print(self.render())


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)


def time_kernel(kernel, repeats=3):
    """Minimum wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kernel.run()
        best = min(best, time.perf_counter() - start)
    return best


def speedup(baseline, measured):
    """baseline/measured, guarding zero."""
    if measured == 0:
        return float("inf")
    return baseline / measured


def summarize(values):
    """(min, median, max) of a sequence."""
    ordered = sorted(values)
    if not ordered:
        return (0.0, 0.0, 0.0)
    mid = ordered[len(ordered) // 2]
    return (ordered[0], mid, ordered[-1])
