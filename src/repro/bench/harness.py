"""Benchmark harness: timing, op counting, and paper-style tables.

The benchmarks report two measures per configuration:

* wall-clock time of the compiled kernel (pytest-benchmark), and
* the instrumented *operation count* — deterministic, machine-checkable,
  and the right lens for the paper's asymptotic claims (galloping,
  block skipping, run summation).

``Table`` collects rows and renders an aligned text table, so each
benchmark can print the figure it reproduces (captured in
EXPERIMENTS.md).

Since compilation was decoupled from data (the kernel cache),
benchmarks also report *amortization*: :func:`timed_compile` separates
compile time from run time and reports kernel-cache hits, and
:func:`amortization_table` builds the standard compile-once/run-many
table — the first run pays for lowering and emission, every later run
of the same structure rebinds a cached artifact over fresh data.

Since the target-IR optimizer pipeline landed,
:func:`optimization_table` compares the same program compiled at
``opt_level=0`` (lowered code emitted untouched) against the default
level (folding, LICM, CSE, dense-loop vectorization), over *identical*
data: it reports per-variant compile and run times, the run-time
speedup, and the largest output deviation, plus a JSON-ready payload
dict so the perf trajectory is machine-readable across PRs (see the
``--bench-json`` flag in ``benchmarks/conftest.py``).

Since the batch execution engine landed, :func:`throughput_table`
maps one compiled kernel over many datasets under each batch executor
(serial / threads / processes; see :mod:`repro.exec`) and reports
items/sec, scaling efficiency vs serial, the per-stage overhead
breakdown (serialize/transport/execute/collect), and the
cross-executor determinism check (bit-identical outputs, identical
aggregate op counts).  The processes run goes through the warm
worker pool with datasets adopted into a shared-memory arena, so it
measures the steady state rather than per-batch spawn + pickle cost.
Its payloads feed the same ``BENCH_*.json`` trajectory, gated per-PR
by ``benchmarks/check_regression.py``.
"""

import time

import numpy as np

from repro.compiler.kernel import compile_kernel, kernel_cache
from repro.exec import KernelPool


class Table:
    """A small aligned-text table builder."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add(self, *values):
        if len(values) != len(self.columns):
            raise ValueError("expected %d values" % len(self.columns))
        self.rows.append([_fmt(v) for v in values])

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for pos, cell in enumerate(row):
                widths[pos] = max(widths[pos], len(cell))
        lines = ["== %s ==" % self.title]
        header = "  ".join(c.ljust(widths[p])
                           for p, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[p])
                                   for p, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self):
        print()
        print(self.render())


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)


def time_kernel(kernel, repeats=3):
    """Minimum wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kernel.run()
        best = min(best, time.perf_counter() - start)
    return best


def median_time_kernel(kernel, repeats=5, warmup=1):
    """Median wall-clock seconds over ``repeats`` runs, after
    ``warmup`` discarded runs.

    The autotuner's measurement (:mod:`repro.tune`): the warmup
    absorbs first-touch effects (allocator, caches, lazy imports on
    the run path) and the median resists scheduler noise in both
    directions — a winner must be *typically* faster, not
    once-lucky-faster the way a min-of-k can be.
    """
    for _ in range(max(0, warmup)):
        kernel.run()
    times = []
    for _ in range(max(1, repeats)):
        start = time.perf_counter()
        kernel.run()
        times.append(time.perf_counter() - start)
    times.sort()
    return times[len(times) // 2]


def timed_compile(program, **compile_opts):
    """Compile with wall-clock timing and cache-hit detection.

    Returns ``(kernel, seconds, hit)`` where ``seconds`` covers the
    whole ``compile_kernel`` call — key computation plus either a full
    lower/emit/exec (miss) or an artifact rebind (hit).
    """
    start = time.perf_counter()
    kernel = compile_kernel(program, **compile_opts)
    seconds = time.perf_counter() - start
    return kernel, seconds, kernel.from_cache


def amortization_table(title, make_program, runs=3, repeats=3,
                       clear_cache=True, **compile_opts):
    """The compile-once/run-many table for one program structure.

    ``make_program`` must build a structurally-identical CIN program
    over *fresh* tensors on every call, so later runs demonstrate a
    cached kernel rebound to new data.  Columns separate compile time
    from run time; the cache column shows the first run missing and
    every later run hitting.

    Compiles are pinned to the memory tier (``cache="memory"``): this
    table demonstrates in-process amortization, and a warmed
    persistent store would otherwise turn the first row into a disk
    hit (:func:`warm_start_table` measures that story instead).
    """
    if clear_cache:
        kernel_cache().clear()
    compile_opts.setdefault("cache", "memory")
    table = Table(title, ["run", "compile (s)", "run (s)", "cache"])
    for position in range(runs):
        kernel, compile_s, hit = timed_compile(make_program(),
                                               **compile_opts)
        run_s = time_kernel(kernel, repeats=repeats)
        table.add("#%d" % (position + 1), compile_s, run_s,
                  "hit" if hit else "miss")
    return table


def _snapshot_outputs(program):
    """Copies of the program's output tensors as numpy arrays."""
    from repro.cin.analyze import output_tensors

    snaps = []
    for tensor in output_tensors(program):
        try:
            snaps.append(np.array(tensor.to_numpy(), copy=True))
        except AttributeError:
            snaps.append(np.asarray(tensor.value))
    return snaps


def optimization_table(title, make_program, repeats=3, backends=(),
                       tune=None, **compile_opts):
    """Optimized-vs-unoptimized comparison for one program structure.

    ``make_program`` must build the program over *identical data* on
    every call (fresh tensors are fine), so the two variants are
    directly comparable: variant one compiles at ``opt_level=0`` (the
    lowered code, emitted untouched), variant two at the default level
    (scalar passes plus vectorization).  Returns ``(table, payload)``
    where ``payload`` is a JSON-serializable dict with compile/run
    times, the kernel-cache statistics, the run-time speedup of the
    optimized variant, and the largest absolute output difference
    between the two.

    ``backends`` adds one extra optimized variant per named backend
    (e.g. ``("c",)``); its speedup is measured against the same
    ``opt_level=0`` interpreter row, and the table's backend column
    reports the *effective* backend — ``c->python`` marks a fallback,
    so a benchmark silently measuring the interpreter is visible.
    Payloads land under ``payload["backends"][name]``.

    ``tune="apply"`` adds one final *tuned* variant compiled through
    the autotuner winners table (:mod:`repro.tune`); its row is
    labeled ``tuned (no table)`` when no winner is on record (it then
    measures the default compile).  Its payload lands under
    ``payload["tuned"]`` with ``applied`` saying whether a winner was
    found — existing payload keys are untouched.
    """
    compile_opts.pop("opt_level", None)
    compile_opts.pop("backend", None)
    variants = [("opt_level=0", 0, None, "off"),
                ("optimized", None, None, "off")]
    variants += [("optimized", None, name, "off") for name in backends]
    if tune == "apply":
        variants.append(("tuned", None, None, "apply"))
    table = Table(title, ["variant", "backend", "compile (s)",
                          "run (s)", "speedup", "cache"])
    measured = []
    for label, level, backend, tune_mode in variants:
        program = make_program()
        kernel, compile_s, hit = timed_compile(
            program, opt_level=level, backend=backend, tune=tune_mode,
            **compile_opts)
        effective = kernel.effective_backend
        if backend is not None and effective != backend:
            effective = "%s->%s" % (backend, effective)
        if tune_mode == "apply" and not kernel.tuned:
            label = "tuned (no table)"
        run_s = time_kernel(kernel, repeats=repeats)
        measured.append({
            "label": label, "backend": backend, "effective": effective,
            "compile_s": compile_s, "run_s": run_s,
            "cache_hit": bool(hit),
            "tuned": bool(kernel.tuned),
            "outputs": _snapshot_outputs(program),
        })
    scalar = measured[0]

    def _diff(row):
        worst = 0.0
        for left, right in zip(scalar["outputs"], row["outputs"]):
            if left.size:
                worst = max(worst, float(np.max(np.abs(
                    left.astype(float) - right.astype(float)))))
        return worst

    for row in measured:
        row["speedup"] = speedup(scalar["run_s"], row["run_s"])
        table.add(row["label"], row["effective"], row["compile_s"],
                  row["run_s"], row["speedup"],
                  "hit" if row["cache_hit"] else "miss")
    optimized = measured[1]
    backend_rows = measured[2:2 + len(backends)]
    tuned_rows = measured[2 + len(backends):]
    payload = {
        "title": title,
        "variants": {
            row["label"]: {"compile_s": row["compile_s"],
                           "run_s": row["run_s"],
                           "cache_hit": row["cache_hit"]}
            for row in measured[:2]},
        "speedup": optimized["speedup"],
        "max_abs_diff": _diff(optimized),
        "backends": {
            row["backend"]: {
                "compile_s": row["compile_s"],
                "run_s": row["run_s"],
                "speedup": row["speedup"],
                "effective": row["effective"],
                "max_abs_diff": _diff(row),
                "cache_hit": row["cache_hit"],
            }
            for row in backend_rows},
        "cache": kernel_cache().stats(),
    }
    if tuned_rows:
        row = tuned_rows[0]
        payload["tuned"] = {
            "compile_s": row["compile_s"],
            "run_s": row["run_s"],
            "speedup": row["speedup"],
            "applied": row["tuned"],
            "max_abs_diff": _diff(row),
            "cache_hit": row["cache_hit"],
        }
    return table, payload


def throughput_table(title, program, datasets, executors=(
        "serial", "threads", "processes"), max_workers=None,
        repeats=3, instrument=True, backend=None, tune=None,
        **compile_opts):
    """Batched-throughput comparison across batch executors.

    ``backend`` selects the kernel backend for every executor
    (``"python"``/``"c"``; see
    :func:`~repro.compiler.kernel.compile_kernel`); the table's
    backend column and ``payload["backend"]`` report the *effective*
    backend, so a C run that silently fell back to the interpreter is
    visible in the report.  ``tune="apply"`` compiles the kernel
    through the autotuner winners table; ``payload["tuned"]`` reports
    whether a persisted winner was actually applied.

    Compiles ``program`` once and maps it over ``datasets`` (see
    :func:`repro.exec.run_batch` for the dataset forms) under each
    executor, timing the whole batch.  Columns report items/sec, the
    speedup over the serial executor, and scaling *efficiency*
    (speedup divided by worker count); with ``instrument=True`` (the
    default) the table also shows each executor's aggregate op count,
    which must not depend on how the batch was sharded.

    When ``processes`` is among the executors, the datasets are first
    adopted into a :class:`repro.exec.ShmArena` (one copy), so the
    processes run measures the warm-pool steady state: workers rebind
    shared segments instead of receiving tensor bytes per batch.  The
    arena is unlinked before returning.

    Returns ``(table, payload)``.  The JSON-ready ``payload`` carries
    per-executor wall seconds, items/sec, speedup, efficiency, op
    totals, and the per-stage ``overhead`` breakdown
    (serialize/transport/execute/collect seconds for the best batch),
    plus ``identical`` — True when every executor produced
    bit-identical output snapshots and the same total op count as the
    baseline (serial when present, else the first executor).
    """
    from repro.exec import ShmArena
    from repro.tensors.share import share_dataset

    kernel = compile_kernel(program, instrument=instrument,
                            backend=backend, tune=tune,
                            **compile_opts)
    effective = kernel.effective_backend
    if backend is not None and effective != backend:
        effective = "%s->%s" % (backend, effective)
    table = Table(title, ["executor", "backend", "workers", "seconds",
                          "items/s", "vs serial", "efficiency",
                          "xport (s)", "exec (s)", "ops", "faults"])
    payload = {"title": title, "items": len(datasets),
               "backend": effective, "executors": {},
               "tuned": bool(kernel.tuned),
               "identical": True}
    baseline_name = "serial" if "serial" in executors else executors[0]
    measured = {}
    arena = ShmArena() if "processes" in executors else None
    try:
        if arena is not None:
            datasets = [share_dataset(dataset, arena)
                        for dataset in datasets]
        for executor in executors:
            with KernelPool(kernel, executor=executor,
                            max_workers=max_workers) as pool:
                best = None
                for _ in range(repeats):
                    result = pool.map(datasets)
                    if (best is None
                            or result.wall_seconds < best.wall_seconds):
                        best = result
            measured[executor] = best
    finally:
        if arena is not None:
            arena.close()
    baseline = measured[baseline_name]
    baseline_rate = baseline.items_per_second
    for executor in executors:
        result = measured[executor]
        rate = result.items_per_second
        boost = rate / baseline_rate if baseline_rate > 0 else float("inf")
        efficiency = boost / result.max_workers
        same = _same_outputs(baseline, result)
        if not same:
            payload["identical"] = False
        overhead = dict(result.overhead or {})
        transport = (overhead.get("serialize_s", 0.0)
                     + overhead.get("transport_s", 0.0)
                     + overhead.get("collect_s", 0.0))
        faults = dict(result.faults)
        # Recovered-fault events only (backoff_s is wall time, not a
        # count): a healthy benchmark run shows 0 everywhere, so any
        # nonzero here flags contaminated timings.
        fault_events = sum(value for key, value in faults.items()
                           if key != "backoff_s")
        table.add(executor, effective, result.max_workers,
                  result.wall_seconds, rate, boost, efficiency,
                  transport, overhead.get("execute_s", 0.0),
                  result.total_ops if instrument else "-",
                  fault_events)
        payload["executors"][executor] = {
            "max_workers": result.max_workers,
            "wall_seconds": result.wall_seconds,
            "items_per_s": rate,
            "speedup_vs_serial": boost,
            "efficiency": efficiency,
            "total_ops": result.total_ops,
            "bit_identical": same,
            "overhead": overhead,
            "faults": faults,
        }
    return table, payload


def warm_start_table(title, programs, store, repeats=1, remote=None):
    """Cold vs warm-process compile time against a persistent store.

    ``programs`` is a sequence of ``(figure, label, make_program,
    compile_opts)`` tuples (see
    :func:`repro.bench.figures.warm_start_programs`); ``store`` is a
    warmed :class:`~repro.store.KernelStore`.  For every entry the
    table measures:

    * **cold** — a full compile (``cache=False``), the price every
      fresh process paid before the store existed, and
    * **warm** — the same compile in a simulated fresh process: the
      in-memory kernel cache is cleared and the store is the only
      tier, so the compile either hits disk or pays full price.

    ``remote`` (a kernel-service URL) adds a third measurement per
    figure: the same compile with *no* local store at all — the
    in-memory cache cleared and the active store suppressed — so the
    service is the only tier left.  The ``remote`` column reports that
    compile's wall time and whether it was served by the fleet
    (``service_stats()`` deltas); without a URL the column reads "-".

    Both kernels are run and their outputs compared bit-for-bit (a
    disk-rebuilt kernel must be indistinguishable from a fresh one).
    Returns ``(table, payload)``; the payload carries per-figure
    times, the aggregate ``hit_rate`` over the warm compiles
    (1.0 = the warm process compiled zero kernels), ``cold_compiles``
    (store misses seen during the warm pass), the store's cumulative
    stats, and — when ``remote`` is set — ``remote_hit_rate`` over
    the remote passes.  CI's ``bench-regression`` gate fails when
    ``hit_rate`` drops: a silent fall-back to cold compiles is a
    regression even when every kernel still runs fast.
    """
    from repro.store import using_store

    table = Table(title, ["figure", "kernel", "cold (s)", "warm (s)",
                          "speedup", "disk", "remote", "identical"])
    payload = {"title": title, "figures": {}, "identical": True,
               "store_root": store.root}
    before = store.stats()
    remote_hits = remote_lookups = 0
    for figure, label, make_program, compile_opts in programs:
        program = make_program()
        best_cold = float("inf")
        for _ in range(max(1, repeats)):
            kernel_cache().clear()
            start = time.perf_counter()
            kernel = compile_kernel(program, cache=False,
                                    **compile_opts)
            best_cold = min(best_cold, time.perf_counter() - start)
        kernel.run()
        cold_outputs = _snapshot_outputs(program)

        entry_before = store.stats()
        warm_program = make_program()
        kernel_cache().clear()
        with using_store(store):
            start = time.perf_counter()
            warm_kernel = compile_kernel(warm_program, **compile_opts)
            warm_s = time.perf_counter() - start
        warm_kernel.run()
        warm_outputs = _snapshot_outputs(warm_program)
        entry_after = store.stats()
        disk_hit = entry_after["hits"] > entry_before["hits"]

        remote_cell = "-"
        remote_info = None
        if remote:
            from repro.service.client import service_stats

            remote_program = make_program()
            kernel_cache().clear()
            stats_before = service_stats()
            # No local store: the service is the only tier left.
            with using_store(None):
                start = time.perf_counter()
                remote_kernel = compile_kernel(
                    remote_program, remote=remote, **compile_opts)
                remote_s = time.perf_counter() - start
            stats_after = service_stats()
            hit = (stats_after["remote_hits"]
                   > stats_before["remote_hits"])
            remote_kernel.run()
            remote_outputs = _snapshot_outputs(remote_program)
            remote_same = (
                len(remote_outputs) == len(cold_outputs)
                and all(left.dtype == right.dtype
                        and left.shape == right.shape
                        and left.tobytes() == right.tobytes()
                        for left, right in zip(cold_outputs,
                                               remote_outputs)))
            if not remote_same:
                payload["identical"] = False
            remote_lookups += 1
            remote_hits += 1 if hit else 0
            remote_cell = "%s %s" % (_fmt(remote_s),
                                     "hit" if hit else "MISS")
            remote_info = {"remote_compile_s": remote_s,
                           "remote_hit": hit,
                           "bit_identical": remote_same}

        identical = len(cold_outputs) == len(warm_outputs)
        for left, right in zip(cold_outputs, warm_outputs):
            if (left.dtype != right.dtype or left.shape != right.shape
                    or left.tobytes() != right.tobytes()):
                identical = False
        if not identical:
            payload["identical"] = False
        table.add(figure, label, best_cold, warm_s,
                  speedup(best_cold, warm_s),
                  "hit" if disk_hit else "MISS",
                  remote_cell,
                  "yes" if identical else "NO")
        entry = {
            "cold_compile_s": best_cold,
            "warm_compile_s": warm_s,
            "disk_hit": disk_hit,
            "bit_identical": identical,
        }
        if remote_info is not None:
            entry["remote"] = remote_info
        payload["figures"][figure + "/" + label] = entry
    after = store.stats()
    lookups = (after["hits"] - before["hits"]) + (after["misses"]
                                                  - before["misses"])
    payload["hit_rate"] = ((after["hits"] - before["hits"]) / lookups
                           if lookups else 0.0)
    payload["cold_compiles"] = after["misses"] - before["misses"]
    payload["store"] = after
    if remote:
        payload["remote_hit_rate"] = (remote_hits / remote_lookups
                                      if remote_lookups else 0.0)
    return table, payload


def _same_outputs(baseline, result):
    """True when two batch results carry bit-identical output
    snapshots and equal aggregate op counts."""
    if baseline.total_ops != result.total_ops:
        return False
    for left_item, right_item in zip(baseline.items, result.items):
        if len(left_item.outputs) != len(right_item.outputs):
            return False
        for left, right in zip(left_item.outputs, right_item.outputs):
            if (left.dtype != right.dtype
                    or left.shape != right.shape
                    or left.tobytes() != right.tobytes()):
                return False
    return True


def assert_amortized(table):
    """Assert an :func:`amortization_table` shows compile-once/run-many:
    the first run misses the kernel cache, every later run hits."""
    cache_column = [row[-1] for row in table.rows]
    assert cache_column, "amortization table has no rows"
    assert cache_column[0] == "miss", cache_column
    assert cache_column[1:] == ["hit"] * (len(cache_column) - 1), \
        cache_column


def speedup(baseline, measured):
    """baseline/measured, guarding zero."""
    if measured == 0:
        return float("inf")
    return baseline / measured


def summarize(values):
    """(min, median, max) of a sequence."""
    ordered = sorted(values)
    if not ordered:
        return (0.0, 0.0, 0.0)
    mid = ordered[len(ordered) // 2]
    return (ordered[0], mid, ordered[-1])
