"""Benchmark harness: timing, op counting, and paper-style tables.

The benchmarks report two measures per configuration:

* wall-clock time of the compiled kernel (pytest-benchmark), and
* the instrumented *operation count* — deterministic, machine-checkable,
  and the right lens for the paper's asymptotic claims (galloping,
  block skipping, run summation).

``Table`` collects rows and renders an aligned text table, so each
benchmark can print the figure it reproduces (captured in
EXPERIMENTS.md).

Since compilation was decoupled from data (the kernel cache),
benchmarks also report *amortization*: :func:`timed_compile` separates
compile time from run time and reports kernel-cache hits, and
:func:`amortization_table` builds the standard compile-once/run-many
table — the first run pays for lowering and emission, every later run
of the same structure rebinds a cached artifact over fresh data.
"""

import time

from repro.compiler.kernel import compile_kernel, kernel_cache


class Table:
    """A small aligned-text table builder."""

    def __init__(self, title, columns):
        self.title = title
        self.columns = list(columns)
        self.rows = []

    def add(self, *values):
        if len(values) != len(self.columns):
            raise ValueError("expected %d values" % len(self.columns))
        self.rows.append([_fmt(v) for v in values])

    def render(self):
        widths = [len(c) for c in self.columns]
        for row in self.rows:
            for pos, cell in enumerate(row):
                widths[pos] = max(widths[pos], len(cell))
        lines = ["== %s ==" % self.title]
        header = "  ".join(c.ljust(widths[p])
                           for p, c in enumerate(self.columns))
        lines.append(header)
        lines.append("-" * len(header))
        for row in self.rows:
            lines.append("  ".join(cell.ljust(widths[p])
                                   for p, cell in enumerate(row)))
        return "\n".join(lines)

    def show(self):
        print()
        print(self.render())


def _fmt(value):
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 100 or abs(value) < 0.01:
            return "%.3g" % value
        return "%.3f" % value
    return str(value)


def time_kernel(kernel, repeats=3):
    """Minimum wall-clock seconds over ``repeats`` runs."""
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        kernel.run()
        best = min(best, time.perf_counter() - start)
    return best


def timed_compile(program, **compile_opts):
    """Compile with wall-clock timing and cache-hit detection.

    Returns ``(kernel, seconds, hit)`` where ``seconds`` covers the
    whole ``compile_kernel`` call — key computation plus either a full
    lower/emit/exec (miss) or an artifact rebind (hit).
    """
    start = time.perf_counter()
    kernel = compile_kernel(program, **compile_opts)
    seconds = time.perf_counter() - start
    return kernel, seconds, kernel.from_cache


def amortization_table(title, make_program, runs=3, repeats=3,
                       clear_cache=True, **compile_opts):
    """The compile-once/run-many table for one program structure.

    ``make_program`` must build a structurally-identical CIN program
    over *fresh* tensors on every call, so later runs demonstrate a
    cached kernel rebound to new data.  Columns separate compile time
    from run time; the cache column shows the first run missing and
    every later run hitting.
    """
    if clear_cache:
        kernel_cache().clear()
    table = Table(title, ["run", "compile (s)", "run (s)", "cache"])
    for position in range(runs):
        kernel, compile_s, hit = timed_compile(make_program(),
                                               **compile_opts)
        run_s = time_kernel(kernel, repeats=repeats)
        table.add("#%d" % (position + 1), compile_s, run_s,
                  "hit" if hit else "miss")
    return table


def assert_amortized(table):
    """Assert an :func:`amortization_table` shows compile-once/run-many:
    the first run misses the kernel cache, every later run hits."""
    cache_column = [row[-1] for row in table.rows]
    assert cache_column, "amortization table has no rows"
    assert cache_column[0] == "miss", cache_column
    assert cache_column[1:] == ["hit"] * (len(cache_column) - 1), \
        cache_column


def speedup(baseline, measured):
    """baseline/measured, guarding zero."""
    if measured == 0:
        return float("inf")
    return baseline / measured


def summarize(values):
    """(min, median, max) of a sequence."""
    ordered = sorted(values)
    if not ordered:
        return (0.0, 0.0, 0.0)
    mid = ordered[len(ordered) // 2]
    return (ordered[0], mid, ordered[-1])
