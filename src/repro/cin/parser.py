"""A text front end for Concrete Index Notation.

Lets kernels be written the way the paper prints them::

    parse("forall i, j: y[i] += A[i, j::gallop] * x[j::gallop]",
          tensors={"A": A, "x": x, "y": y})

Grammar (EBNF-ish)::

    program   := forall* stmt
    forall    := "forall" decl ("," decl)* ":"
    decl      := NAME ("in" expr ":" expr)?
    stmt      := access aug expr
    aug       := "=" | "+=" | "*=" | "min=" | "max=" | "|=" | "&="
    expr      := or ;  or := and ("||" and)*
    and       := cmp ("&&" cmp)*
    cmp       := add (("=="|"!="|"<="|"<"|">="|">") add)?
    add       := mul (("+"|"-") mul)* ;  mul := unary (("*"|"/") unary)*
    unary     := "-" unary | atom
    atom      := NUMBER | NAME | NAME "(" args ")" | NAME "[" idxs "]"
               | "(" expr ")"
    idxs      := [ idx ("," idx)* ]
    idx       := idxatom ("::" PROTOCOL)?
    idxatom   := NAME
               | "permit" "(" idxatom ")"
               | "offset" "(" idxatom "," expr ")"
               | "window" "(" idxatom "," expr "," expr ")"

Names bound in ``tensors`` become accesses; every other name is a loop
index (or a scalar parameter from ``scalars``).  Function names resolve
through the operator registry (``coalesce``, ``min``, ``abs``, ...).
"""

import re

from repro.cin.builders import access as build_access
from repro.cin.builders import forall as build_forall
from repro.cin.builders import (
    ProtocolMarker,
    offset as build_offset,
    permit as build_permit,
    window as build_window,
)
from repro.cin.nodes import PROTOCOLS, Assign
from repro.ir import build, ops
from repro.ir.nodes import Extent, Literal, Var, as_expr
from repro.util.errors import ParseError

_TOKEN = re.compile(r"""
    (?P<num>\d+\.\d*|\.\d+|\d+)
  | (?P<op>\+=|\*=|min=|max=|\|=|&=|::|==|!=|<=|>=|&&|\|\||[-+*/()\[\],:=<>])
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
  | (?P<ws>\s+)
  | (?P<bad>.)
""", re.VERBOSE)

_AUG_OPS = {"=": None, "+=": ops.ADD, "*=": ops.MUL, "min=": ops.MIN,
            "max=": ops.MAX, "|=": ops.OR, "&=": ops.AND}

_FUNCTIONS = {
    "coalesce": ops.COALESCE,
    "min": ops.MIN,
    "max": ops.MAX,
    "abs": ops.ABS,
    "sqrt": ops.SQRT,
    "round_u8": ops.ROUND_U8,
    "ifelse": ops.IFELSE,
    "mod": ops.MOD,
}

_MODIFIERS = ("permit", "offset", "window")


class _Token:
    __slots__ = ("kind", "text", "position")

    def __init__(self, kind, text, position):
        self.kind = kind
        self.text = text
        self.position = position

    def __repr__(self):
        return "%s(%r)" % (self.kind, self.text)


def _tokenize(text):
    tokens = []
    for match in _TOKEN.finditer(text):
        kind = match.lastgroup
        if kind == "ws":
            continue
        if kind == "bad":
            raise ParseError("unexpected character %r" % match.group(),
                             match.start(), text)
        tokens.append(_Token(kind, match.group(), match.start()))
    tokens.append(_Token("eof", "", len(text)))
    return tokens


class Parser:
    """Recursive-descent parser for the CIN surface syntax."""

    def __init__(self, text, tensors=None, scalars=None):
        self.text = text
        self.tokens = _tokenize(text)
        self.pos = 0
        self.tensors = dict(tensors or {})
        self.scalars = dict(scalars or {})

    # -- token plumbing --------------------------------------------------
    def peek(self):
        return self.tokens[self.pos]

    def advance(self):
        token = self.tokens[self.pos]
        self.pos += 1
        return token

    def expect(self, text):
        token = self.advance()
        if token.text != text:
            raise ParseError("expected %r, found %r" % (text, token.text),
                             token.position, self.text)
        return token

    def accept(self, text):
        if self.peek().text == text:
            return self.advance()
        return None

    def fail(self, message):
        token = self.peek()
        raise ParseError(message + " (at %r)" % token.text,
                         token.position, self.text)

    # -- grammar -----------------------------------------------------------
    def parse_program(self):
        foralls = []
        while self.peek().text == "forall":
            self.advance()
            foralls.extend(self._parse_decls())
            self.expect(":")
        stmt = self.parse_assignment()
        if self.peek().kind != "eof":
            self.fail("trailing input after statement")
        for index, ext in reversed(foralls):
            stmt = build_forall(index, stmt, ext=ext)
        return stmt

    def _parse_decls(self):
        decls = [self._parse_decl()]
        while self.accept(","):
            decls.append(self._parse_decl())
        return decls

    def _parse_decl(self):
        name = self._expect_name()
        ext = None
        if self.peek().text == "in":
            self.advance()
            start = self.parse_expr()
            self.expect(":")
            stop = self.parse_expr()
            ext = Extent(start, stop)
        return Var(name), ext

    def _expect_name(self):
        token = self.advance()
        if token.kind != "name":
            raise ParseError("expected a name, found %r" % token.text,
                             token.position, self.text)
        return token.text

    def parse_assignment(self):
        lhs = self.parse_expr()
        from repro.cin.nodes import Access

        if not isinstance(lhs, Access):
            self.fail("assignment target must be a tensor access")
        token = self.advance()
        if token.text not in _AUG_OPS:
            raise ParseError(
                "expected an assignment operator, found %r" % token.text,
                token.position, self.text)
        rhs = self.parse_expr()
        return Assign(lhs, _AUG_OPS[token.text], rhs)

    def parse_expr(self):
        return self._parse_or()

    def _parse_or(self):
        expr = self._parse_and()
        while self.accept("||"):
            expr = build.lor(expr, self._parse_and())
        return expr

    def _parse_and(self):
        expr = self._parse_cmp()
        while self.accept("&&"):
            expr = build.land(expr, self._parse_cmp())
        return expr

    _CMP = {"==": build.eq, "!=": build.ne, "<": build.lt,
            "<=": build.le, ">": build.gt, ">=": build.ge}

    def _parse_cmp(self):
        expr = self._parse_add()
        if self.peek().text in self._CMP:
            op = self.advance().text
            expr = self._CMP[op](expr, self._parse_add())
        return expr

    def _parse_add(self):
        expr = self._parse_mul()
        while self.peek().text in ("+", "-"):
            op = self.advance().text
            rhs = self._parse_mul()
            expr = build.plus(expr, rhs) if op == "+" \
                else build.minus(expr, rhs)
        return expr

    def _parse_mul(self):
        expr = self._parse_unary()
        while self.peek().text in ("*", "/"):
            op = self.advance().text
            rhs = self._parse_unary()
            expr = build.times(expr, rhs) if op == "*" \
                else build.call(ops.DIV, expr, rhs)
        return expr

    def _parse_unary(self):
        if self.accept("-"):
            return build.negate(self._parse_unary())
        return self._parse_atom()

    def _parse_atom(self):
        token = self.peek()
        if token.kind == "num":
            self.advance()
            value = float(token.text) if "." in token.text \
                else int(token.text)
            return Literal(value)
        if token.text == "(":
            self.advance()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token.kind == "name":
            return self._parse_name()
        self.fail("expected an expression")

    def _parse_name(self):
        name = self._expect_name()
        if self.peek().text == "(":
            return self._parse_call(name)
        if self.peek().text == "[" and name in self.tensors:
            return self._parse_access(name)
        if name in self.tensors:
            tensor = self.tensors[name]
            if getattr(tensor, "ndim", None) == 0:
                return build_access(tensor)
            self.fail("tensor %r used without indices" % name)
        if name in self.scalars:
            return as_expr(self.scalars[name])
        return Var(name)

    def _parse_call(self, name):
        if name in _MODIFIERS:
            self.fail("index modifier %r outside tensor brackets" % name)
        op = _FUNCTIONS.get(name)
        if op is None:
            try:
                op = ops.get_op(name)
            except Exception:
                self.fail("unknown function %r" % name)
        self.expect("(")
        args = []
        if self.peek().text != ")":
            args.append(self.parse_expr())
            while self.accept(","):
                args.append(self.parse_expr())
        self.expect(")")
        return build.call(op, *args)

    def _parse_access(self, name):
        tensor = self.tensors[name]
        self.expect("[")
        idxs = []
        if self.peek().text != "]":
            idxs.append(self._parse_index())
            while self.accept(","):
                idxs.append(self._parse_index())
        self.expect("]")
        return build_access(tensor, *idxs)

    def _parse_index(self):
        idx = self._parse_index_atom()
        if self.accept("::"):
            proto = self._expect_name()
            if proto not in PROTOCOLS:
                self.fail("unknown protocol %r" % proto)
            return ProtocolMarker(idx, proto)
        return idx

    def _parse_index_atom(self):
        token = self.peek()
        if token.kind == "name" and token.text in _MODIFIERS:
            name = self.advance().text
            self.expect("(")
            base = self._parse_index_atom()
            if name == "permit":
                self.expect(")")
                return build_permit(base)
            if name == "offset":
                self.expect(",")
                delta = self.parse_expr()
                self.expect(")")
                return build_offset(base, delta)
            self.expect(",")
            lo = self.parse_expr()
            self.expect(",")
            hi = self.parse_expr()
            self.expect(")")
            return build_window(base, lo, hi)
        # A bare index is any scalar expression; usually a plain name.
        return self.parse_expr()


def parse(text, tensors=None, scalars=None):
    """Parse one CIN statement (with optional forall prefixes)."""
    return Parser(text, tensors=tensors, scalars=scalars).parse_program()
