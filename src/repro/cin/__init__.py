"""Extended Concrete Index Notation (Figure 4 of the paper)."""

from repro.cin.analyze import (
    check_program,
    forall_indices,
    infer_extents,
    output_tensors,
    program_tensors,
)
from repro.cin.nodes import (
    Access,
    Assign,
    CinStmt,
    Forall,
    Multi,
    OffsetExpr,
    Pass,
    PermitExpr,
    Sieve,
    Where,
    WindowExpr,
    collect_accesses,
    index_base,
    stmt_children,
    walk_stmts,
)

__all__ = [
    "check_program",
    "forall_indices",
    "infer_extents",
    "output_tensors",
    "program_tensors",
    "Access",
    "Assign",
    "CinStmt",
    "Forall",
    "Multi",
    "OffsetExpr",
    "Pass",
    "PermitExpr",
    "Sieve",
    "Where",
    "WindowExpr",
    "collect_accesses",
    "index_base",
    "stmt_children",
    "walk_stmts",
]
