"""User-facing eDSL for building CIN programs.

The surface mirrors the paper's notation::

    import repro.lang as fl

    i, j = fl.indices("i", "j")
    prog = fl.forall(i, fl.forall(j,
        fl.increment(y[i], A[i, j] * x[fl.gallop(j)])))

Tensors implement ``__getitem__`` returning :class:`Access` nodes, and
scalar IR expressions support Python arithmetic operators.  Comparisons
are spelled as functions (``fl.eq``, ``fl.lt``, ...) because ``==`` on
IR nodes means *structural equality*.
"""

from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    Multi,
    OffsetExpr,
    Pass,
    PermitExpr,
    Sieve,
    Where,
    WindowExpr,
)
from repro.ir import build, ops
from repro.ir.nodes import Expr, Extent, Var, as_expr
from repro.util.errors import ReproError


def indices(*names):
    """Create loop index variables: ``i, j = indices("i", "j")``."""
    if len(names) == 1 and " " in names[0]:
        names = tuple(names[0].split())
    out = tuple(Var(name) for name in names)
    return out[0] if len(out) == 1 else out


class ProtocolMarker:
    """An index annotated with an access protocol: ``gallop(j)``."""

    def __init__(self, idx, protocol):
        self.idx = as_expr(idx)
        self.protocol = protocol

    def __repr__(self):
        return "%s(%r)" % (self.protocol, self.idx)


def walk(idx):
    """Iterate in ascending order, one child at a time (default)."""
    return ProtocolMarker(idx, "walk")


def follow(idx):
    """Iterate passively, following the extents other operands declare."""
    return ProtocolMarker(idx, "follow")


def gallop(idx):
    """Lead the coiteration, skipping ahead (mutual lookahead when all
    operands gallop — the worst-case-optimal-join strategy)."""
    return ProtocolMarker(idx, "gallop")


def locate(idx):
    """Random access by index (requires a format that supports it)."""
    return ProtocolMarker(idx, "locate")


def offset(base, delta):
    """``offset(delta)[base]``: read the parent at ``base - delta``."""
    return OffsetExpr(delta, _strip(base))


def window(base, lo, hi):
    """``window(lo, hi)[base]``: the slice ``[lo, hi)`` of the parent."""
    return WindowExpr(lo, hi, _strip(base))


def permit(base):
    """Allow out-of-bounds reads, which evaluate to ``missing``."""
    return PermitExpr(_strip(base))


def _strip(idx):
    if isinstance(idx, ProtocolMarker):
        raise ReproError(
            "apply the protocol to the whole index expression: "
            "gallop(offset(j, d)), not offset(gallop(j), d)")
    return as_expr(idx)


def access(tensor, *idxs):
    """Build an Access, honoring ProtocolMarker annotations."""
    plain = []
    protocols = []
    for idx in idxs:
        if isinstance(idx, ProtocolMarker):
            plain.append(idx.idx)
            protocols.append(idx.protocol)
        else:
            plain.append(as_expr(idx))
            protocols.append(None)
    return Access(tensor, plain, protocols)


def store(lhs, rhs):
    """``lhs = rhs`` (overwrite)."""
    return Assign(lhs, None, rhs)


def increment(lhs, rhs):
    """``lhs += rhs``."""
    return Assign(lhs, ops.ADD, rhs)


def reduce_into(lhs, op, rhs):
    """``lhs <<op>>= rhs`` for an arbitrary reduction operator."""
    return Assign(lhs, op, rhs)


def forall(index, body, ext=None):
    """``@∀ index [∈ ext] body``; ``ext`` is ``(start, stop)``."""
    if ext is not None and not isinstance(ext, Extent):
        start, stop = ext
        ext = Extent(start, stop)
    return Forall(index, body, ext=ext)


def foralls(index_list, body, exts=None):
    """Nest foralls: ``foralls([i, j], stmt)`` = ``∀i ∀j stmt``."""
    exts = exts or {}
    out = body
    for index in reversed(list(index_list)):
        if isinstance(index, str):
            index = Var(index)
        out = forall(index, out, ext=exts.get(index.name))
    return out


def where(consumer, producer):
    return Where(consumer, producer)


def multi(*stmts):
    return Multi(stmts)


def sieve(cond, body):
    return Sieve(cond, body)


def pass_(*tensors):
    return Pass(tensors)


# Scalar expression helpers (comparisons cannot be Python operators
# because == on IR nodes is structural equality).
def eq(a, b):
    return build.eq(a, b)


def ne(a, b):
    return build.ne(a, b)


def lt(a, b):
    return build.lt(a, b)


def le(a, b):
    return build.le(a, b)


def gt(a, b):
    return build.gt(a, b)


def ge(a, b):
    return build.ge(a, b)


def land(*args):
    return build.land(*args)


def lor(*args):
    return build.lor(*args)


def coalesce(*args):
    return build.coalesce(*args)


def minimum(*args):
    return build.minimum(*args)


def maximum(*args):
    return build.maximum(*args)


def call(op, *args):
    return build.call(op, *args)


def literal(value):
    return as_expr(value)


def _expr_add(self, other):
    return build.plus(self, other)


def _expr_radd(self, other):
    return build.plus(other, self)


def _expr_mul(self, other):
    return build.times(self, other)


def _expr_rmul(self, other):
    return build.times(other, self)


def _expr_sub(self, other):
    return build.minus(self, as_expr(other))


def _expr_rsub(self, other):
    return build.minus(as_expr(other), self)


def _expr_neg(self):
    return build.negate(self)


def _expr_truediv(self, other):
    return build.call(ops.DIV, self, other)


def _expr_rtruediv(self, other):
    return build.call(ops.DIV, other, self)


def _expr_pow(self, other):
    return build.call(ops.POW, self, other)


def _install_expr_operators():
    """Give IR expressions Python arithmetic operators.

    Installed here (not in :mod:`repro.ir.nodes`) so the core IR stays
    free of DSL conveniences, while any import of the language surface
    enables them.
    """
    Expr.__add__ = _expr_add
    Expr.__radd__ = _expr_radd
    Expr.__mul__ = _expr_mul
    Expr.__rmul__ = _expr_rmul
    Expr.__sub__ = _expr_sub
    Expr.__rsub__ = _expr_rsub
    Expr.__neg__ = _expr_neg
    Expr.__truediv__ = _expr_truediv
    Expr.__rtruediv__ = _expr_rtruediv
    Expr.__pow__ = _expr_pow


_install_expr_operators()
