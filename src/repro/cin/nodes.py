"""Extended Concrete Index Notation (Figure 4 of the paper).

Statements: assignment (overwrite or reduce-by-op), ``forall``,
``where``, ``multi``, ``sieve`` and ``pass``.  Expressions reuse the
scalar IR (:mod:`repro.ir`) extended with :class:`Access` nodes, which
reference a tensor by a sequence of index expressions.  Index
expressions may wrap a loop index with the Section 8 modifiers
(:class:`OffsetExpr`, :class:`WindowExpr`, :class:`PermitExpr`) and may
carry per-mode access :class:`protocols <repro.formats>` (walk, gallop,
locate, ...).
"""

from repro.ir.nodes import Expr, Var, as_expr
from repro.ir.ops import Op, get_op
from repro.util.errors import ReproError

#: Recognized access protocols.  ``None`` selects the format's default.
PROTOCOLS = ("walk", "follow", "gallop", "locate")


class OffsetExpr(Expr):
    """``offset(delta)[base]``: index ``i`` reads the parent at ``i - delta``.

    Equivalently the child sequence appears shifted *forward* by
    ``delta`` in the parent's coordinate system (paper Section 8).
    """

    __slots__ = ("delta", "base")

    def __init__(self, delta, base):
        self.delta = as_expr(delta)
        self.base = as_expr(base)

    def key(self):
        return ("offset", self.delta.key(), self.base.key())

    def children(self):
        return (self.delta, self.base)

    def rebuild(self, children):
        delta, base = children
        return OffsetExpr(delta, base)

    def __repr__(self):
        return "offset(%r)[%r]" % (self.delta, self.base)


class WindowExpr(Expr):
    """``window(lo, hi)[base]``: restrict to the slice ``[lo, hi)``.

    ``A[window(lo, hi)[k]]`` behaves like the slice ``A[lo:hi][k]``, so
    the visible dimension has size ``hi - lo``.
    """

    __slots__ = ("lo", "hi", "base")

    def __init__(self, lo, hi, base):
        self.lo = as_expr(lo)
        self.hi = as_expr(hi)
        self.base = as_expr(base)

    def key(self):
        return ("window", self.lo.key(), self.hi.key(), self.base.key())

    def children(self):
        return (self.lo, self.hi, self.base)

    def rebuild(self, children):
        lo, hi, base = children
        return WindowExpr(lo, hi, base)

    def __repr__(self):
        return "window(%r, %r)[%r]" % (self.lo, self.hi, self.base)


class PermitExpr(Expr):
    """``permit[base]``: out-of-bounds reads produce ``missing``."""

    __slots__ = ("base",)

    def __init__(self, base):
        self.base = as_expr(base)

    def key(self):
        return ("permit", self.base.key())

    def children(self):
        return (self.base,)

    def rebuild(self, children):
        (base,) = children
        return PermitExpr(base)

    def __repr__(self):
        return "permit[%r]" % (self.base,)


def index_base(idx):
    """The innermost plain index expression under any modifiers."""
    while isinstance(idx, (OffsetExpr, WindowExpr, PermitExpr)):
        idx = idx.base
    return idx


class Access(Expr):
    """``T[i, j, ...]`` — a tensor access within a CIN expression.

    ``tensor`` is any object implementing the tensor protocol (see
    :mod:`repro.tensors`), or a fiber handle introduced by the compiler
    for partially-consumed accesses.  ``protocols`` is a per-mode tuple
    of protocol names (``None`` for the format default).
    """

    __slots__ = ("tensor", "idxs", "protocols")

    def __init__(self, tensor, idxs, protocols=None):
        self.tensor = tensor
        self.idxs = tuple(as_expr(i) for i in idxs)
        if protocols is None:
            protocols = (None,) * len(self.idxs)
        protocols = tuple(protocols)
        if len(protocols) != len(self.idxs):
            raise ReproError("protocol count does not match index count")
        for proto in protocols:
            if proto is not None and proto not in PROTOCOLS:
                raise ReproError("unknown protocol %r" % (proto,))
        self.protocols = protocols

    def key(self):
        return (("access", id(self.tensor), self.protocols)
                + tuple(i.key() for i in self.idxs))

    def children(self):
        return self.idxs

    def rebuild(self, children):
        return Access(self.tensor, tuple(children), self.protocols)

    def __repr__(self):
        name = getattr(self.tensor, "name", None) or type(self.tensor).__name__
        return "%s[%s]" % (name, ", ".join(repr(i) for i in self.idxs))


class CinStmt:
    """Base class for CIN statements."""

    __slots__ = ()


class Assign(CinStmt):
    """``lhs = rhs`` or ``lhs <op>= rhs`` for a reduction operator."""

    __slots__ = ("lhs", "op", "rhs")

    def __init__(self, lhs, op, rhs):
        if not isinstance(lhs, Access):
            raise ReproError("assignment target must be an Access")
        if op is not None:
            if isinstance(op, str):
                op = get_op(op)
            if not isinstance(op, Op):
                raise ReproError("bad reduction op: %r" % (op,))
        self.lhs = lhs
        self.op = op
        self.rhs = as_expr(rhs)

    def __repr__(self):
        symbol = "=" if self.op is None else self.op.name + "="
        return "%r %s %r" % (self.lhs, symbol, self.rhs)


class Forall(CinStmt):
    """``@∀ index ∈ extent body`` — extent may be inferred from shapes."""

    __slots__ = ("index", "ext", "body")

    def __init__(self, index, body, ext=None):
        if isinstance(index, str):
            index = Var(index)
        if not isinstance(index, Var):
            raise ReproError("forall index must be a Var")
        self.index = index
        self.ext = ext
        self.body = body

    def __repr__(self):
        return "forall %s: %r" % (self.index.name, self.body)


class Where(CinStmt):
    """``consumer where producer``: compute the producer's results, then
    run the consumer using them."""

    __slots__ = ("consumer", "producer")

    def __init__(self, consumer, producer):
        self.consumer = consumer
        self.producer = producer

    def __repr__(self):
        return "(%r) where (%r)" % (self.consumer, self.producer)


class Multi(CinStmt):
    """Multiple statements computed together (multiple outputs)."""

    __slots__ = ("stmts",)

    def __init__(self, stmts):
        self.stmts = tuple(stmts)

    def __repr__(self):
        return "multi(%d stmts)" % len(self.stmts)


class Sieve(CinStmt):
    """Run ``body`` only on iterations where ``cond`` holds."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        self.cond = as_expr(cond)
        self.body = body

    def __repr__(self):
        return "sieve(%r, %r)" % (self.cond, self.body)


class Pass(CinStmt):
    """No-op that remembers which outputs it does not write."""

    __slots__ = ("tensors",)

    def __init__(self, tensors=()):
        self.tensors = tuple(tensors)

    def __repr__(self):
        return "pass(%d tensors)" % len(self.tensors)


def stmt_children(stmt):
    """Child statements of a CIN statement."""
    if isinstance(stmt, Forall):
        return (stmt.body,)
    if isinstance(stmt, Where):
        return (stmt.consumer, stmt.producer)
    if isinstance(stmt, Multi):
        return stmt.stmts
    if isinstance(stmt, Sieve):
        return (stmt.body,)
    return ()


def walk_stmts(stmt):
    """All statements in the tree, preorder."""
    yield stmt
    for child in stmt_children(stmt):
        yield from walk_stmts(child)


def stmt_exprs(stmt):
    """Expressions referenced directly by one statement."""
    if isinstance(stmt, Assign):
        yield stmt.lhs
        yield stmt.rhs
    elif isinstance(stmt, Sieve):
        yield stmt.cond


def collect_accesses(stmt):
    """Every Access in the statement tree (reads and writes)."""
    out = []
    for node in walk_stmts(stmt):
        for expr in stmt_exprs(node):
            _collect_accesses_expr(expr, out)
    return out


def _collect_accesses_expr(expr, out):
    if isinstance(expr, Access):
        out.append(expr)
    for child in expr.children():
        _collect_accesses_expr(child, out)
