"""Static analysis over CIN programs.

Collects tensors, infers loop extents from tensor dimensions, finds
result (output) tensors, and validates the program shape before
lowering.
"""

from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    OffsetExpr,
    PermitExpr,
    Sieve,
    WindowExpr,
    collect_accesses,
    stmt_exprs,
    walk_stmts,
)
from repro.ir import build
from repro.ir.nodes import Extent, Literal, Var
from repro.util.errors import DimensionError, ReproError


def program_tensors(stmt):
    """All distinct tensors in the program, in first-use order."""
    seen = []
    for access in collect_accesses(stmt):
        if not any(access.tensor is tensor for tensor in seen):
            seen.append(access.tensor)
    return seen


def output_tensors(stmt):
    """Tensors written by assignments, in first-write order."""
    seen = []
    for node in walk_stmts(stmt):
        if isinstance(node, Assign):
            tensor = node.lhs.tensor
            if not any(tensor is t for t in seen):
                seen.append(tensor)
    return seen


def forall_indices(stmt):
    """Names of all forall-bound indices, outermost first."""
    return [node.index.name for node in walk_stmts(stmt)
            if isinstance(node, Forall)]


def _dimension_candidate(idx, dim):
    """The loop extent implied by using ``idx`` on a mode of size ``dim``.

    Returns ``(base_name, Extent)`` or ``None`` when the modifier chain
    makes the extent unbounded (permit) or shifted (offset).
    """
    if isinstance(idx, Var):
        return idx.name, Extent(0, dim)
    if isinstance(idx, WindowExpr) and isinstance(idx.base, Var):
        return idx.base.name, Extent(0, build.minus(idx.hi, idx.lo))
    if isinstance(idx, (OffsetExpr, PermitExpr)):
        return None
    return None


def infer_extents(stmt):
    """Map each forall index to its extent.

    Explicit extents on the forall win; otherwise every access using the
    index contributes a candidate from the corresponding mode dimension,
    and all candidates must agree.
    """
    explicit = {}
    for node in walk_stmts(stmt):
        if isinstance(node, Forall) and node.ext is not None:
            explicit[node.index.name] = node.ext

    candidates = {}
    for access in collect_accesses(stmt):
        shape = getattr(access.tensor, "shape", None)
        if shape is None:
            continue
        if len(shape) != len(access.idxs):
            raise DimensionError(
                "access %r has %d indices but the tensor has %d modes"
                % (access, len(access.idxs), len(shape)))
        for mode, idx in enumerate(access.idxs):
            candidate = _dimension_candidate(idx, shape[mode])
            if candidate is None:
                continue
            name, ext = candidate
            candidates.setdefault(name, []).append(ext)

    extents = dict(explicit)
    for name in forall_indices(stmt):
        if name in extents:
            continue
        options = candidates.get(name, [])
        if not options:
            raise DimensionError(
                "cannot infer an extent for index %r; give the forall an "
                "explicit extent" % name)
        first = options[0]
        for other in options[1:]:
            if _statically_conflicting(first, other):
                raise DimensionError(
                    "conflicting extents for index %r: %r vs %r"
                    % (name, first, other))
        extents[name] = first
    return extents


def _statically_conflicting(a, b):
    if a == b:
        return False
    both_static = all(isinstance(e, Literal)
                      for e in (a.start, a.stop, b.start, b.stop))
    return both_static


def check_program(stmt):
    """Validate program shape; raises on malformed programs."""
    names_in_scope = []
    _check(stmt, names_in_scope)


def _check(stmt, names_in_scope):
    if isinstance(stmt, Forall):
        if stmt.index.name in names_in_scope:
            raise ReproError("index %r bound twice" % stmt.index.name)
        names_in_scope.append(stmt.index.name)
        _check(stmt.body, names_in_scope)
        names_in_scope.pop()
        return
    if isinstance(stmt, Assign):
        for idx in stmt.lhs.idxs:
            if not isinstance(idx, Var):
                raise ReproError(
                    "assignment targets must use plain indices, got %r"
                    % (idx,))
        return
    if isinstance(stmt, Sieve):
        _check(stmt.body, names_in_scope)
        return
    for expr in stmt_exprs(stmt):
        del expr
    from repro.cin.nodes import stmt_children

    for child in stmt_children(stmt):
        _check(child, names_in_scope)


__all__ = [
    "check_program",
    "forall_indices",
    "infer_extents",
    "output_tensors",
    "program_tensors",
]
