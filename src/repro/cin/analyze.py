"""Static analysis over CIN programs.

Collects tensors, infers loop extents from tensor dimensions, finds
result (output) tensors, validates the program shape before lowering,
and computes *structural keys* — the program's identity up to the data
it binds, used by the kernel cache to reuse compiled artifacts across
structurally-identical programs.
"""

from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    OffsetExpr,
    PermitExpr,
    Sieve,
    WindowExpr,
    collect_accesses,
    stmt_exprs,
    walk_stmts,
)
import hashlib

from repro.ir import build
from repro.ir.nodes import Extent, Literal, Var
from repro.util.errors import DimensionError, ReproError


def program_tensors(stmt):
    """All distinct tensors in the program, in first-use order."""
    seen = []
    for access in collect_accesses(stmt):
        if not any(access.tensor is tensor for tensor in seen):
            seen.append(access.tensor)
    return seen


def output_tensors(stmt):
    """Tensors written by assignments, in first-write order."""
    seen = []
    for node in walk_stmts(stmt):
        if isinstance(node, Assign):
            tensor = node.lhs.tensor
            if not any(tensor is t for t in seen):
                seen.append(tensor)
    return seen


def forall_indices(stmt):
    """Names of all forall-bound indices, outermost first."""
    return [node.index.name for node in walk_stmts(stmt)
            if isinstance(node, Forall)]


def _dimension_candidate(idx, dim):
    """The loop extent implied by using ``idx`` on a mode of size ``dim``.

    Returns ``(base_name, Extent)`` or ``None`` when the modifier chain
    makes the extent unbounded (permit) or shifted (offset).
    """
    if isinstance(idx, Var):
        return idx.name, Extent(0, dim)
    if isinstance(idx, WindowExpr) and isinstance(idx.base, Var):
        return idx.base.name, Extent(0, build.minus(idx.hi, idx.lo))
    if isinstance(idx, (OffsetExpr, PermitExpr)):
        return None
    return None


def infer_extents(stmt):
    """Map each forall index to its extent.

    Explicit extents on the forall win; otherwise every access using the
    index contributes a candidate from the corresponding mode dimension,
    and all candidates must agree.
    """
    explicit = {}
    for node in walk_stmts(stmt):
        if isinstance(node, Forall) and node.ext is not None:
            explicit[node.index.name] = node.ext

    candidates = {}
    for access in collect_accesses(stmt):
        shape = getattr(access.tensor, "shape", None)
        if shape is None:
            continue
        if len(shape) != len(access.idxs):
            raise DimensionError(
                "access %r has %d indices but the tensor has %d modes"
                % (access, len(access.idxs), len(shape)))
        for mode, idx in enumerate(access.idxs):
            candidate = _dimension_candidate(idx, shape[mode])
            if candidate is None:
                continue
            name, ext = candidate
            candidates.setdefault(name, []).append(ext)

    extents = dict(explicit)
    for name in forall_indices(stmt):
        if name in extents:
            continue
        options = candidates.get(name, [])
        if not options:
            raise DimensionError(
                "cannot infer an extent for index %r; give the forall an "
                "explicit extent" % name)
        first = options[0]
        for other in options[1:]:
            if _statically_conflicting(first, other):
                raise DimensionError(
                    "conflicting extents for index %r: %r vs %r"
                    % (name, first, other))
        extents[name] = first
    return extents


def _statically_conflicting(a, b):
    if a == b:
        return False
    both_static = all(isinstance(e, Literal)
                      for e in (a.start, a.stop, b.start, b.stop))
    return both_static


# --------------------------------------------------------------------------
# Structural keys (the kernel cache's notion of program identity)
# --------------------------------------------------------------------------
def tensor_signature(tensor):
    """The format signature of any tensor-protocol object.

    Objects without a ``format_signature`` method are opaque: they are
    keyed by identity, so they only ever match themselves.
    """
    fn = getattr(tensor, "format_signature", None)
    if fn is not None:
        return fn()
    return ("opaque", id(tensor))


def tensor_binding_buffers(tensor):
    """The canonical role -> buffer mapping for kernel (re)binding."""
    fn = getattr(tensor, "kernel_buffers", None)
    if fn is not None:
        return fn()
    return {}


def structural_key(stmt):
    """A hashable key identifying the program up to the data it binds.

    The CIN tree is hashed with every tensor replaced by its *slot*
    (position in first-use order) and its :func:`tensor_signature` —
    level nesting, shapes, fill, and dtype, but never the backing
    arrays.  Two programs with equal structural keys lower to the same
    emitted code, so one compiled kernel serves both once rebound
    (the premise of :class:`repro.compiler.kernel.KernelCache`).

    Buffer *aliasing* between slots is part of the key: when two slots
    share a backing array the compiler collapses them into a single
    kernel parameter, so the sharing pattern must match for a cached
    kernel to be rebindable.
    """
    slots = []
    slot_index = {}

    def slot(tensor):
        key = id(tensor)
        if key not in slot_index:
            slot_index[key] = len(slots)
            slots.append(tensor)
        return slot_index[key]

    body = _stmt_key(stmt, slot)
    signatures = tuple(tensor_signature(tensor) for tensor in slots)
    return ("cin", body, signatures, buffer_alias_groups(slots))


def structural_digest(key, length=12):
    """A short, stable hex digest of a structural key (or any nested
    key tuple), for log lines, error messages, and store keys.

    Structural keys are deeply nested tuples — far too long to print —
    but operators debugging a batch failure or a cache anomaly need a
    stable handle to correlate kernels across processes and log lines.
    ``length`` widens the digest for consumers that address content by
    it (the persistent kernel store uses 40 hex chars); the default 12
    keeps log lines short.  Returns ``"?"`` for ``None`` so message
    formatting never branches.
    """
    if key is None:
        return "?"
    payload = repr(key).encode("utf-8")
    return hashlib.sha1(payload).hexdigest()[:length]


def buffer_alias_groups(tensors):
    """Groups of ``(slot, role)`` pairs whose buffers are one object."""
    owners = {}
    for slot, tensor in enumerate(tensors):
        for role, buf in tensor_binding_buffers(tensor).items():
            owners.setdefault(id(buf), []).append((slot, role))
    return tuple(tuple(group) for group in owners.values()
                 if len(group) > 1)


def _stmt_key(stmt, slot):
    if isinstance(stmt, Assign):
        op = stmt.op.name if stmt.op is not None else None
        return ("assign", op, _expr_key(stmt.lhs, slot),
                _expr_key(stmt.rhs, slot))
    if isinstance(stmt, Forall):
        return ("forall", stmt.index.name, _extent_key(stmt.ext, slot),
                _stmt_key(stmt.body, slot))
    if isinstance(stmt, Sieve):
        return ("sieve", _expr_key(stmt.cond, slot),
                _stmt_key(stmt.body, slot))
    from repro.cin.nodes import Multi, Pass, Where

    if isinstance(stmt, Where):
        return ("where", _stmt_key(stmt.consumer, slot),
                _stmt_key(stmt.producer, slot))
    if isinstance(stmt, Multi):
        return ("multi",) + tuple(_stmt_key(child, slot)
                                  for child in stmt.stmts)
    if isinstance(stmt, Pass):
        return ("pass",) + tuple(slot(tensor) for tensor in stmt.tensors)
    raise ReproError("cannot key statement %r" % (stmt,))


def _expr_key(expr, slot):
    from repro.ir.nodes import Call

    if isinstance(expr, Access):
        return (("access", slot(expr.tensor), expr.protocols)
                + tuple(_expr_key(idx, slot) for idx in expr.idxs))
    children = expr.children()
    if not children:
        # Leaves (Literal, Var) have data-independent keys already.
        return expr.key()
    if isinstance(expr, Call):
        head = ("call", expr.op.name)
    else:
        head = (type(expr).__name__,)
    return head + tuple(_expr_key(child, slot) for child in children)


def _extent_key(ext, slot):
    if ext is None:
        return None
    return ("extent", _expr_key(ext.start, slot), _expr_key(ext.stop, slot))


def check_program(stmt):
    """Validate program shape; raises on malformed programs."""
    names_in_scope = []
    _check(stmt, names_in_scope)


def _check(stmt, names_in_scope):
    if isinstance(stmt, Forall):
        if stmt.index.name in names_in_scope:
            raise ReproError("index %r bound twice" % stmt.index.name)
        names_in_scope.append(stmt.index.name)
        _check(stmt.body, names_in_scope)
        names_in_scope.pop()
        return
    if isinstance(stmt, Assign):
        for idx in stmt.lhs.idxs:
            if not isinstance(idx, Var):
                raise ReproError(
                    "assignment targets must use plain indices, got %r"
                    % (idx,))
        return
    if isinstance(stmt, Sieve):
        _check(stmt.body, names_in_scope)
        return
    for expr in stmt_exprs(stmt):
        del expr
    from repro.cin.nodes import stmt_children

    for child in stmt_children(stmt):
        _check(child, names_in_scope)


__all__ = [
    "buffer_alias_groups",
    "check_program",
    "forall_indices",
    "infer_extents",
    "output_tensors",
    "program_tensors",
    "structural_key",
    "tensor_binding_buffers",
    "tensor_signature",
]
