"""Baselines: TACO-style two-finger merges, dense loops, and a CIN
reference interpreter used as the correctness oracle."""

from repro.baselines.reference import Interpreter, interpret
from repro.baselines import dense_ref, twofinger

__all__ = ["Interpreter", "interpret", "dense_ref", "twofinger"]
