"""Dense reference kernels (the "OpenCV" stand-ins).

Two flavors per kernel:

* ``*_numpy`` — vectorized numpy, used as a correctness oracle.
* ``*_loops`` — plain Python loops over dense arrays, the dense
  baseline measured by the benchmarks.  These share the compiled
  kernels' execution model (see DESIGN.md: comparing emitted Python to
  emitted Python keeps relative factors meaningful).
"""

import numpy as np


def dot_numpy(a, b):
    return float(np.dot(a, b))


def spmv_numpy(mat, vec):
    return np.asarray(mat) @ np.asarray(vec)


def convolve2d_numpy(grid, kernel):
    """Zero-padded, centered 2D convolution oracle (paper Figure 9)."""
    grid = np.asarray(grid, dtype=float)
    kernel = np.asarray(kernel, dtype=float)
    out = np.zeros_like(grid)
    kh, kw = kernel.shape
    ch, cw = kh // 2, kw // 2
    n, m = grid.shape
    for dj in range(kh):
        for dl in range(kw):
            src_i0 = max(0, ch - dj)
            src_i1 = min(n, n + ch - dj)
            dst_i0 = max(0, dj - ch)
            dst_i1 = dst_i0 + (src_i1 - src_i0)
            src_k0 = max(0, cw - dl)
            src_k1 = min(m, m + cw - dl)
            dst_k0 = max(0, dl - cw)
            dst_k1 = dst_k0 + (src_k1 - src_k0)
            out[src_i0:src_i1, src_k0:src_k1] += (
                kernel[dj, dl] * grid[dst_i0:dst_i1, dst_k0:dst_k1])
    return out


def masked_convolve2d_numpy(grid, kernel):
    """Convolution evaluated only at nonzero grid points (the paper's
    masked kernel: ``C[i,k] += (A[i,k] != 0) * ...``)."""
    return np.where(np.asarray(grid) != 0.0,
                    convolve2d_numpy(grid, kernel), 0.0)


def alpha_blend_numpy(img_b, img_c, alpha, beta):
    mixed = alpha * img_b.astype(float) + beta * img_c.astype(float)
    return np.clip(np.round(mixed), 0, 255).astype(np.uint8)


def all_pairs_numpy(images):
    """Pairwise Euclidean distances between image rows."""
    images = np.asarray(images, dtype=float)
    norms = (images ** 2).sum(axis=1)
    gram = images @ images.T
    sq = np.maximum(norms[:, None] + norms[None, :] - 2 * gram, 0.0)
    return np.sqrt(sq)


def dot_loops(a, b):
    total = 0.0
    for p in range(len(a)):
        total += a[p] * b[p]
    return total


def spmv_loops(mat, vec):
    n, m = mat.shape
    out = np.zeros(n)
    for i in range(n):
        acc = 0.0
        for j in range(m):
            acc += mat[i, j] * vec[j]
        out[i] = acc
    return out


def convolve2d_loops(grid, kernel):
    n, m = grid.shape
    kh, kw = kernel.shape
    ch, cw = kh // 2, kw // 2
    out = np.zeros_like(grid, dtype=float)
    for i in range(n):
        for k in range(m):
            acc = 0.0
            for dj in range(kh):
                src_i = i + dj - ch
                if src_i < 0 or src_i >= n:
                    continue
                for dl in range(kw):
                    src_k = k + dl - cw
                    if 0 <= src_k < m:
                        acc += grid[src_i, src_k] * kernel[dj, dl]
            out[i, k] = acc
    return out


def alpha_blend_loops(img_b, img_c, alpha, beta):
    n, m = img_b.shape
    out = np.zeros((n, m), dtype=np.uint8)
    for i in range(n):
        for j in range(m):
            mixed = alpha * float(img_b[i, j]) + beta * float(img_c[i, j])
            out[i, j] = max(0, min(255, int(round(mixed))))
    return out


def all_pairs_loops(images):
    import math

    count, pixels = images.shape
    norms = [0.0] * count
    for k in range(count):
        acc = 0.0
        for p in range(pixels):
            acc += float(images[k, p]) ** 2
        norms[k] = acc
    out = np.zeros((count, count))
    for k in range(count):
        for l in range(count):
            acc = 0.0
            for p in range(pixels):
                acc += float(images[k, p]) * float(images[l, p])
            out[k, l] = math.sqrt(max(norms[k] + norms[l] - 2 * acc, 0.0))
    return out
