"""Iterator-over-nonzeros baselines (the TACO model of Figure 1, left).

These kernels implement the classic two-finger merge over sorted
coordinate lists: every nonzero of every operand is visited until one
list is exhausted.  They are written in the same execution model as the
compiled Finch kernels (plain Python loops over numpy buffers), so the
*relative* factors between them and the looplet kernels are meaningful;
comparing interpreted Python against C would only measure interpreter
overhead (see DESIGN.md).

Each function also returns an operation count — the number of merge
steps taken — mirroring the instrumented looplet kernels.
"""

import numpy as np

from repro.util.errors import DimensionError


def coords_of(vec):
    """Sorted (idx, val) arrays of a dense numpy vector's nonzeros."""
    vec = np.asarray(vec)
    idx = np.nonzero(vec)[0]
    return idx.astype(np.int64), vec[idx]


def csr_of(mat):
    """(pos, idx, val) CSR arrays of a dense numpy matrix."""
    mat = np.asarray(mat)
    pos = [0]
    idx = []
    val = []
    for row in mat:
        nonzeros = np.nonzero(row)[0]
        idx.extend(nonzeros.tolist())
        val.extend(row[nonzeros].tolist())
        pos.append(len(idx))
    return (np.array(pos, dtype=np.int64), np.array(idx, dtype=np.int64),
            np.array(val))


def dot_merge(a_idx, a_val, b_idx, b_val):
    """Two-finger merged dot product (Figure 1b, left).

    Returns ``(value, merge_steps)``.
    """
    total = 0.0
    steps = 0
    p, q = 0, 0
    np_, nq = len(a_idx), len(b_idx)
    while p < np_ and q < nq:
        steps += 1
        ia = a_idx[p]
        ib = b_idx[q]
        if ia == ib:
            total += a_val[p] * b_val[q]
            p += 1
            q += 1
        elif ia < ib:
            p += 1
        else:
            q += 1
    return total, steps


def spmspv_merge(pos, idx, val, x_idx, x_val, n_rows):
    """SpMSpV where every row of A is two-finger merged with x.

    The paper's Figure 7 baseline: ``y[i] += A[i, j] * x[j]`` with the
    merge in the inner loop.  Returns ``(y, merge_steps)``.
    """
    y = np.zeros(n_rows)
    steps = 0
    for i in range(n_rows):
        p = pos[i]
        p_end = pos[i + 1]
        q = 0
        nq = len(x_idx)
        acc = 0.0
        while p < p_end and q < nq:
            steps += 1
            ia = idx[p]
            ib = x_idx[q]
            if ia == ib:
                acc += val[p] * x_val[q]
                p += 1
                q += 1
            elif ia < ib:
                p += 1
            else:
                q += 1
        y[i] = acc
    return y, steps


def intersect_merge(a_idx, b_idx):
    """Count of shared coordinates by two-finger merge; returns
    ``(count, merge_steps)``."""
    count = 0
    steps = 0
    p, q = 0, 0
    np_, nq = len(a_idx), len(b_idx)
    while p < np_ and q < nq:
        steps += 1
        ia = a_idx[p]
        ib = b_idx[q]
        if ia == ib:
            count += 1
            p += 1
            q += 1
        elif ia < ib:
            p += 1
        else:
            q += 1
    return count, steps


def intersect_gallop(a_idx, b_idx):
    """Galloping (mutual lookahead) intersection via binary search.

    The hand-written analogue of the looplet gallop protocol; used by
    the benchmarks to sanity-check the compiled kernels' asymptotics.
    Returns ``(count, search_steps)``.
    """
    from bisect import bisect_left

    count = 0
    steps = 0
    p, q = 0, 0
    np_, nq = len(a_idx), len(b_idx)
    while p < np_ and q < nq:
        steps += 1
        ia = a_idx[p]
        ib = b_idx[q]
        if ia == ib:
            count += 1
            p += 1
            q += 1
        elif ia < ib:
            p = bisect_left(a_idx, ib, p, np_)
        else:
            q = bisect_left(b_idx, ia, q, nq)
    return count, steps


def triangle_count_merge(pos, idx, n):
    """Triangle counting with two-finger merged neighbor intersections.

    ``C += A[i,j] * A[j,k] * A[k,i]`` for a boolean CSR adjacency;
    counts ordered wedge closures exactly like the CIN kernel.  Returns
    ``(count, merge_steps)``.
    """
    total = 0
    steps = 0
    for i in range(n):
        for p in range(pos[i], pos[i + 1]):
            j = idx[p]
            # intersect row j with row i (k such that A[j,k] and A[i,k])
            a, a_end = pos[j], pos[j + 1]
            b, b_end = pos[i], pos[i + 1]
            while a < a_end and b < b_end:
                steps += 1
                ka = idx[a]
                kb = idx[b]
                if ka == kb:
                    total += 1
                    a += 1
                    b += 1
                elif ka < kb:
                    a += 1
                else:
                    b += 1
    return total, steps


def triangle_count_gallop(pos, idx, n):
    """Triangle counting with galloping neighbor intersections."""
    from bisect import bisect_left

    total = 0
    steps = 0
    for i in range(n):
        for p in range(pos[i], pos[i + 1]):
            j = idx[p]
            a, a_end = pos[j], pos[j + 1]
            b, b_end = pos[i], pos[i + 1]
            while a < a_end and b < b_end:
                steps += 1
                ka = idx[a]
                kb = idx[b]
                if ka == kb:
                    total += 1
                    a += 1
                    b += 1
                elif ka < kb:
                    a = bisect_left(idx, kb, a, a_end)
                else:
                    b = bisect_left(idx, ka, b, b_end)
    return total, steps


def dense_dot(a, b):
    """Dense elementwise dot in the same execution model; returns
    ``(value, steps)``."""
    if len(a) != len(b):
        raise DimensionError("length mismatch")
    total = 0.0
    for p in range(len(a)):
        total += a[p] * b[p]
    return total, len(a)
