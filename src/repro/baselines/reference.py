"""A reference interpreter for CIN programs.

Executes a CIN program directly — nested Python loops over *densified*
inputs — with the same semantics the compiler implements: index
modifiers, ``missing`` propagation, ``coalesce``, sieves, wheres and
multis.  It is deliberately naive; it exists to be an independently
simple oracle that every compiled kernel is checked against.
"""

import numpy as np

from repro.cin.analyze import infer_extents, output_tensors
from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    Multi,
    OffsetExpr,
    Pass,
    PermitExpr,
    Sieve,
    Where,
    WindowExpr,
)
from repro.ir.nodes import Call, Literal, Load, Var
from repro.ir.ops import MISSING
from repro.tensors.tensor import Tensor
from repro.util.errors import ReproError


class Interpreter:
    """Interprets one program; results land in ``self.results``."""

    def __init__(self, program):
        self.program = program
        self.extents = infer_extents(program)
        self.outputs = output_tensors(program)
        self.dense = {}
        self.results = {}
        for tensor in self.outputs:
            self.results[id(tensor)] = np.full(
                tensor.shape, tensor.fill,
                dtype=tensor.element.val.dtype)

    def run(self):
        self._stmt(self.program, {})
        return self

    def result_for(self, tensor):
        out = self.results[id(tensor)]
        if out.shape == ():
            return out[()]
        return out

    # -- statements -----------------------------------------------------
    def _stmt(self, stmt, env):
        if isinstance(stmt, Pass):
            return
        if isinstance(stmt, Assign):
            self._assign(stmt, env)
        elif isinstance(stmt, Forall):
            self._forall(stmt, env)
        elif isinstance(stmt, Where):
            for tensor in output_tensors(stmt.producer):
                self.results[id(tensor)].fill(tensor.fill)
            self._stmt(stmt.producer, env)
            self._stmt(stmt.consumer, env)
        elif isinstance(stmt, Multi):
            for child in stmt.stmts:
                self._stmt(child, env)
        elif isinstance(stmt, Sieve):
            if self._expr(stmt.cond, env):
                self._stmt(stmt.body, env)
        else:
            raise ReproError("cannot interpret %r" % (stmt,))

    def _forall(self, stmt, env):
        ext = stmt.ext or self.extents.get(stmt.index.name)
        if ext is None:
            raise ReproError("no extent for %r" % stmt.index.name)
        start = self._expr(ext.start, env)
        stop = self._expr(ext.stop, env)
        for value in range(start, stop):
            inner = dict(env)
            inner[stmt.index.name] = value
            self._stmt(stmt.body, inner)

    def _assign(self, stmt, env):
        value = self._expr(stmt.rhs, env)
        target = self.results[id(stmt.lhs.tensor)]
        coords = tuple(self._expr(idx, env) for idx in stmt.lhs.idxs)
        if stmt.op is None:
            target[coords] = value
        else:
            target[coords] = stmt.op.fold(target[coords].item()
                                          if hasattr(target[coords], "item")
                                          else target[coords], value)

    # -- expressions -----------------------------------------------------
    def _expr(self, expr, env):
        if isinstance(expr, Literal):
            return expr.value
        if isinstance(expr, Var):
            if expr.name not in env:
                raise ReproError("unbound variable %r" % expr.name)
            return env[expr.name]
        if isinstance(expr, Access):
            return self._access(expr, env)
        if isinstance(expr, Call):
            args = [self._expr(arg, env) for arg in expr.args]
            return expr.op.fold(*args)
        if isinstance(expr, Load):
            raise ReproError("raw loads cannot appear in source programs")
        raise ReproError("cannot interpret expression %r" % (expr,))

    def _access(self, access, env):
        tensor = access.tensor
        if not isinstance(tensor, Tensor):
            raise ReproError("interpreter requires whole-tensor accesses")
        if id(tensor) in self.results:
            dense = self.results[id(tensor)]
        else:
            if id(tensor) not in self.dense:
                self.dense[id(tensor)] = tensor.to_numpy()
            dense = self.dense[id(tensor)]
        coords = []
        for mode, idx in enumerate(access.idxs):
            value = self._index(idx, env, (0, tensor.shape[mode]))
            if value is MISSING:
                return MISSING
            coords.append(value)
        if tensor.ndim == 0:
            return dense[()] if hasattr(dense, "shape") else dense
        return dense[tuple(coords)]

    def _index(self, idx, env, domain):
        """Evaluate one index expression with modifier semantics.

        ``domain`` is the valid coordinate range in the *current*
        coordinate system (the tensor side of the modifier chain); it
        transforms as modifiers stack, exactly as the compiler
        transforms looplet extents (see ``repro.compiler.unfurl``).
        ``None`` bounds mean unbounded (inside a permit).
        """
        lo, hi = domain
        if isinstance(idx, PermitExpr):
            value = self._index(idx.base, env, (None, None))
            if value is MISSING:
                return MISSING
            if lo is not None and value < lo:
                return MISSING
            if hi is not None and value >= hi:
                return MISSING
            return value
        if isinstance(idx, OffsetExpr):
            delta = self._expr(idx.delta, env)
            inner = (None if lo is None else lo + delta,
                     None if hi is None else hi + delta)
            base = self._index(idx.base, env, inner)
            if base is MISSING:
                return MISSING
            return base - delta
        if isinstance(idx, WindowExpr):
            win_lo = self._expr(idx.lo, env)
            win_hi = self._expr(idx.hi, env)
            clip_lo = win_lo if lo is None else max(lo, win_lo)
            clip_hi = win_hi if hi is None else min(hi, win_hi)
            inner = (clip_lo - win_lo, clip_hi - win_lo)
            base = self._index(idx.base, env, inner)
            if base is MISSING:
                return MISSING
            return win_lo + base
        value = self._expr(idx, env)
        if value is MISSING:
            return MISSING
        if (lo is not None and value < lo) or (hi is not None
                                               and value >= hi):
            raise ReproError(
                "index %r out of bounds for domain [%r, %r) (use permit "
                "for padded accesses)" % (value, lo, hi))
        return value


def interpret(program):
    """Run the reference interpreter; returns the Interpreter (use
    ``result_for(tensor)`` to read outputs)."""
    return Interpreter(program).run()
