"""The Tensor: a stack of level formats plus an element level.

``Tensor([lvl0, lvl1], element)`` describes a 2-tensor whose rows are
stored by ``lvl0`` and columns by ``lvl1``.  Indexing a tensor with loop
indices produces CIN :class:`~repro.cin.nodes.Access` nodes, so tensors
participate directly in the eDSL: ``y[i] += A[i, j] * x[j]``.
"""

import numpy as np

from repro.cin.builders import access
from repro.formats.element import ElementLevel
from repro.formats.level import FiberSlice
from repro.util.errors import DimensionError, FormatError


def _normalize_fill(fill):
    """Fill values as the compiler literalizes them (numpy scalars are
    unwrapped before being baked into source)."""
    if isinstance(fill, np.generic):
        fill = fill.item()
    return (type(fill).__name__, repr(fill))


class Tensor:
    """A fiber-tree tensor (Section 4 of the paper)."""

    def __init__(self, levels, element, name=None):
        levels = list(levels)
        if not isinstance(element, ElementLevel):
            raise FormatError("tensor must terminate in an ElementLevel")
        chained = element
        for level in reversed(levels):
            if level.child is not chained:
                raise FormatError(
                    "levels must chain parent.child -> child; build "
                    "tensors innermost-out or use the constructors in "
                    "repro.tensors.construct")
            chained = level
        self.levels = tuple(levels)
        self.element = element
        self.name = name or "T"

    @property
    def ndim(self):
        return len(self.levels)

    @property
    def shape(self):
        return tuple(level.shape for level in self.levels)

    @property
    def fill(self):
        return self.element.fill_value

    @property
    def dtype(self):
        return self.element.val.dtype

    def root(self):
        """The root fiber of the tree."""
        if self.levels:
            return FiberSlice(self.levels[0], 0)
        return FiberSlice(self.element, 0)

    def __getitem__(self, idxs):
        if idxs == ():
            return access(self)
        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        if len(idxs) != self.ndim:
            raise DimensionError(
                "%s has %d modes, got %d indices"
                % (self.name, self.ndim, len(idxs)))
        return access(self, *idxs)

    def to_numpy(self):
        """Densify (tests and oracles; O(product of dims))."""
        if not self.levels:
            return self.element.val[0]
        return np.asarray(self.levels[0].fiber_to_numpy(0))

    def buffers(self):
        """All numpy arrays backing this tensor, with name hints."""
        out = {}
        for depth, level in enumerate(self.levels):
            for hint, array in level.buffers().items():
                out["lvl%d_%s" % (depth, hint)] = array
        out["val"] = self.element.val
        return out

    def kernel_buffers(self):
        """Canonical role -> buffer mapping used for kernel (re)binding.

        The keys are stable across tensors of the same format, so a
        compiled kernel's parameters can be re-pointed at another
        tensor's buffers (see :meth:`repro.compiler.kernel.Kernel.rebind`).
        """
        return self.buffers()

    def format_signature(self):
        """A hashable description of everything the compiler bakes into
        emitted code: level nesting (class per mode), per-mode shapes,
        the fill value, and the element dtype.  Two tensors with equal
        signatures are interchangeable under the same compiled kernel.
        """
        levels = tuple((type(level).__name__, level.shape)
                       for level in self.levels)
        return ("tensor", levels, str(self.dtype), _normalize_fill(self.fill))

    def __repr__(self):
        layout = "/".join(type(level).__name__.replace("Level", "")
                          for level in self.levels) or "Scalar"
        return "Tensor(%s, %s, shape=%s)" % (self.name, layout, self.shape)


class Scalar(Tensor):
    """A zero-dimensional tensor (the paper's ``C[]`` results)."""

    def __init__(self, value=0.0, name=None, dtype=np.float64):
        element = ElementLevel(np.array([value], dtype=dtype),
                               fill_value=value if value else 0.0)
        super().__init__([], element, name=name or "scalar")

    @property
    def value(self):
        return self.element.val[0].item()

    def set(self, value):
        self.element.val[0] = value

    def __repr__(self):
        return "Scalar(%s=%r)" % (self.name, self.value)
