"""Tensor format conversion.

``convert(tensor, formats)`` re-formats a tensor.  When the target's
innermost mode is dense, sparse, or rle, the conversion runs as a
*compiled copy kernel* — the source is unfurled through its looplets
and the result assembled structurally (one append per run/nonzero), so
converting an RLE image to sparse never densifies it.  Other targets
(band, vbl, packbits, bitmap, ragged) assemble from the densified
array on the host, which is exact but O(size).
"""

import repro.cin.builders as fl
from repro.ir.nodes import Var
from repro.tensors.construct import from_numpy, zeros
from repro.tensors.output import RunOutput, SparseOutput
from repro.tensors.tensor import Tensor
from repro.util.errors import FormatError

_KERNEL_TARGETS = ("dense", "sparse", "sparse_list", "rle")


def convert(tensor, formats, name=None):
    """Return a new tensor holding ``tensor``'s values in ``formats``."""
    if isinstance(formats, str):
        formats = (formats,) * tensor.ndim
    formats = tuple(formats)
    if len(formats) != tensor.ndim:
        raise FormatError("need one format per mode")
    if tensor.ndim == 0:
        raise FormatError("scalars have no formats to convert")
    name = name or getattr(tensor, "name", "T")

    inner = formats[-1]
    outer_dense = all(fmt == "dense" for fmt in formats[:-1])
    if inner in _KERNEL_TARGETS and outer_dense:
        return _convert_by_kernel(tensor, formats, name)
    return from_numpy(tensor.to_numpy(), formats, fill=tensor.fill,
                      name=name)


def _convert_by_kernel(tensor, formats, name):
    # Imported here: the compiler depends on repro.tensors, so a
    # module-level import would be circular.
    from repro.compiler.kernel import compile_kernel

    shape = tensor.shape
    fill = tensor.fill
    inner = formats[-1]
    if inner == "dense":
        out = zeros(shape, fill=fill, dtype=tensor.dtype, name=name)
    elif inner == "rle":
        out = RunOutput(shape, fill=fill, dtype=tensor.dtype, name=name)
    else:
        out = SparseOutput(shape, fill=fill, dtype=tensor.dtype,
                           name=name)

    idxs = [Var("i%d" % mode) for mode in range(tensor.ndim)]
    body = fl.store(out[tuple(idxs)], fl.access(tensor, *idxs))
    program = fl.foralls(idxs, body)
    compile_kernel(program).run()

    if isinstance(out, Tensor):
        return out
    return out.to_tensor()


def dropfills(tensor, name=None):
    """Re-compress a tensor: dense modes stay dense, the innermost mode
    becomes a sparse list holding only non-fill values."""
    formats = ("dense",) * (tensor.ndim - 1) + ("sparse",)
    return convert(tensor, formats, name=name)
