"""Tensors: fiber trees with numpy construction and densification."""

from repro.tensors.convert import convert, dropfills
from repro.tensors.construct import (
    from_numpy,
    symmetric_from_numpy,
    triangular_from_numpy,
    zeros,
)
from repro.tensors.tensor import Scalar, Tensor

__all__ = [
    "convert",
    "dropfills",
    "from_numpy",
    "symmetric_from_numpy",
    "triangular_from_numpy",
    "zeros",
    "Scalar",
    "Tensor",
]
