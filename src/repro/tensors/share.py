"""Adopt tensors into a shared-memory arena for zero-copy batching.

:func:`share_tensor` moves every buffer of a fiber-tree tensor into a
:class:`~repro.exec.shm.ShmArena` — one copy, at adoption time.  The
tensor keeps working exactly as before in this process (its levels now
hold numpy views over the arena segments), but from then on the
``processes`` executor ships it to workers as a descriptor instead of
bytes: workers map the same physical pages and rebind views, and
writes to *output* tensors land directly in the caller's buffers.

This works generically over every level format because the buffer
name hints returned by ``Level.buffers()`` are, by convention, the
level's attribute names (``pos``, ``idx``, ``val``, ...) — the same
convention the kernel binding plan relies on.

The benchmark harness adopts its datasets up front so that repeated
batches move zero tensor bytes; long-running services can do the same
for standing inputs.  Output *builders* (:class:`~repro.tensors.output.RunOutput`
and friends) hold plain-Python result streams, not ndarrays, and pass
through unchanged.
"""


def share_tensor(tensor, arena):
    """Move ``tensor``'s buffers into ``arena``; returns the tensor.

    Safe to call on any dataset member: objects without the fiber-tree
    buffer protocol (output builders) are returned untouched.
    """
    levels = getattr(tensor, "levels", None)
    element = getattr(tensor, "element", None)
    if levels is None or element is None:
        return tensor
    for level in levels:
        for hint, array in level.buffers().items():
            setattr(level, hint, arena.add(array))
    element.val = arena.add(element.val)
    return tensor


def share_dataset(tensors, arena):
    """Adopt every tensor of one dataset; returns the same
    sequence (or name->tensor mapping)."""
    members = tensors.values() if hasattr(tensors, "values") else tensors
    for tensor in members:
        share_tensor(tensor, arena)
    return tensors
