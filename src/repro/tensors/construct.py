"""Build tensors from numpy arrays, one level format per mode.

``from_numpy(arr, ("dense", "sparse"))`` scans the array and assembles
the per-level position/coordinate arrays.  Leaf-only formats (rle,
packbits) compress scalar values and therefore must be the innermost
mode.

The builders work generically over nesting: each builder consumes the
list of fiber slices produced by the level above (in position order)
and emits the slices its own stored children correspond to.
"""

import numpy as np

from repro.formats.bitmap import BitmapLevel
from repro.formats.dense import DenseLevel
from repro.formats.element import ElementLevel
from repro.formats.packbits import PackBitsLevel
from repro.formats.ragged import RaggedLevel
from repro.formats.rle import RunLengthLevel
from repro.formats.sparse_band import SparseBandLevel
from repro.formats.sparse_list import SparseListLevel
from repro.formats.vbl import SparseVBLLevel
from repro.formats.virtual import SymmetricLevel, TriangularLevel
from repro.tensors.tensor import Scalar, Tensor
from repro.util.errors import FormatError

#: minimum run length worth a PackBits run group (as in TIFF encoders).
_PACKBITS_MIN_RUN = 3


def _is_fill(slice_, fill):
    return bool(np.all(slice_ == fill))


def _build_dense(slices, dim, fill):
    children = [s[j] for s in slices for j in range(dim)]
    return {}, children


def _build_sparse(slices, dim, fill):
    pos = [0]
    idx = []
    children = []
    for s in slices:
        for j in range(dim):
            if not _is_fill(s[j], fill):
                idx.append(j)
                children.append(s[j])
        pos.append(len(idx))
    return {"pos": pos, "idx": idx}, children


def _build_band(slices, dim, fill):
    pos = [0]
    lo = []
    children = []
    for s in slices:
        stored = [j for j in range(dim) if not _is_fill(s[j], fill)]
        if stored:
            first, last = stored[0], stored[-1]
            lo.append(first)
            children.extend(s[j] for j in range(first, last + 1))
        else:
            lo.append(0)
        pos.append(len(children))
    return {"pos": pos, "lo": lo}, children


def _build_vbl(slices, dim, fill):
    pos = [0]
    end = []
    ofs = [0]
    children = []
    for s in slices:
        j = 0
        while j < dim:
            if _is_fill(s[j], fill):
                j += 1
                continue
            start = j
            while j < dim and not _is_fill(s[j], fill):
                j += 1
            end.append(j)
            children.extend(s[k] for k in range(start, j))
            ofs.append(len(children))
        pos.append(len(end))
    return {"pos": pos, "end": end, "ofs": ofs}, children


def _build_rle(slices, dim, fill):
    pos = [0]
    right = []
    children = []
    for s in slices:
        if s.ndim != 1:
            raise FormatError("rle must be the innermost mode")
        j = 0
        while j < dim:
            start = j
            while j < dim and s[j] == s[start]:
                j += 1
            right.append(j)
            children.append(s[start])
        pos.append(len(right))
    return {"pos": pos, "right": right}, children


def _build_packbits(slices, dim, fill):
    pos = [0]
    idx = []
    vof = [0]
    children = []
    for s in slices:
        if s.ndim != 1:
            raise FormatError("packbits must be the innermost mode")
        for start, stop, is_run in _packbits_groups(s, dim):
            idx.append(stop if is_run else -stop)
            if is_run:
                children.append(s[start])
            else:
                children.extend(s[j] for j in range(start, stop))
            vof.append(len(children))
        pos.append(len(idx))
    # The running end-of-values is exactly the start of the next group,
    # so the accumulated list is vof (with its sentinel) already.
    return {"pos": pos, "idx": idx, "vof": vof}, children


def _packbits_groups(s, dim):
    """Split one row into (start, stop, is_run) groups."""
    groups = []
    j = 0
    literal_start = None
    while j < dim:
        run_end = j
        while run_end < dim and s[run_end] == s[j]:
            run_end += 1
        if run_end - j >= _PACKBITS_MIN_RUN:
            if literal_start is not None:
                groups.append((literal_start, j, False))
                literal_start = None
            groups.append((j, run_end, True))
        elif literal_start is None:
            literal_start = j
        j = run_end
    if literal_start is not None:
        groups.append((literal_start, dim, False))
    return groups


def _build_bitmap(slices, dim, fill):
    tbl = []
    children = []
    for s in slices:
        for j in range(dim):
            tbl.append(not _is_fill(s[j], fill))
            children.append(s[j])
    return {"tbl": tbl}, children


def _build_ragged(slices, dim, fill):
    pos = [0]
    children = []
    for s in slices:
        width = dim
        while width > 0 and _is_fill(s[width - 1], fill):
            width -= 1
        children.extend(s[j] for j in range(width))
        pos.append(len(children))
    return {"pos": pos}, children


_BUILDERS = {
    "dense": _build_dense,
    "sparse": _build_sparse,
    "sparse_list": _build_sparse,
    "band": _build_band,
    "vbl": _build_vbl,
    "rle": _build_rle,
    "packbits": _build_packbits,
    "bitmap": _build_bitmap,
    "ragged": _build_ragged,
}


def _make_level(fmt, dim, child, spec):
    if fmt == "dense":
        return DenseLevel(dim, child)
    if fmt in ("sparse", "sparse_list"):
        return SparseListLevel(dim, child, spec["pos"], spec["idx"])
    if fmt == "band":
        return SparseBandLevel(dim, child, spec["pos"], spec["lo"])
    if fmt == "vbl":
        return SparseVBLLevel(dim, child, spec["pos"], spec["end"],
                              spec["ofs"])
    if fmt == "rle":
        return RunLengthLevel(dim, child, spec["pos"], spec["right"])
    if fmt == "packbits":
        return PackBitsLevel(dim, child, spec["pos"], spec["idx"],
                             spec["vof"])
    if fmt == "bitmap":
        return BitmapLevel(dim, child, spec["tbl"])
    if fmt == "ragged":
        return RaggedLevel(dim, child, spec["pos"])
    raise FormatError("unknown format %r" % (fmt,))


def from_numpy(arr, formats=None, fill=0.0, name=None):
    """Convert a numpy array into a fiber-tree tensor.

    ``formats`` is one name per mode (default: all dense); see
    ``repro.tensors.construct._BUILDERS`` for the available names.
    """
    arr = np.asarray(arr)
    if arr.ndim == 0:
        scalar = Scalar(0.0, name=name, dtype=arr.dtype)
        scalar.element.val[0] = arr[()]
        return scalar
    if formats is None:
        formats = ("dense",) * arr.ndim
    if isinstance(formats, str):
        formats = (formats,) * arr.ndim
    if len(formats) != arr.ndim:
        raise FormatError("need one format per mode")

    slices = [arr]
    specs = []
    for mode, fmt in enumerate(formats):
        if fmt not in _BUILDERS:
            raise FormatError("unknown format %r" % (fmt,))
        spec, slices = _BUILDERS[fmt](slices, arr.shape[mode], fill)
        specs.append((fmt, arr.shape[mode], spec))

    values = np.array([np.asarray(s)[()] for s in slices], dtype=arr.dtype)
    if len(values) == 0:
        values = np.zeros(0, dtype=arr.dtype)
    element = ElementLevel(values, fill_value=fill)

    child = element
    levels = []
    for fmt, dim, spec in reversed(specs):
        child = _make_level(fmt, dim, child, spec)
        levels.append(child)
    levels.reverse()
    return Tensor(levels, element, name=name)


def triangular_from_numpy(arr, fill=0.0, name=None):
    """Pack the lower triangle of a square array (Figure 3a)."""
    arr = np.asarray(arr)
    n = arr.shape[0]
    if arr.shape != (n, n):
        raise FormatError("triangular storage needs a square matrix")
    packed = np.concatenate([arr[i, :i + 1] for i in range(n)]) if n else (
        np.zeros(0, dtype=arr.dtype))
    element = ElementLevel(packed, fill_value=fill)
    inner = TriangularLevel(n, element)
    outer = DenseLevel(n, inner)
    return Tensor([outer, inner], element, name=name)


def symmetric_from_numpy(arr, fill=0.0, name=None):
    """Store a symmetric matrix as its packed lower triangle (Fig. 3c)."""
    arr = np.asarray(arr)
    n = arr.shape[0]
    if arr.shape != (n, n) or not np.allclose(arr, arr.T):
        raise FormatError("symmetric storage needs a symmetric matrix")
    packed = np.concatenate([arr[i, :i + 1] for i in range(n)]) if n else (
        np.zeros(0, dtype=arr.dtype))
    element = ElementLevel(packed, fill_value=fill)
    inner = SymmetricLevel(n, element)
    outer = DenseLevel(n, inner)
    return Tensor([outer, inner], element, name=name)


def zeros(shape, fill=0.0, dtype=np.float64, name=None):
    """A dense output tensor initialized to ``fill``."""
    if isinstance(shape, int):
        shape = (shape,)
    return from_numpy(np.full(shape, fill, dtype=dtype), name=name,
                      fill=fill)
