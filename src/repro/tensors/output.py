"""Structured output assembly.

Dense and scalar outputs are written in place through the locate path.
This module adds *append-style* outputs, where the kernel emits runs of
equal values instead of storing every element:

:class:`RunOutput`
    a run-length-encoded result (the paper's Figure 10 writes blended
    images as RLE).  When the compiler proves a whole region is
    assigned one constant (the run pass reduced every input to a
    scalar), it appends a single run covering the region — O(runs)
    work instead of O(pixels).

The builder is handed to the kernel as a parameter; emitted code calls
``append_run(flat_start, flat_stop, value)`` with *flattened*
coordinates (row-major), and :meth:`RunOutput.finalize` splits the run
stream back into per-fiber RLE arrays (merging adjacent equal runs).
"""

import numpy as np

from repro.formats.dense import DenseLevel
from repro.formats.element import ElementLevel
from repro.formats.rle import RunLengthLevel
from repro.tensors.tensor import Tensor
from repro.util.errors import FormatError, ReproError


class RunBuilder:
    """Mutable run stream targeted by emitted kernels."""

    def __init__(self, total, fill):
        self.total = total
        self.fill = fill
        self.ends = []
        self.values = []
        self._cursor = 0

    def reset(self):
        self.ends = []
        self.values = []
        self._cursor = 0

    def append_run(self, start, stop, value):
        """Record ``value`` over flat coordinates ``[start, stop)``.

        Appends must arrive in coordinate order; gaps are filled with
        the fill value; adjacent equal values merge.
        """
        if stop <= start:
            return
        if start < self._cursor:
            raise ReproError(
                "run appended out of order: [%d, %d) after cursor %d"
                % (start, stop, self._cursor))
        if start > self._cursor:
            self._push(start, self.fill)
        self._push(stop, value)

    def _push(self, end, value):
        if self.values and self.values[-1] == value:
            self.ends[-1] = end
        else:
            self.ends.append(end)
            self.values.append(value)
        self._cursor = end

    def close(self):
        if self._cursor < self.total:
            self._push(self.total, self.fill)


class RunOutput:
    """An output tensor assembled as run-length-encoded fibers.

    Behaves enough like a Tensor for the eDSL (``__getitem__``,
    ``shape``, ``fill``); after the kernel runs, :meth:`to_tensor`
    yields a real Dense/RunLength tensor and :meth:`to_numpy` a dense
    array.
    """

    def __init__(self, shape, fill=0.0, dtype=np.float64, name=None):
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        if not self.shape:
            raise FormatError("RunOutput needs at least one mode")
        self.fill = fill
        self.dtype = np.dtype(dtype)
        self.name = name or "R"
        total = 1
        for dim in self.shape:
            total *= dim
        self.builder = RunBuilder(total, fill)

    @property
    def ndim(self):
        return len(self.shape)

    def __getitem__(self, idxs):
        from repro.cin.builders import access

        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        if len(idxs) != self.ndim:
            raise FormatError("%s has %d modes" % (self.name, self.ndim))
        return access(self, *idxs)

    def kernel_buffers(self):
        """The builder is the only object kernels bind for RLE outputs."""
        return {"builder": self.builder}

    def format_signature(self):
        from repro.tensors.tensor import _normalize_fill

        return ("run_output", self.shape, str(self.dtype),
                _normalize_fill(self.fill))

    def finalize(self):
        """Split the flat run stream into per-row RLE arrays."""
        self.builder.close()
        inner = self.shape[-1]
        rows = self.builder.total // max(inner, 1)
        pos = [0]
        right = []
        values = []
        ends = self.builder.ends
        vals = self.builder.values
        q = 0
        for row in range(rows):
            row_end = (row + 1) * inner
            while q < len(ends) and ends[q] <= row_end:
                right.append(ends[q] - row * inner)
                values.append(vals[q])
                q += 1
            if not right or pos[-1] == len(right) or right[-1] != inner:
                # A run crosses the row boundary: split it.
                right.append(inner)
                values.append(vals[q] if q < len(ends) else self.fill)
            pos.append(len(right))
        element = ElementLevel(np.array(values or [self.fill],
                                        dtype=self.dtype)[:len(values)]
                               if values else
                               np.zeros(0, dtype=self.dtype),
                               fill_value=self.fill)
        rle = RunLengthLevel(inner, element, pos, right)
        levels = [rle]
        child = rle
        for dim in reversed(self.shape[:-1]):
            child = DenseLevel(dim, child)
            levels.insert(0, child)
        return Tensor(levels, element, name=self.name)

    def to_tensor(self):
        return self.finalize()

    def to_numpy(self):
        return self.finalize().to_numpy()

    def run_count(self):
        """Number of stored runs (work measure for RLE outputs)."""
        self.builder.close()
        return len(self.builder.ends)


class SparseBuilder:
    """Mutable coordinate stream for sparse outputs."""

    def __init__(self, total, fill):
        self.total = total
        self.fill = fill
        self.coords = []
        self.values = []

    def reset(self):
        self.coords = []
        self.values = []

    def append(self, flat, value):
        """Record a non-fill value at flat coordinate ``flat``.

        Appends must arrive in strictly increasing coordinate order
        (overwrite semantics make repeats ambiguous, so they are
        rejected rather than silently merged).
        """
        if self.coords and flat <= self.coords[-1]:
            raise ReproError(
                "sparse output coordinate %d appended out of order"
                % (flat,))
        self.coords.append(flat)
        self.values.append(value)


class SparseOutput:
    """An output tensor assembled as per-fiber sorted coordinate lists.

    The compiler guards every store with a fill check, so only non-fill
    results are appended — the classic sparse-result assembly.  After
    the kernel runs, :meth:`to_tensor` yields a Dense/.../SparseList
    tensor.
    """

    def __init__(self, shape, fill=0.0, dtype=np.float64, name=None):
        if isinstance(shape, int):
            shape = (shape,)
        self.shape = tuple(int(s) for s in shape)
        if not self.shape:
            raise FormatError("SparseOutput needs at least one mode")
        self.fill = fill
        self.dtype = np.dtype(dtype)
        self.name = name or "S"
        total = 1
        for dim in self.shape:
            total *= dim
        self.builder = SparseBuilder(total, fill)

    @property
    def ndim(self):
        return len(self.shape)

    def __getitem__(self, idxs):
        from repro.cin.builders import access

        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        if len(idxs) != self.ndim:
            raise FormatError("%s has %d modes" % (self.name, self.ndim))
        return access(self, *idxs)

    def kernel_buffers(self):
        """The builder is the only object kernels bind for sparse outputs."""
        return {"builder": self.builder}

    def format_signature(self):
        from repro.tensors.tensor import _normalize_fill

        return ("sparse_output", self.shape, str(self.dtype),
                _normalize_fill(self.fill))

    def finalize(self):
        """Split the flat coordinate stream into per-row lists."""
        from repro.formats.sparse_list import SparseListLevel

        inner = self.shape[-1]
        rows = self.builder.total // max(inner, 1)
        pos = [0]
        idx = []
        values = []
        q = 0
        coords = self.builder.coords
        vals = self.builder.values
        for row in range(rows):
            row_end = (row + 1) * inner
            while q < len(coords) and coords[q] < row_end:
                idx.append(coords[q] - row * inner)
                values.append(vals[q])
                q += 1
            pos.append(len(idx))
        element = ElementLevel(np.array(values, dtype=self.dtype)
                               if values else np.zeros(0, dtype=self.dtype),
                               fill_value=self.fill)
        sparse = SparseListLevel(inner, element, pos, idx)
        levels = [sparse]
        child = sparse
        for dim in reversed(self.shape[:-1]):
            child = DenseLevel(dim, child)
            levels.insert(0, child)
        return Tensor(levels, element, name=self.name)

    def to_tensor(self):
        return self.finalize()

    def to_numpy(self):
        return self.finalize().to_numpy()

    def nnz(self):
        """Number of stored (non-fill) entries."""
        return len(self.builder.coords)
