"""Progressive lowering of CIN programs (Section 6 of the paper).

``Lowerer.lower_stmt`` walks the CIN tree emitting target statements.
At each forall it unfurls the accesses led by that index and then
repeatedly applies the highest-priority looplet pass present in the
body (Section 6.2's style resolution):

    Switch > Run > Spike > Pipeline > Jumper > Stepper > Lookup

Each pass rewrites the loop into simpler loops over subregions,
truncating the other looplets to match, and recurses.  Statement
simplification (zero annihilation, ``a[i] += 0 => pass``) runs between
passes, which is how entire subregions of work disappear when a sparse
operand contributes a run of fill.
"""

from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    Multi,
    Pass,
    Sieve,
    Where,
    stmt_exprs,
    walk_stmts,
)
from repro.cin.analyze import output_tensors
from repro.compiler.context import element_store, fill_literal
from repro.compiler.stmt_simplify import is_identity_literal, simplify_stmt
from repro.compiler.unfurl import (
    Unfurled,
    access_leads_with,
    payload_to_expr,
    unfurl_access,
)
from repro.ir import asm, build, ops
from repro.ir.nodes import Extent, Literal, Var
from repro.looplets import (
    Jumper,
    Lookup,
    Pipeline,
    Run,
    Simplify,
    Spike,
    Stepper,
    Style,
    Switch,
    call_body,
    is_looplet,
    resolve_style,
    truncate,
)
from repro.rewrite import simplify_expr
from repro.tensors.tensor import Tensor
from repro.util.errors import LoweringError

_IDEMPOTENT_REDUCTIONS = ("min", "max", "and", "or")


# --------------------------------------------------------------------------
# Tree rewriting helpers
# --------------------------------------------------------------------------
def replace_in_expr(expr, fn):
    """Preorder expression replacement: ``fn`` returning non-None stops
    descent at that node."""
    replacement = fn(expr)
    if replacement is not None:
        return replacement
    children = expr.children()
    if not children:
        return expr
    new_children = [replace_in_expr(child, fn) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def map_stmt_exprs(stmt, fn):
    """Rebuild a CIN statement applying ``fn`` to its read expressions.

    Assignment targets are *not* mapped: outputs are written through
    the locate path, never unfurled as reads.
    """
    if isinstance(stmt, Assign):
        rhs = fn(stmt.rhs)
        if rhs is stmt.rhs:
            return stmt
        return Assign(stmt.lhs, stmt.op, rhs)
    if isinstance(stmt, Forall):
        body = map_stmt_exprs(stmt.body, fn)
        if body is stmt.body:
            return stmt
        return Forall(stmt.index, body, ext=stmt.ext)
    if isinstance(stmt, Sieve):
        cond = fn(stmt.cond)
        body = map_stmt_exprs(stmt.body, fn)
        if cond is stmt.cond and body is stmt.body:
            return stmt
        return Sieve(cond, body)
    if isinstance(stmt, Where):
        consumer = map_stmt_exprs(stmt.consumer, fn)
        producer = map_stmt_exprs(stmt.producer, fn)
        if consumer is stmt.consumer and producer is stmt.producer:
            return stmt
        return Where(consumer, producer)
    if isinstance(stmt, Multi):
        children = [map_stmt_exprs(child, fn) for child in stmt.stmts]
        if all(new is old for new, old in zip(children, stmt.stmts)):
            return stmt
        return Multi(children)
    return stmt


def collect_unfurled(stmt, index_name):
    """All Unfurled nodes tagged with ``index_name``, unique by identity."""
    seen = {}
    for node in walk_stmts(stmt):
        for expr in stmt_exprs(node):
            _collect_unfurled_expr(expr, index_name, seen)
    return list(seen.values())


def _collect_unfurled_expr(expr, index_name, seen):
    if isinstance(expr, Unfurled):
        if expr.index == index_name and id(expr) not in seen:
            seen[id(expr)] = expr
        return
    for child in expr.children():
        _collect_unfurled_expr(child, index_name, seen)


def stmt_uses_var(stmt, name):
    for node in walk_stmts(stmt):
        for expr in stmt_exprs(node):
            if name in expr.free_vars():
                return True
        if isinstance(node, Assign):
            for idx in node.lhs.idxs:
                if name in idx.free_vars():
                    return True
    return False


def ext_is_unit(ext):
    cond = simplify_expr(build.eq(build.plus(ext.start, 1), ext.stop))
    return cond == Literal(True)


def ext_is_empty(ext):
    cond = simplify_expr(build.ge(ext.start, ext.stop))
    return cond == Literal(True)


def ext_nonempty_cond(ext):
    return simplify_expr(build.lt(ext.start, ext.stop))


# --------------------------------------------------------------------------
# The lowerer
# --------------------------------------------------------------------------
class Lowerer:
    """Lowers one CIN program into target statements via a Context."""

    def __init__(self, ctx):
        self.ctx = ctx

    # -- statements ------------------------------------------------------
    def lower_stmt(self, stmt):
        stmt = simplify_stmt(stmt)
        if isinstance(stmt, Pass):
            return
        if isinstance(stmt, Assign):
            self.emit_assign(stmt)
        elif isinstance(stmt, Forall):
            self.lower_forall(stmt)
        elif isinstance(stmt, Where):
            self.lower_where(stmt)
        elif isinstance(stmt, Multi):
            for child in stmt.stmts:
                self.lower_stmt(child)
        elif isinstance(stmt, Sieve):
            self.lower_sieve(stmt)
        else:
            raise LoweringError("cannot lower statement %r" % (stmt,))

    def lower_where(self, stmt):
        for tensor in output_tensors(stmt.producer):
            self.emit_reset(tensor)
        self.lower_stmt(stmt.producer)
        self.lower_stmt(stmt.consumer)

    def lower_sieve(self, stmt):
        cond = simplify_expr(self.resolve_expr(stmt.cond))
        if isinstance(cond, Literal):
            if cond.value:
                self.lower_stmt(stmt.body)
            return
        body = self.ctx.scoped(self.lower_stmt, stmt.body)
        self.ctx.emit(asm.If([(cond, body)]))

    def emit_reset(self, tensor):
        """Initialize a result tensor as it enters scope."""
        from repro.tensors.output import RunOutput, SparseOutput

        if isinstance(tensor, (RunOutput, SparseOutput)):
            buf = self.ctx.buffer(tensor.builder, tensor.name + "_out")
            self.ctx.emit(asm.Raw("%s.reset()" % buf.name))
            return
        if tensor.ndim == 0:
            var = self.ctx.mark_scalar_output(tensor)
            self.ctx.emit(asm.AssignStmt(var, fill_literal(tensor)))
            return
        buf = self.ctx.buffer(tensor.element.val, tensor.name + "_val")
        self.ctx.emit(asm.Raw("%s.fill(%r)" % (buf.name, tensor.fill)))

    # -- foralls -----------------------------------------------------------
    def lower_forall(self, stmt):
        name = stmt.index.name
        ext = stmt.ext or self.ctx.extents.get(name)
        if ext is None:
            raise LoweringError("no extent known for index %r" % name)
        body = self._unfurl_in_stmt(stmt.body, name)
        self.lower_loop(stmt.index, ext, body)

    def _unfurl_in_stmt(self, stmt, index_name):
        cache = {}

        def transform(expr):
            if isinstance(expr, Access) and access_leads_with(expr, index_name):
                key = expr.key()
                if key not in cache:
                    cache[key] = unfurl_access(self.ctx, expr, index_name)
                return cache[key]
            return None

        return map_stmt_exprs(stmt, lambda e: replace_in_expr(e, transform))

    # -- the progressive loop lowerer -------------------------------------
    def lower_loop(self, index, ext, stmt):
        stmt = simplify_stmt(stmt)
        if isinstance(stmt, Pass) or ext_is_empty(ext):
            return
        nodes = collect_unfurled(stmt, index.name)
        style = resolve_style([node.looplet for node in nodes])
        if style == Style.SIMPLIFY:
            self.lower_simplify(index, ext, stmt, nodes)
        elif style == Style.SWITCH:
            self.lower_switch(index, ext, stmt, nodes)
        elif style == Style.RUN:
            self.lower_run(index, ext, stmt, nodes)
        elif style == Style.SPIKE:
            self.lower_spike(index, ext, stmt, nodes)
        elif style == Style.PIPELINE:
            self.lower_pipeline(index, ext, stmt, nodes)
        elif style == Style.JUMPER:
            self.lower_jumper(index, ext, stmt, nodes)
        elif style == Style.STEPPER:
            self.lower_stepper(index, ext, stmt, nodes)
        elif style == Style.LOOKUP:
            self.lower_lookup(index, ext, stmt, nodes)
        else:
            self.lower_leaf(index, ext, stmt)

    def _replace_nodes(self, stmt, mapping):
        def transform(expr):
            if isinstance(expr, Unfurled):
                return mapping.get(id(expr))
            return None

        return map_stmt_exprs(stmt, lambda e: replace_in_expr(e, transform))

    def _substituted(self, node, value):
        """An Unfurled node's replacement for a looplet-or-payload."""
        if is_looplet(value):
            return node.with_looplet(value)
        return payload_to_expr(self.ctx, value, node)

    # Simplify: a no-op trigger; lower_loop re-simplifies on entry, so
    # unwrapping and recursing is exactly "simplify as early as possible".
    def lower_simplify(self, index, ext, stmt, nodes):
        mapping = {}
        for node in nodes:
            if isinstance(node.looplet, Simplify):
                mapping[id(node)] = self._substituted(node,
                                                      node.looplet.body)
        self.lower_loop(index, ext, self._replace_nodes(stmt, mapping))

    # Switch: hoist runtime case conditions out of the loop.
    def lower_switch(self, index, ext, stmt, nodes):
        node = next(n for n in nodes if isinstance(n.looplet, Switch))
        branches = []
        for case in node.looplet.cases:
            cond = simplify_expr(case.cond)
            if cond == Literal(False):
                continue
            variant = self._replace_nodes(
                stmt, {id(node): self._substituted(node, case.body)})
            block = self.ctx.scoped(self.lower_loop, index, ext, variant)
            if cond == Literal(True):
                branches.append((None, block))
                break
            branches.append((cond, block))
        if not branches:
            return
        if branches[0][0] is None:
            self.ctx.emit(branches[0][1])
            return
        self.ctx.emit(asm.If(branches))

    # Run: unwrap constant regions into their scalar payloads.
    def lower_run(self, index, ext, stmt, nodes):
        mapping = {}
        for node in nodes:
            if isinstance(node.looplet, Run):
                mapping[id(node)] = self._substituted(node, node.looplet.body)
        self.lower_loop(index, ext, self._replace_nodes(stmt, mapping))

    # Spike: split into a body region and a unit tail region.
    def lower_spike(self, index, ext, stmt, nodes):
        body_ext = Extent(ext.start,
                          simplify_expr(build.minus(ext.stop, 1)))
        tail_ext = Extent(body_ext.stop, ext.stop)
        body_map = {}
        tail_map = {}
        for node in nodes:
            if isinstance(node.looplet, Spike):
                body_map[id(node)] = self._substituted(
                    node, Run(node.looplet.body))
                tail_map[id(node)] = self._substituted(
                    node, node.looplet.tail)
            else:
                body_map[id(node)] = self._substituted(
                    node, truncate(node.looplet, body_ext, ext))
                tail_map[id(node)] = self._substituted(
                    node, truncate(node.looplet, tail_ext, ext))

        def emit_regions():
            self.lower_loop(index, body_ext,
                            self._replace_nodes(stmt, body_map))
            self.lower_loop(index, tail_ext,
                            self._replace_nodes(stmt, tail_map))

        nonempty = ext_nonempty_cond(ext)
        if nonempty == Literal(True):
            emit_regions()
        else:
            block = self.ctx.scoped(emit_regions)
            self.ctx.emit(asm.If([(nonempty, block)]))

    # Pipeline: split the extent phase by phase.
    def lower_pipeline(self, index, ext, stmt, nodes):
        node = next(n for n in nodes if isinstance(n.looplet, Pipeline))
        phases = node.looplet.phases
        cur = Var(self.ctx.freshen(index.name + "_start"))
        self.ctx.emit(asm.AssignStmt(cur, ext.start))
        for position, phase in enumerate(phases):
            final = position == len(phases) - 1
            if final:
                p_stop = ext.stop
            else:
                p_stop = Var(self.ctx.freshen(index.name + "_stop"))
                clipped = build.maximum(
                    cur, build.minimum(phase.stride, ext.stop))
                self.ctx.emit(asm.AssignStmt(p_stop, clipped))
            phase_ext = Extent(cur, p_stop)
            declared = Extent(cur, ext.stop if final else phase.stride)
            body = call_body(phase.body, self.ctx, phase_ext)
            body = truncate(body, phase_ext, declared) if is_looplet(body) \
                else body
            mapping = {id(node): self._substituted(node, body)}
            for other in nodes:
                if other is node:
                    continue
                mapping[id(other)] = self._substituted(
                    other, truncate(other.looplet, phase_ext,
                                    Extent(cur, ext.stop)))
            variant = self._replace_nodes(stmt, mapping)
            block = self.ctx.scoped(self.lower_loop, index, phase_ext,
                                    variant)
            if not block.is_nop():
                nonempty = ext_nonempty_cond(phase_ext)
                if nonempty == Literal(True):
                    self.ctx.emit(block)
                else:
                    self.ctx.emit(asm.If([(nonempty, block)]))
            if not final:
                self.ctx.emit(asm.AssignStmt(cur, p_stop))

    # Steppers/jumpers: a while loop over child regions.
    def lower_stepper(self, index, ext, stmt, nodes):
        self._lower_coiteration(index, ext, stmt, nodes, Stepper,
                                leaders_use_max=False)

    def lower_jumper(self, index, ext, stmt, nodes):
        self._lower_coiteration(index, ext, stmt, nodes, Jumper,
                                leaders_use_max=True)

    def _lower_coiteration(self, index, ext, stmt, nodes, cls,
                           leaders_use_max):
        leaders = [n for n in nodes if isinstance(n.looplet, cls)]
        cur = Var(self.ctx.freshen(index.name + "_cur"))
        self.ctx.emit(asm.AssignStmt(cur, ext.start))
        for node in leaders:
            for piece in node.looplet.preamble(self.ctx):
                self.ctx.emit(piece)
            for piece in node.looplet.seek(self.ctx, cur):
                self.ctx.emit(piece)
            # A seek is one unit of coiteration work (a binary search).
            self.ctx.emit(self.ctx.count_op())

        def loop_body():
            # Each merge step is one unit of coiteration work.
            self.ctx.emit(self.ctx.count_op())
            stride_vars = {}
            for node in leaders:
                stride = Var(self.ctx.freshen(index.name + "_stride"))
                self.ctx.emit(asm.AssignStmt(stride, node.looplet.stride))
                stride_vars[id(node)] = stride
            if leaders_use_max:
                widest = build.maximum(*stride_vars.values())
                p_stop_expr = build.minimum(widest, ext.stop)
            else:
                p_stop_expr = build.minimum(
                    *(list(stride_vars.values()) + [ext.stop]))
            p_stop = Var(self.ctx.freshen(index.name + "_stop"))
            self.ctx.emit(asm.AssignStmt(p_stop, p_stop_expr))
            region = Extent(cur, p_stop)
            mapping = {}
            for node in nodes:
                if id(node) in stride_vars:
                    child = call_body(node.looplet.body, self.ctx, region)
                    if is_looplet(child) and not leaders_use_max:
                        child = truncate(
                            child, region,
                            Extent(cur, stride_vars[id(node)]))
                    mapping[id(node)] = self._substituted(node, child)
                else:
                    mapping[id(node)] = self._substituted(
                        node, truncate(node.looplet, region,
                                       Extent(cur, ext.stop)))
            self.lower_loop(index, region, self._replace_nodes(stmt, mapping))
            for node in leaders:
                advance = asm.Block(node.looplet.next(self.ctx))
                if advance.is_nop():
                    continue
                guard = simplify_expr(
                    build.eq(p_stop, stride_vars[id(node)]))
                if guard == Literal(True):
                    self.ctx.emit(advance)
                elif guard != Literal(False):
                    self.ctx.emit(asm.If([(guard, advance)]))
            self.ctx.emit(asm.AssignStmt(cur, p_stop))

        body = self.ctx.scoped(loop_body)
        self.ctx.emit(asm.WhileLoop(build.lt(cur, ext.stop), body))

    # Lookup: emit the for loop; element access happens per iteration.
    def lower_lookup(self, index, ext, stmt, nodes):
        if ext_is_unit(ext):
            mapping = {}
            for node in nodes:
                if isinstance(node.looplet, Lookup):
                    result = node.looplet.body(ext.start)
                    mapping[id(node)] = self._substituted(node, result)
            self.lower_loop(index, ext, self._replace_nodes(stmt, mapping))
            return
        ivar = Var(index.name)
        unit = Extent(ivar, build.plus(ivar, 1))
        body = self.ctx.scoped(self.lower_loop, index, unit, stmt)
        self.ctx.emit(asm.ForLoop(ivar, ext.start, ext.stop, body))

    # No looplets left for this index: bind or loop, with the constant-
    # loop rewrites of Figure 5 (run summation).
    def lower_leaf(self, index, ext, stmt):
        ivar = Var(index.name)
        if ext_is_unit(ext):
            if stmt_uses_var(stmt, index.name) and ext.start != ivar:
                self.ctx.emit(asm.AssignStmt(ivar, ext.start))
            self.lower_stmt(stmt)
            return
        if (isinstance(stmt, Assign) and self.ctx.constant_loop_rewrite
                and self._emit_constant_loop(index, ext, stmt)):
            return
        body = self.ctx.scoped(self.lower_stmt, stmt)
        self.ctx.emit(asm.ForLoop(ivar, ext.start, ext.stop, body))

    def _emit_constant_loop(self, index, ext, stmt):
        """``@loop i ∈ a:b  C[...] += v`` with v independent of i becomes
        a single update scaled by the trip count (Figure 5, last rule)."""
        from repro.tensors.output import RunOutput

        rhs = simplify_expr(self.resolve_expr(stmt.rhs))
        if isinstance(stmt.lhs.tensor, RunOutput):
            return self._emit_run_append(index, ext, stmt, rhs)
        from repro.tensors.output import SparseOutput

        if isinstance(stmt.lhs.tensor, SparseOutput):
            if isinstance(rhs, Literal) and not callable(rhs.value) \
                    and rhs.value == stmt.lhs.tensor.fill:
                return True  # a whole region of fill stores: no code
            return False  # per-element guarded appends
        target = self.assign_target(stmt.lhs)
        used = rhs.free_vars() | target.free_vars()
        for idx in stmt.lhs.idxs:
            used |= idx.free_vars()
        if index.name in used:
            return False
        length = simplify_expr(build.minus(ext.stop, ext.start))
        if stmt.op is not None and stmt.op.name == "add":
            scaled = simplify_expr(build.times(rhs, length))
            self.ctx.emit(asm.AccumStmt(target, stmt.op, scaled))
            self.ctx.emit(self.ctx.count_op())
            return True
        if stmt.op is not None and stmt.op.name == "mul":
            powed = simplify_expr(build.call(ops.POW, rhs, length))
            self.ctx.emit(asm.AccumStmt(target, stmt.op, powed))
            self.ctx.emit(self.ctx.count_op())
            return True
        if stmt.op is None or stmt.op.name in _IDEMPOTENT_REDUCTIONS:
            # Overwrites and idempotent reductions collapse to one step.
            single = self.ctx.scoped(self._emit_resolved_assign,
                                     stmt, target, rhs)
            nonempty = ext_nonempty_cond(ext)
            if nonempty == Literal(True):
                self.ctx.emit(single)
            else:
                self.ctx.emit(asm.If([(nonempty, single)]))
            return True
        return False

    # -- run-length output assembly (Figure 10's RLE results) -----------
    def _flat_position(self, tensor, idxs):
        """Row-major flattened coordinate of an output access."""
        pos = Literal(0)
        for dim, idx in zip(tensor.shape, idxs):
            pos = build.plus(build.times(pos, dim), idx)
        return simplify_expr(pos)

    def _emit_run_append(self, index, ext, stmt, rhs):
        """Append one run covering a whole constant region."""
        from repro.ir.pretty import expr_source

        tensor = stmt.lhs.tensor
        if stmt.op is not None:
            raise LoweringError(
                "run-length outputs support overwrite assignment only")
        if stmt.lhs.idxs[-1].name != index.name:
            return False
        for idx in stmt.lhs.idxs[:-1]:
            if index.name in idx.free_vars():
                return False
        if index.name in rhs.free_vars():
            return False
        buf = self.ctx.buffer(tensor.builder, tensor.name + "_out")
        start = self._flat_position(
            tensor, list(stmt.lhs.idxs[:-1]) + [ext.start])
        stop = self._flat_position(
            tensor, list(stmt.lhs.idxs[:-1]) + [ext.stop])
        self.ctx.emit(asm.Raw("%s.append_run(%s, %s, %s)" % (
            buf.name, expr_source(start), expr_source(stop),
            expr_source(rhs))))
        self.ctx.emit(self.ctx.count_op())
        return True

    def _emit_point_append(self, stmt, rhs):
        """Append a single-element run (non-constant positions)."""
        from repro.ir.pretty import expr_source

        tensor = stmt.lhs.tensor
        if stmt.op is not None:
            raise LoweringError(
                "run-length outputs support overwrite assignment only")
        buf = self.ctx.buffer(tensor.builder, tensor.name + "_out")
        flat = self._flat_position(tensor, stmt.lhs.idxs)
        source = expr_source(flat)
        self.ctx.emit(asm.Raw("%s.append_run(%s, %s + 1, %s)" % (
            buf.name, source, source, expr_source(rhs))))
        self.ctx.emit(self.ctx.count_op())

    def _emit_sparse_append(self, stmt, rhs):
        """Append one coordinate to a sparse output, guarded on fill."""
        from repro.ir.pretty import expr_source

        tensor = stmt.lhs.tensor
        if stmt.op is not None:
            raise LoweringError(
                "sparse outputs support overwrite assignment only")
        if isinstance(rhs, Literal) and not callable(rhs.value) \
                and rhs.value == tensor.fill:
            # Statically-fill stores are elided entirely: the whole
            # point of sparse assembly.
            return
        buf = self.ctx.buffer(tensor.builder, tensor.name + "_out")
        flat = self._flat_position(tensor, stmt.lhs.idxs)
        value = Var(self.ctx.freshen(tensor.name + "_v"))
        self.ctx.emit(asm.AssignStmt(value, rhs))
        guard = build.ne(value, Literal(tensor.fill))
        append = asm.Block([
            asm.Raw("%s.append(%s, %s)" % (buf.name, expr_source(flat),
                                           value.name)),
            self.ctx.count_op(),
        ])
        self.ctx.emit(asm.If([(guard, append)]))

    # -- assignments ---------------------------------------------------
    def emit_assign(self, stmt):
        from repro.tensors.output import RunOutput, SparseOutput

        rhs = simplify_expr(self.resolve_expr(stmt.rhs))
        if is_identity_literal(rhs, stmt.op):
            return
        if isinstance(stmt.lhs.tensor, RunOutput):
            self._emit_point_append(stmt, rhs)
            return
        if isinstance(stmt.lhs.tensor, SparseOutput):
            self._emit_sparse_append(stmt, rhs)
            return
        target = self.assign_target(stmt.lhs)
        self._emit_resolved_assign(stmt, target, rhs)

    def _emit_resolved_assign(self, stmt, target, rhs):
        if stmt.op is None:
            self.ctx.emit(asm.AssignStmt(target, rhs))
        else:
            self.ctx.emit(asm.AccumStmt(target, stmt.op, rhs))
        self.ctx.emit(self.ctx.count_op())

    def assign_target(self, access):
        tensor = access.tensor
        if not isinstance(tensor, Tensor):
            raise LoweringError("outputs must be Tensors, got %r"
                                % (tensor,))
        if tensor.ndim == 0:
            return self.ctx.mark_scalar_output(tensor)
        pos = Literal(0)
        for level, idx in zip(tensor.levels, access.idxs):
            pos = level.locate(self.ctx, pos, idx)
        return element_store(self.ctx, tensor,
                             simplify_expr(pos))

    def resolve_expr(self, expr):
        def transform(node):
            if isinstance(node, Access):
                if isinstance(node.tensor, Tensor) and node.tensor.ndim == 0:
                    return self.ctx.scalar_ref(node.tensor)
                raise LoweringError(
                    "access %r was never unfurled; check that loop order "
                    "matches the access's mode order" % (node,))
            if isinstance(node, Unfurled):
                raise LoweringError(
                    "unlowered looplet remained in a scalar position: %r"
                    % (node,))
            return None

        return replace_in_expr(expr, transform)
