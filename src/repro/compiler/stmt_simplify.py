"""Statement-level simplification (the statement rules of Figure 5).

Applied after every substitution round during lowering, so that (for
example) a region where one operand is a run of zeros annihilates the
whole multiply, the assignment becomes ``a[i] += 0 => @pass(a)``, and
the enclosing loop over a pass disappears — this is how sparsity skips
work in the paper's progressive-lowering story.
"""

from repro.cin.nodes import Assign, Forall, Multi, Pass, Sieve, Where
from repro.cin.analyze import output_tensors
from repro.ir.nodes import Literal
from repro.rewrite import simplify_expr


def simplify_stmt(stmt, rules=None):
    """Simplify a CIN statement tree; may return a Pass."""
    if isinstance(stmt, Assign):
        return _simplify_assign(stmt, rules)
    if isinstance(stmt, Forall):
        body = simplify_stmt(stmt.body, rules)
        if isinstance(body, Pass):
            return body
        if body is stmt.body:
            return stmt
        return Forall(stmt.index, body, ext=stmt.ext)
    if isinstance(stmt, Sieve):
        return _simplify_sieve(stmt, rules)
    if isinstance(stmt, Where):
        consumer = simplify_stmt(stmt.consumer, rules)
        producer = simplify_stmt(stmt.producer, rules)
        if isinstance(consumer, Pass):
            # The where's result is its consumer's; nothing to do.
            return consumer
        if isinstance(producer, Pass):
            return consumer
        if consumer is stmt.consumer and producer is stmt.producer:
            return stmt
        return Where(consumer, producer)
    if isinstance(stmt, Multi):
        children = [simplify_stmt(child, rules) for child in stmt.stmts]
        live = [child for child in children if not isinstance(child, Pass)]
        if not live:
            return Pass(output_tensors(stmt))
        if len(live) == len(stmt.stmts) and all(
                new is old for new, old in zip(children, stmt.stmts)):
            return stmt
        return Multi(live)
    return stmt


def is_identity_literal(expr, op):
    """True when ``expr`` is a literal equal in value to ``op``'s
    identity (0 == 0.0 == False for addition, etc.)."""
    return (op is not None and op.identity is not None
            and isinstance(expr, Literal)
            and not callable(expr.value)
            and type(expr.value) in (bool, int, float)
            and expr.value == op.identity)


def _simplify_assign(stmt, rules):
    rhs = _simplify(stmt.rhs, rules)
    if is_identity_literal(rhs, stmt.op):
        # a[i] += 0  =>  @pass(a)
        return Pass([stmt.lhs.tensor])
    if rhs is stmt.rhs:
        return stmt
    return Assign(stmt.lhs, stmt.op, rhs)


def _simplify_sieve(stmt, rules):
    cond = _simplify(stmt.cond, rules)
    if isinstance(cond, Literal):
        if cond.value:
            return simplify_stmt(stmt.body, rules)
        return Pass(output_tensors(stmt.body))
    body = simplify_stmt(stmt.body, rules)
    if isinstance(body, Pass):
        return body
    if cond is stmt.cond and body is stmt.body:
        return stmt
    return Sieve(cond, body)


def _simplify(expr, rules):
    if rules is None:
        return simplify_expr(expr)
    return simplify_expr(expr, rules)
