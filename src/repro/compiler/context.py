"""Compilation context: name supply, buffer binding, code emission.

One :class:`Context` lives for the duration of one kernel compilation.
Formats and lowering passes use it to

* allocate fresh runtime variable names (``freshen``),
* bind numpy arrays as kernel parameters (``buffer``),
* emit statements into the current block (``emit`` / ``scope``), and
* resolve scalar (0-dimensional) tensors to local accumulator
  variables.
"""

import contextlib

import numpy as np

from repro.ir import asm
from repro.ir.nodes import Literal, Load, Var
from repro.util.errors import LoweringError
from repro.util.namer import Namer


class Context:
    """Mutable state threaded through one kernel compilation."""

    def __init__(self, instrument=False, constant_loop_rewrite=True):
        self.namer = Namer()
        self.instrument = instrument
        # Figure 5's last rule (sum a constant region in O(1)); exposed
        # as a toggle so the ablation benchmarks can switch it off.
        self.constant_loop_rewrite = constant_loop_rewrite
        self._buffers = {}          # id(array) -> (name, array)
        self._buffer_order = []     # names in binding order
        self._plan = []             # (slot, role) or None, in binding order
        self._slot_roles = {}       # id(buffer) -> (slot, role)
        self._scalars = {}          # id(tensor) -> (Var, tensor, writeback)
        self._scalar_order = []
        self._blocks = [[]]
        self.extents = {}
        self.ops_var = Var(self.namer.fresh("_ops"))

    # -- names ---------------------------------------------------------
    def freshen(self, hint):
        return self.namer.fresh(hint)

    # -- buffers --------------------------------------------------------
    def register_tensors(self, tensors):
        """Declare the program's tensors as binding *slots*.

        Every buffer a tensor exposes through ``kernel_buffers`` is
        mapped back to ``(slot, role)``, so :meth:`binding_plan` can
        later tell the kernel how to rebind its positional arguments to
        a fresh set of tensors of the same formats.
        """
        from repro.cin.analyze import tensor_binding_buffers

        for slot, tensor in enumerate(tensors):
            for role, buf in tensor_binding_buffers(tensor).items():
                self._slot_roles.setdefault(id(buf), (slot, role))

    def buffer(self, array, hint="buf"):
        """Bind ``array`` as a kernel parameter; returns its Var."""
        key = id(array)
        if key not in self._buffers:
            name = self.namer.fresh(hint)
            self._buffers[key] = (name, array)
            self._buffer_order.append(key)
            self._plan.append(self._slot_roles.get(key))
        return Var(self._buffers[key][0])

    def bound_buffers(self):
        """``(name, array)`` pairs in binding order."""
        return [self._buffers[key] for key in self._buffer_order]

    def binding_plan(self):
        """Per-parameter ``(slot, role)`` entries, in binding order.

        ``None`` marks a buffer bound outside the tensor protocol
        (e.g. by a custom format's unfurl function); such parameters
        keep their compile-time binding when the kernel is rebound.
        """
        return tuple(self._plan)

    # -- scalar tensors ---------------------------------------------------
    def scalar_ref(self, tensor):
        """The local accumulator Var standing in for a 0-dim tensor."""
        key = id(tensor)
        if key not in self._scalars:
            var = Var(self.namer.fresh(tensor.name + "_acc"))
            self._scalars[key] = (var, tensor, False)
            self._scalar_order.append(key)
        return self._scalars[key][0]

    def mark_scalar_output(self, tensor):
        var = self.scalar_ref(tensor)
        key = id(tensor)
        _, tensor, _ = self._scalars[key]
        self._scalars[key] = (var, tensor, True)
        return var

    def scalar_bindings(self):
        """``(var, tensor, is_output)`` triples in first-use order."""
        return [self._scalars[key] for key in self._scalar_order]

    # -- emission ---------------------------------------------------------
    def emit(self, stmt):
        if stmt is not None:
            self._blocks[-1].append(stmt)

    @contextlib.contextmanager
    def scope(self):
        """Collect emitted statements into a separate block."""
        self._blocks.append([])
        try:
            yield
        finally:
            stmts = self._blocks.pop()
            self._last_scope = asm.Block(stmts)

    def scoped(self, fn, *args, **kwargs):
        """Run ``fn`` with emission redirected; return the Block."""
        with self.scope():
            fn(*args, **kwargs)
        return self._last_scope

    def current_block(self):
        return asm.Block(self._blocks[-1])

    def take_block(self):
        if len(self._blocks) != 1:
            raise LoweringError("unbalanced emission scopes")
        stmts = self._blocks[0]
        self._blocks = [[]]
        return asm.Block(stmts)

    # -- instrumentation ---------------------------------------------------
    def count_op(self):
        """Statement incrementing the work counter (or None)."""
        if not self.instrument:
            return None
        from repro.ir import ops

        return asm.AccumStmt(self.ops_var, ops.ADD, Literal(1))


def fill_literal(tensor):
    """The fill value of a tensor as an IR literal."""
    fill = tensor.fill
    if isinstance(fill, np.generic):
        fill = fill.item()
    return Literal(fill)


def element_store(ctx, tensor, pos):
    """Assignment target ``val[pos]`` for a tensor's element level."""
    buf = ctx.buffer(tensor.element.val, tensor.name + "_val")
    return Load(buf, pos)
