"""The Finch compiler: unfurling, progressive lowering, kernels."""

from repro.compiler.context import Context
from repro.compiler.kernel import (
    CompiledKernel,
    Kernel,
    KernelCache,
    compile_kernel,
    execute,
    kernel_cache,
)
from repro.compiler.lower import Lowerer
from repro.compiler.unfurl import Unfurled, unfurl_access

__all__ = [
    "CompiledKernel",
    "Context",
    "Kernel",
    "KernelCache",
    "compile_kernel",
    "execute",
    "kernel_cache",
    "Lowerer",
    "Unfurled",
    "unfurl_access",
]
