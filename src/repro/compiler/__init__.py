"""The Finch compiler: unfurling, progressive lowering, kernels."""

from repro.compiler.context import Context
from repro.compiler.kernel import Kernel, compile_kernel, execute
from repro.compiler.lower import Lowerer
from repro.compiler.unfurl import Unfurled, unfurl_access

__all__ = [
    "Context",
    "Kernel",
    "compile_kernel",
    "execute",
    "Lowerer",
    "Unfurled",
    "unfurl_access",
]
