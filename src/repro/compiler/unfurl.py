"""Unfurling: turning tensor accesses into looplet nests.

At each forall, every access whose *leading* unconsumed index is the
forall's index is unfurled: the tensor's level produces a looplet nest
(under the access's declared protocol), the Section 8 index modifiers
wrap it (shift for ``offset``, truncate+shift for ``window``, a
missing-padded pipeline for ``permit``), and the access is replaced in
the expression tree by an :class:`Unfurled` leaf tagged with the index.

When lowering later reaches a leaf payload, :func:`payload_to_expr`
turns it back into either a scalar load (element level reached) or a
new Access on the child fiber, to be unfurled by an inner forall.
"""

from repro.cin.nodes import Access, OffsetExpr, PermitExpr, WindowExpr
from repro.formats.level import FiberSlice, FillFiber
from repro.ir import build
from repro.ir.nodes import Expr, Extent, Literal, Var
from repro.ir.ops import MISSING
from repro.looplets import (
    Phase,
    Pipeline,
    Run,
    is_looplet,
    shift_looplet,
    truncate,
)
from repro.tensors.tensor import Tensor
from repro.util.errors import LoweringError


class Unfurled(Expr):
    """A looplet standing where an access used to be.

    ``index`` names the forall this node belongs to; ``rest`` and
    ``protocols`` describe the access's remaining (inner) modes.
    """

    __slots__ = ("looplet", "index", "rest", "protocols")

    def __init__(self, looplet, index, rest=(), protocols=()):
        self.looplet = looplet
        self.index = index
        self.rest = tuple(rest)
        self.protocols = tuple(protocols)

    def key(self):
        return ("unfurled", id(self))

    def children(self):
        return ()

    def rebuild(self, children):
        return self

    def with_looplet(self, looplet):
        return Unfurled(looplet, self.index, self.rest, self.protocols)

    def __repr__(self):
        return "Unfurled(%r @ %s)" % (self.looplet, self.index)


def leading_base(idx):
    """The plain Var at the bottom of an index-modifier chain, if any."""
    while isinstance(idx, (OffsetExpr, WindowExpr, PermitExpr)):
        idx = idx.base
    return idx if isinstance(idx, Var) else None


def access_leads_with(access, index_name):
    base = leading_base(access.idxs[0]) if access.idxs else None
    return base is not None and base.name == index_name


def unfurl_access(ctx, access, index_name):
    """Unfurl one access at the forall binding ``index_name``."""
    looplet, domain = _unfurl_core(ctx, access)
    looplet, domain = _apply_modifiers(ctx, looplet, domain, access.idxs[0])
    return Unfurled(looplet, index_name, access.idxs[1:],
                    access.protocols[1:])


def _unfurl_core(ctx, access):
    """Unfurl the tensor/fiber behind an access, before modifiers."""
    proto = access.protocols[0]
    target = access.tensor
    if isinstance(target, Tensor):
        if target.ndim == 0:
            raise LoweringError("cannot iterate a 0-dimensional tensor")
        level = target.levels[0]
        looplet = level.unfurl(ctx, Literal(0), proto)
        domain = Extent(0, level.shape)
    elif isinstance(target, (FiberSlice, FillFiber)):
        looplet = target.unfurl(ctx, proto)
        shape = getattr(target.level, "shape", None)
        domain = Extent(0, shape if shape is not None else 0)
    elif hasattr(target, "unfurl_root"):
        # User-defined looplet formats (repro.formats.custom).
        looplet = target.unfurl_root(ctx, proto)
        domain = Extent(0, target.shape[0])
    else:
        raise LoweringError("cannot unfurl %r" % (target,))
    return looplet, domain


def _apply_modifiers(ctx, looplet, domain, idx):
    """Wrap ``looplet`` with the access's index modifiers, outermost
    modifier first (closest to the tensor)."""
    chain = []
    node = idx
    while isinstance(node, (OffsetExpr, WindowExpr, PermitExpr)):
        chain.append(node)
        node = node.base
    if not isinstance(node, Var):
        raise LoweringError(
            "opaque index expression %r; use a sieve to express scatters"
            % (idx,))
    for modifier in chain:
        if isinstance(modifier, PermitExpr):
            looplet, domain = _apply_permit(looplet, domain)
        elif isinstance(modifier, OffsetExpr):
            looplet, domain = _apply_offset(looplet, domain, modifier.delta)
        else:
            looplet, domain = _apply_window(looplet, domain,
                                            modifier.lo, modifier.hi)
    return looplet, domain


def _apply_permit(looplet, domain):
    wrapped = Pipeline([
        Phase(Run(Literal(MISSING)), stride=domain.start),
        Phase(looplet, stride=domain.stop),
        Phase(Run(Literal(MISSING))),
    ])
    # The permitted access is valid everywhere; the caller's loop extent
    # bounds it in practice.
    return wrapped, None


def _apply_offset(looplet, domain, delta):
    shifted = shift_looplet(looplet, delta)
    if domain is None:
        return shifted, None
    return shifted, Extent(build.plus(domain.start, delta),
                           build.plus(domain.stop, delta))


def _apply_window(looplet, domain, lo, hi):
    if domain is None:
        raise LoweringError("cannot window an unbounded (permit) access")
    clipped = truncate(looplet, Extent(lo, hi), domain)
    shifted = shift_looplet(clipped, build.negate(lo))
    return shifted, Extent(0, build.minus(hi, lo))


def payload_to_expr(ctx, payload, unfurled):
    """Convert a leaf payload back into an expression.

    Terminal payloads become scalar loads; deeper fibers become fresh
    Access nodes carrying the unfurled access's remaining indices.
    """
    if is_looplet(payload):
        raise LoweringError("payload is still a looplet: %r" % (payload,))
    if isinstance(payload, (FiberSlice, FillFiber)):
        if unfurled.rest:
            return Access(payload, unfurled.rest, unfurled.protocols)
        if not payload.is_scalar():
            raise LoweringError(
                "access consumed all indices but the fiber is not "
                "terminal: %r" % (payload,))
        return payload.scalar(ctx)
    if isinstance(payload, Expr):
        if unfurled.rest:
            if payload == Literal(MISSING):
                # A[missing] is missing at every deeper mode (Sec. 8).
                return payload
            raise LoweringError(
                "scalar payload %r cannot satisfy remaining indices %r"
                % (payload, unfurled.rest))
        return payload
    raise LoweringError("unrecognized payload %r" % (payload,))
