"""The frozen compile-options bundle: one object for the kwarg sprawl.

``compile_kernel``/``execute``/``run_batch`` historically grew four
parallel keyword arguments (``cache=``, ``opt_level=``, ``backend=``,
``tune=``) plus the remote-service axis; :class:`CompileOptions`
collapses them into one immutable value that can be built once and
threaded everywhere (``options=``) — the batch engine, the workers,
and the autotuner all pass the same object instead of re-plumbing each
knob individually.  The individual kwargs survive as sugar: any
non-None kwarg overrides the corresponding field of the ``options=``
object it rides along with, preserving the package-wide precedence
rule (per-call kwarg > ``fl.configure`` > ``FL_*`` env > default —
see :mod:`repro.util.config`).

Every field defaults to None, meaning *unresolved*: resolution —
against the configure/env layers — happens inside ``compile_kernel``,
so one ``CompileOptions`` value stays environment-independent and can
be shared between processes with different configuration.
"""

from dataclasses import dataclass, fields, replace

__all__ = ["BACKENDS", "CACHE_MODES", "TUNE_MODES", "CompileOptions"]

#: Backend names ``compile_kernel`` accepts: ``"python"`` ``exec``s
#: emitted Python source, ``"c"`` compiles the same optimized target IR
#: to a per-kernel shared object (falling back to python per kernel
#: for constructs the C emitter does not cover, or when no C compiler
#: is installed — see :mod:`repro.codegen`).
BACKENDS = ("python", "c")

#: The values the ``cache`` option accepts: ``True`` uses every
#: configured tier (memory LRU, then the on-disk store, then the
#: remote kernel service), ``"memory"``/``"disk"`` restrict to one
#: local tier, ``False`` always compiles fresh and touches no cache.
CACHE_MODES = (True, False, "memory", "disk")

#: The values the ``tune`` option accepts: ``"off"`` compiles the
#: program exactly as written, ``"apply"`` consults the persisted
#: autotuner winners table (:mod:`repro.tune`) and compiles the
#: winning schedule when one is on record.
TUNE_MODES = ("off", "apply")


@dataclass(frozen=True)
class CompileOptions:
    """One compile configuration, immutable and hashable.

    Fields left at None are *unresolved* and fall through to the
    ``fl.configure``/``FL_*``-environment layers when the compile
    actually runs:

    ``cache``
        One of :data:`CACHE_MODES` (None resolves to ``True``).
    ``opt_level``
        Optimizer level 0/1/2 (None resolves to ``FL_KERNEL_OPT_LEVEL``,
        then the compiler default).
    ``backend``
        One of :data:`BACKENDS` (None resolves to ``FL_KERNEL_BACKEND``,
        then ``"python"``).
    ``tune``
        One of :data:`TUNE_MODES` (None resolves to ``FL_KERNEL_TUNE``,
        then ``"off"``).
    ``remote``
        Base URL of the remote kernel service read-through tier (None
        resolves to ``FL_SERVICE_URL``; ``False`` disables the remote
        tier for this compile even when one is configured).
    ``store``
        The disk tier for this compile: a ``KernelStore``, a directory
        path, ``False`` to disable the disk tier, or None to resolve
        the active store (``fl.configure(store_path=...)`` /
        ``FL_KERNEL_STORE``).

    Build one directly, or let the sugar kwargs build it for you —
    ``compile_kernel(p, backend="c")`` and ``compile_kernel(p,
    options=CompileOptions(backend="c"))`` are the same call.  A sugar
    kwarg passed *alongside* ``options=`` overrides that one field
    (:meth:`merged`).
    """

    cache: object = None
    opt_level: object = None
    backend: object = None
    tune: object = None
    remote: object = None
    store: object = None

    def __post_init__(self):
        if self.cache is not None and not any(
                self.cache is mode for mode in CACHE_MODES):
            # Identity comparison: `1 in (True, ...)` would pass by
            # equality and then silently disable every tier below.
            raise ValueError(
                "cache must be True, False, 'memory', or 'disk'; "
                "got %r" % (self.cache,))
        if self.backend is not None and self.backend not in BACKENDS:
            raise ValueError(
                "backend must be one of %s; got %r"
                % ("/".join(BACKENDS), self.backend))
        if self.tune is not None and self.tune not in TUNE_MODES:
            raise ValueError(
                "tune must be one of %s; got %r"
                % ("/".join(TUNE_MODES), self.tune))
        if self.opt_level is not None:
            object.__setattr__(self, "opt_level", int(self.opt_level))

    def merged(self, **overrides):
        """A new options value with the non-None ``overrides`` fields
        replaced — how per-call sugar kwargs win over an ``options=``
        object without mutating it.  ``False`` is a real value
        (``cache=False``, ``remote=False``) and overrides; only None
        means "keep mine"."""
        updates = {key: value for key, value in overrides.items()
                   if value is not None}
        return replace(self, **updates) if updates else self

    @classmethod
    def build(cls, options=None, **sugar):
        """The effective options for one call: ``options=`` (or a
        fresh default) with the sugar kwargs merged over it."""
        if options is None:
            options = cls()
        elif not isinstance(options, cls):
            raise TypeError(
                "options must be a CompileOptions, got %r"
                % type(options).__name__)
        return options.merged(**sugar)

    def to_dict(self):
        """The options as a plain dict (JSON-safe for the str/int/bool
        fields; ``store`` may hold a live ``KernelStore``)."""
        return {field.name: getattr(self, field.name)
                for field in fields(self)}
