"""Kernel assembly: compile a CIN program to an executable Python
function.

``compile_kernel`` analyzes the program, lowers it, wraps the emitted
statements in a function whose parameters are the bound numpy buffers,
``exec``s the source, and returns a :class:`Kernel` ready to run (and
re-run) against the tensors it was compiled for.

Scalar (0-dimensional) tensors are optimized into local accumulator
variables, loaded once in the preamble and written back at the end.

With ``instrument=True`` the emitted kernel counts every executed
update, giving a deterministic work measure used by the benchmark
harness alongside wall-clock time.
"""

from repro.cin.analyze import check_program, infer_extents, output_tensors
from repro.compiler.context import Context
from repro.compiler.lower import Lowerer
from repro.ir import asm, emit
from repro.ir.nodes import Literal, Load
from repro.ir.runtime import kernel_globals


class Kernel:
    """A compiled CIN program bound to its tensors."""

    def __init__(self, fn, args, source, program, outputs, instrument):
        self._fn = fn
        self._args = args
        self.source = source
        self.program = program
        self.outputs = outputs
        self.instrument = instrument

    def run(self):
        """Execute the kernel; returns the op count when instrumented."""
        result = self._fn(*self._args)
        return result if self.instrument else None

    def __call__(self):
        return self.run()


def compile_kernel(program, instrument=False, name="kernel",
                   constant_loop_rewrite=True):
    """Compile one CIN program into a :class:`Kernel`."""
    check_program(program)
    ctx = Context(instrument=instrument,
                  constant_loop_rewrite=constant_loop_rewrite)
    ctx.extents = infer_extents(program)
    outputs = output_tensors(program)

    lowerer = Lowerer(ctx)
    for tensor in outputs:
        lowerer.emit_reset(tensor)
    lowerer.lower_stmt(program)
    body = ctx.take_block()

    preamble = []
    epilogue = []
    if instrument:
        preamble.append(asm.AssignStmt(ctx.ops_var, Literal(0)))
    for var, tensor, is_output in ctx.scalar_bindings():
        buf = ctx.buffer(tensor.element.val, tensor.name + "_val")
        preamble.append(asm.AssignStmt(var, Load(buf, Literal(0))))
        if is_output:
            epilogue.append(asm.AssignStmt(Load(buf, Literal(0)), var))

    params = [name_ for name_, _ in ctx.bound_buffers()]
    returns = (ctx.ops_var.name,) if instrument else ()
    func = asm.FuncDef(name, params,
                       asm.Block(preamble + [body] + epilogue),
                       returns=returns)
    source = emit(func)
    namespace = kernel_globals()
    exec(compile(source, "<repro-kernel>", "exec"), namespace)
    args = [array for _, array in ctx.bound_buffers()]
    return Kernel(namespace[name], args, source, program, outputs,
                  instrument)


def execute(program, instrument=False):
    """Compile and run a program once.

    Returns the op count when instrumented, else None.  Results land in
    the program's output tensors.
    """
    return compile_kernel(program, instrument=instrument).run()
