"""Kernel assembly: compile a CIN program to an executable Python
function, once per program *structure*.

Compilation is decoupled from data.  ``compile_kernel`` analyzes the
program, lowers it, wraps the emitted statements in a function whose
parameters are the bound buffers, and ``exec``s the source — but the
result of all that work is a :class:`CompiledKernel` *artifact* that
depends only on the program's structural key (tree shape plus each
tensor's format signature; see
:func:`repro.cin.analyze.structural_key`), never on the concrete
arrays.  The artifact records a *binding plan* mapping every kernel
parameter to a ``(slot, role)`` pair — slot = the tensor's position in
first-use order, role = which of its buffers (``lvl0_pos``, ``val``,
``builder``, ...) — so the same artifact can be re-bound to any
tensors with matching signatures.

The compile-once/run-many lifecycle::

    kernel = compile_kernel(program)   # miss: lower + emit + exec
    kernel.run()                       # run against the bound tensors
    kernel.rebind({"A": other_A})      # re-point a slot at new data
    kernel.run()
    kernel.run(A=third_A)              # or override for a single call

Artifacts live in a process-wide LRU :class:`KernelCache` keyed by
``(structural_key, instrument, name, constant_loop_rewrite,
opt_level)``.  A
second ``compile_kernel``/``execute`` of a structurally-identical
program — same tree, same formats, fresh data — skips lowering,
emission, and ``exec`` entirely and just rebinds the cached artifact
(``cache=False`` opts out).  ``KernelCache.stats()`` exposes hit/miss
counters; the benchmark harness prints them alongside compile and run
times to show the amortization.

Buffers bound outside the tensor protocol (a custom format's unfurl
closure calling ``ctx.buffer`` on arrays its ``kernel_buffers`` does
not report) get a ``None`` plan entry and keep their compile-time
binding forever; such tensors are identity-pinned by their format
signature, so a cached artifact is never rebound across distinct
custom tensors.

Scalar (0-dimensional) tensors are optimized into local accumulator
variables, loaded once in the preamble and written back at the end.

With ``instrument=True`` the emitted kernel counts every executed
update, giving a deterministic work measure used by the benchmark
harness alongside wall-clock time.
"""

import os
import threading
import time
from collections import OrderedDict

import numpy as np

from repro.cin.analyze import (
    buffer_alias_groups,
    check_program,
    infer_extents,
    output_tensors,
    program_tensors,
    structural_key,
    tensor_binding_buffers,
    tensor_signature,
)
from repro.compiler.context import Context
from repro.compiler.lower import Lowerer
from repro.ir import asm, emit
from repro.ir.nodes import Literal, Load
from repro.ir.optimize import DEFAULT_OPT_LEVEL, optimize_kernel
from repro.ir.runtime import kernel_globals
from repro.util.errors import BindingError, SpecError

#: Version tag of the serialized-artifact format (see
#: :meth:`CompiledKernel.to_spec`); bumped whenever the spec layout
#: changes incompatibly.
#: Version 2 added ``constant_loop_rewrite``: the flag changes what
#: lowering emits, so any consumer keying artifacts by spec content
#: (the on-disk kernel store) needs it carried in the spec itself.
#: Version 3 added the backend axis: ``backend`` (the requested
#: backend), ``c_source`` (the generated C translation unit, or None
#: when the C emitter fell back), and ``c_param_dtypes`` (per-parameter
#: numpy dtype names the C entry validates bindings against).  Specs
#: stay JSON-safe: the shared object itself never rides in a spec —
#: receivers recompile from the carried C source (or load the store's
#: ``.so`` sibling when one is present).
SPEC_VERSION = 3

# The option vocabulary (BACKENDS / CACHE_MODES / TUNE_MODES) and the
# frozen CompileOptions bundle live in repro.compiler.options; they are
# re-exported here because this module historically defined them.
from repro.compiler.options import (  # noqa: F401  (re-exports)
    BACKENDS,
    CACHE_MODES,
    TUNE_MODES,
    CompileOptions,
)


def _plain(value):
    """``value`` with nested tuples rewritten as lists (JSON-safe)."""
    if isinstance(value, tuple):
        return [_plain(item) for item in value]
    if isinstance(value, list):
        return [_plain(item) for item in value]
    return value


def _frozen(value):
    """The inverse of :func:`_plain`: nested lists back to tuples."""
    if isinstance(value, (list, tuple)):
        return tuple(_frozen(item) for item in value)
    return value


def normalize_backend(backend):
    """Resolve a ``backend`` argument to a validated backend name.

    ``None`` falls through the package precedence rule
    (``fl.configure(backend=...)``, then ``FL_KERNEL_BACKEND``,
    default ``"python"`` — see :mod:`repro.util.config`), so a whole
    process — or a whole CI job — can be flipped to the C backend
    without touching call sites.
    """
    from repro.util import config

    backend = config.resolve("backend", override=backend)
    if backend not in BACKENDS:
        raise ValueError(
            "backend must be one of %s; got %r"
            % ("/".join(BACKENDS), backend))
    return backend


def normalize_tune(tune):
    """Resolve a ``tune`` argument to a validated tune mode.

    ``None`` falls through the package precedence rule
    (``fl.configure(tune=...)``, then ``FL_KERNEL_TUNE``, default
    ``"off"`` — see :mod:`repro.util.config`), so a whole process —
    or a whole CI job — can be flipped onto the tuned schedules
    without touching call sites.
    """
    from repro.util import config

    tune = config.resolve("tune", override=tune)
    if tune not in TUNE_MODES:
        raise ValueError(
            "tune must be one of %s; got %r"
            % ("/".join(TUNE_MODES), tune))
    return tune


class CompiledKernel:
    """The data-independent artifact of one compilation.

    Holds the executable function, its source, the binding plan, and
    the per-slot format signatures needed to validate rebinds.  Shared
    (via the cache) between every :class:`Kernel` with the same
    structure; itself immutable after construction.
    """

    __slots__ = ("fn", "name", "source", "raw_source", "opt_level",
                 "plan", "seed_args", "seed_tensors", "signatures",
                 "alias_groups", "instrument", "compile_seconds",
                 "structural_key", "slot_names", "constant_loop_rewrite",
                 "backend", "c_source", "c_param_dtypes", "so_path")

    def __init__(self, fn, name, source, raw_source, opt_level, plan,
                 seed_args, seed_tensors, signatures, alias_groups,
                 instrument, compile_seconds, structural_key=None,
                 slot_names=None, constant_loop_rewrite=True,
                 backend="python", c_source=None, c_param_dtypes=None,
                 c_fn=None, so_path=None):
        # ``fn`` is the *active* entry point: the C wrapper when the C
        # backend produced one, the exec'd Python function otherwise.
        # Both take the same positional buffers, so every runner
        # (Kernel.run, the batch workers) stays backend-agnostic.
        self.fn = c_fn if c_fn is not None else fn
        self.backend = backend
        self.c_source = c_source
        self.c_param_dtypes = (None if c_param_dtypes is None
                               else list(c_param_dtypes))
        self.so_path = so_path if c_fn is not None else None
        self.name = name
        self.source = source
        self.raw_source = raw_source
        self.opt_level = opt_level
        self.plan = plan
        self.seed_args = seed_args
        self.seed_tensors = seed_tensors
        self.signatures = signatures
        self.alias_groups = alias_groups
        self.instrument = instrument
        self.compile_seconds = compile_seconds
        self.structural_key = structural_key
        self.slot_names = tuple(slot_names) if slot_names \
            else ("?",) * len(signatures)
        self.constant_loop_rewrite = bool(constant_loop_rewrite)

    @property
    def effective_backend(self):
        """The backend actually executing: ``"c"`` only when a native
        entry point is live in this process.  May differ from
        :attr:`backend` (the *requested* backend) after an emitter
        fallback or on a machine without a C toolchain."""
        return "c" if self.so_path is not None else "python"

    def to_spec(self, slot_names=None):
        """The artifact as a plain, JSON-serializable dict.

        The spec carries everything a fresh process needs to rebuild
        an equivalent artifact — the optimized source, the binding
        plan, the per-slot format signatures, and the structural key —
        but never the compiled function object or any bound data.
        :meth:`from_spec` re-``exec``\\ s the source on the other side,
        so the function itself never crosses a process boundary.

        ``slot_names`` overrides the display names carried in the spec
        and in error messages.  The artifact's own stored names come
        from whichever binding *compiled* it; a cache-hit kernel is
        bound to different tensors, so callers that know their current
        binding (:meth:`Kernel.to_spec`, the batch engine) pass the
        live names instead.

        Raises :class:`~repro.util.errors.SpecError` for kernels that
        cannot leave the process: those whose binding plan pins
        compile-time buffers (custom formats binding arrays outside
        the tensor protocol) and those whose signatures are keyed by
        object identity (opaque tensors).
        """
        if slot_names is None:
            slot_names = self.slot_names
        else:
            slot_names = tuple(slot_names)
        if any(entry is None for entry in self.plan):
            raise SpecError(
                "kernel %r binds buffers outside the tensor protocol "
                "(a custom format called ctx.buffer directly); such "
                "kernels are pinned to their compile-time data and "
                "cannot be serialized" % self.name,
                structural_key=self.structural_key,
                slot_names=slot_names)
        if self.seed_tensors:
            raise SpecError(
                "kernel %r has identity-keyed tensor signatures; an "
                "identity cannot be rebuilt in another process, so "
                "the artifact cannot be serialized" % self.name,
                structural_key=self.structural_key,
                slot_names=slot_names)
        return {
            "spec_version": SPEC_VERSION,
            "name": self.name,
            "source": self.source,
            "raw_source": self.raw_source,
            "backend": self.backend,
            "c_source": self.c_source,
            "c_param_dtypes": self.c_param_dtypes,
            "opt_level": self.opt_level,
            "plan": _plain(self.plan),
            "signatures": _plain(self.signatures),
            "alias_groups": _plain(self.alias_groups),
            "instrument": self.instrument,
            "constant_loop_rewrite": self.constant_loop_rewrite,
            "compile_seconds": self.compile_seconds,
            "structural_key": _plain(self.structural_key),
            "slot_names": list(slot_names),
        }

    @classmethod
    def from_spec(cls, spec, so_path=None):
        """Rebuild an artifact from :meth:`to_spec` output.

        Re-``exec``\\ s the serialized source against a fresh kernel
        namespace (the only non-declarative step), and freezes the
        plan/signature lists back into the tuple forms ``bind``
        compares against.  The result is rebindable to any tensors
        whose signatures match, exactly like the original.

        A spec carrying C source is recompiled on load (memoized per
        process by source digest); ``so_path`` — the kernel store's
        persisted shared object — is tried first, and any failure
        (missing toolchain, foreign or truncated ``.so``) degrades to
        the python backend with a logged fallback, never an error.
        """
        version = spec.get("spec_version")
        if version != SPEC_VERSION:
            raise SpecError(
                "kernel spec version %r is not supported (expected %d)"
                % (version, SPEC_VERSION))
        namespace = kernel_globals()
        exec(compile(spec["source"], "<repro-kernel-spec>", "exec"),
             namespace)
        plan = _frozen(spec["plan"])
        backend = spec.get("backend", "python")
        c_source = spec.get("c_source")
        c_fn = built_path = None
        if backend == "c" and c_source:
            import repro.codegen as codegen

            try:
                c_fn, built_path = codegen.kernel_entry(
                    c_source, spec["name"], spec["c_param_dtypes"],
                    so_path=so_path)
            except codegen.ToolchainError as exc:
                codegen.note_fallback(spec["name"], str(exc))
        return cls(
            fn=namespace[spec["name"]],
            name=spec["name"],
            source=spec["source"],
            raw_source=spec["raw_source"],
            backend=backend,
            c_source=c_source,
            c_param_dtypes=spec.get("c_param_dtypes"),
            c_fn=c_fn,
            so_path=built_path,
            opt_level=spec["opt_level"],
            plan=plan,
            seed_args=(None,) * len(plan),
            seed_tensors=(),
            signatures=_frozen(spec["signatures"]),
            alias_groups=_frozen(spec["alias_groups"]),
            instrument=spec["instrument"],
            compile_seconds=spec["compile_seconds"],
            structural_key=_frozen(spec["structural_key"]),
            slot_names=spec.get("slot_names"),
            constant_loop_rewrite=spec["constant_loop_rewrite"],
        )

    def validate(self, tensors):
        """Check that ``tensors`` fill every slot with matching format
        signatures; raises :class:`BindingError` otherwise.

        The shared fail-fast half of :meth:`bind`, also used by the
        batch engine to reject bad datasets before dispatching any
        work.
        """
        if len(tensors) != len(self.signatures):
            raise BindingError(
                "kernel has %d tensor slots, got %d tensors"
                % (len(self.signatures), len(tensors)))
        for slot, (tensor, expected) in enumerate(
                zip(tensors, self.signatures)):
            actual = tensor_signature(tensor)
            if actual != expected:
                raise BindingError(
                    "slot %d (%s): format signature %r does not match "
                    "the compiled kernel's %r"
                    % (slot, getattr(tensor, "name", "?"), actual,
                       expected))

    def bind(self, tensors):
        """Positional kernel arguments for ``tensors`` (one per slot).

        Validates format signatures and the buffer-aliasing pattern,
        then resolves every plan entry to the new tensor's buffer.
        """
        tensors = list(tensors)
        self.validate(tensors)
        roles = [tensor_binding_buffers(tensor) for tensor in tensors]
        for group in self.alias_groups:
            distinct = {id(roles[slot][role]) for slot, role in group}
            if len(distinct) != 1:
                raise BindingError(
                    "buffers %s shared one array at compile time but "
                    "the new tensors bind distinct arrays" % (group,))
        args = []
        seen = {}  # id(buffer) -> (slot, role): rejects new aliasing
        for entry, seed in zip(self.plan, self.seed_args):
            if entry is None:
                args.append(seed)
                continue
            slot, role = entry
            buf = roles[slot][role]
            # Distinct parameters were distinct arrays at compile time
            # (aliased buffers collapse into one parameter), so any
            # aliasing between parameters here is new — the emitted
            # code assumes separate storage (e.g. output resets would
            # wipe inputs).
            other = seen.setdefault(id(buf), entry)
            if other != entry:
                raise BindingError(
                    "slots %s and %s bind one array, but the kernel "
                    "was compiled for distinct buffers; use distinct "
                    "arrays or recompile with the shared tensors"
                    % (other, entry))
            args.append(buf)
        return args


class Kernel:
    """A compiled CIN program bound to tensors — a cheap, rebindable
    view over a shared :class:`CompiledKernel` artifact."""

    def __init__(self, artifact, tensors, program, from_cache=False,
                 tuned=False):
        self._artifact = artifact
        self._tensors = list(tensors)
        self._args = artifact.bind(self._tensors)
        self.program = program
        self.from_cache = from_cache
        #: True when the autotuner's winners table rewrote the program
        #: (``compile_kernel(..., tune="apply")`` with a hit).
        self.tuned = tuned
        self._output_slots = tuple(
            next(slot for slot, t in enumerate(self._tensors)
                 if t is out)
            for out in output_tensors(program))

    @property
    def artifact(self):
        """The shared :class:`CompiledKernel` behind this view."""
        return self._artifact

    def to_spec(self):
        """Serialize the underlying artifact; see
        :meth:`CompiledKernel.to_spec`.

        The spec (and any :class:`SpecError`) names the tensors of
        *this* binding — the shared artifact may have been compiled
        against differently named tensors before a cache hit rebound
        it here.
        """
        return self._artifact.to_spec(
            slot_names=tuple(getattr(t, "name", "?")
                             for t in self._tensors))

    @property
    def source(self):
        """The emitted source actually executed (post-optimization)."""
        return self._artifact.source

    @property
    def raw_source(self):
        """The source as lowered, before the optimizer pipeline ran.

        Equal to :attr:`source` at ``opt_level=0``.  Diffing the two
        shows exactly what the optimizer did to this kernel.
        """
        return self._artifact.raw_source

    @property
    def opt_level(self):
        return self._artifact.opt_level

    @property
    def backend(self):
        """The backend this kernel was compiled *for* (cache-key axis)."""
        return self._artifact.backend

    @property
    def effective_backend(self):
        """The backend actually executing; ``"python"`` after a C
        fallback (unsupported construct or no toolchain)."""
        return self._artifact.effective_backend

    @property
    def c_source(self):
        """The generated C99 source, or None (python backend or
        fallback before emission)."""
        return self._artifact.c_source

    @property
    def so_path(self):
        """Path of the compiled shared object, or None (python
        backend, or C fallback before the toolchain ran)."""
        return self._artifact.so_path

    @property
    def instrument(self):
        return self._artifact.instrument

    @property
    def compile_seconds(self):
        """Wall-clock seconds spent lowering/emitting this artifact."""
        return self._artifact.compile_seconds

    @property
    def output_slots(self):
        """Slot positions of the output tensors, in first-write order."""
        return self._output_slots

    @property
    def outputs(self):
        """The currently-bound output tensors, in first-write order."""
        return [self._tensors[slot] for slot in self._output_slots]

    @property
    def tensors(self):
        """The currently-bound tensors, in slot (first-use) order."""
        return list(self._tensors)

    def run(self, **overrides):
        """Execute the kernel; returns the op count when instrumented.

        Keyword arguments override bindings by tensor name for this
        call only: ``kernel.run(A=other_A)`` executes against
        ``other_A`` without changing the kernel's stored binding.
        """
        if overrides:
            tensors = self._with_overrides(overrides)
            result = self._artifact.fn(*self._artifact.bind(tensors))
        else:
            result = self._artifact.fn(*self._args)
        return result if self.instrument else None

    def rebind(self, tensors=None, **named):
        """Persistently re-point binding slots at new tensors.

        ``tensors`` may be a full slot-ordered sequence or a mapping of
        tensor names to replacements; keyword arguments are shorthand
        for the mapping form.  Replacements must have the same format
        signature as the tensors they replace.  Returns ``self``.
        """
        if tensors is None:
            replacement = self._with_overrides(dict(named))
        elif isinstance(tensors, dict):
            mapping = dict(tensors)
            mapping.update(named)
            replacement = self._with_overrides(mapping)
        else:
            if named:
                raise BindingError(
                    "pass either a full tensor sequence or name "
                    "overrides, not both")
            replacement = list(tensors)
        self._args = self._artifact.bind(replacement)
        self._tensors = replacement
        return self

    def _with_overrides(self, mapping):
        """The slot list with named slots replaced."""
        return resolve_name_overrides(self._tensors, mapping)

    def __call__(self, **overrides):
        return self.run(**overrides)


def resolve_name_overrides(template, mapping):
    """``template`` (a slot-ordered tensor list) with named slots
    replaced per ``mapping``.

    Shared by :meth:`Kernel.rebind`/:meth:`Kernel.run` overrides and
    the batch engine's per-dataset resolution
    (:func:`repro.exec.batch.run_batch`): a name must resolve to
    exactly one slot, otherwise a full slot-ordered sequence is
    required.
    """
    by_name = {}
    for slot, tensor in enumerate(template):
        by_name.setdefault(getattr(tensor, "name", None),
                           []).append(slot)
    tensors = list(template)
    for name, replacement in mapping.items():
        slots = by_name.get(name, [])
        if not slots:
            raise BindingError(
                "no tensor named %r bound by this kernel (have: %s)"
                % (name, ", ".join(sorted(
                    str(n) for n in by_name))))
        if len(slots) > 1:
            raise BindingError(
                "tensor name %r is bound to %d slots; rebind with "
                "a full tensor sequence instead"
                % (name, len(slots)))
        tensors[slots[0]] = replacement
    return tensors


class KernelCache:
    """A process-wide, thread-safe LRU cache of compiled artifacts.

    Keys are ``(structural_key, instrument, name,
    constant_loop_rewrite, opt_level)``; values are :class:`CompiledKernel`
    artifacts.  ``maxsize`` bounds the number of artifacts; the least
    recently used entry is evicted first.  ``stats()`` reports hits,
    misses, evictions, and occupancy.
    """

    def __init__(self, maxsize=256):
        self._lock = threading.RLock()
        self._entries = OrderedDict()
        self._maxsize = int(maxsize)
        self._hits = 0
        self._misses = 0
        self._evictions = 0

    @property
    def maxsize(self):
        return self._maxsize

    def lookup(self, key):
        """The cached artifact for ``key``, or None (counts a miss)."""
        with self._lock:
            artifact = self._entries.get(key)
            if artifact is None:
                self._misses += 1
                return None
            self._entries.move_to_end(key)
            self._hits += 1
            return artifact

    def store(self, key, artifact):
        with self._lock:
            if self._maxsize <= 0:
                return
            self._entries[key] = artifact
            self._entries.move_to_end(key)
            while len(self._entries) > self._maxsize:
                self._entries.popitem(last=False)
                self._evictions += 1

    def resize(self, maxsize):
        """Change the size cap, evicting LRU entries if shrinking."""
        with self._lock:
            self._maxsize = int(maxsize)
            while len(self._entries) > max(self._maxsize, 0):
                self._entries.popitem(last=False)
                self._evictions += 1

    def clear(self):
        """Drop all entries and reset the statistics counters."""
        with self._lock:
            self._entries.clear()
            self._hits = 0
            self._misses = 0
            self._evictions = 0

    def stats(self):
        with self._lock:
            return {
                "hits": self._hits,
                "misses": self._misses,
                "evictions": self._evictions,
                "size": len(self._entries),
                "maxsize": self._maxsize,
            }

    def __len__(self):
        with self._lock:
            return len(self._entries)

    def __contains__(self, key):
        with self._lock:
            return key in self._entries


def memory_cache_key(structural_key, instrument, name,
                     constant_loop_rewrite, opt_level,
                     backend="python"):
    """The :data:`KERNEL_CACHE` key for one compile configuration.

    The single definition of the key shape, shared by
    ``compile_kernel`` and every out-of-band cache warmer
    (:func:`repro.store.pack.load_pack`) — the two must never drift,
    or pre-warmed entries silently stop hitting.  ``backend`` is the
    *requested* backend: a C kernel that fell back to python still
    occupies the ``"c"`` slot, so flipping the backend can never serve
    a stale artifact from the other axis.
    """
    return (structural_key, bool(instrument), name,
            bool(constant_loop_rewrite), int(opt_level), str(backend))


def artifact_cache_key(artifact):
    """:func:`memory_cache_key` of a live :class:`CompiledKernel`."""
    return memory_cache_key(
        artifact.structural_key, artifact.instrument, artifact.name,
        artifact.constant_loop_rewrite, artifact.opt_level,
        artifact.backend)


#: The process-wide artifact cache used by ``compile_kernel``.
KERNEL_CACHE = KernelCache()


def kernel_cache():
    """The process-wide :class:`KernelCache`."""
    return KERNEL_CACHE


def _compile_artifact(program, tensors, instrument, name,
                      constant_loop_rewrite, opt_level,
                      structural_key=None, backend="python"):
    """Lower, optimize, emit, and exec one program; package the
    artifact.

    With ``backend="c"`` the optimized target AST is additionally
    lowered to C99 and compiled into a shared object
    (:mod:`repro.codegen`); the python function is always built too —
    it is the fallback entry and the reference the differential tests
    compare against."""
    start = time.perf_counter()
    ctx = Context(instrument=instrument,
                  constant_loop_rewrite=constant_loop_rewrite)
    ctx.register_tensors(tensors)
    ctx.extents = infer_extents(program)
    outputs = output_tensors(program)

    lowerer = Lowerer(ctx)
    for tensor in outputs:
        lowerer.emit_reset(tensor)
    lowerer.lower_stmt(program)
    body = ctx.take_block()

    preamble = []
    epilogue = []
    if instrument:
        preamble.append(asm.AssignStmt(ctx.ops_var, Literal(0)))
    for var, tensor, is_output in ctx.scalar_bindings():
        buf = ctx.buffer(tensor.element.val, tensor.name + "_val")
        preamble.append(asm.AssignStmt(var, Load(buf, Literal(0))))
        if is_output:
            epilogue.append(asm.AssignStmt(Load(buf, Literal(0)), var))

    params = [name_ for name_, _ in ctx.bound_buffers()]
    returns = (ctx.ops_var.name,) if instrument else ()
    func = asm.FuncDef(name, params,
                       asm.Block(preamble + [body] + epilogue),
                       returns=returns)
    raw_source = emit(func)
    if opt_level > 0:
        func = optimize_kernel(func, opt_level)
        source = emit(func)
    else:
        source = raw_source
    namespace = kernel_globals()
    exec(compile(source, "<repro-kernel>", "exec"), namespace)

    c_source = None
    c_param_dtypes = None
    c_fn = None
    so_path = None
    if backend == "c":
        from repro import codegen

        try:
            dtype_map = {}
            for pname, array in ctx.bound_buffers():
                if not isinstance(array, np.ndarray):
                    raise codegen.CUnsupportedError(
                        "parameter %r is %r, not an ndarray"
                        % (pname, type(array).__name__))
                dtype_map[pname] = str(array.dtype)
            c_source = codegen.emit_c(func, dtype_map)
            c_param_dtypes = [dtype_map[p] for p in func.params]
        except codegen.CUnsupportedError as exc:
            codegen.note_fallback(name, str(exc))
            c_source = None
            c_param_dtypes = None
        if c_source is not None:
            try:
                c_fn, so_path = codegen.kernel_entry(
                    c_source, name, c_param_dtypes)
            except codegen.ToolchainError as exc:
                # Keep the C source in the artifact: another process
                # loading this spec may have a working toolchain.
                codegen.note_fallback(name, str(exc))

    plan = ctx.binding_plan()
    # Keep first-run buffers only where rebinding can never replace
    # them (None plan entries); rebindable parameters must not pin
    # their seed data in the process-wide cache.
    seed_args = tuple(
        array if entry is None else None
        for entry, (_, array) in zip(plan, ctx.bound_buffers()))
    signatures = tuple(tensor_signature(t) for t in tensors)
    return CompiledKernel(
        fn=namespace[name],
        name=name,
        source=source,
        raw_source=raw_source,
        opt_level=opt_level,
        plan=plan,
        seed_args=seed_args,
        # Pin only identity-keyed tensors: their format signatures
        # embed id(tensor), which must stay unrecycled for as long as
        # the artifact can be looked up.
        seed_tensors=tuple(
            tensor for tensor, sig in zip(tensors, signatures)
            if _identity_pinned(tensor, sig)),
        signatures=signatures,
        alias_groups=buffer_alias_groups(tensors),
        instrument=instrument,
        compile_seconds=time.perf_counter() - start,
        structural_key=structural_key,
        slot_names=tuple(getattr(t, "name", "?") for t in tensors),
        constant_loop_rewrite=constant_loop_rewrite,
        backend=backend,
        c_source=c_source,
        c_param_dtypes=c_param_dtypes,
        c_fn=c_fn,
        so_path=so_path,
    )


def _identity_pinned(tensor, signature):
    """True when ``signature`` embeds ``id(tensor)`` (opaque or custom
    tensors), which then must outlive the artifact."""
    target = id(tensor)

    def contains(part):
        if isinstance(part, tuple):
            return any(contains(item) for item in part)
        return part == target

    return contains(signature)


def _artifact_from_remote(spec, so_bytes, store, meta):
    """Materialize a remote-tier hit: rebuild the fetched spec (with
    its ``.so`` sidecar bytes, when the service had one) and
    write-behind into the local disk tier.  Returns None when the
    fetched spec does not rebuild — the wire equivalent of a
    quarantined entry, read as a miss."""
    import tempfile

    tmp = None
    try:
        if so_bytes:
            fd, tmp = tempfile.mkstemp(suffix=".so",
                                       prefix="fl-remote-")
            with os.fdopen(fd, "wb") as handle:
                handle.write(so_bytes)
        try:
            artifact = CompiledKernel.from_spec(spec, so_path=tmp)
        except Exception:
            return None
        if store is not None:
            store.save_spec(meta, spec,
                            so_path=artifact.so_path or tmp)
        return artifact
    finally:
        if tmp is not None:
            try:
                # Safe even while the artifact holds the dlopened
                # handle: the inode outlives the unlink.
                os.remove(tmp)
            except OSError:
                pass


def compile_kernel(program, instrument=False, name="kernel",
                   constant_loop_rewrite=True, cache=None,
                   opt_level=None, backend=None, tune=None,
                   remote=None, store=None, options=None):
    """Compile one CIN program into a :class:`Kernel`.

    The compile configuration is one :class:`CompileOptions` value:
    pass it as ``options=``, or use the individual keyword arguments
    (``cache=``, ``opt_level=``, ``backend=``, ``tune=``, ``remote=``,
    ``store=``) as sugar — a kwarg passed alongside ``options=``
    overrides that one field.  Fields left unset resolve through the
    package precedence rule (per-call kwarg > ``fl.configure`` >
    ``FL_*`` env > default; see :mod:`repro.util.config`).

    With ``cache=True`` (the resolved default) the compiled artifact
    is looked up in — and stored into — every configured cache tier:
    the process-wide :class:`KernelCache` first, then the persistent
    on-disk :class:`~repro.store.KernelStore` (``fl.configure(
    store_path=...)`` / ``FL_KERNEL_STORE``; re-point per call with
    ``store=``), then the remote kernel service
    (:mod:`repro.service`; ``fl.configure(service_url=...)`` /
    ``FL_SERVICE_URL`` / ``remote=``).  A disk or remote hit rebuilds
    the artifact from its serialized spec and promotes it into the
    tiers above; a full miss compiles fresh and writes the artifact
    behind into every tier (the remote push rides an async
    server-side compile queue).  An unreachable service degrades to
    the local tiers with a warn-once log line — the remote tier can
    never fail a compile.  ``cache="memory"`` and ``cache="disk"``
    restrict the lookup to one local tier (the remote tier
    participates only in full ``cache=True`` operation), and
    ``cache=False`` always compiles fresh and leaves every cache (and
    its statistics) untouched.

    ``opt_level`` selects the target-IR optimizer pipeline
    (:mod:`repro.ir.optimize`): 0 emits the lowered code untouched, 1
    runs the scalar passes (constant folding, dead code, LICM, CSE),
    and 2 — the default — adds dense-loop vectorization to numpy
    slice operations.  The level is part of the cache key, so kernels
    compiled at different levels never share an artifact.

    ``backend`` selects how the optimized kernel is executed:
    ``"python"`` (the default) ``exec``s the emitted Python source,
    ``"c"`` additionally lowers the same optimized target AST to C99,
    compiles it into a per-kernel shared object, and calls it through
    :mod:`ctypes` (releasing the GIL during each call).  ``None``
    reads the ``FL_KERNEL_BACKEND`` environment variable, defaulting
    to ``"python"``.  Kernels the C emitter cannot express —
    vectorized numpy slice ops, output builders, buffers outside
    int64/float64/bool — and environments with no C compiler fall
    back to the
    python backend loudly but gracefully (one warning per distinct
    reason; see :func:`repro.codegen.fallback_events`); the resulting
    :class:`Kernel` reports the request as ``.backend`` and the
    reality as ``.effective_backend``.  The backend joins
    ``opt_level`` in every cache key, so the two backends never share
    an artifact slot.

    ``tune="apply"`` consults the persisted autotuner winners table
    (:mod:`repro.tune`) before compiling: a hit rewrites the program's
    access protocols to the winning schedule and — only where the
    caller left them ``None`` — adopts the winning ``opt_level`` and
    ``backend``; a miss compiles the program exactly as written.  The
    rewritten program has its own structural key, so the winning
    variant occupies its own cache/store slot (zero extra compiles in
    a process whose store already holds the winner's artifact).
    ``None`` reads the ``FL_KERNEL_TUNE`` environment variable,
    defaulting to ``"off"``.  The returned kernel reports a table hit
    as ``.tuned``.
    """
    check_program(program)
    opts = CompileOptions.build(options, cache=cache,
                                opt_level=opt_level, backend=backend,
                                tune=tune, remote=remote, store=store)
    tune = normalize_tune(opts.tune)
    opt_level = opts.opt_level
    backend = opts.backend
    tuned = False
    if tune == "apply":
        # Imported lazily: repro.tune compiles candidates through this
        # module, so a top-level import would be circular.
        from repro import tune as _tune

        tuning = _tune.lookup_schedule(
            program, constant_loop_rewrite=constant_loop_rewrite)
        if tuning is not None:
            program = _tune.apply_schedule(program, tuning)
            # Explicit caller arguments always win over the table —
            # and the table (a measured decision) wins over the
            # configure/env layers (static ones).
            if opt_level is None:
                opt_level = tuning.get("opt_level")
            if backend is None:
                backend = tuning.get("backend")
            tuned = True
    tensors = program_tensors(program)
    from repro.util import config as _config

    opt_level = _config.resolve("opt_level", override=opt_level)
    if opt_level is None:
        opt_level = DEFAULT_OPT_LEVEL
    opt_level = int(opt_level)
    backend = normalize_backend(backend)
    cache = True if opts.cache is None else opts.cache
    # Identity comparison: `1 in (True, ...)` would pass by equality
    # and then silently disable every tier below.
    if not any(cache is mode for mode in CACHE_MODES):
        raise ValueError(
            "cache must be True, False, 'memory', or 'disk'; got %r"
            % (cache,))
    use_memory = cache is True or cache == "memory"
    use_disk = cache is True or cache == "disk"
    # The remote tier participates only in full read-through mode: a
    # caller narrowing to one local tier is asking for locality.
    use_remote = cache is True
    skey = structural_key(program)
    key = None
    if use_memory:
        key = memory_cache_key(skey, instrument, name,
                               constant_loop_rewrite, opt_level,
                               backend)
        artifact = KERNEL_CACHE.lookup(key)
        if artifact is not None:
            return Kernel(artifact, tensors, program, from_cache=True,
                          tuned=tuned)
    store = None
    meta = None
    if use_disk:
        # Imported lazily: repro.store rebuilds artifacts through this
        # module, so a top-level import would be circular.
        from repro.store import resolve_store

        store = resolve_store(opts.store)
        if store is not None:
            meta = store.key_meta(
                skey, instrument=bool(instrument), name=name,
                constant_loop_rewrite=bool(constant_loop_rewrite),
                opt_level=opt_level, backend=backend)
            artifact = store.load_artifact(meta)
            if artifact is not None:
                if key is not None:
                    KERNEL_CACHE.store(key, artifact)
                return Kernel(artifact, tensors, program,
                              from_cache=True, tuned=tuned)
    client = None
    if use_remote:
        from repro.service.client import active_client

        client = active_client(opts.remote)
        if client is not None:
            if meta is None:
                from repro.store.disk import store_key_meta

                meta = store_key_meta(
                    skey, instrument=bool(instrument), name=name,
                    constant_loop_rewrite=bool(constant_loop_rewrite),
                    opt_level=opt_level, backend=backend)
            fetched = client.fetch(meta)
            if fetched is not None:
                artifact = _artifact_from_remote(
                    fetched[0], fetched[1], store, meta)
                if artifact is not None:
                    if key is not None:
                        KERNEL_CACHE.store(key, artifact)
                    return Kernel(artifact, tensors, program,
                                  from_cache=True, tuned=tuned)
    artifact = _compile_artifact(program, tensors, instrument, name,
                                 constant_loop_rewrite, opt_level,
                                 structural_key=skey, backend=backend)
    if key is not None:
        KERNEL_CACHE.store(key, artifact)
    if store is not None or client is not None:
        # Write-behind: persists the spec for future processes (and
        # pushes it to the fleet service's async compile queue); a
        # kernel that cannot leave the process (SpecError) is simply
        # not persisted.
        try:
            spec = artifact.to_spec()
        except SpecError:
            spec = None
        if spec is not None:
            if store is not None:
                store.save_spec(meta, spec, so_path=artifact.so_path)
            if client is not None:
                client.push(meta, spec)
    return Kernel(artifact, tensors, program, tuned=tuned)


def execute(program, instrument=False, cache=None, opt_level=None,
            backend=None, options=None):
    """Compile and run a program once.

    Returns the op count when instrumented, else None.  Results land in
    the program's output tensors.  Routed through the kernel cache, so
    executing the same program structure repeatedly pays for lowering
    only once.  ``backend`` selects ``"python"`` or ``"c"`` kernel
    execution (``None`` reads ``fl.configure(backend=...)`` then
    ``FL_KERNEL_BACKEND``); ``options`` takes a whole
    :class:`CompileOptions` bundle.  See :func:`compile_kernel` for
    cache-key and fallback semantics.
    """
    return compile_kernel(program, instrument=instrument, cache=cache,
                          opt_level=opt_level, backend=backend,
                          options=options).run()
