"""Looplet base definitions and lowering styles.

A looplet is an abstract description of structure in a sequence of
values over a target extent (Figure 2 of the paper).  Each looplet kind
declares a *style*; the compiler resolves which lowering pass to run by
taking the highest-priority style present in a loop body (Section 6.2):

    Switch > Run > Spike > Pipeline > Jumper > Stepper > Lookup

Leaf positions in a looplet ("payloads") are either scalar IR
expressions or opaque handles to deeper fibers (``FiberSlice`` objects
from :mod:`repro.formats`); the compiler decides which.
"""

from repro.ir.nodes import Expr
from repro.util.errors import LoweringError


class Style:
    """Lowering-pass styles, ordered by descending priority."""

    SIMPLIFY = 80
    SWITCH = 70
    RUN = 60
    SPIKE = 50
    PIPELINE = 40
    JUMPER = 30
    STEPPER = 20
    LOOKUP = 10
    SCALAR = 0

    NAMES = {
        80: "simplify",
        70: "switch",
        60: "run",
        50: "spike",
        40: "pipeline",
        30: "jumper",
        20: "stepper",
        10: "lookup",
        0: "scalar",
    }


class Looplet:
    """Base class for looplets."""

    STYLE = Style.SCALAR

    def style(self):
        return self.STYLE

    def style_name(self):
        return Style.NAMES[self.style()]


def is_looplet(value):
    return isinstance(value, Looplet)


def style_of(value):
    """The style of a looplet or payload.

    Scalar expressions and fiber handles carry the bottom style: they
    impose no constraints on how the loop is lowered.
    """
    if is_looplet(value):
        return value.style()
    return Style.SCALAR


def resolve_style(values):
    """Pick the lowering pass for a set of looplets/payloads.

    Mirrors the paper's pairwise style resolution: the resulting pass
    must be able to handle every looplet present, and the priority order
    above guarantees it (e.g. the spike lowerer can handle runs, not
    vice versa).
    """
    best = Style.SCALAR
    for value in values:
        best = max(best, style_of(value))
    return best


def call_body(body, ctx, ext):
    """Evaluate a looplet body that may be extent-dependent.

    Bodies may be given either directly (a looplet or payload) or as a
    callable ``body(ctx, ext)`` evaluated when the target extent is
    known.  Formats use the callable form when the child structure
    depends on the region being lowered (e.g. galloping jumpers).
    """
    if callable(body) and not isinstance(body, Expr):
        return body(ctx, ext)
    return body


def expect_payload(value, what="payload"):
    """Assert that a leaf position holds a payload, not a looplet."""
    if is_looplet(value):
        raise LoweringError(
            "expected a %s but found an unlowered looplet: %r" % (what, value))
    return value
