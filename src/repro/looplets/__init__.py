"""The Looplet language (Figure 2 of the paper)."""

from repro.looplets.base import (
    Looplet,
    Style,
    call_body,
    expect_payload,
    is_looplet,
    resolve_style,
    style_of,
)
from repro.looplets.coiter import Jumper, Stepper
from repro.looplets.core import (
    Case,
    Lookup,
    Phase,
    Pipeline,
    Run,
    Simplify,
    Spike,
    Switch,
)
from repro.looplets.shift import shift_extent, shift_looplet
from repro.looplets.truncate import truncate

__all__ = [
    "Looplet",
    "Style",
    "call_body",
    "expect_payload",
    "is_looplet",
    "resolve_style",
    "style_of",
    "Jumper",
    "Stepper",
    "Case",
    "Lookup",
    "Phase",
    "Pipeline",
    "Run",
    "Simplify",
    "Spike",
    "Switch",
    "shift_extent",
    "shift_looplet",
    "truncate",
]
