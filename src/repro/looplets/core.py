"""Core looplets: Lookup, Run, Spike, Switch/Case, Pipeline/Phase.

These are direct translations of Figure 2 of the paper, with half-open
extents.  ``Stepper`` and ``Jumper`` live in
:mod:`repro.looplets.coiter`.
"""

from repro.ir.nodes import as_expr
from repro.looplets.base import Looplet, Style
from repro.util.errors import LoweringError


class Simplify(Looplet):
    """A no-op wrapper that triggers a simplification pass.

    Section 6.1: "The Finch implementation recognizes a no-op Simplify
    looplet, which triggers a simplification pass."  Its style outranks
    every other looplet, so simplification happens as early as
    possible; the lowerer then unwraps it and continues.
    """

    STYLE = Style.SIMPLIFY

    def __init__(self, body):
        self.body = body

    def __repr__(self):
        return "Simplify(%r)" % (self.body,)


class Lookup(Looplet):
    """An arbitrary sequence; element ``i`` is computed as ``body(i)``.

    ``body`` is a Python callable from an index *expression* to a
    payload (a scalar IR expression or a fiber handle) or to another
    looplet (e.g. a per-element ``Switch`` for bitmap formats).
    """

    STYLE = Style.LOOKUP

    def __init__(self, body):
        if not callable(body):
            raise LoweringError("Lookup body must be callable, got %r"
                                % (body,))
        self.body = body

    def __repr__(self):
        return "Lookup(...)"


class Run(Looplet):
    """The same scalar ``body`` repeated across the whole target extent."""

    STYLE = Style.RUN

    def __init__(self, body):
        self.body = body

    def __repr__(self):
        return "Run(%r)" % (self.body,)


class Spike(Looplet):
    """``body`` repeated, then a single ``tail`` at the extent's last slot.

    With half-open extents ``[start, stop)``: ``body`` covers
    ``[start, stop - 1)`` and ``tail`` sits at index ``stop - 1``.
    """

    STYLE = Style.SPIKE

    def __init__(self, body, tail):
        self.body = body
        self.tail = tail

    def __repr__(self):
        return "Spike(%r, %r)" % (self.body, self.tail)


class Case:
    """One alternative of a :class:`Switch`."""

    def __init__(self, cond, body):
        self.cond = as_expr(cond)
        self.body = body

    def __repr__(self):
        return "Case(%r, %r)" % (self.cond, self.body)


class Switch(Looplet):
    """The first child whose condition holds at runtime.

    Conditions must be invariant over the target extent (they are
    hoisted out of the loop by the switch lowerer).
    """

    STYLE = Style.SWITCH

    def __init__(self, cases):
        cases = tuple(cases)
        if not cases:
            raise LoweringError("Switch requires at least one case")
        self.cases = cases

    def __repr__(self):
        return "Switch(%d cases)" % len(self.cases)


class Phase:
    """One stage of a :class:`Pipeline`.

    ``stride`` is the *exclusive* end index of this phase, or ``None``
    for the final phase (which extends to the target stop).  ``body``
    may be a looplet/payload or a callable ``body(ctx, ext)``.
    """

    def __init__(self, body, stride=None):
        self.body = body
        self.stride = None if stride is None else as_expr(stride)

    def __repr__(self):
        return "Phase(stride=%r)" % (self.stride,)


class Pipeline(Looplet):
    """A few different child looplets, one after the other."""

    STYLE = Style.PIPELINE

    def __init__(self, phases):
        phases = tuple(phases)
        if not phases:
            raise LoweringError("Pipeline requires at least one phase")
        for phase in phases[:-1]:
            if phase.stride is None:
                raise LoweringError(
                    "only the final phase of a Pipeline may omit its stride")
        self.phases = phases

    def __repr__(self):
        return "Pipeline(%d phases)" % len(self.phases)
