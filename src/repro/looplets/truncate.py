"""Truncation: restricting a looplet to a subregion of its extent.

Many looplets are self-similar (a run restricted to any subregion is
still a run), but spikes depend on their target region: a truncation
that *excludes* the final element turns a spike into a run, and when
inclusion can only be decided at runtime the truncation produces a
``Switch`` (Section 6.1, "Spikes").  The switch lowerer later hoists
that decision out of the loop.
"""

from repro.ir import build
from repro.ir.nodes import Literal
from repro.looplets.base import is_looplet
from repro.looplets.coiter import Jumper, Stepper
from repro.looplets.core import (Case, Lookup, Pipeline, Run, Simplify,
                                 Spike, Switch)
from repro.rewrite import simplify_expr
from repro.util.errors import LoweringError


def truncate(value, new_ext, old_ext):
    """Restrict ``value`` from target ``old_ext`` to ``new_ext``.

    ``new_ext`` must be a subregion of ``old_ext`` sharing runtime
    semantics: ``old_ext.start <= new_ext.start`` and ``new_ext.stop <=
    old_ext.stop``.  The interesting question for spikes is whether the
    truncation keeps the final element, i.e. whether ``new_ext.stop ==
    old_ext.stop`` — decided statically when possible, with a runtime
    ``Switch`` otherwise.
    """
    if not is_looplet(value):
        return value
    if isinstance(value, Simplify):
        return Simplify(truncate(value.body, new_ext, old_ext))
    if isinstance(value, (Run, Lookup)):
        return value
    if isinstance(value, Spike):
        return _truncate_spike(value, new_ext, old_ext)
    if isinstance(value, Switch):
        cases = [Case(case.cond, truncate(case.body, new_ext, old_ext))
                 for case in value.cases]
        return Switch(cases)
    if isinstance(value, (Pipeline, Stepper, Jumper)):
        # These handle arbitrary target extents themselves: the pipeline
        # lowerer clips each phase to the target, and steppers/jumpers
        # seek to the target start.
        return value
    raise LoweringError("cannot truncate looplet %r" % (value,))


def _truncate_spike(spike, new_ext, old_ext):
    tail_included = simplify_expr(build.eq(new_ext.stop, old_ext.stop))
    if isinstance(tail_included, Literal):
        if tail_included.value:
            return spike
        return Run(spike.body)
    return Switch([
        Case(tail_included, spike),
        Case(Literal(True), Run(spike.body)),
    ])
