"""Shift looplets.

The paper's ``Shift(delta, body)`` wraps a looplet and translates all of
its declared extents by ``delta`` (extents are absolute, so affine index
modifiers need it).  As Section 6.1 notes, shifts need no dedicated
compiler pass; we distribute them into child looplets eagerly, so no
``Shift`` node ever reaches the lowerer:

* strides and phase boundaries gain ``+ delta``;
* ``seek`` and ``Lookup`` bodies see indices translated by ``- delta``;
* runs, spikes and scalar payloads are position-independent and pass
  through unchanged.
"""

from repro.ir.nodes import Extent, Literal, as_expr
from repro.ir import build
from repro.looplets.base import is_looplet
from repro.looplets.coiter import Jumper, Stepper
from repro.looplets.core import (Case, Lookup, Phase, Pipeline, Run,
                                 Simplify, Spike, Switch)
from repro.util.errors import LoweringError


def shift_extent(ext, delta):
    """Translate an extent by ``-delta`` (into the child's coordinates)."""
    return Extent(build.minus(ext.start, delta), build.minus(ext.stop, delta))


def shift_looplet(value, delta):
    """Translate every declared extent of ``value`` by ``+delta``."""
    delta = as_expr(delta)
    if isinstance(delta, Literal) and delta.value == 0:
        return value
    if not is_looplet(value):
        return value
    if isinstance(value, Simplify):
        return Simplify(shift_looplet(value.body, delta))
    if isinstance(value, Run):
        return value
    if isinstance(value, Spike):
        return value
    if isinstance(value, Lookup):
        return _shift_lookup(value, delta)
    if isinstance(value, Switch):
        cases = [Case(case.cond, shift_looplet(case.body, delta))
                 for case in value.cases]
        return Switch(cases)
    if isinstance(value, Pipeline):
        return Pipeline([_shift_phase(phase, delta)
                         for phase in value.phases])
    if isinstance(value, Stepper):
        return _shift_coiter(Stepper, value, delta)
    if isinstance(value, Jumper):
        return _shift_coiter(Jumper, value, delta)
    raise LoweringError("cannot shift looplet %r" % (value,))


def _shift_lookup(lookup, delta):
    def body(index):
        return shift_looplet(lookup.body(build.minus(index, delta)), delta)

    return Lookup(body)


def _shift_body(body, delta):
    if callable(body) and not is_looplet(body):
        def shifted(ctx, ext):
            from repro.looplets.base import call_body

            return shift_looplet(call_body(body, ctx, shift_extent(ext, delta)),
                                 delta)

        return shifted
    return shift_looplet(body, delta)


def _shift_phase(phase, delta):
    stride = None if phase.stride is None else build.plus(phase.stride, delta)
    return Phase(_shift_body(phase.body, delta), stride=stride)


def _shift_coiter(cls, looplet, delta):
    def seek(ctx, start):
        return looplet.seek(ctx, build.minus(start, delta))

    return cls(
        stride=build.plus(looplet.stride, delta),
        body=_shift_body(looplet.body, delta),
        seek=seek,
        next=looplet.next,
        preamble=looplet.preamble,
    )
