"""Coiterating looplets: Stepper and Jumper.

A stepper is an unbounded sequence of identical child looplets; a
jumper is the same but elects itself a *leader* during coiteration by
declaring the widest extent it can handle (enabling galloping
intersections, Section 7 of the paper).

Both manipulate runtime state in the generated code (typically a
position cursor into a coordinate array), so their pieces are emitted
code fragments:

``preamble()``
    statements run once when the looplet enters scope (e.g. ``p =
    pos[i]``).
``seek(ctx, start)``
    statements that position the cursor at the first child intersecting
    ``start`` (often a binary search).
``stride``
    IR expression for the *exclusive* end of the current child.
``body``
    the current child looplet; may be extent-dependent
    (``body(ctx, ext)``).
``next(ctx)``
    statements advancing to the next child; the lowerer guards them
    with "did this looplet's child end here?".
"""

from repro.ir.nodes import as_expr
from repro.looplets.base import Looplet, Style


def _no_stmts(*_args, **_kwargs):
    return []


class Stepper(Looplet):
    """Repeated application of the same child looplet (Figure 2)."""

    STYLE = Style.STEPPER

    def __init__(self, stride, body, seek=None, next=None, preamble=None):
        self.stride = as_expr(stride)
        self.body = body
        self.seek = seek or _no_stmts
        self.next = next or _no_stmts
        self.preamble = preamble or _no_stmts

    def __repr__(self):
        return "Stepper(stride=%r)" % (self.stride,)


class Jumper(Looplet):
    """Like a stepper, but may be asked to cover an extent *wider* than
    one child, enabling accelerated (galloping) iteration."""

    STYLE = Style.JUMPER

    def __init__(self, stride, body, seek=None, next=None, preamble=None):
        self.stride = as_expr(stride)
        self.body = body
        self.seek = seek or _no_stmts
        self.next = next or _no_stmts
        self.preamble = preamble or _no_stmts

    def __repr__(self):
        return "Jumper(stride=%r)" % (self.stride,)
