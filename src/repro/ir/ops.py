"""Operator registry for the scalar expression IR.

Each :class:`Op` records how to *render* the operator in emitted Python
source, how to *fold* it over constants, and the algebraic properties the
rewriter (Figure 5 of the paper) relies on: identity and annihilator
elements, commutativity and associativity, and whether the operator
propagates ``missing`` (rendered as Python ``None``).

The registry is open: callers may register their own operators (e.g. a
semiring product) and the whole compiler pipeline — rewriting included —
picks the properties up from here.
"""

import math

from repro.util.errors import ReproError


class Missing:
    """Singleton sentinel for the paper's ``missing`` value.

    ``missing`` is produced by the ``permit`` index modifier for
    out-of-bounds accesses; ``f(x, missing) = missing`` for ordinary
    operators, and ``coalesce`` selects its first non-missing argument.
    Rendered as ``None`` in emitted code.
    """

    _instance = None

    def __new__(cls):
        if cls._instance is None:
            cls._instance = super().__new__(cls)
        return cls._instance

    def __repr__(self):
        return "missing"


MISSING = Missing()


class Op:
    """A scalar operator usable in IR ``Call`` nodes.

    Parameters
    ----------
    name:
        Registry key and default rendering (as ``name(args...)``).
    fn:
        Python callable used for constant folding and by the reference
        interpreter.
    symbol:
        Infix symbol; when given, binary calls render as ``a <sym> b``.
    precedence:
        Python operator precedence (higher binds tighter) used by the
        pretty printer to insert minimal parentheses.
    identity / annihilator:
        Algebraic elements, or ``None`` when absent.  ``op(identity, x)
        == x`` and ``op(annihilator, x) == annihilator``.
    commutative / associative:
        Enable argument reordering / flattening in the rewriter.
    propagates_missing:
        ``op(..., missing, ...) == missing`` (true for arithmetic, false
        for ``coalesce``).
    """

    def __init__(self, name, fn, symbol=None, precedence=0, identity=None,
                 annihilator=None, commutative=False, associative=False,
                 propagates_missing=True, runtime_name=None):
        self.name = name
        self.fn = fn
        self.symbol = symbol
        self.precedence = precedence
        self.identity = identity
        self.annihilator = annihilator
        self.commutative = commutative
        self.associative = associative
        self.propagates_missing = propagates_missing
        # Name the op is reachable under inside emitted-kernel namespaces,
        # for ops that render as function calls rather than infix syntax.
        self.runtime_name = runtime_name or name

    def __repr__(self):
        return "Op(%s)" % self.name

    def fold(self, *args):
        """Apply the underlying Python function to constant arguments."""
        if self.propagates_missing and any(a is MISSING for a in args):
            return MISSING
        return self.fn(*args)


_REGISTRY = {}
_REGISTRY_VERSION = 0


def register_op(op):
    """Add ``op`` to the global registry, replacing any previous entry."""
    global _REGISTRY_VERSION
    _REGISTRY[op.name] = op
    _REGISTRY_VERSION += 1
    return op


def registry_version():
    """Monotone counter bumped by every :func:`register_op` call.

    Lets caches built over the registry (the kernel runtime namespace)
    invalidate on late op registrations instead of rebuilding on every
    lookup.
    """
    return _REGISTRY_VERSION


def get_op(name):
    try:
        return _REGISTRY[name]
    except KeyError:
        raise ReproError("unknown operator: %r" % (name,))


def all_ops():
    return dict(_REGISTRY)


def _coalesce(*args):
    for arg in args:
        if arg is not MISSING and arg is not None:
            return arg
    return MISSING


def _ifelse(cond, then, otherwise):
    return then if cond else otherwise


def _round_u8(value):
    """Round and clamp to the uint8 range (paper's ``round(UInt8, x)``)."""
    return max(0, min(255, int(round(float(value)))))


def _divide(a, b):
    return a / b


def _and(*args):
    result = True
    for arg in args:
        result = result and arg
    return result


def _or(*args):
    result = False
    for arg in args:
        result = result or arg
    return result


def _add(*args):
    result = 0
    for arg in args:
        result = result + arg
    return result


def _mul(*args):
    result = 1
    for arg in args:
        result = result * arg
    return result


def _min(*args):
    return min(args)


def _max(*args):
    return max(args)


ADD = register_op(Op("add", _add, symbol="+", precedence=10, identity=0,
                     commutative=True, associative=True))
SUB = register_op(Op("sub", lambda a, b: a - b, symbol="-", precedence=10))
NEG = register_op(Op("neg", lambda a: -a, symbol="-", precedence=13))
MUL = register_op(Op("mul", _mul, symbol="*", precedence=11, identity=1,
                     annihilator=0, commutative=True, associative=True))
DIV = register_op(Op("div", _divide, symbol="/", precedence=11))
FLOORDIV = register_op(Op("floordiv", lambda a, b: a // b, symbol="//",
                          precedence=11))
MOD = register_op(Op("mod", lambda a, b: a % b, symbol="%", precedence=11))
POW = register_op(Op("pow", lambda a, b: a ** b, symbol="**", precedence=14))
MIN = register_op(Op("min", _min, identity=None, commutative=True,
                     associative=True, runtime_name="min"))
MAX = register_op(Op("max", _max, identity=None, commutative=True,
                     associative=True, runtime_name="max"))
EQ = register_op(Op("eq", lambda a, b: a == b, symbol="==", precedence=6))
NE = register_op(Op("ne", lambda a, b: a != b, symbol="!=", precedence=6))
LT = register_op(Op("lt", lambda a, b: a < b, symbol="<", precedence=6))
LE = register_op(Op("le", lambda a, b: a <= b, symbol="<=", precedence=6))
GT = register_op(Op("gt", lambda a, b: a > b, symbol=">", precedence=6))
GE = register_op(Op("ge", lambda a, b: a >= b, symbol=">=", precedence=6))
AND = register_op(Op("and", _and, symbol="and", precedence=4, identity=True,
                     annihilator=False, commutative=True, associative=True))
OR = register_op(Op("or", _or, symbol="or", precedence=3, identity=False,
                    annihilator=True, commutative=True, associative=True))
NOT = register_op(Op("not", lambda a: not a, symbol="not ", precedence=5))
ABS = register_op(Op("abs", abs, runtime_name="abs"))
SQRT = register_op(Op("sqrt", math.sqrt, runtime_name="_sqrt"))
COALESCE = register_op(Op("coalesce", _coalesce, propagates_missing=False,
                          runtime_name="_coalesce"))
IFELSE = register_op(Op("ifelse", _ifelse, propagates_missing=False,
                        runtime_name="_ifelse"))
ROUND_U8 = register_op(Op("round_u8", _round_u8, runtime_name="_round_u8"))


def _search_ge(idx, lo, hi, key):
    """First position ``p`` in ``[lo, hi)`` with ``idx[p] >= key``."""
    from bisect import bisect_left

    return bisect_left(idx, key, lo, hi)


def _search_abs_ge(idx, lo, hi, key):
    """Like ``search_ge`` over ``abs(idx)`` (PackBits signed markers)."""
    while lo < hi:
        mid = (lo + hi) // 2
        if abs(idx[mid]) < key:
            lo = mid + 1
        else:
            hi = mid
    return lo


SEARCH_GE = register_op(Op("search_ge", _search_ge,
                           runtime_name="search_ge"))
SEARCH_ABS_GE = register_op(Op("search_abs_ge", _search_abs_ge,
                               runtime_name="search_abs_ge"))
