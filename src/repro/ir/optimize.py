"""Optimizer pipeline over the target AST.

Lowering (:mod:`repro.compiler.lower`) is organized around *looplet*
structure and deliberately emits naive straight-line code: buffer
elements are re-loaded inside hot loops, position arithmetic repeats,
scalar accumulators are loaded and immediately overwritten, and dense
regions are walked element by element in interpreted CPython.  This
module runs between lowering and emission and cleans all of that up
with composable passes over :mod:`repro.ir.asm` statements:

``fold_constants``
    Forward constant *and copy* propagation with expression
    simplification: literal conditions prune ``If`` branches, loops
    with statically-empty extents disappear, single-trip loops unroll,
    and literal accumulations fold into assignments.

``dead_code``
    Backward liveness: assignments to scalar variables nobody reads
    are deleted (buffer stores always survive — buffers escape the
    kernel), trailing empty ``If`` branches are pruned, and empty
    loops with no live side effects vanish.

``hoist_invariants``
    Loop-invariant code motion: buffer loads and position arithmetic
    whose inputs are not mutated by a ``ForLoop``/``WhileLoop`` body
    are computed once before the loop.  Hoists that could raise (a
    load, a division) are guarded by the loop's entry condition so the
    transformed kernel never evaluates anything the original would not
    have.

``eliminate_common_subexprs``
    Block-local CSE: a repeated pure subexpression (an index
    expression, a comparison, a load) is computed once into a
    temporary at its first unconditional evaluation and reused, with
    availability invalidated by writes to its inputs.

``vectorize``
    Rewrites innermost dense ``ForLoop``s whose body is a single
    affine-indexed assignment/accumulation (plus optional work
    counters) into numpy slice operations: elementwise maps become
    ``out[a:b] = x[c:d] * y[e:f]``-style ``Raw`` statements,
    reductions become ``_np.dot`` / ``_np.<op>.reduce`` calls, and
    instrumentation counters are scaled by the trip count so measured
    op counts are identical with and without vectorization.  Loops
    whose shape does not match are left alone (the scalar fallback).

The pipeline is exposed as :func:`optimize_kernel`, keyed by an
``opt_level``: 0 = untouched, 1 = scalar passes only, 2 (the default
used by :mod:`repro.compiler.kernel`) = scalar passes plus
vectorization.  Every pass is conservative around :class:`~
repro.ir.asm.Raw` statements, which are treated as reading and
writing every identifier they mention.
"""

import re

from repro.ir import build
from repro.ir.asm import (
    AccumStmt,
    AssignStmt,
    Block,
    Comment,
    ForLoop,
    FuncDef,
    If,
    Nop,
    Raw,
    WhileLoop,
    load_buffers,
    map_statement_exprs,
    map_statements,
    raw_identifiers,
    stmt_reads,
    stmt_stores,
    stmt_writes,
)
from repro.ir.nodes import Call, Extent, Literal, Load, Var, substitute
from repro.ir.ops import MISSING
from repro.ir.pretty import expr_source, lhs_source, slice_source
from repro.rewrite import simplify_expr
from repro.util.namer import Namer

#: Default optimization level used by the compiler when none is given.
DEFAULT_OPT_LEVEL = 2

_PIPELINE_FINGERPRINT = None


def pipeline_fingerprint():
    """A short stable digest identifying this optimizer pipeline.

    Hashes the pipeline's own source file, so *any* change to a pass
    (or to the pass ordering in :func:`optimize_kernel`) yields a new
    fingerprint.  The persistent kernel store keys entries by it:
    kernels optimized by an older pipeline must read as misses, never
    as stale hits, once the pipeline changes.  Falls back to hashing
    the public pass names when the source file is unavailable (frozen
    or bytecode-only deployments).
    """
    global _PIPELINE_FINGERPRINT
    if _PIPELINE_FINGERPRINT is None:
        import hashlib

        try:
            with open(__file__, "rb") as handle:
                payload = handle.read()
        except OSError:
            payload = repr((
                "fold_constants", "dead_code", "hoist_invariants",
                "eliminate_common_subexprs", "vectorize",
                DEFAULT_OPT_LEVEL)).encode("utf-8")
        _PIPELINE_FINGERPRINT = hashlib.sha256(payload).hexdigest()[:16]
    return _PIPELINE_FINGERPRINT

#: Operators whose later arguments are lazily evaluated in emitted
#: Python (``and``/``or`` short-circuit, ``ifelse`` renders as a
#: conditional expression).  Only the first argument is *strict*.
_LAZY_OPS = ("and", "or", "ifelse")

#: Operators that cannot raise on well-typed scalar inputs.  Anything
#: else (loads, division, user-registered ops) is treated as
#: potentially raising and is only hoisted behind a loop guard.
_SAFE_OPS = frozenset([
    "add", "sub", "mul", "neg", "min", "max", "abs",
    "eq", "ne", "lt", "le", "gt", "ge", "and", "or", "not", "ifelse",
])


# --------------------------------------------------------------------------
# Expression helpers
# --------------------------------------------------------------------------
def strict_children(expr):
    """Children evaluated whenever ``expr`` is evaluated."""
    if isinstance(expr, Call) and expr.op.name in _LAZY_OPS:
        return expr.args[:1]
    return expr.children()

def walk_expr(expr):
    """Every node of an expression tree, preorder."""
    yield expr
    for child in expr.children():
        yield from walk_expr(child)


def walk_strict_expr(expr):
    """Every node evaluated whenever ``expr`` is evaluated (stops at
    the lazy arguments of ``and``/``or``/``ifelse``)."""
    yield expr
    for child in strict_children(expr):
        yield from walk_strict_expr(child)


def can_raise(expr):
    """Whether evaluating ``expr`` may raise (loads can go out of
    bounds, division can hit zero, user ops are opaque)."""
    if isinstance(expr, Load):
        return True
    if isinstance(expr, Call) and expr.op.name not in _SAFE_OPS:
        return True
    return any(can_raise(child) for child in expr.children())


def entry_exprs(stmt):
    """Expressions evaluated unconditionally when ``stmt`` starts.

    For an ``If`` only the first condition qualifies; branch bodies
    and later ``elif`` conditions may never run, so hoisting or
    pre-materializing out of them would speculate.
    """
    if isinstance(stmt, (AssignStmt, AccumStmt)):
        yield stmt.value
        if isinstance(stmt.target, Load):
            yield stmt.target.index
    elif isinstance(stmt, ForLoop):
        yield stmt.start
        yield stmt.stop
    elif isinstance(stmt, WhileLoop):
        yield stmt.cond
    elif isinstance(stmt, If):
        cond = stmt.branches[0][0]
        if cond is not None:
            yield cond


def replace_by_key(expr, mapping):
    """Top-down replacement of subexpressions by structural key."""
    hit = mapping.get(expr.key())
    if hit is not None:
        return hit
    children = expr.children()
    if not children:
        return expr
    new_children = [replace_by_key(child, mapping) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def _namer_for(stmt):
    """A fresh-name supply that avoids every identifier in the tree."""
    reserved = stmt_reads(stmt) | stmt_writes(stmt) | stmt_stores(stmt)
    if isinstance(stmt, FuncDef):
        reserved |= set(stmt.params)
        reserved.add(stmt.name)
    reserved |= {"min", "max", "abs", "range", "search_ge",
                 "search_abs_ge", "_np", "_coalesce", "_ifelse",
                 "_round_u8", "_sqrt"}
    return Namer(reserved=reserved)


def _literal_truth(expr):
    """True/False when ``expr`` is a literal condition, else None.

    ``missing`` renders as Python ``None`` and is therefore falsy at
    runtime, whatever its compile-time object truthiness says.
    """
    if not isinstance(expr, Literal):
        return None
    if expr.value is MISSING:
        return False
    return bool(expr.value)


# --------------------------------------------------------------------------
# Constant folding and copy propagation
# --------------------------------------------------------------------------
def fold_constants(stmt):
    """Forward constant/copy propagation with simplification."""
    return _fold(stmt, {})


def _resolve(expr, env):
    if env:
        expr = substitute(expr, env)
    return simplify_expr(expr)


def _env_kill(env, names):
    """Drop bindings for ``names`` and any binding reading them."""
    if not names or not env:
        return
    for key in list(env):
        if key in names or (env[key].free_vars() & names):
            del env[key]


def _fold(stmt, env):
    if isinstance(stmt, FuncDef):
        return FuncDef(stmt.name, stmt.params, _fold(stmt.body, {}),
                       returns=stmt.returns)
    if isinstance(stmt, Block):
        return Block([_fold(child, env) for child in stmt.stmts])
    if isinstance(stmt, AssignStmt):
        return _fold_assign(stmt, env)
    if isinstance(stmt, AccumStmt):
        return _fold_accum(stmt, env)
    if isinstance(stmt, ForLoop):
        return _fold_for(stmt, env)
    if isinstance(stmt, WhileLoop):
        return _fold_while(stmt, env)
    if isinstance(stmt, If):
        return _fold_if(stmt, env)
    if isinstance(stmt, Raw):
        _env_kill(env, raw_identifiers(stmt.line))
        return stmt
    return stmt


def _fold_assign(stmt, env):
    value = _resolve(stmt.value, env)
    target = stmt.target
    if isinstance(target, Load):
        return AssignStmt(Load(target.buffer, _resolve(target.index, env)),
                          value)
    name = target.name
    if isinstance(value, Var) and value.name == name:
        return Nop()
    _env_kill(env, {name})
    if isinstance(value, (Literal, Var)):
        env[name] = value
    return AssignStmt(target, value)


def _fold_accum(stmt, env):
    value = _resolve(stmt.value, env)
    target = stmt.target
    if isinstance(target, Load):
        return AccumStmt(Load(target.buffer, _resolve(target.index, env)),
                         stmt.op, value)
    name = target.name
    prior = env.get(name)
    if isinstance(prior, Literal) and isinstance(value, Literal) \
            and prior.value is not MISSING and value.value is not MISSING:
        folded = Literal(stmt.op.fold(prior.value, value.value))
        _env_kill(env, {name})
        env[name] = folded
        return AssignStmt(target, folded)
    _env_kill(env, {name})
    return AccumStmt(target, stmt.op, value)


def _fold_for(stmt, env):
    start = _resolve(stmt.start, env)
    stop = _resolve(stmt.stop, env)
    length = Extent(start, stop).static_length()
    if length == 0:
        return Nop()
    if length == 1:
        # Unroll the single iteration; the loop-variable assignment
        # feeds propagation and dead-code cleans it up if unused.
        return _fold(Block([AssignStmt(stmt.var, start), stmt.body]), env)
    _env_kill(env, stmt_writes(stmt.body) | {stmt.var.name})
    body = _fold(stmt.body, dict(env))
    return ForLoop(stmt.var, start, stop, body)


def _fold_while(stmt, env):
    _env_kill(env, stmt_writes(stmt.body))
    cond = _resolve(stmt.cond, env)
    if _literal_truth(cond) is False:
        return Nop()
    body = _fold(stmt.body, dict(env))
    return WhileLoop(cond, body)


def _fold_if(stmt, env):
    branches = []
    for cond, body in stmt.branches:
        if cond is not None:
            cond = _resolve(cond, env)
            truth = _literal_truth(cond)
            if truth is False:
                continue
            if truth is True:
                cond = None
        branches.append((cond, _fold(body, dict(env))))
        if cond is None:
            break
    if not branches:
        return Nop()
    if branches[0][0] is None:
        body = branches[0][1]
        _env_kill(env, stmt_writes(body))
        return body
    killed = set()
    for _, body in branches:
        killed |= stmt_writes(body)
    _env_kill(env, killed)
    return If(branches)


# --------------------------------------------------------------------------
# Dead store / dead branch elimination
# --------------------------------------------------------------------------
def dead_code(stmt, live=None):
    """Delete stores to scalar variables that are never read.

    ``live`` seeds the live-out set; for a :class:`FuncDef` the
    function's returns are live.  Buffer stores and ``Raw`` lines are
    always considered live (their effects escape the kernel).
    """
    if isinstance(stmt, FuncDef):
        live = set(stmt.returns) | (live or set())
        return FuncDef(stmt.name, stmt.params,
                       _dce_block(stmt.body, live), returns=stmt.returns)
    live = set(live) if live else set()
    if isinstance(stmt, Block):
        return _dce_block(stmt, live)
    result = _dce_stmt(stmt, live)
    return Nop() if result is None else result


def _dce_block(block, live):
    kept = []
    for child in reversed(block.stmts):
        result = _dce_stmt(child, live)
        if result is not None:
            kept.append(result)
    kept.reverse()
    return Block(kept)


def _dce_stmt(stmt, live):
    if isinstance(stmt, AssignStmt):
        target = stmt.target
        if isinstance(target, Var):
            if target.name not in live:
                return None
            live.discard(target.name)
            live |= stmt.value.free_vars()
            return stmt
        live.add(target.buffer.name)
        live |= target.index.free_vars() | stmt.value.free_vars()
        return stmt
    if isinstance(stmt, AccumStmt):
        target = stmt.target
        if isinstance(target, Var):
            if target.name not in live:
                return None
            live.add(target.name)
            live |= stmt.value.free_vars()
            return stmt
        live |= target.free_vars() | stmt.value.free_vars()
        return stmt
    if isinstance(stmt, ForLoop):
        reads = stmt_reads(stmt.body)
        writes = stmt_writes(stmt.body) | {stmt.var.name}
        if stmt.body.is_nop() and not (writes & live):
            return None
        inner = set(live) | reads
        body = _dce_block(stmt.body, inner)
        live |= inner
        live |= stmt.start.free_vars() | stmt.stop.free_vars()
        return ForLoop(stmt.var, stmt.start, stmt.stop, body)
    if isinstance(stmt, WhileLoop):
        # Never dropped: a (mis)compiled infinite loop should stay
        # observable rather than silently vanish.
        inner = set(live) | stmt_reads(stmt.body) | stmt.cond.free_vars()
        body = _dce_block(stmt.body, inner)
        live |= inner
        # The block walk treats the body as straight-line code, so a
        # bottom-of-body write to a condition variable discards it
        # from ``inner`` — but the condition is evaluated again before
        # the body ever runs, so its reads are live at loop entry
        # regardless of what the body does (found by the fuzz engine:
        # an initializer feeding only the condition was deleted).
        live |= stmt.cond.free_vars()
        return WhileLoop(stmt.cond, body)
    if isinstance(stmt, If):
        processed = []
        for cond, body in stmt.branches:
            branch_live = set(live)
            processed.append((cond, _dce_block(body, branch_live),
                              branch_live))
        # Only trailing empty branches may go: dropping an empty
        # middle branch would re-route its cases to later conditions.
        while processed and processed[-1][1].is_nop():
            processed.pop()
        if not processed:
            return None
        for cond, _, branch_live in processed:
            live |= branch_live
            if cond is not None:
                live |= cond.free_vars()
        return If([(cond, body) for cond, body, _ in processed])
    if isinstance(stmt, Raw):
        live |= raw_identifiers(stmt.line)
        return stmt
    if isinstance(stmt, Nop):
        return None
    if isinstance(stmt, Block):
        result = _dce_block(stmt, live)
        return None if result.is_nop() else result
    return stmt


# --------------------------------------------------------------------------
# Loop-invariant code motion
# --------------------------------------------------------------------------
def hoist_invariants(stmt, namer=None):
    """Hoist invariant loads and arithmetic out of loop bodies."""
    if namer is None:
        namer = _namer_for(stmt)

    def visit(node):
        if isinstance(node, ForLoop):
            return _hoist_loop(node, namer, loop_var=node.var.name)
        if isinstance(node, WhileLoop):
            return _hoist_loop(node, namer, loop_var=None)
        return None

    return map_statements(stmt, visit)


def _invariant(expr, mutated, stored):
    return not (expr.free_vars() & mutated) \
        and not (load_buffers(expr) & stored)


def _collect_hoistable(expr, mutated, stored, seen, out):
    if _invariant(expr, mutated, stored):
        if isinstance(expr, (Load, Call)):
            key = expr.key()
            if key not in seen:
                seen.add(key)
                out.append(expr)
        return
    for child in strict_children(expr):
        _collect_hoistable(child, mutated, stored, seen, out)


def _hoist_hint(expr):
    if isinstance(expr, Load):
        return expr.buffer.name + "_x"
    return "inv"


def _hoist_loop(loop, namer, loop_var):
    body = loop.body
    mutated = stmt_writes(body)
    if loop_var is not None:
        mutated.add(loop_var)
    stored = stmt_stores(body)
    seen, candidates = set(), []
    if loop_var is None:
        _collect_hoistable(loop.cond, mutated, stored, seen, candidates)
    for child in body.stmts:
        for expr in entry_exprs(child):
            _collect_hoistable(expr, mutated, stored, seen, candidates)
    if not candidates:
        return None
    mapping = {}
    assigns = []
    for expr in candidates:
        temp = Var(namer.fresh(_hoist_hint(expr)))
        assigns.append(AssignStmt(temp, replace_by_key(expr, mapping)))
        mapping[expr.key()] = temp

    def rewrite(node):
        return map_statement_exprs(
            node, lambda e: replace_by_key(e, mapping))

    new_body = map_statements(body, rewrite)
    if loop_var is not None:
        new_loop = ForLoop(loop.var, loop.start, loop.stop, new_body)
        guard = simplify_expr(build.lt(loop.start, loop.stop))
    else:
        new_loop = WhileLoop(replace_by_key(loop.cond, mapping), new_body)
        guard = loop.cond  # pre-substitution: temps are not bound yet
    hoisted = Block(assigns + [new_loop])
    if any(can_raise(expr) for expr in candidates) \
            and _literal_truth(guard) is not True:
        return If([(guard, hoisted)])
    return hoisted


# --------------------------------------------------------------------------
# Common-subexpression elimination
# --------------------------------------------------------------------------
class _Avail:
    """One available expression: where it was defined, and its temp."""

    __slots__ = ("expr", "index", "temp")

    def __init__(self, expr, index, temp=None):
        self.expr = expr
        self.index = index
        self.temp = temp


def eliminate_common_subexprs(stmt, namer=None):
    """Reuse repeated pure subexpressions within each block."""
    if namer is None:
        namer = _namer_for(stmt)

    def visit(node):
        if isinstance(node, Block):
            return _cse_block(node, namer)
        return None

    return map_statements(stmt, visit)


def _read_subexprs(stmt):
    """Every Call/Load subexpression in read position of ``stmt``
    (assignment targets are writes; only their indices count)."""
    roots = []
    if isinstance(stmt, (AssignStmt, AccumStmt)):
        roots.append(stmt.value)
        if isinstance(stmt.target, Load):
            roots.append(stmt.target.index)
    elif isinstance(stmt, ForLoop):
        roots.extend((stmt.start, stmt.stop))
    elif isinstance(stmt, WhileLoop):
        roots.append(stmt.cond)
    elif isinstance(stmt, If):
        roots.extend(cond for cond, _ in stmt.branches if cond is not None)
    for root in roots:
        for expr in walk_expr(root):
            if isinstance(expr, (Call, Load)):
                yield expr


def _cse_block(block, namer):
    avail = {}
    out = []

    def invalidate(writes, stores):
        if not writes and not stores:
            return
        for key, record in list(avail.items()):
            if record.expr.free_vars() & writes \
                    or load_buffers(record.expr) & stores \
                    or (record.temp is not None
                        and record.temp.name in writes):
                del avail[key]

    def materialize(record):
        if record.temp is not None:
            return record.temp
        record.temp = Var(namer.fresh("t"))
        definition = AssignStmt(record.temp, record.expr)
        replaced = {record.expr.key(): record.temp}
        out[record.index] = map_statement_exprs(
            out[record.index], lambda e: replace_by_key(e, replaced))
        out.insert(record.index, definition)
        for other in avail.values():
            if other is not record and other.index >= record.index:
                other.index += 1
        return record.temp

    for stmt in block.stmts:
        if isinstance(stmt, (Comment, Nop)):
            out.append(stmt)
            continue
        mapping = {}
        for expr in _read_subexprs(stmt):
            record = avail.get(expr.key())
            if record is not None and expr.key() not in mapping:
                mapping[expr.key()] = materialize(record)
        if mapping:
            stmt = map_statement_exprs(
                stmt, lambda e: replace_by_key(e, mapping))
        writes = stmt_writes(stmt)
        stores = stmt_stores(stmt)
        invalidate(writes, stores)
        # Register only strict-position subexpressions: an expr under
        # a lazy ifelse/and/or arm may never have been evaluated here,
        # and materializing its temp at this site would speculate it
        # (e.g. hoist a guarded out-of-bounds load past its guard).
        for root in entry_exprs(stmt):
            for expr in walk_strict_expr(root):
                if not isinstance(expr, (Call, Load)):
                    continue
                key = expr.key()
                if key in avail:
                    continue
                if expr.free_vars() & writes \
                        or load_buffers(expr) & stores:
                    continue
                avail[key] = _Avail(expr, len(out))
        if isinstance(stmt, AssignStmt) and isinstance(stmt.target, Var) \
                and isinstance(stmt.value, (Call, Load)):
            record = avail.get(stmt.value.key())
            if record is not None and record.temp is None \
                    and record.index == len(out):
                # The assignment itself is the temp for its value.
                record.temp = Var(stmt.target.name)
        out.append(stmt)
    return Block(out)


# --------------------------------------------------------------------------
# Dense-loop vectorization
# --------------------------------------------------------------------------
_VEC_INFIX = {"add": "+", "sub": "-", "mul": "*", "div": "/"}
_VEC_PAIRWISE = {"min": "_np.minimum", "max": "_np.maximum"}
_VEC_UNARY = {"abs": "_np.abs", "sqrt": "_np.sqrt"}
_VEC_REDUCE = {"add": "_np.add.reduce", "mul": "_np.multiply.reduce",
               "min": "_np.minimum.reduce", "max": "_np.maximum.reduce"}
_ACCUM_SYMBOL = {"add": "+=", "mul": "*="}

_ATOM_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*|\d+(\.\d+)?")


def vectorize(stmt):
    """Rewrite simple dense inner loops into numpy slice operations."""

    def visit(node):
        if isinstance(node, ForLoop):
            return _vectorize_loop(node)
        return None

    return map_statements(stmt, visit)


def linear_parts(expr, var):
    """Decompose ``expr`` as ``coeff * var + base`` with an integer
    literal ``coeff`` and ``var``-free ``base``; None if not affine."""
    if var not in expr.free_vars():
        return 0, expr
    if isinstance(expr, Var):
        return 1, Literal(0)
    if not isinstance(expr, Call):
        return None
    name = expr.op.name
    if name == "add":
        coeff, bases = 0, []
        for arg in expr.args:
            part = linear_parts(arg, var)
            if part is None:
                return None
            coeff += part[0]
            bases.append(part[1])
        return coeff, build.plus(*bases)
    if name == "sub" and len(expr.args) == 2:
        left = linear_parts(expr.args[0], var)
        right = linear_parts(expr.args[1], var)
        if left is None or right is None:
            return None
        return left[0] - right[0], build.minus(left[1], right[1])
    if name == "neg" and len(expr.args) == 1:
        part = linear_parts(expr.args[0], var)
        if part is None:
            return None
        return -part[0], build.call("neg", part[1])
    if name == "mul":
        with_var = [pos for pos, arg in enumerate(expr.args)
                    if var in arg.free_vars()]
        if len(with_var) != 1:
            return None
        part = linear_parts(expr.args[with_var[0]], var)
        if part is None:
            return None
        others = [arg for pos, arg in enumerate(expr.args)
                  if pos != with_var[0]]
        scale = build.times(*others) if len(others) > 1 else others[0]
        if not (isinstance(scale, Literal)
                and isinstance(scale.value, int)
                and not isinstance(scale.value, bool)):
            return None
        return part[0] * scale.value, build.times(part[1], scale)
    return None


def _slice_src(buffer, coeff, base, start, stop):
    """Source for the slice covering ``coeff*i + base`` over
    ``i in [start, stop)``."""
    lo = simplify_expr(build.plus(build.times(Literal(coeff), start), base))
    hi = simplify_expr(build.plus(build.times(Literal(coeff), stop), base,
                                  Literal(1 - coeff)))
    return slice_source(buffer, lo, hi, coeff)


def _vec_source(expr, var, start, stop):
    """``(source, is_vector)`` rendering of ``expr`` over the loop
    range as a numpy expression, or None when not vectorizable."""
    if var not in expr.free_vars():
        src = expr_source(expr)
        if not _ATOM_RE.fullmatch(src):
            src = "(%s)" % src
        return src, False
    if isinstance(expr, Load):
        part = linear_parts(expr.index, var)
        if part is None or part[0] <= 0:
            return None
        return _slice_src(expr.buffer.name, part[0], part[1],
                          start, stop), True
    if not isinstance(expr, Call):
        return None  # the bare loop variable: no arange materialization
    name = expr.op.name
    parts = []
    for arg in expr.args:
        rendered = _vec_source(arg, var, start, stop)
        if rendered is None:
            return None
        parts.append(rendered[0])
    if name in _VEC_INFIX and len(parts) >= 2:
        return "(%s)" % ((" %s " % _VEC_INFIX[name]).join(parts)), True
    if name == "neg" and len(parts) == 1:
        return "(-%s)" % parts[0], True
    if name in _VEC_PAIRWISE and len(parts) >= 2:
        src = parts[0]
        for nxt in parts[1:]:
            src = "%s(%s, %s)" % (_VEC_PAIRWISE[name], src, nxt)
        return src, True
    if name in _VEC_UNARY and len(parts) == 1:
        return "%s(%s)" % (_VEC_UNARY[name], parts[0]), True
    return None


def _vectorize_loop(loop):
    var = loop.var.name
    stmts = [s for s in loop.body.stmts
             if not isinstance(s, (Comment, Nop))]
    if not stmts:
        return None
    core, counters = None, []
    for child in stmts:
        if isinstance(child, AccumStmt) and isinstance(child.target, Var) \
                and child.op.name == "add" \
                and isinstance(child.value, Literal) \
                and isinstance(child.value.value, (int, float)) \
                and not isinstance(child.value.value, bool):
            counters.append(child)
            continue
        if core is not None:
            return None
        core = child
    core_names = set()
    if core is not None:
        core_names = stmt_reads(core) | stmt_writes(core) | stmt_stores(core)
    for counter in counters:
        if counter.target.name == var or counter.target.name in core_names:
            return None
    line = None
    if core is not None:
        line = _vectorize_core(core, var, loop.start, loop.stop)
        if line is None:
            return None
    elif not counters:
        return None
    trip = build.minus(loop.stop, loop.start)
    out = [Raw(line)] if line is not None else []
    for counter in counters:
        out.append(AccumStmt(counter.target, counter.op,
                             simplify_expr(build.times(counter.value,
                                                       trip))))
    guard = simplify_expr(build.lt(loop.start, loop.stop))
    truth = _literal_truth(guard)
    if truth is True:
        return Block(out)
    if truth is False:
        return Nop()
    return If([(guard, Block(out))])


def _vectorize_core(core, var, start, stop):
    if isinstance(core, AssignStmt):
        if not isinstance(core.target, Load):
            return None
        return _vectorize_elementwise(core, "=", var, start, stop)
    if not isinstance(core, AccumStmt):
        return None
    op = core.op.name
    target = core.target
    if isinstance(target, Var):
        if target.name in core.value.free_vars():
            return None
        return _vectorize_reduction(target, op, core.value, var, start,
                                    stop)
    part = linear_parts(target.index, var)
    if part is None:
        return None
    if part[0] == 0:
        # Fixed element: the loop reduces into one buffer cell.
        if target.buffer.name in load_buffers(core.value):
            return None
        return _vectorize_reduction(target, op, core.value, var, start,
                                    stop)
    symbol = _ACCUM_SYMBOL.get(op)
    if symbol is None and op not in _VEC_PAIRWISE:
        return None
    return _vectorize_elementwise(core, symbol, var, start, stop)


def _vectorize_elementwise(core, symbol, var, start, stop):
    target = core.target
    part = linear_parts(target.index, var)
    if part is None or part[0] <= 0:
        return None
    # Same-buffer loads must hit exactly the written cell, or the
    # slice operation would reorder a loop-carried dependence.
    for expr in walk_expr(core.value):
        if isinstance(expr, Load) and expr.buffer.name == target.buffer.name:
            if expr.index != target.index:
                return None
    rendered = _vec_source(core.value, var, start, stop)
    if rendered is None:
        return None
    target_src = _slice_src(target.buffer.name, part[0], part[1], start,
                            stop)
    if symbol is not None:
        return "%s %s %s" % (target_src, symbol, rendered[0])
    # min/max accumulate elementwise via the pairwise ufunc.
    fn = _VEC_PAIRWISE[core.op.name]
    return "%s = %s(%s, %s)" % (target_src, fn, target_src, rendered[0])


def _vectorize_reduction(target, op, rhs, var, start, stop):
    if op not in _VEC_REDUCE:
        return None
    reduced = None
    if op == "add" and isinstance(rhs, Call) and rhs.op.name == "mul" \
            and len(rhs.args) == 2 \
            and all(isinstance(arg, Load) for arg in rhs.args):
        parts = [linear_parts(arg.index, var) for arg in rhs.args]
        if all(part is not None and part[0] > 0 for part in parts):
            slices = [_slice_src(arg.buffer.name, part[0], part[1],
                                 start, stop)
                      for arg, part in zip(rhs.args, parts)]
            reduced = "_np.dot(%s, %s)" % tuple(slices)
    if reduced is None:
        rendered = _vec_source(rhs, var, start, stop)
        if rendered is None or not rendered[1]:
            return None
        reduced = "%s(%s)" % (_VEC_REDUCE[op], rendered[0])
    target_src = lhs_source(target)
    symbol = _ACCUM_SYMBOL.get(op)
    if symbol is not None:
        return "%s %s %s" % (target_src, symbol, reduced)
    return "%s = %s(%s, %s)" % (target_src, op, target_src, reduced)


# --------------------------------------------------------------------------
# The pipeline
# --------------------------------------------------------------------------
#: Pass names at each level, for documentation and introspection.
PIPELINE = {
    1: ("fold_constants", "dead_code", "hoist_invariants",
        "eliminate_common_subexprs"),
    2: ("fold_constants", "dead_code", "vectorize", "hoist_invariants",
        "eliminate_common_subexprs"),
}


def _scalar_cleanup(stmt, rounds=4):
    """fold+dce to a (bounded) fixpoint, detected on statement shape."""
    from repro.ir.emit import emit

    previous = emit(stmt)
    for _ in range(rounds):
        stmt = dead_code(fold_constants(stmt))
        rendered = emit(stmt)
        if rendered == previous:
            break
        previous = rendered
    return stmt


def optimize_kernel(func, level=DEFAULT_OPT_LEVEL):
    """Run the optimizer pipeline over a lowered kernel.

    ``level`` 0 returns the tree untouched; 1 runs the scalar passes
    (folding, dead code, LICM, CSE); 2 (default) adds dense-loop
    vectorization.  The returned tree shares no mutable state with the
    input and has identical parameters and returns.
    """
    if level is None:
        level = DEFAULT_OPT_LEVEL
    level = int(level)
    if level <= 0:
        return func
    namer = _namer_for(func)
    func = _scalar_cleanup(func)
    if level >= 2:
        func = vectorize(func)
    func = hoist_invariants(func, namer)
    func = eliminate_common_subexprs(func, namer)
    func = _scalar_cleanup(func)
    return func
