"""Emit target AST as Python source text."""

from repro.ir import asm
from repro.ir.pretty import expr_source, lhs_source
from repro.util.errors import ReproError

_INDENT = "    "


def emit(stmt, indent=0):
    """Render a statement tree as Python source."""
    lines = []
    _emit(stmt, indent, lines)
    return "\n".join(lines) + "\n"


def _emit(stmt, depth, lines):
    pad = _INDENT * depth
    if stmt is None or stmt.is_nop():
        return
    if isinstance(stmt, asm.Block):
        for child in stmt.stmts:
            _emit(child, depth, lines)
    elif isinstance(stmt, asm.Comment):
        for line in str(stmt.text).splitlines():
            lines.append("%s# %s" % (pad, line))
    elif isinstance(stmt, asm.AssignStmt):
        lines.append("%s%s = %s" % (pad, lhs_source(stmt.target),
                                    expr_source(stmt.value)))
    elif isinstance(stmt, asm.AccumStmt):
        _emit_accum(stmt, pad, lines)
    elif isinstance(stmt, asm.ForLoop):
        lines.append("%sfor %s in range(%s, %s):" % (
            pad, stmt.var.name, expr_source(stmt.start),
            expr_source(stmt.stop)))
        _emit_body(stmt.body, depth + 1, lines)
    elif isinstance(stmt, asm.WhileLoop):
        lines.append("%swhile %s:" % (pad, expr_source(stmt.cond)))
        _emit_body(stmt.body, depth + 1, lines)
    elif isinstance(stmt, asm.If):
        _emit_if(stmt, depth, lines)
    elif isinstance(stmt, asm.Raw):
        lines.append(pad + stmt.line)
    elif isinstance(stmt, asm.FuncDef):
        lines.append("%sdef %s(%s):" % (pad, stmt.name,
                                        ", ".join(stmt.params)))
        _emit_body(stmt.body, depth + 1, lines)
        if stmt.returns:
            lines.append("%sreturn %s" % (_INDENT * (depth + 1),
                                          ", ".join(stmt.returns)))
    else:
        raise ReproError("cannot emit %r" % (stmt,))


def _emit_accum(stmt, pad, lines):
    target = lhs_source(stmt.target)
    value = expr_source(stmt.value)
    if stmt.op.symbol is not None and stmt.op.name in (
            "add", "sub", "mul", "div", "and", "or"):
        symbol = {"add": "+=", "sub": "-=", "mul": "*=", "div": "/=",
                  "and": "&=", "or": "|="}[stmt.op.name]
        if stmt.op.name in ("and", "or"):
            # Python's &=/|= are bitwise; stay with explicit logic.
            lines.append("%s%s = %s %s (%s)" % (
                pad, target, target, stmt.op.symbol.strip(), value))
        else:
            lines.append("%s%s %s %s" % (pad, target, symbol, value))
    else:
        lines.append("%s%s = %s(%s, %s)" % (
            pad, target, stmt.op.runtime_name, target, value))


def _emit_if(stmt, depth, lines):
    pad = _INDENT * depth
    if stmt.branches and stmt.branches[0][0] is None:
        # Optimizer passes can prune every conditional branch ahead of
        # an ``else``; a leading None condition is always taken, so the
        # body inlines (the remaining branches are unreachable).
        _emit(stmt.branches[0][1], depth, lines)
        return
    first = True
    for cond, body in stmt.branches:
        if cond is None:
            if body.is_nop():
                continue
            lines.append(pad + "else:")
        else:
            keyword = "if" if first else "elif"
            lines.append("%s%s %s:" % (pad, keyword, expr_source(cond)))
        _emit_body(body, depth + 1, lines)
        first = False


def _emit_body(body, depth, lines):
    before = len(lines)
    _emit(body, depth, lines)
    if len(lines) == before:
        lines.append(_INDENT * depth + "pass")
