"""Smart constructors for IR expressions.

These helpers apply cheap, always-sound local simplifications (constant
folding, identity and annihilator elements) as expressions are built.
The full rewrite system in :mod:`repro.rewrite` does the heavy lifting;
folding here just keeps intermediate looplet expressions small and the
emitted code readable.
"""

from repro.ir import ops
from repro.ir.nodes import Call, Literal, as_expr


def call(op, *args):
    """Build ``Call(op, args)``, folding when every argument is literal."""
    if isinstance(op, str):
        op = ops.get_op(op)
    exprs = [as_expr(a) for a in args]
    if all(isinstance(e, Literal) for e in exprs):
        return Literal(op.fold(*[e.value for e in exprs]))
    return Call(op, exprs)


def _variadic(op, args, *, unit):
    """Fold a commutative/associative chain, dropping identities."""
    exprs = []
    for arg in args:
        expr = as_expr(arg)
        if isinstance(expr, Call) and expr.op is op:
            exprs.extend(expr.args)
        else:
            exprs.append(expr)
    folded = []
    const = None
    for expr in exprs:
        if isinstance(expr, Literal) and expr.value is not ops.MISSING:
            const = expr.value if const is None else op.fold(const, expr.value)
        else:
            folded.append(expr)
    if const is not None:
        if op.annihilator is not None and const == op.annihilator:
            return Literal(const)
        if op.identity is None or const != op.identity:
            folded.insert(0, Literal(const))
    if not folded:
        return Literal(unit if op.identity is None else op.identity)
    if len(folded) == 1:
        return folded[0]
    return Call(op, folded)


def plus(*args):
    return _variadic(ops.ADD, args, unit=0)


def times(*args):
    return _variadic(ops.MUL, args, unit=1)


def minimum(*args):
    return _variadic(ops.MIN, args, unit=None)


def maximum(*args):
    return _variadic(ops.MAX, args, unit=None)


def land(*args):
    return _variadic(ops.AND, args, unit=True)


def lor(*args):
    return _variadic(ops.OR, args, unit=False)


def minus(a, b):
    """``a - b`` with literal folding and ``x - 0 == x``."""
    a, b = as_expr(a), as_expr(b)
    if isinstance(b, Literal) and b.value == 0 and not isinstance(b.value, bool):
        return a
    return call(ops.SUB, a, b)


def negate(a):
    return call(ops.NEG, a)


def eq(a, b):
    return call(ops.EQ, a, b)


def ne(a, b):
    return call(ops.NE, a, b)


def lt(a, b):
    return call(ops.LT, a, b)


def le(a, b):
    return call(ops.LE, a, b)


def gt(a, b):
    return call(ops.GT, a, b)


def ge(a, b):
    return call(ops.GE, a, b)


def coalesce(*args):
    """First non-missing argument; folds away literal ``missing``."""
    kept = []
    for arg in args:
        expr = as_expr(arg)
        if isinstance(expr, Literal) and expr.is_missing:
            continue
        kept.append(expr)
        if isinstance(expr, Literal):
            # A literal non-missing value short-circuits the rest.
            break
    if not kept:
        return Literal(ops.MISSING)
    if len(kept) == 1:
        return kept[0]
    return Call(ops.COALESCE, kept)
