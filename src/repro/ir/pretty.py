"""Render IR expressions as Python source text.

The printer inserts the minimal parentheses needed given Python operator
precedence, so emitted kernels stay legible — important both for
debugging and for the golden tests that assert the *shape* of the code
the paper's worked examples should produce.
"""

from repro.ir.nodes import Call, Expr, Literal, Load, Var
from repro.ir.ops import MISSING
from repro.util.errors import ReproError

_ATOM_PRECEDENCE = 100
_UNARY_OPS = ("neg", "not")


def expr_source(expr):
    """Render ``expr`` as a Python expression string."""
    source, _ = _render(expr)
    return source


def _render(expr):
    """Return ``(source, precedence)`` for an expression."""
    if isinstance(expr, Literal):
        return _render_literal(expr.value), _ATOM_PRECEDENCE
    if isinstance(expr, Var):
        return expr.name, _ATOM_PRECEDENCE
    if isinstance(expr, Load):
        index, _ = _render(expr.index)
        return "%s[%s]" % (expr.buffer.name, index), _ATOM_PRECEDENCE
    if isinstance(expr, Call):
        return _render_call(expr)
    raise ReproError("cannot render %r" % (expr,))


def _render_literal(value):
    if value is MISSING:
        return "None"
    if isinstance(value, float):
        return repr(value)
    return repr(value)


def _render_call(expr):
    op = expr.op
    if op.name == "ifelse" and len(expr.args) == 3:
        # Python's conditional expression is lazy; the _ifelse helper
        # would evaluate both branches (unsafe for guarded loads).
        cond, then, otherwise = (_render(arg)[0] for arg in expr.args)
        return "(%s if %s else %s)" % (then, cond, otherwise), _ATOM_PRECEDENCE
    if op.symbol is not None and op.name in _UNARY_OPS and len(expr.args) == 1:
        inner, prec = _render(expr.args[0])
        if prec < op.precedence:
            inner = "(%s)" % inner
        return op.symbol + inner, op.precedence
    if op.symbol is not None and len(expr.args) >= 2:
        parts = []
        for position, arg in enumerate(expr.args):
            source, prec = _render(arg)
            # Left-associative chain: the first operand may share the
            # precedence level, later ones need to bind strictly tighter.
            needs_parens = (prec < op.precedence
                            or (prec == op.precedence and position > 0))
            if needs_parens:
                source = "(%s)" % source
            parts.append(source)
        joiner = " %s " % op.symbol.strip()
        return joiner.join(parts), op.precedence
    args = ", ".join(_render(arg)[0] for arg in expr.args)
    return "%s(%s)" % (op.runtime_name, args), _ATOM_PRECEDENCE


def slice_source(buffer, start, stop, step=1):
    """Render ``buffer[start:stop:step]`` (step elided when 1).

    Used by the optimizer's vectorization pass to address the
    contiguous (or strided) range an affine-indexed loop touches.
    """
    lo = expr_source(start)
    hi = expr_source(stop)
    if step == 1:
        return "%s[%s:%s]" % (buffer, lo, hi)
    return "%s[%s:%s:%d]" % (buffer, lo, hi, step)


def lhs_source(target):
    """Render an assignment target (a Var or a Load)."""
    if isinstance(target, Var):
        return target.name
    if isinstance(target, Load):
        return "%s[%s]" % (target.buffer.name, expr_source(target.index))
    raise ReproError("invalid assignment target: %r" % (target,))


def ensure_expr(expr):
    if not isinstance(expr, Expr):
        raise ReproError("expected an IR expression, got %r" % (expr,))
    return expr
