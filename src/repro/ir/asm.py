"""Target statement AST ("assembly") for emitted kernels.

Lowering produces these nodes; :mod:`repro.ir.emit` renders them as
Python source.  The AST is deliberately tiny — blocks, loops, branches,
assignments and comments — because everything interesting happens before
we reach it.

Besides the node classes, this module provides the generic tree
machinery the optimizer pipeline (:mod:`repro.ir.optimize`) is built
on: a postorder statement rewriter (:func:`map_statements`), a
per-statement expression rewriter (:func:`map_statement_exprs`), and a
conservative effects analysis (:func:`stmt_reads`, :func:`stmt_writes`,
:func:`stmt_stores`) that treats :class:`Raw` lines as touching every
identifier they mention.
"""

import re

from repro.ir.nodes import Expr, Load, Var, as_expr
from repro.ir.ops import Op, get_op
from repro.util.errors import ReproError

_IDENT_RE = re.compile(r"[A-Za-z_][A-Za-z0-9_]*")


class Stmt:
    """Base class for target statements."""

    __slots__ = ()

    def is_nop(self):
        return False


class Block(Stmt):
    """A sequence of statements; nested blocks are flattened."""

    __slots__ = ("stmts",)

    def __init__(self, stmts=()):
        flat = []
        for stmt in stmts:
            if stmt is None or stmt.is_nop():
                continue
            if isinstance(stmt, Block):
                flat.extend(stmt.stmts)
            else:
                flat.append(stmt)
        self.stmts = tuple(flat)

    def is_nop(self):
        return not self.stmts

    def __repr__(self):
        return "Block(%d stmts)" % len(self.stmts)


class Nop(Stmt):
    """No operation (elided during emission)."""

    __slots__ = ()

    def is_nop(self):
        return True


class Comment(Stmt):
    """A source comment carried through to emitted code."""

    __slots__ = ("text",)

    def __init__(self, text):
        self.text = text


class AssignStmt(Stmt):
    """``target = value`` where target is a Var or a buffer element."""

    __slots__ = ("target", "value")

    def __init__(self, target, value):
        if isinstance(target, str):
            target = Var(target)
        if not isinstance(target, (Var, Load)):
            raise ReproError("bad assignment target: %r" % (target,))
        self.target = target
        self.value = as_expr(value)


class AccumStmt(Stmt):
    """``target <op>= value`` — an in-place reduction update."""

    __slots__ = ("target", "op", "value")

    def __init__(self, target, op, value):
        if isinstance(target, str):
            target = Var(target)
        if isinstance(op, str):
            op = get_op(op)
        if not isinstance(op, Op):
            raise ReproError("bad accumulation op: %r" % (op,))
        self.target = target
        self.op = op
        self.value = as_expr(value)


class ForLoop(Stmt):
    """``for var in range(start, stop): body`` (half-open)."""

    __slots__ = ("var", "start", "stop", "body")

    def __init__(self, var, start, stop, body):
        if isinstance(var, str):
            var = Var(var)
        self.var = var
        self.start = as_expr(start)
        self.stop = as_expr(stop)
        self.body = body if isinstance(body, Block) else Block([body])


class WhileLoop(Stmt):
    """``while cond: body``."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        self.cond = as_expr(cond)
        self.body = body if isinstance(body, Block) else Block([body])


class If(Stmt):
    """``if/elif/else`` chain.

    ``branches`` is a list of ``(cond, block)`` pairs; a ``None``
    condition marks the trailing ``else``.
    """

    __slots__ = ("branches",)

    def __init__(self, branches):
        cleaned = []
        for cond, body in branches:
            if cond is not None:
                cond = as_expr(cond)
            body = body if isinstance(body, Block) else Block([body])
            cleaned.append((cond, body))
        if not cleaned:
            raise ReproError("If requires at least one branch")
        self.branches = tuple(cleaned)

    def is_nop(self):
        return all(body.is_nop() for _, body in self.branches)


class Raw(Stmt):
    """An opaque line of Python source (used sparingly, e.g. ``pass``)."""

    __slots__ = ("line",)

    def __init__(self, line):
        self.line = line


class FuncDef(Stmt):
    """Top-level function wrapper for a compiled kernel."""

    __slots__ = ("name", "params", "body", "returns")

    def __init__(self, name, params, body, returns=()):
        self.name = name
        self.params = tuple(params)
        self.body = body if isinstance(body, Block) else Block([body])
        self.returns = tuple(returns)


def block(*stmts):
    return Block(stmts)


def walk_statements(stmt):
    """Yield every statement in the tree, preorder."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from walk_statements(child)
    elif isinstance(stmt, (ForLoop, WhileLoop, FuncDef)):
        yield from walk_statements(stmt.body)
    elif isinstance(stmt, If):
        for _, body in stmt.branches:
            yield from walk_statements(body)


def statement_exprs(stmt):
    """Yield the expressions referenced directly by one statement."""
    if isinstance(stmt, AssignStmt):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, AccumStmt):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ForLoop):
        yield stmt.start
        yield stmt.stop
    elif isinstance(stmt, WhileLoop):
        yield stmt.cond
    elif isinstance(stmt, If):
        for cond, _ in stmt.branches:
            if isinstance(cond, Expr):
                yield cond


# --------------------------------------------------------------------------
# Generic rewriting
# --------------------------------------------------------------------------
def map_statements(stmt, fn):
    """Postorder statement rewrite.

    Children are rebuilt first, then ``fn`` is applied to the rebuilt
    node; ``fn`` returns a replacement statement (possibly a ``Block``
    or ``Nop``) or ``None`` to keep the node.  Replacements are *not*
    re-visited, so a pass can safely return trees containing nodes of
    the kind it matches on.
    """
    rebuilt = _map_children(stmt, fn)
    result = fn(rebuilt)
    return rebuilt if result is None else result


def _map_children(stmt, fn):
    if isinstance(stmt, Block):
        return Block([map_statements(child, fn) for child in stmt.stmts])
    if isinstance(stmt, ForLoop):
        return ForLoop(stmt.var, stmt.start, stmt.stop,
                       map_statements(stmt.body, fn))
    if isinstance(stmt, WhileLoop):
        return WhileLoop(stmt.cond, map_statements(stmt.body, fn))
    if isinstance(stmt, If):
        branches = [(cond, map_statements(body, fn))
                    for cond, body in stmt.branches]
        return If(branches)
    if isinstance(stmt, FuncDef):
        return FuncDef(stmt.name, stmt.params,
                       map_statements(stmt.body, fn), returns=stmt.returns)
    return stmt


def map_statement_exprs(stmt, fn):
    """Rebuild one statement with ``fn`` applied to each expression.

    Does not recurse into child statements (combine with
    :func:`map_statements` for whole-tree rewrites).  Assignment
    targets keep their ``Var``/``Load`` shape: a ``Var`` target is left
    alone (it is a write, not a read), a ``Load`` target has only its
    index mapped.
    """
    if isinstance(stmt, AssignStmt):
        target = stmt.target
        if isinstance(target, Load):
            target = Load(target.buffer, fn(target.index))
        return AssignStmt(target, fn(stmt.value))
    if isinstance(stmt, AccumStmt):
        target = stmt.target
        if isinstance(target, Load):
            target = Load(target.buffer, fn(target.index))
        return AccumStmt(target, stmt.op, fn(stmt.value))
    if isinstance(stmt, ForLoop):
        return ForLoop(stmt.var, fn(stmt.start), fn(stmt.stop), stmt.body)
    if isinstance(stmt, WhileLoop):
        return WhileLoop(fn(stmt.cond), stmt.body)
    if isinstance(stmt, If):
        return If([(None if cond is None else fn(cond), body)
                   for cond, body in stmt.branches])
    return stmt


# --------------------------------------------------------------------------
# Conservative effects analysis
# --------------------------------------------------------------------------
def raw_identifiers(line):
    """Every identifier mentioned in an opaque :class:`Raw` line."""
    return set(_IDENT_RE.findall(line))


def load_buffers(expr, out=None):
    """Names of all buffers ``expr`` loads from."""
    if out is None:
        out = set()
    if isinstance(expr, Load):
        out.add(expr.buffer.name)
    for child in expr.children():
        load_buffers(child, out)
    return out


def stmt_reads(stmt):
    """Variable names (including buffer names) possibly read by the
    statement tree.  ``Raw`` lines read every identifier they mention."""
    out = set()
    for node in walk_statements(stmt):
        if isinstance(node, AssignStmt):
            out |= node.value.free_vars()
            if isinstance(node.target, Load):
                out.add(node.target.buffer.name)
                out |= node.target.index.free_vars()
        elif isinstance(node, AccumStmt):
            out |= node.value.free_vars()
            out |= node.target.free_vars()
        elif isinstance(node, ForLoop):
            out |= node.start.free_vars() | node.stop.free_vars()
        elif isinstance(node, WhileLoop):
            out |= node.cond.free_vars()
        elif isinstance(node, If):
            for cond, _ in node.branches:
                if isinstance(cond, Expr):
                    out |= cond.free_vars()
        elif isinstance(node, Raw):
            out |= raw_identifiers(node.line)
    return out


def stmt_writes(stmt):
    """Scalar variable names possibly assigned by the statement tree
    (assignment/accumulation targets, loop variables, and — to stay
    conservative — every identifier a ``Raw`` line mentions)."""
    out = set()
    for node in walk_statements(stmt):
        if isinstance(node, (AssignStmt, AccumStmt)):
            if isinstance(node.target, Var):
                out.add(node.target.name)
        elif isinstance(node, ForLoop):
            out.add(node.var.name)
        elif isinstance(node, Raw):
            out |= raw_identifiers(node.line)
    return out


def stmt_stores(stmt):
    """Buffer names possibly stored into by the statement tree
    (``buf[i] = ...`` targets plus every identifier in ``Raw`` lines,
    which may call mutating methods such as ``.fill`` or ``.append``)."""
    out = set()
    for node in walk_statements(stmt):
        if isinstance(node, (AssignStmt, AccumStmt)):
            if isinstance(node.target, Load):
                out.add(node.target.buffer.name)
        elif isinstance(node, Raw):
            out |= raw_identifiers(node.line)
    return out
