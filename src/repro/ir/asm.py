"""Target statement AST ("assembly") for emitted kernels.

Lowering produces these nodes; :mod:`repro.ir.emit` renders them as
Python source.  The AST is deliberately tiny — blocks, loops, branches,
assignments and comments — because everything interesting happens before
we reach it.
"""

from repro.ir.nodes import Expr, Load, Var, as_expr
from repro.ir.ops import Op, get_op
from repro.util.errors import ReproError


class Stmt:
    """Base class for target statements."""

    __slots__ = ()

    def is_nop(self):
        return False


class Block(Stmt):
    """A sequence of statements; nested blocks are flattened."""

    __slots__ = ("stmts",)

    def __init__(self, stmts=()):
        flat = []
        for stmt in stmts:
            if stmt is None or stmt.is_nop():
                continue
            if isinstance(stmt, Block):
                flat.extend(stmt.stmts)
            else:
                flat.append(stmt)
        self.stmts = tuple(flat)

    def is_nop(self):
        return not self.stmts

    def __repr__(self):
        return "Block(%d stmts)" % len(self.stmts)


class Nop(Stmt):
    """No operation (elided during emission)."""

    __slots__ = ()

    def is_nop(self):
        return True


class Comment(Stmt):
    """A source comment carried through to emitted code."""

    __slots__ = ("text",)

    def __init__(self, text):
        self.text = text


class AssignStmt(Stmt):
    """``target = value`` where target is a Var or a buffer element."""

    __slots__ = ("target", "value")

    def __init__(self, target, value):
        if isinstance(target, str):
            target = Var(target)
        if not isinstance(target, (Var, Load)):
            raise ReproError("bad assignment target: %r" % (target,))
        self.target = target
        self.value = as_expr(value)


class AccumStmt(Stmt):
    """``target <op>= value`` — an in-place reduction update."""

    __slots__ = ("target", "op", "value")

    def __init__(self, target, op, value):
        if isinstance(target, str):
            target = Var(target)
        if isinstance(op, str):
            op = get_op(op)
        if not isinstance(op, Op):
            raise ReproError("bad accumulation op: %r" % (op,))
        self.target = target
        self.op = op
        self.value = as_expr(value)


class ForLoop(Stmt):
    """``for var in range(start, stop): body`` (half-open)."""

    __slots__ = ("var", "start", "stop", "body")

    def __init__(self, var, start, stop, body):
        if isinstance(var, str):
            var = Var(var)
        self.var = var
        self.start = as_expr(start)
        self.stop = as_expr(stop)
        self.body = body if isinstance(body, Block) else Block([body])


class WhileLoop(Stmt):
    """``while cond: body``."""

    __slots__ = ("cond", "body")

    def __init__(self, cond, body):
        self.cond = as_expr(cond)
        self.body = body if isinstance(body, Block) else Block([body])


class If(Stmt):
    """``if/elif/else`` chain.

    ``branches`` is a list of ``(cond, block)`` pairs; a ``None``
    condition marks the trailing ``else``.
    """

    __slots__ = ("branches",)

    def __init__(self, branches):
        cleaned = []
        for cond, body in branches:
            if cond is not None:
                cond = as_expr(cond)
            body = body if isinstance(body, Block) else Block([body])
            cleaned.append((cond, body))
        if not cleaned:
            raise ReproError("If requires at least one branch")
        self.branches = tuple(cleaned)

    def is_nop(self):
        return all(body.is_nop() for _, body in self.branches)


class Raw(Stmt):
    """An opaque line of Python source (used sparingly, e.g. ``pass``)."""

    __slots__ = ("line",)

    def __init__(self, line):
        self.line = line


class FuncDef(Stmt):
    """Top-level function wrapper for a compiled kernel."""

    __slots__ = ("name", "params", "body", "returns")

    def __init__(self, name, params, body, returns=()):
        self.name = name
        self.params = tuple(params)
        self.body = body if isinstance(body, Block) else Block([body])
        self.returns = tuple(returns)


def block(*stmts):
    return Block(stmts)


def walk_statements(stmt):
    """Yield every statement in the tree, preorder."""
    yield stmt
    if isinstance(stmt, Block):
        for child in stmt.stmts:
            yield from walk_statements(child)
    elif isinstance(stmt, (ForLoop, WhileLoop, FuncDef)):
        yield from walk_statements(stmt.body)
    elif isinstance(stmt, If):
        for _, body in stmt.branches:
            yield from walk_statements(body)


def statement_exprs(stmt):
    """Yield the expressions referenced directly by one statement."""
    if isinstance(stmt, AssignStmt):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, AccumStmt):
        yield stmt.target
        yield stmt.value
    elif isinstance(stmt, ForLoop):
        yield stmt.start
        yield stmt.stop
    elif isinstance(stmt, WhileLoop):
        yield stmt.cond
    elif isinstance(stmt, If):
        for cond, _ in stmt.branches:
            if isinstance(cond, Expr):
                yield cond
