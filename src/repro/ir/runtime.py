"""Runtime helpers available inside emitted kernels.

Compiled kernels are executed with :func:`kernel_globals` as their
namespace, so every function here (and every registered op that renders
as a call) is reachable from emitted source.  Vectorized kernels also
reach numpy as ``_np`` for their slice operations.

The namespace is assembled once — a frozen base of static helpers plus
a snapshot of the op registry — and cheaply copied per ``exec``;
late-registered ops invalidate the snapshot via the registry's version
counter instead of forcing a full rebuild on every compile.
"""

import math
from bisect import bisect_left

import numpy as np

from repro.ir.ops import all_ops, registry_version


def _coalesce(*args):
    """First non-``None`` argument (the paper's ``coalesce``)."""
    for arg in args:
        if arg is not None:
            return arg
    return None


def _ifelse(cond, then, otherwise):
    return then if cond else otherwise


def _round_u8(value):
    """Round and clamp to [0, 255] — the paper's ``round(UInt8, x)``."""
    return max(0, min(255, int(round(float(value)))))


def _sqrt(value):
    return math.sqrt(value)


def search_ge(idx, lo, hi, key):
    """First position ``p`` in ``[lo, hi)`` with ``idx[p] >= key``.

    This is the ``search`` used by stepper/jumper ``seek`` functions in
    the paper (a binary search over a sorted coordinate array).
    """
    return bisect_left(idx, key, lo, hi)


#: Static helpers shared by every kernel, built once at import time.
_STATIC_HELPERS = {
    "_coalesce": _coalesce,
    "_ifelse": _ifelse,
    "_round_u8": _round_u8,
    "_sqrt": _sqrt,
    "search_ge": search_ge,
    "min": min,
    "max": max,
    "abs": abs,
    "_np": np,
}

_BASE_CACHE = {"version": None, "env": None}


def _base_globals():
    version = registry_version()
    if _BASE_CACHE["version"] != version:
        env = dict(_STATIC_HELPERS)
        for op in all_ops().values():
            if op.symbol is None and op.runtime_name not in env:
                env[op.runtime_name] = op.fn
        # env before version: a concurrent reader that sees the new
        # version must also see the matching snapshot.
        _BASE_CACHE["env"] = env
        _BASE_CACHE["version"] = version
    return _BASE_CACHE["env"]


def kernel_globals():
    """Fresh namespace for ``exec``-ing one emitted kernel."""
    return dict(_base_globals())
