"""Runtime helpers available inside emitted kernels.

Compiled kernels are executed with :func:`kernel_globals` as their
namespace, so every function here (and every registered op that renders
as a call) is reachable from emitted source.
"""

import math
from bisect import bisect_left

from repro.ir.ops import all_ops


def _coalesce(*args):
    """First non-``None`` argument (the paper's ``coalesce``)."""
    for arg in args:
        if arg is not None:
            return arg
    return None


def _ifelse(cond, then, otherwise):
    return then if cond else otherwise


def _round_u8(value):
    """Round and clamp to [0, 255] — the paper's ``round(UInt8, x)``."""
    return max(0, min(255, int(round(float(value)))))


def _sqrt(value):
    return math.sqrt(value)


def search_ge(idx, lo, hi, key):
    """First position ``p`` in ``[lo, hi)`` with ``idx[p] >= key``.

    This is the ``search`` used by stepper/jumper ``seek`` functions in
    the paper (a binary search over a sorted coordinate array).
    """
    return bisect_left(idx, key, lo, hi)


def kernel_globals():
    """Fresh namespace for ``exec``-ing one emitted kernel."""
    env = {
        "_coalesce": _coalesce,
        "_ifelse": _ifelse,
        "_round_u8": _round_u8,
        "_sqrt": _sqrt,
        "search_ge": search_ge,
        "min": min,
        "max": max,
        "abs": abs,
    }
    for op in all_ops().values():
        if op.symbol is None and op.runtime_name not in env:
            env[op.runtime_name] = op.fn
    return env
