"""Scalar expression IR.

These nodes describe *values* in emitted kernels: literals known at
compile time, runtime variables, operator applications, and loads from
flat numpy buffers.  Looplets produce these expressions as their leaves,
and the rewriter simplifies them (zero annihilation, constant folding)
before any code is emitted.

Expressions are immutable and structurally hashable, so they can be used
as dictionary keys (e.g. by the kernel cache).
"""

from repro.ir.ops import MISSING, Op, get_op
from repro.util.errors import ReproError


class Expr:
    """Base class for scalar IR expressions."""

    __slots__ = ()

    def key(self):
        """A hashable structural identity for this expression."""
        raise NotImplementedError

    def children(self):
        """Child expressions, in order."""
        return ()

    def rebuild(self, children):
        """Reconstruct this node with new children."""
        raise NotImplementedError

    def __eq__(self, other):
        return isinstance(other, Expr) and self.key() == other.key()

    def __ne__(self, other):
        return not self.__eq__(other)

    def __hash__(self):
        return hash(self.key())

    def free_vars(self):
        """The set of runtime variable names this expression reads."""
        out = set()
        _collect_free_vars(self, out)
        return out


def _collect_free_vars(expr, out):
    if isinstance(expr, Var):
        out.add(expr.name)
    for child in expr.children():
        _collect_free_vars(child, out)


class Literal(Expr):
    """A compile-time constant (number, bool, or the ``missing`` value)."""

    __slots__ = ("value",)

    def __init__(self, value):
        self.value = value

    def key(self):
        # Distinguish 1 from 1.0 from True: fold decisions depend on type.
        return ("lit", type(self.value).__name__, repr(self.value))

    def rebuild(self, children):
        return self

    def __repr__(self):
        return "Literal(%r)" % (self.value,)

    @property
    def is_missing(self):
        return self.value is MISSING


class Var(Expr):
    """A runtime variable in the emitted kernel (loop index, position...)."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def key(self):
        return ("var", self.name)

    def rebuild(self, children):
        return self

    def __repr__(self):
        return "Var(%s)" % self.name


class Call(Expr):
    """Application of a registered operator to argument expressions."""

    __slots__ = ("op", "args")

    def __init__(self, op, args):
        if isinstance(op, str):
            op = get_op(op)
        if not isinstance(op, Op):
            raise ReproError("Call op must be an Op, got %r" % (op,))
        self.op = op
        self.args = tuple(as_expr(a) for a in args)

    def key(self):
        return ("call", self.op.name) + tuple(a.key() for a in self.args)

    def children(self):
        return self.args

    def rebuild(self, children):
        return Call(self.op, tuple(children))

    def __repr__(self):
        return "Call(%s, %s)" % (self.op.name, list(self.args))


class Load(Expr):
    """A read of ``buffer[index]`` where buffer is a flat numpy array."""

    __slots__ = ("buffer", "index")

    def __init__(self, buffer, index):
        if isinstance(buffer, str):
            buffer = Var(buffer)
        self.buffer = buffer
        self.index = as_expr(index)

    def key(self):
        return ("load", self.buffer.key(), self.index.key())

    def children(self):
        return (self.buffer, self.index)

    def rebuild(self, children):
        buffer, index = children
        return Load(buffer, index)

    def __repr__(self):
        return "Load(%s, %r)" % (self.buffer.name, self.index)


def as_expr(value):
    """Coerce a Python value into an IR expression."""
    if isinstance(value, Expr):
        return value
    if value is MISSING or isinstance(value, (bool, int, float)):
        return Literal(value)
    if isinstance(value, str):
        return Var(value)
    # numpy scalars quack like Python numbers; normalize them.
    if hasattr(value, "item"):
        return Literal(value.item())
    raise ReproError("cannot convert %r to an IR expression" % (value,))


def substitute(expr, mapping):
    """Replace variables by expressions.

    ``mapping`` maps variable *names* to replacement expressions.
    """
    if isinstance(expr, Var) and expr.name in mapping:
        return as_expr(mapping[expr.name])
    children = expr.children()
    if not children:
        return expr
    new_children = [substitute(child, mapping) for child in children]
    if all(new is old for new, old in zip(new_children, children)):
        return expr
    return expr.rebuild(new_children)


def postorder_map(expr, fn):
    """Rebuild ``expr`` bottom-up, applying ``fn`` to every node."""
    children = expr.children()
    if children:
        new_children = [postorder_map(child, fn) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            expr = expr.rebuild(new_children)
    result = fn(expr)
    return expr if result is None else result


class Extent:
    """A half-open index range ``[start, stop)`` with symbolic bounds."""

    __slots__ = ("start", "stop")

    def __init__(self, start, stop):
        self.start = as_expr(start)
        self.stop = as_expr(stop)

    def key(self):
        return ("extent", self.start.key(), self.stop.key())

    def __eq__(self, other):
        return isinstance(other, Extent) and self.key() == other.key()

    def __hash__(self):
        return hash(self.key())

    def __repr__(self):
        return "Extent(%r, %r)" % (self.start, self.stop)

    def static_length(self):
        """The number of iterations if statically known, else ``None``."""
        if isinstance(self.start, Literal) and isinstance(self.stop, Literal):
            return max(0, self.stop.value - self.start.value)
        # A common dynamic-but-unit shape: [x, x + 1).
        stop = self.stop
        if (isinstance(stop, Call) and stop.op.name == "add"
                and len(stop.args) == 2
                and stop.args[0] == self.start
                and stop.args[1] == Literal(1)):
            return 1
        if self.start == self.stop:
            return 0
        return None

    def is_certainly_empty(self):
        length = self.static_length()
        return length == 0

    def is_unit(self):
        return self.static_length() == 1
