"""Scalar expression IR, target statement AST, and source emission."""

from repro.ir import asm, build, ops
from repro.ir.emit import emit
from repro.ir.nodes import (
    Call,
    Expr,
    Extent,
    Literal,
    Load,
    Var,
    as_expr,
    postorder_map,
    substitute,
)
from repro.ir.ops import MISSING, Op, all_ops, get_op, register_op
from repro.ir.optimize import DEFAULT_OPT_LEVEL, optimize_kernel
from repro.ir.pretty import expr_source, lhs_source, slice_source

__all__ = [
    "DEFAULT_OPT_LEVEL",
    "optimize_kernel",
    "slice_source",
    "asm",
    "build",
    "ops",
    "emit",
    "Call",
    "Expr",
    "Extent",
    "Literal",
    "Load",
    "Var",
    "as_expr",
    "postorder_map",
    "substitute",
    "MISSING",
    "Op",
    "all_ops",
    "get_op",
    "register_op",
    "expr_source",
    "lhs_source",
]
