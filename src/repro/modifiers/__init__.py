"""Index modifiers and protocol helpers (Sections 5.2 and 8).

The core modifiers — ``offset``, ``window``, ``permit`` — are defined
with the eDSL builders and re-exported here; the compiler wraps the
unfurled looplets accordingly (shift / truncate+shift / missing-padded
pipeline).

This module adds :func:`one_hot`, the paper's *mask protocol*
(``Pipeline(Run(false), true, Run(false))``): a virtual boolean vector
that is true at exactly one (runtime-computed) position.  It turns a
scatter ``A[i] = B[f(i)]`` into sequential iteration via a sieve::

    @∀ i A[i] = B[f(i)]  →  @∀ i j  @sieve mask[j]  A[i] = B[j]

where ``mask = one_hot(n, f(i))`` exposes the single true position as
structure, so the compiler skips everything else.
"""

from repro.cin.builders import coalesce, offset, permit, window
from repro.formats.custom import LoopletTensor
from repro.ir import build
from repro.ir.nodes import Literal, as_expr
from repro.looplets import Phase, Pipeline, Run

__all__ = ["coalesce", "offset", "permit", "window", "one_hot"]


def one_hot(size, position, name=None):
    """A virtual boolean vector: true only at ``position``.

    ``position`` is any scalar IR expression (it may reference outer
    loop indices).  Unfurls to the paper's mask protocol, so coiterating
    with it reduces the loop to a single guarded element.
    """
    position = as_expr(position)

    def unfurl(ctx, pos):
        del pos
        return Pipeline([
            Phase(Run(Literal(False)), stride=position),
            Phase(Run(Literal(True)),
                  stride=build.plus(position, 1)),
            Phase(Run(Literal(False))),
        ])

    return LoopletTensor(size, unfurl, name=name or "mask", fill=False)
