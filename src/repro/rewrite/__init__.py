"""Rewrite rules and the fixpoint simplifier (Figure 5 of the paper)."""

from repro.rewrite.rules import DEFAULT_EXPR_RULES
from repro.rewrite.simplify import simplify_expr

__all__ = ["DEFAULT_EXPR_RULES", "simplify_expr"]
