"""Fixpoint rewrite engine over scalar expressions.

The engine rewrites bottom-up: children first, then the node itself,
repeating at each node until no rule fires.  A global iteration bound
guards against non-terminating user rule sets — hitting it raises
rather than silently returning half-simplified IR.
"""

from repro.ir.nodes import Expr
from repro.rewrite.rules import DEFAULT_EXPR_RULES
from repro.util.errors import ReproError

_MAX_NODE_ITERATIONS = 100


def simplify_expr(expr, rules=DEFAULT_EXPR_RULES):
    """Simplify ``expr`` to a fixpoint of ``rules``."""
    if not isinstance(expr, Expr):
        raise ReproError("simplify_expr expects an Expr, got %r" % (expr,))
    return _simplify(expr, tuple(rules))


def _simplify(expr, rules):
    children = expr.children()
    if children:
        new_children = [_simplify(child, rules) for child in children]
        if any(new is not old for new, old in zip(new_children, children)):
            expr = expr.rebuild(new_children)
    for _ in range(_MAX_NODE_ITERATIONS):
        replacement = _apply_first(expr, rules)
        if replacement is None:
            return expr
        # A rule may build brand-new subtrees; normalize them too.
        expr = _simplify_children(replacement, rules)
    raise ReproError("rewrite did not reach a fixpoint at %r" % (expr,))


def _simplify_children(expr, rules):
    children = expr.children()
    if not children:
        return expr
    new_children = [_simplify(child, rules) for child in children]
    if any(new is not old for new, old in zip(new_children, children)):
        expr = expr.rebuild(new_children)
    return expr


def _apply_first(expr, rules):
    for rule in rules:
        replacement = rule(expr)
        if replacement is not None and replacement != expr:
            return replacement
    return None
