"""Expression rewrite rules (Figure 5 of the paper).

A rule is a callable taking an expression and returning either a
replacement expression or ``None`` when it does not apply.  The default
rule set implements the mathematical-property rules the paper lists:
constant folding, flattening of associative operators, identity and
annihilator elements (``x * 0 => 0``, ``x + 0 => x``, ``or(..., true,
...) => true``), negation normalization, ``missing`` propagation, and
``coalesce`` short-circuiting.

Users can extend the set with domain rules (semirings and beyond), as
the paper encourages — pass extra rules to
:func:`repro.rewrite.simplify.simplify_expr`.
"""

from repro.ir import build, ops
from repro.ir.nodes import Call, Literal

_VARIADIC_BUILDERS = {
    "add": build.plus,
    "mul": build.times,
    "min": build.minimum,
    "max": build.maximum,
    "and": build.land,
    "or": build.lor,
}


def rule_missing_propagation(expr):
    """``f(a..., missing, b...) => missing`` for propagating operators."""
    if not isinstance(expr, Call) or not expr.op.propagates_missing:
        return None
    if any(isinstance(a, Literal) and a.is_missing for a in expr.args):
        return Literal(ops.MISSING)
    return None


def rule_renormalize(expr):
    """Rebuild calls through the smart constructors.

    This one rule subsumes flattening, identity/annihilator elements and
    constant folding, because the constructors in :mod:`repro.ir.build`
    perform those simplifications on construction.
    """
    if not isinstance(expr, Call):
        return None
    builder = _VARIADIC_BUILDERS.get(expr.op.name)
    if builder is not None:
        out = builder(*expr.args)
    elif expr.op.name == "coalesce":
        out = build.coalesce(*expr.args)
    elif expr.op.name == "sub":
        out = build.minus(*expr.args)
    elif all(isinstance(a, Literal) for a in expr.args):
        out = Literal(expr.op.fold(*[a.value for a in expr.args]))
    else:
        return None
    return None if out == expr else out


def rule_double_negation(expr):
    """``-(-a) => a``."""
    if (isinstance(expr, Call) and expr.op.name == "neg"
            and isinstance(expr.args[0], Call)
            and expr.args[0].op.name == "neg"):
        return expr.args[0].args[0]
    return None


def rule_mul_of_negation(expr):
    """``*(a..., -b, c...) => -(*(a..., b, c...))``."""
    if not isinstance(expr, Call) or expr.op.name != "mul":
        return None
    for position, arg in enumerate(expr.args):
        if isinstance(arg, Call) and arg.op.name == "neg":
            rest = list(expr.args)
            rest[position] = arg.args[0]
            return build.negate(build.times(*rest))
    return None


def rule_sub_zero_lhs(expr):
    """``0 - b => -b``."""
    if (isinstance(expr, Call) and expr.op.name == "sub"
            and isinstance(expr.args[0], Literal)
            and expr.args[0].value == 0
            and not isinstance(expr.args[0].value, bool)):
        return build.negate(expr.args[1])
    return None


def rule_not_not(expr):
    """``not not a => a``."""
    if (isinstance(expr, Call) and expr.op.name == "not"
            and isinstance(expr.args[0], Call)
            and expr.args[0].op.name == "not"):
        return expr.args[0].args[0]
    return None


def rule_self_comparison(expr):
    """``x == x => true`` and ``x != x => false`` for identical terms.

    All IR expressions are pure, so structural equality implies value
    equality (floating NaN never appears as a literal index).
    """
    if not isinstance(expr, Call) or len(expr.args) != 2:
        return None
    lhs, rhs = expr.args
    if lhs != rhs:
        return None
    if expr.op.name in ("eq", "le", "ge"):
        return Literal(True)
    if expr.op.name in ("ne", "lt", "gt"):
        return Literal(False)
    return None


def rule_ifelse_literal_condition(expr):
    """``ifelse(true, a, b) => a`` and ``ifelse(false, a, b) => b``."""
    if (isinstance(expr, Call) and expr.op.name == "ifelse"
            and isinstance(expr.args[0], Literal)):
        return expr.args[1] if expr.args[0].value else expr.args[2]
    return None


def _affine_parts(expr):
    """Decompose ``expr`` as ``base + offset`` with an integer offset.

    Returns ``(base_keys, offset)`` where ``base_keys`` is a sorted
    tuple of structural keys of the non-constant terms.  Two
    expressions with equal bases differ by a known constant, letting
    comparisons like ``stop - 1 < stop`` fold statically — which is
    what turns spike truncations into clean runs instead of runtime
    switches.
    """
    if isinstance(expr, Literal):
        value = expr.value
        if isinstance(value, int) and not isinstance(value, bool):
            return (), value
        return (expr.key(),), 0
    if isinstance(expr, Call) and expr.op.name == "add":
        bases = []
        offset = 0
        for arg in expr.args:
            arg_bases, arg_offset = _affine_parts(arg)
            bases.extend(arg_bases)
            offset += arg_offset
        return tuple(sorted(bases)), offset
    if isinstance(expr, Call) and expr.op.name == "sub":
        lhs_bases, lhs_offset = _affine_parts(expr.args[0])
        rhs = expr.args[1]
        if (isinstance(rhs, Literal) and isinstance(rhs.value, int)
                and not isinstance(rhs.value, bool)):
            return lhs_bases, lhs_offset - rhs.value
    return (expr.key(),), 0


_COMPARE_BY_OFFSET = {
    "eq": lambda d: d == 0,
    "ne": lambda d: d != 0,
    "lt": lambda d: d < 0,
    "le": lambda d: d <= 0,
    "gt": lambda d: d > 0,
    "ge": lambda d: d >= 0,
}


def rule_affine_comparison(expr):
    """Fold comparisons of expressions differing by an integer constant:
    ``x - 1 == x => false``, ``x < x + 2 => true``."""
    if not isinstance(expr, Call) or len(expr.args) != 2:
        return None
    compare = _COMPARE_BY_OFFSET.get(expr.op.name)
    if compare is None:
        return None
    lhs_bases, lhs_offset = _affine_parts(expr.args[0])
    rhs_bases, rhs_offset = _affine_parts(expr.args[1])
    if lhs_bases != rhs_bases:
        return None
    return Literal(compare(lhs_offset - rhs_offset))


DEFAULT_EXPR_RULES = (
    rule_missing_propagation,
    rule_renormalize,
    rule_double_negation,
    rule_mul_of_negation,
    rule_sub_zero_lhs,
    rule_not_not,
    rule_self_comparison,
    rule_affine_comparison,
    rule_ifelse_literal_condition,
)
