"""Discover a C compiler, build per-kernel shared objects, load them.

Discovery order: the ``FL_CC`` environment variable (a name resolved
on ``PATH`` or an absolute path), then ``cc``, ``gcc``, ``clang``.
The result is memoized per process; tests monkeypatch
:func:`compiler_path` (or set ``FL_CC`` to a bogus name) to exercise
the no-compiler degradation path.

Compilation shells out — ``cc -O2 -fPIC -shared -std=c99`` — into a
per-process scratch directory and is memoized by the source digest, so
one process compiles each distinct kernel at most once no matter how
many cache tiers ask.  No ``-ffast-math``-style flags are ever passed:
the C backend's contract is bit-identity with the python backend.

Loading goes through :mod:`ctypes`.  The exported symbol is
``int64_t <name>(void **args)`` and ``ctypes`` releases the GIL for
the duration of every foreign call, which is what lets the batch
engine's ``threads`` executor scale on C kernels.  The returned entry
point is a plain Python callable taking the same positional numpy
buffers as the python backend's function; per-binding pointer arrays
are validated once and memoized (keyed by argument identity, holding
references so the identities stay pinned), keeping steady-state call
overhead to one dict lookup plus the foreign call.
"""

import atexit
import ctypes
import hashlib
import os
import shutil
import subprocess
import tempfile
import threading
from collections import OrderedDict

import numpy as np

from repro.util.errors import ReproError

#: Compiler names probed on PATH, in order, when ``FL_CC`` is unset.
COMPILER_CANDIDATES = ("cc", "gcc", "clang")

#: Flags passed to every kernel compile.  ``-lm`` trails the source so
#: the math helpers (``rint``, ``floor``, ``fmod``) resolve at link
#: time on toolchains that do not link libm implicitly.
CFLAGS = ("-O2", "-fPIC", "-shared", "-std=c99", "-fvisibility=hidden")

#: Per-binding pointer arrays memoized per kernel entry (LRU).
_BINDING_MEMO_CAP = 64


class ToolchainError(ReproError):
    """No usable C compiler, or a kernel failed to compile or load."""


_lock = threading.RLock()
_compiler = None
_compiler_probed = False
_build_dir = None
_entries = {}  # source digest -> (so_path, symbol name)


def compiler_path():
    """Absolute path of the C compiler, or ``None`` when unavailable.

    Honors ``FL_CC`` (never falling back past an explicit setting: a
    misspelled ``FL_CC`` reads as *no toolchain*, not as a silent
    switch to a different compiler).  Memoized; tests monkeypatch this
    function or call :func:`reset` after changing the environment.
    """
    global _compiler, _compiler_probed
    with _lock:
        if _compiler_probed:
            return _compiler
        override = os.environ.get("FL_CC")
        if override:
            path = shutil.which(override)
            if path is None and os.path.isabs(override) \
                    and os.access(override, os.X_OK):
                path = override
            _compiler = path
        else:
            _compiler = next(
                (path for path in map(shutil.which, COMPILER_CANDIDATES)
                 if path), None)
        _compiler_probed = True
        return _compiler


def have_toolchain():
    """True when a C compiler was found (see :func:`compiler_path`)."""
    return compiler_path() is not None


def reset():
    """Forget the memoized compiler probe (tests)."""
    global _compiler, _compiler_probed
    with _lock:
        _compiler = None
        _compiler_probed = False


def _scratch_dir():
    global _build_dir
    with _lock:
        if _build_dir is None:
            _build_dir = tempfile.mkdtemp(prefix="fl-ckernels-")
            atexit.register(shutil.rmtree, _build_dir,
                            ignore_errors=True)
        return _build_dir


def source_digest(c_source):
    """Stable content digest of one generated C source."""
    return hashlib.sha256(c_source.encode("utf-8")).hexdigest()[:32]


def compile_shared(c_source, name="kernel"):
    """Compile ``c_source`` into a shared object; returns its path.

    Memoized by source digest per process.  Raises
    :class:`ToolchainError` when no compiler is available or the
    compile fails (the compiler's stderr is carried in the message —
    a generated kernel failing to compile is an emitter bug worth the
    full diagnostic).
    """
    digest = source_digest(c_source)
    with _lock:
        cached = _entries.get(digest)
        if cached is not None:
            return cached[0]
    cc = compiler_path()
    if cc is None:
        raise ToolchainError(
            "no C compiler found (set FL_CC or install cc/gcc/clang)")
    scratch = _scratch_dir()
    c_path = os.path.join(scratch, "k_%s.c" % digest)
    so_path = os.path.join(scratch, "k_%s.so" % digest)
    with open(c_path, "w") as handle:
        handle.write(c_source)
    command = [cc, *CFLAGS, "-o", so_path, c_path, "-lm"]
    proc = subprocess.run(command, capture_output=True, text=True)
    if proc.returncode != 0 or not os.path.exists(so_path):
        raise ToolchainError(
            "C compile of kernel %r failed (%s exit %d):\n%s"
            % (name, cc, proc.returncode,
               proc.stderr.strip() or proc.stdout.strip()))
    with _lock:
        _entries[digest] = (so_path, name)
    return so_path


def load_symbol(so_path, name):
    """The raw ``int64_t (*)(void **)`` entry from one shared object.

    Raises :class:`ToolchainError` when the object cannot be loaded or
    does not export ``name`` (a foreign ``.so`` — wrong architecture,
    truncated store file — must degrade, not crash the compile).
    """
    try:
        library = ctypes.CDLL(so_path)
        fn = getattr(library, name)
    except (OSError, AttributeError) as exc:
        raise ToolchainError(
            "cannot load kernel %r from %s: %s" % (name, so_path, exc))
    fn.restype = ctypes.c_int64
    fn.argtypes = [ctypes.POINTER(ctypes.c_void_p)]
    return fn


def make_entry(cfn, name, param_dtypes):
    """Wrap a raw C entry as a Python callable over numpy buffers.

    The wrapper validates each distinct argument binding once —
    ndarray, matching dtype, C-contiguous — then memoizes its pointer
    array keyed by argument identities.  Entries hold references to
    their arrays, so a memoized identity can never be recycled while
    its pointers are still served; the memo is a small LRU so retired
    bindings release their arrays.
    """
    dtypes = [np.dtype(dtype) for dtype in param_dtypes]
    count = len(dtypes)
    array_type = ctypes.c_void_p * count
    memo = OrderedDict()
    memo_lock = threading.Lock()

    def entry(*args):
        key = tuple(map(id, args))
        with memo_lock:
            cached = memo.get(key)
            if cached is not None:
                memo.move_to_end(key)
        if cached is None:
            if len(args) != count:
                raise ToolchainError(
                    "kernel %r takes %d buffers, got %d"
                    % (name, count, len(args)))
            for position, (array, dtype) in enumerate(
                    zip(args, dtypes)):
                if not isinstance(array, np.ndarray):
                    raise ToolchainError(
                        "kernel %r argument %d is %r, not an ndarray"
                        % (name, position, type(array).__name__))
                if array.dtype != dtype:
                    raise ToolchainError(
                        "kernel %r argument %d has dtype %s, compiled "
                        "for %s" % (name, position, array.dtype,
                                    dtype))
                if not array.flags["C_CONTIGUOUS"]:
                    raise ToolchainError(
                        "kernel %r argument %d is not C-contiguous"
                        % (name, position))
            pointers = array_type(
                *[array.ctypes.data for array in args])
            cached = (pointers, args)
            with memo_lock:
                memo[key] = cached
                while len(memo) > _BINDING_MEMO_CAP:
                    memo.popitem(last=False)
        # The foreign call releases the GIL (plain ctypes behavior):
        # this is what lets the threads executor scale on C kernels.
        return int(cfn(cached[0]))

    entry.__name__ = name
    return entry


def kernel_entry(c_source, name, param_dtypes, so_path=None):
    """``(entry callable, so_path)`` for one generated kernel.

    Prefers loading ``so_path`` (a store-persisted shared object) when
    given; any load failure falls through to recompiling from
    ``c_source``, so a stale or foreign ``.so`` costs one compile, not
    a crash.  Raises :class:`ToolchainError` only when the source
    cannot be compiled either (e.g. no toolchain).
    """
    if so_path is not None and os.path.exists(so_path):
        try:
            return (make_entry(load_symbol(so_path, name), name,
                               param_dtypes), so_path)
        except ToolchainError:
            pass
    built = compile_shared(c_source, name=name)
    return (make_entry(load_symbol(built, name), name, param_dtypes),
            built)
