"""Native code generation backends for compiled kernels.

The compiler's default backend ``exec``s emitted Python source
(:mod:`repro.ir.emit`).  This package adds the ``"c"`` backend: the
same optimized target AST lowered to C99 (:mod:`repro.codegen.c_emit`),
compiled into a per-kernel shared object by the system C compiler
(:mod:`repro.codegen.toolchain`), and called through :mod:`ctypes` —
which releases the GIL for the duration of the call, so the batch
engine's ``threads`` executor scales on C kernels.

The backend is *best effort by design*: constructs the C emitter does
not cover (vectorized numpy slice operations, ``missing``-valued
expressions, output builders, buffers outside int64/float64/bool) raise
:class:`CUnsupportedError` during compilation and the kernel falls
back to the python backend — loudly (one log line per distinct
reason, and a queryable ledger: :func:`fallback_events`) but
gracefully (the compile always succeeds).  The same degradation runs
when no C compiler is installed.

Both modules here are rooted in the store's codegen fingerprint
(:data:`repro.store.disk._CODEGEN_ROOTS`), so editing the C emitter or
the toolchain invalidates previously stored kernels automatically.
"""

import logging
import threading

_log = logging.getLogger("repro.codegen")

#: Backend names ``compile_kernel`` accepts.
BACKENDS = ("python", "c")

_FALLBACKS = []  # (kernel name, reason) in occurrence order
_FALLBACK_SEEN = set()  # distinct reasons already logged
_FALLBACK_LOCK = threading.Lock()
_FALLBACK_CAP = 1024


def note_fallback(kernel_name, reason):
    """Record one C-backend-to-python fallback.

    Every event lands in the ledger (bounded); the first occurrence of
    each distinct reason is also logged at WARNING level, so a fleet
    silently running interpreted kernels is visible without drowning
    logs under one line per compile.
    """
    reason = str(reason)
    with _FALLBACK_LOCK:
        if len(_FALLBACKS) < _FALLBACK_CAP:
            _FALLBACKS.append((kernel_name, reason))
        if reason not in _FALLBACK_SEEN:
            _FALLBACK_SEEN.add(reason)
            _log.warning(
                "kernel %r: C backend unavailable, using the python "
                "backend (%s)", kernel_name, reason)


def fallback_events():
    """The ``(kernel name, reason)`` fallback ledger, oldest first."""
    with _FALLBACK_LOCK:
        return list(_FALLBACKS)


def clear_fallback_events():
    """Reset the fallback ledger (tests)."""
    with _FALLBACK_LOCK:
        del _FALLBACKS[:]
        _FALLBACK_SEEN.clear()


from repro.codegen.c_emit import CUnsupportedError, emit_c  # noqa: E402
from repro.codegen.toolchain import (  # noqa: E402
    ToolchainError,
    compiler_path,
    have_toolchain,
    kernel_entry,
)

__all__ = [
    "BACKENDS",
    "CUnsupportedError",
    "ToolchainError",
    "clear_fallback_events",
    "compiler_path",
    "emit_c",
    "fallback_events",
    "have_toolchain",
    "kernel_entry",
    "note_fallback",
]
