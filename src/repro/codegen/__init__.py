"""Native code generation backends for compiled kernels.

The compiler's default backend ``exec``s emitted Python source
(:mod:`repro.ir.emit`).  This package adds the ``"c"`` backend: the
same optimized target AST lowered to C99 (:mod:`repro.codegen.c_emit`),
compiled into a per-kernel shared object by the system C compiler
(:mod:`repro.codegen.toolchain`), and called through :mod:`ctypes` —
which releases the GIL for the duration of the call, so the batch
engine's ``threads`` executor scales on C kernels.

The backend is *best effort by design*: constructs the C emitter does
not cover (vectorized numpy slice operations, ``missing``-valued
expressions, output builders, buffers outside int64/float64/bool) raise
:class:`CUnsupportedError` during compilation and the kernel falls
back to the python backend — loudly (one log line per distinct
reason, and a queryable ledger: :func:`fallback_events`) but
gracefully (the compile always succeeds).  The same degradation runs
when no C compiler is installed.

Both modules here are rooted in the store's codegen fingerprint
(:data:`repro.store.disk._CODEGEN_ROOTS`), so editing the C emitter or
the toolchain invalidates previously stored kernels automatically.
"""

import collections
import logging
import threading

_log = logging.getLogger("repro.codegen")

#: Backend names ``compile_kernel`` accepts.
BACKENDS = ("python", "c")

_FALLBACK_CAP = 1024
#: (kernel name, reason) in occurrence order.  A bounded deque keeps
#: the *newest* events when the cap overflows — a long-lived worker
#: fleet must report its current degradation, not a frozen snapshot of
#: its first thousand compiles.  Overflow is counted, never silent.
_FALLBACKS = collections.deque(maxlen=_FALLBACK_CAP)
_FALLBACK_DROPPED = 0  # oldest events displaced past the cap
_FALLBACK_SEEN = set()  # distinct reasons already logged
_FALLBACK_LOCK = threading.Lock()


class FallbackLog(list):
    """The fallback ledger snapshot: a plain list of ``(kernel name,
    reason)`` pairs plus ``dropped`` — how many older events the
    bounded ledger displaced to stay within its cap."""

    def __init__(self, events, dropped):
        super().__init__(events)
        self.dropped = int(dropped)


def note_fallback(kernel_name, reason):
    """Record one C-backend-to-python fallback.

    Every event lands in the ledger (bounded: past the cap the oldest
    events are displaced and counted in ``fallback_events().dropped``);
    the first occurrence of each distinct reason is also logged at
    WARNING level, so a fleet silently running interpreted kernels is
    visible without drowning logs under one line per compile.
    """
    global _FALLBACK_DROPPED
    reason = str(reason)
    with _FALLBACK_LOCK:
        if (_FALLBACKS.maxlen is not None
                and len(_FALLBACKS) == _FALLBACKS.maxlen):
            _FALLBACK_DROPPED += 1
        _FALLBACKS.append((kernel_name, reason))
        if reason not in _FALLBACK_SEEN:
            _FALLBACK_SEEN.add(reason)
            _log.warning(
                "kernel %r: C backend unavailable, using the python "
                "backend (%s)", kernel_name, reason)


def fallback_events():
    """The ``(kernel name, reason)`` fallback ledger, oldest first.

    Returns a :class:`FallbackLog` — list-compatible, with a
    ``dropped`` attribute counting events the cap displaced."""
    with _FALLBACK_LOCK:
        return FallbackLog(_FALLBACKS, _FALLBACK_DROPPED)


def clear_fallback_events():
    """Reset the fallback ledger (tests)."""
    global _FALLBACK_DROPPED
    with _FALLBACK_LOCK:
        _FALLBACKS.clear()
        _FALLBACK_DROPPED = 0
        _FALLBACK_SEEN.clear()


from repro.codegen.c_emit import CUnsupportedError, emit_c  # noqa: E402
from repro.codegen.toolchain import (  # noqa: E402
    ToolchainError,
    compiler_path,
    have_toolchain,
    kernel_entry,
)

__all__ = [
    "BACKENDS",
    "CUnsupportedError",
    "FallbackLog",
    "ToolchainError",
    "clear_fallback_events",
    "compiler_path",
    "emit_c",
    "fallback_events",
    "have_toolchain",
    "kernel_entry",
    "note_fallback",
]
