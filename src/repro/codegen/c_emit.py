"""Lower the optimized target AST to C99.

The emitter consumes exactly the :mod:`repro.ir.asm` statement tree the
python backend would render (:mod:`repro.ir.emit`) — *after* the
optimizer pipeline ran — and produces one self-contained C99
translation unit exporting ``int64_t <name>(void **args)``.  Every
kernel parameter arrives as one slot of the ``args`` pointer array and
is cast to its typed pointer in the prologue; buffer element types are
fixed at compile time from the seed arrays' dtypes, which is sound
because format signatures pin dtypes across rebinds (see
:meth:`repro.compiler.kernel.CompiledKernel.bind`).

Semantics contract: emitted C must be **bit-identical** to the python
backend on every supported kernel (the ``c_backend`` fuzz oracle and
``tests/codegen`` enforce this).  The translation therefore reproduces
Python arithmetic exactly where C differs:

* ``/`` always divides in ``double`` (``fl_div``),
* ``//`` and ``%`` use floor-division / sign-of-divisor semantics
  (``fl_floordiv_*`` / ``fl_mod_*``),
* ``min``/``max`` return the *first* minimal/maximal argument like the
  Python builtins (ternary helpers, not ``fmin``/``fmax``),
* ``round_u8`` rounds half-to-even (``rint`` under the default
  rounding mode, matching Python's ``round``),
* the ``search_ge``/``search_abs_ge`` protocol helpers are the same
  binary searches as :mod:`repro.ir.runtime`, over the typed pointer.

Anything the emitter cannot translate with that guarantee raises
:class:`CUnsupportedError` — :class:`Raw` statements (vectorized numpy
slices, output-builder method calls), ``missing``/``coalesce``,
unregistered ops, buffers outside :data:`SUPPORTED_DTYPES`, and loop
variables read after their loop (Python leaves ``stop - 1``, C leaves
``stop``).  The caller falls back to the python backend.
"""

from repro.ir import asm
from repro.ir.nodes import Call, Literal, Load, Var
from repro.ir.ops import MISSING
from repro.util.errors import ReproError

#: Internal type lattice: BOOL < I64 < F64 (join = promotion).
BOOL, I64, F64 = "bool", "i64", "f64"

_RANK = {BOOL: 0, I64: 1, F64: 2}

#: numpy dtype names the C backend accepts as kernel buffers.  numpy
#: ``bool_`` is one byte, same as C99 ``bool`` on every mainstream ABI,
#: and C assignment to ``bool`` normalizes nonzero to ``true`` exactly
#: like numpy boolean-array stores.
SUPPORTED_DTYPES = {"int64": I64, "float64": F64, "bool": BOOL}

_CTYPE = {BOOL: "bool", I64: "int64_t", F64: "double"}
_CZERO = {BOOL: "false", I64: "INT64_C(0)", F64: "0.0"}

#: C keywords plus identifiers the prelude reserves; colliding kernel
#: names get a ``v_`` prefix (consistently, via the rename map).
_RESERVED = frozenset("""
    auto break case char const continue default do double else enum
    extern float for goto if inline int long register restrict return
    short signed sizeof static struct switch typedef union unsigned
    void volatile while _Bool bool true false
""".split())

_ATOM = 100
_TERNARY = 3


class CUnsupportedError(ReproError):
    """The C emitter cannot translate this kernel bit-identically."""


_PRELUDE = r"""#include <stdint.h>
#include <stdbool.h>
#include <math.h>

static inline double fl_div(double a, double b) { return a / b; }

static inline int64_t fl_floordiv_i64(int64_t a, int64_t b) {
    int64_t q = a / b;
    if ((a % b != 0) && ((a < 0) != (b < 0))) q -= 1;
    return q;
}

static inline int64_t fl_mod_i64(int64_t a, int64_t b) {
    int64_t r = a % b;
    if (r != 0 && ((r < 0) != (b < 0))) r += b;
    return r;
}

static inline double fl_floordiv_f64(double a, double b) {
    return floor(a / b);
}

static inline double fl_mod_f64(double a, double b) {
    double r = fmod(a, b);
    if (r != 0.0 && ((r < 0.0) != (b < 0.0))) r += b;
    return r;
}

static inline int64_t fl_min_i64(int64_t a, int64_t b) {
    return b < a ? b : a;
}

static inline int64_t fl_max_i64(int64_t a, int64_t b) {
    return b > a ? b : a;
}

static inline double fl_min_f64(double a, double b) {
    return b < a ? b : a;
}

static inline double fl_max_f64(double a, double b) {
    return b > a ? b : a;
}

static inline int64_t fl_abs_i64(int64_t a) { return a < 0 ? -a : a; }

static inline int64_t fl_round_u8(double v) {
    double r = rint(v);
    if (r < 0.0) return 0;
    if (r > 255.0) return 255;
    return (int64_t) r;
}

static inline int64_t fl_search_ge(const int64_t *idx, int64_t lo,
                                   int64_t hi, int64_t key) {
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        if (idx[mid] < key) lo = mid + 1;
        else hi = mid;
    }
    return lo;
}

static inline int64_t fl_search_abs_ge(const int64_t *idx, int64_t lo,
                                       int64_t hi, int64_t key) {
    while (lo < hi) {
        int64_t mid = (lo + hi) / 2;
        int64_t v = idx[mid];
        if ((v < 0 ? -v : v) < key) lo = mid + 1;
        else hi = mid;
    }
    return lo;
}
"""


def _join(a, b):
    if a is None:
        return b
    if b is None:
        return a
    return a if _RANK[a] >= _RANK[b] else b


def _arith(*types):
    """Result type of +, -, * over ``types`` (bools promote to int)."""
    joined = None
    for t in types:
        joined = _join(joined, t)
    return _join(joined, I64) if joined is not None else None


class _Emitter:
    """One emission pass over one kernel function."""

    def __init__(self, func, param_dtypes):
        self.func = func
        self.params = tuple(func.params)
        self.param_types = {}
        for name in self.params:
            dtype = str(param_dtypes.get(name))
            elem = SUPPORTED_DTYPES.get(dtype)
            if elem is None:
                raise CUnsupportedError(
                    "buffer %r has dtype %s (C backend supports %s)"
                    % (name, dtype,
                       "/".join(sorted(SUPPORTED_DTYPES))))
            self.param_types[name] = elem
        self.env = {}           # scalar name -> lattice type
        self.decl_order = []    # scalar names in first-assignment order
        self.stored = asm.stmt_stores(func)
        self.renames = {}
        self._temp = 0

    # -- analysis ------------------------------------------------------
    def analyze(self):
        self._reject_raw()
        self._infer_types()
        self._check_loop_vars()
        self._build_renames()

    def _reject_raw(self):
        for node in asm.walk_statements(self.func):
            if isinstance(node, asm.Raw):
                raise CUnsupportedError(
                    "opaque statement %r (vectorized numpy or builder "
                    "call)" % node.line)

    def _infer_types(self):
        for _ in range(8):
            before = dict(self.env)
            self._sweep(self.func.body)
            if self.env == before:
                break
        for name in self.env:
            if self.env[name] is None:
                self.env[name] = I64

    def _sweep(self, stmt):
        if isinstance(stmt, asm.Block):
            for child in stmt.stmts:
                self._sweep(child)
        elif isinstance(stmt, asm.AssignStmt):
            value = self._expr_type(stmt.value)
            if isinstance(stmt.target, Var):
                self._assign(stmt.target.name, value)
            else:
                self._store_target(stmt.target)
        elif isinstance(stmt, asm.AccumStmt):
            value = self._expr_type(stmt.value)
            if isinstance(stmt.target, Var):
                name = stmt.target.name
                current = self.env.get(name)
                self._assign(name,
                             self._call_type(stmt.op,
                                             (current, value)))
            else:
                self._store_target(stmt.target)
        elif isinstance(stmt, asm.ForLoop):
            for bound in (stmt.start, stmt.stop):
                if self._expr_type(bound) is F64:
                    raise CUnsupportedError(
                        "float-typed loop bound in for-loop over %r"
                        % stmt.var.name)
            self._assign(stmt.var.name, I64)
            self._sweep(stmt.body)
        elif isinstance(stmt, asm.WhileLoop):
            self._expr_type(stmt.cond)
            self._sweep(stmt.body)
        elif isinstance(stmt, asm.If):
            for cond, body in stmt.branches:
                if cond is not None:
                    self._expr_type(cond)
                self._sweep(body)
        elif isinstance(stmt, asm.FuncDef):
            self._sweep(stmt.body)

    def _assign(self, name, value_type):
        if name in self.params:
            raise CUnsupportedError(
                "kernel reassigns buffer parameter %r" % name)
        if name not in self.env:
            self.env[name] = None
            self.decl_order.append(name)
        self.env[name] = _join(self.env[name], value_type)

    def _store_target(self, load):
        self._param_elem(load.buffer, "store target")
        self._index_type(load.index)

    def _param_elem(self, buffer, what):
        if not isinstance(buffer, Var) or buffer.name not in self.params:
            raise CUnsupportedError(
                "%s %r is not a kernel buffer parameter"
                % (what, getattr(buffer, "name", buffer)))
        return self.param_types[buffer.name]

    def _index_type(self, index):
        if self._expr_type(index) is F64:
            raise CUnsupportedError("float-typed buffer index")
        return I64

    def _expr_type(self, expr):
        if isinstance(expr, Literal):
            value = expr.value
            if value is MISSING:
                raise CUnsupportedError(
                    "missing-valued expression (coalesce/permit)")
            if isinstance(value, bool):
                return BOOL
            if isinstance(value, int):
                return I64
            if isinstance(value, float):
                return F64
            raise CUnsupportedError(
                "literal %r has no C type" % (value,))
        if isinstance(expr, Var):
            name = expr.name
            if name in self.params:
                raise CUnsupportedError(
                    "buffer parameter %r used as a scalar value" % name)
            # Unknown until its assignment is swept; the fixpoint
            # converges because types only move up the lattice.
            return self.env.get(name)
        if isinstance(expr, Load):
            elem = self._param_elem(expr.buffer, "load from")
            self._index_type(expr.index)
            return elem
        if isinstance(expr, Call):
            if expr.op.name in ("search_ge", "search_abs_ge"):
                # First argument is the index buffer itself, not a
                # scalar value; type only the bounds and the key.
                for arg in expr.args[1:]:
                    self._expr_type(arg)
                return self._call_type(expr.op, (), expr)
            return self._call_type(
                expr.op, tuple(self._expr_type(arg)
                               for arg in expr.args), expr)
        raise CUnsupportedError("cannot type %r" % (expr,))

    def _call_type(self, op, arg_types, expr=None):
        name = op.name
        if name in ("add", "sub", "mul"):
            return _arith(*arg_types)
        if name == "neg":
            return _arith(arg_types[0])
        if name == "abs":
            return _arith(arg_types[0])
        if name == "div":
            return F64
        if name in ("floordiv", "mod"):
            joined = _arith(*arg_types)
            return joined
        if name in ("min", "max"):
            joined = None
            for t in arg_types:
                joined = _join(joined, t)
            return joined
        if name in ("eq", "ne", "lt", "le", "gt", "ge", "not"):
            return BOOL
        if name in ("and", "or"):
            for t in arg_types:
                if t not in (BOOL, None):
                    raise CUnsupportedError(
                        "non-boolean operand to %r (Python returns an "
                        "operand, C returns 0/1)" % name)
            return BOOL
        if name == "sqrt":
            return F64
        if name == "ifelse":
            return _join(arg_types[1], arg_types[2])
        if name == "round_u8":
            return I64
        if name in ("search_ge", "search_abs_ge"):
            if expr is not None:
                elem = self._param_elem(expr.args[0],
                                        "%s index buffer" % name)
                if elem is not I64:
                    raise CUnsupportedError(
                        "%s over a non-int64 buffer" % name)
            return I64
        raise CUnsupportedError("operator %r has no C lowering" % name)

    def _check_loop_vars(self):
        """Reject loop variables read outside their loop.

        Python's ``for`` leaves the variable at ``stop - 1`` after the
        loop; the emitted C ``for`` leaves it at ``stop``.  Any mention
        of the variable outside the loop's own subtree could observe
        the difference, so such kernels fall back.
        """
        for node in asm.walk_statements(self.func):
            if isinstance(node, asm.ForLoop):
                if node.var.name in asm.stmt_writes(node.body):
                    raise CUnsupportedError(
                        "loop variable %r reassigned inside its loop"
                        % node.var.name)
                if self._mentions(self.func.body, node.var.name, node):
                    raise CUnsupportedError(
                        "loop variable %r used outside its loop"
                        % node.var.name)

    def _mentions(self, stmt, name, skip):
        if stmt is skip:
            return False
        if isinstance(stmt, asm.Block):
            return any(self._mentions(s, name, skip)
                       for s in stmt.stmts)
        if isinstance(stmt, (asm.ForLoop, asm.WhileLoop, asm.FuncDef)):
            header = set()
            if isinstance(stmt, asm.ForLoop):
                header = (stmt.start.free_vars()
                          | stmt.stop.free_vars() | {stmt.var.name})
            elif isinstance(stmt, asm.WhileLoop):
                header = stmt.cond.free_vars()
            return (name in header
                    or self._mentions(stmt.body, name, skip))
        if isinstance(stmt, asm.If):
            for cond, body in stmt.branches:
                if cond is not None and name in cond.free_vars():
                    return True
                if self._mentions(body, name, skip):
                    return True
            return False
        if isinstance(stmt, (asm.AssignStmt, asm.AccumStmt)):
            if name in stmt.value.free_vars():
                return True
            target = stmt.target
            if isinstance(target, Var):
                return target.name == name
            return (target.buffer.name == name
                    or name in target.index.free_vars())
        return False

    def _build_renames(self):
        taken = set()
        for name in list(self.params) + self.decl_order:
            safe = name
            if (name in _RESERVED or name.startswith("fl_")
                    or name.startswith("v_")):
                safe = "v_" + name
            while safe in taken:
                safe += "_"
            taken.add(safe)
            self.renames[name] = safe

    def _cname(self, name):
        return self.renames.get(name, name)

    def _fresh_temp(self):
        self._temp += 1
        return "fl_stop_%d" % self._temp

    # -- expression rendering ------------------------------------------
    def _render(self, expr):
        """``(source, precedence)`` of one expression, C syntax."""
        if isinstance(expr, Literal):
            return self._render_literal(expr.value), _ATOM
        if isinstance(expr, Var):
            return self._cname(expr.name), _ATOM
        if isinstance(expr, Load):
            index, _ = self._render(expr.index)
            return "%s[%s]" % (self._cname(expr.buffer.name),
                               index), _ATOM
        if isinstance(expr, Call):
            return self._render_call(expr)
        raise CUnsupportedError("cannot render %r" % (expr,))

    def _render_literal(self, value):
        if isinstance(value, bool):
            return "true" if value else "false"
        if isinstance(value, int):
            return "INT64_C(%d)" % value
        text = repr(float(value))
        if text == "inf":
            return "INFINITY"
        if text == "-inf":
            return "(-INFINITY)"
        if text == "nan":
            return "NAN"
        if "." not in text and "e" not in text:
            text += ".0"
        return text

    def _infix(self, symbol, precedence, args):
        parts = []
        for position, arg in enumerate(args):
            source, prec = self._render(arg)
            if prec < precedence or (prec == precedence
                                     and position > 0):
                source = "(%s)" % source
            parts.append(source)
        return (" %s " % symbol).join(parts), precedence

    def _call_helper(self, helper, args):
        rendered = ", ".join(self._render(arg)[0] for arg in args)
        return "%s(%s)" % (helper, rendered), _ATOM

    def _typed_helper(self, stem, args):
        joined = None
        for arg in args:
            joined = _join(joined, self._expr_type(arg))
        suffix = "f64" if joined is F64 else "i64"
        return "fl_%s_%s" % (stem, suffix)

    def _fold_pair(self, expr):
        """Left-fold an n-ary call into nested binary calls."""
        folded = expr.args[0]
        for arg in expr.args[1:]:
            folded = Call(expr.op, [folded, arg])
        return folded

    def _render_call(self, expr):
        name = expr.op.name
        args = expr.args
        if name == "add":
            return self._infix("+", 12, args)
        if name == "sub":
            return self._infix("-", 12, args)
        if name == "mul":
            return self._infix("*", 13, args)
        if name == "neg":
            inner, prec = self._render(args[0])
            if prec < 14:
                inner = "(%s)" % inner
            return "-" + inner, 14
        if name == "div":
            return self._call_helper("fl_div", args)
        if name in ("floordiv", "mod"):
            helper = self._typed_helper(name, args)
            return self._call_helper(helper, args)
        if name in ("min", "max"):
            if len(args) > 2:
                return self._render_call(self._fold_pair(expr))
            helper = self._typed_helper(name, args)
            return self._call_helper(helper, args)
        if name in ("eq", "ne", "lt", "le", "gt", "ge"):
            symbol = {"eq": "==", "ne": "!=", "lt": "<",
                      "le": "<=", "gt": ">", "ge": ">="}[name]
            precedence = 9 if name in ("eq", "ne") else 10
            return self._infix(symbol, precedence, args)
        if name in ("and", "or"):
            symbol = "&&" if name == "and" else "||"
            return self._infix(symbol, 5 if name == "and" else 4, args)
        if name == "not":
            inner, prec = self._render(args[0])
            if prec < 14:
                inner = "(%s)" % inner
            return "!" + inner, 14
        if name == "abs":
            if self._expr_type(args[0]) is F64:
                return self._call_helper("fabs", args)
            return self._call_helper("fl_abs_i64", args)
        if name == "sqrt":
            return self._call_helper("sqrt", args)
        if name == "round_u8":
            return self._call_helper("fl_round_u8", args)
        if name == "ifelse":
            cond = self._render(args[0])[0]
            then = self._render(args[1])[0]
            otherwise = self._render(args[2])[0]
            return "(%s ? %s : %s)" % (cond, then, otherwise), _ATOM
        if name in ("search_ge", "search_abs_ge"):
            buffer = self._cname(args[0].name)
            rest = ", ".join(self._render(arg)[0] for arg in args[1:])
            return "fl_%s(%s, %s)" % (name, buffer, rest), _ATOM
        raise CUnsupportedError("operator %r has no C lowering" % name)

    # -- statement rendering -------------------------------------------
    def _emit(self, stmt, depth, lines):
        pad = "    " * depth
        if stmt is None or stmt.is_nop():
            return
        if isinstance(stmt, asm.Block):
            for child in stmt.stmts:
                self._emit(child, depth, lines)
        elif isinstance(stmt, asm.Comment):
            for line in str(stmt.text).splitlines():
                lines.append("%s/* %s */" % (pad, line))
        elif isinstance(stmt, asm.AssignStmt):
            lines.append(pad + self._assignment(stmt.target,
                                                stmt.value))
        elif isinstance(stmt, asm.AccumStmt):
            lines.append(pad + self._accumulation(stmt))
        elif isinstance(stmt, asm.ForLoop):
            stop = self._fresh_temp()
            var = self._cname(stmt.var.name)
            lines.append("%s{" % pad)
            lines.append("%s    int64_t %s = %s;" % (
                pad, stop, self._render(stmt.stop)[0]))
            lines.append("%s    for (%s = %s; %s < %s; %s++) {" % (
                pad, var, self._render(stmt.start)[0], var, stop,
                var))
            self._emit(stmt.body, depth + 2, lines)
            lines.append("%s    }" % pad)
            lines.append("%s}" % pad)
        elif isinstance(stmt, asm.WhileLoop):
            lines.append("%swhile (%s) {" % (
                pad, self._render(stmt.cond)[0]))
            self._emit(stmt.body, depth + 1, lines)
            lines.append("%s}" % pad)
        elif isinstance(stmt, asm.If):
            self._emit_if(stmt, depth, lines)
        else:
            raise CUnsupportedError("cannot emit %r" % (stmt,))

    def _assignment(self, target, value):
        rendered = self._render(value)[0]
        if isinstance(target, Var):
            return "%s = %s;" % (self._cname(target.name), rendered)
        elem = self.param_types[target.buffer.name]
        index = self._render(target.index)[0]
        return "%s[%s] = (%s)(%s);" % (
            self._cname(target.buffer.name), index, _CTYPE[elem],
            rendered)

    def _accumulation(self, stmt):
        if isinstance(stmt.target, Var) and stmt.op.name in (
                "add", "sub", "mul"):
            symbol = {"add": "+=", "sub": "-=", "mul": "*="}[
                stmt.op.name]
            return "%s %s %s;" % (self._cname(stmt.target.name),
                                  symbol, self._render(stmt.value)[0])
        combined = Call(stmt.op, [stmt.target, stmt.value])
        return self._assignment(stmt.target, combined)

    def _emit_if(self, stmt, depth, lines):
        pad = "    " * depth
        if stmt.branches and stmt.branches[0][0] is None:
            # A leading else-branch is unconditionally taken (optimizer
            # passes prune fully; mirror the python emitter).
            self._emit(stmt.branches[0][1], depth, lines)
            return
        first = True
        for cond, body in stmt.branches:
            if cond is None:
                if body.is_nop():
                    continue
                lines.append("%s} else {" % pad)
            else:
                keyword = "if" if first else "} else if"
                lines.append("%s%s (%s) {" % (
                    pad, keyword, self._render(cond)[0]))
            self._emit(body, depth + 1, lines)
            first = False
        lines.append("%s}" % pad)

    # -- top level -----------------------------------------------------
    def render(self):
        body_lines = []
        self._emit(self.func.body, 1, body_lines)
        lines = [
            "/* generated by repro.codegen.c_emit; do not edit */",
            _PRELUDE,
            "#ifdef _WIN32",
            "#define FL_EXPORT __declspec(dllexport)",
            "#else",
            "#define FL_EXPORT __attribute__((visibility(\"default\")))",
            "#endif",
            "",
            "FL_EXPORT int64_t %s(void **fl_args) {"
            % self.func.name,
        ]
        for position, name in enumerate(self.params):
            elem = self.param_types[name]
            const = "" if name in self.stored else "const "
            lines.append(
                "    %s%s *%s = (%s%s *) fl_args[%d];"
                % (const, _CTYPE[elem], self._cname(name), const,
                   _CTYPE[elem], position))
        for name in self.decl_order:
            elem = self.env[name]
            lines.append("    %s %s = %s;" % (
                _CTYPE[elem], self._cname(name), _CZERO[elem]))
        lines.extend(body_lines)
        if self.func.returns:
            if len(self.func.returns) != 1:
                raise CUnsupportedError(
                    "multi-value kernel return %r"
                    % (self.func.returns,))
            lines.append("    return %s;"
                         % self._cname(self.func.returns[0]))
        else:
            lines.append("    return 0;")
        lines.append("}")
        return "\n".join(lines) + "\n"


def emit_c(func, param_dtypes):
    """Render one :class:`repro.ir.asm.FuncDef` as a C99 source string.

    ``param_dtypes`` maps every kernel parameter name to its numpy
    dtype name (``"int64"`` / ``"float64"``).  Raises
    :class:`CUnsupportedError` when the kernel cannot be translated
    bit-identically; the caller is expected to fall back to the python
    backend.
    """
    if not isinstance(func, asm.FuncDef):
        raise CUnsupportedError("C emission needs a FuncDef, got %r"
                                % (func,))
    missing = [name for name in func.params
               if name not in param_dtypes]
    if missing:
        raise CUnsupportedError(
            "no dtype recorded for parameter(s) %s"
            % ", ".join(missing))
    emitter = _Emitter(func, param_dtypes)
    emitter.analyze()
    return emitter.render()
