"""SNAP-style graph generators (substitute for [34] in the paper).

Triangle counting in the paper runs over SNAP networks, whose key
property for galloping intersections is a heavy-tailed degree
distribution: most neighbor-list intersections pair a short list with
a long one, where lookahead skips most of the long list.  These
generators reproduce that property with fixed seeds.
"""

import numpy as np


def power_law_adjacency(n, exponent=2.2, min_degree=1, seed=0):
    """Undirected simple graph with power-law degrees (configuration
    model, self-loops and multi-edges discarded).  Returns a dense 0/1
    adjacency matrix."""
    rng = np.random.default_rng(seed)
    degrees = np.round(min_degree * (rng.pareto(exponent - 1, n) + 1))
    degrees = np.minimum(degrees.astype(int), n - 1)
    stubs = np.repeat(np.arange(n), degrees)
    rng.shuffle(stubs)
    adj = np.zeros((n, n))
    for a, b in zip(stubs[0::2], stubs[1::2]):
        if a != b:
            adj[a, b] = 1.0
            adj[b, a] = 1.0
    return adj


def erdos_renyi_adjacency(n, p, seed=0):
    """Uniform random graph (flat degree distribution, for contrast)."""
    rng = np.random.default_rng(seed)
    upper = np.triu(rng.random((n, n)) < p, 1).astype(float)
    return upper + upper.T


def adjacency_to_csr(adj):
    """(pos, idx) arrays of a 0/1 adjacency matrix."""
    pos = [0]
    idx = []
    for row in adj:
        nonzeros = np.nonzero(row)[0]
        idx.extend(nonzeros.tolist())
        pos.append(len(idx))
    return np.array(pos, dtype=np.int64), np.array(idx, dtype=np.int64)


def triangle_count_reference(adj):
    """Exact triangle count via matrix powers, times 6 (ordered)."""
    paths = adj @ adj @ adj
    return float(np.trace(paths))


def hub_adjacency(n, hubs, p, seed=0):
    """A few hubs adjacent to everyone, over a sparse periphery.

    The extreme skew regime: neighbor intersections pair length-n hub
    lists with short lists, where galloping skips almost everything.
    """
    adj = erdos_renyi_adjacency(n, p, seed=seed)
    for hub in range(hubs):
        adj[hub, :] = 1.0
        adj[:, hub] = 1.0
    np.fill_diagonal(adj, 0.0)
    return adj


def snap_like_suite(seed=0):
    """Named graphs echoing the SNAP collection's variety.

    Sizes are scaled to pure-Python kernels; the degree skew (the
    property galloping exploits) matches the collection's shape.
    """
    return {
        "ca_like_powerlaw": power_law_adjacency(220, 2.0, 2, seed=seed + 1),
        "email_like_powerlaw": power_law_adjacency(260, 2.2, 1,
                                                   seed=seed + 2),
        "p2p_like_sparse": erdos_renyi_adjacency(160, 0.02, seed=seed + 3),
        "social_like_hubs": hub_adjacency(150, 3, 0.015, seed=seed + 4),
    }


def _dense_core_graph(n, core, seed=0):
    """A dense core with a sparse periphery (social-network shape)."""
    rng = np.random.default_rng(seed)
    adj = erdos_renyi_adjacency(n, 0.02, seed=seed)
    core_block = (rng.random((core, core)) < 0.5).astype(float)
    core_block = np.triu(core_block, 1)
    adj[:core, :core] = np.maximum(adj[:core, :core],
                                   core_block + core_block.T)
    return adj
