"""Synthetic image generators (substitutes for MNIST / EMNIST /
Omniglot / Humansketches in the paper's Figures 10 and 11).

The structural features that matter to the experiments:

* digit-like images (MNIST/EMNIST): a white background with one
  connected cluster of ink — long background runs (RLE), clustered
  nonzeros (VBL);
* character-like images (Omniglot): thinner strokes and noisier
  backgrounds — shorter runs, favoring sparse lists over RLE;
* sketch-like images (Humansketches): larger canvases with sparse
  strokes; the paper's 1111x1111 canvas is scaled down so pure-Python
  kernels finish (documented in DESIGN.md).
"""

import numpy as np


def _stroke(canvas, rng, thickness, value_range):
    """Draw one random polyline stroke onto the canvas."""
    n = canvas.shape[0]
    x, y = rng.integers(n // 4, 3 * n // 4, size=2)
    steps = rng.integers(n // 2, n)
    dx, dy = rng.choice([-1, 0, 1], size=2)
    for _ in range(steps):
        if rng.random() < 0.3:
            dx, dy = rng.choice([-1, 0, 1], size=2)
        x = int(np.clip(x + dx, 0, n - 1))
        y = int(np.clip(y + dy, 0, n - 1))
        lo_x, hi_x = max(0, x - thickness), min(n, x + thickness + 1)
        lo_y, hi_y = max(0, y - thickness), min(n, y + thickness + 1)
        patch = rng.integers(value_range[0], value_range[1],
                             size=(hi_x - lo_x, hi_y - lo_y))
        canvas[lo_x:hi_x, lo_y:hi_y] = np.maximum(
            canvas[lo_x:hi_x, lo_y:hi_y], patch)
    return canvas


def digit_like(size=28, seed=0):
    """MNIST-like: black background, one thick bright blob of strokes."""
    rng = np.random.default_rng(seed)
    canvas = np.zeros((size, size), dtype=np.uint8)
    for _ in range(rng.integers(1, 3)):
        _stroke(canvas, rng, thickness=1, value_range=(120, 256))
    return canvas


def character_like(size=32, seed=0, background=8, speckle=0.02):
    """Omniglot-like: thin strokes on a uniform *nonzero* paper tone.

    The nonzero background is the property the paper's Figure 11
    highlights: sparse and VBL formats must store every pixel, while
    run-length encoding still captures the long constant runs.
    """
    rng = np.random.default_rng(seed)
    canvas = np.full((size, size), background, dtype=np.uint8)
    for _ in range(rng.integers(2, 5)):
        _stroke(canvas, rng, thickness=0, value_range=(100, 256))
    noise_mask = rng.random((size, size)) < speckle
    canvas[noise_mask] = rng.integers(1, 40, size=int(noise_mask.sum()))
    return canvas


def sketch_like(size=96, seed=0):
    """Humansketches-like: large canvas, several thin strokes."""
    rng = np.random.default_rng(seed)
    canvas = np.zeros((size, size), dtype=np.uint8)
    for _ in range(rng.integers(4, 9)):
        _stroke(canvas, rng, thickness=0, value_range=(150, 256))
    return canvas


def image_batch(kind, count, size=None, seed=0):
    """A stack of images, shape ``(count, size, size)``."""
    makers = {"digit": digit_like, "character": character_like,
              "sketch": sketch_like}
    defaults = {"digit": 28, "character": 32, "sketch": 96}
    maker = makers[kind]
    size = size or defaults[kind]
    return np.stack([maker(size, seed=seed + k) for k in range(count)])


def linearized_batch(kind, count, size=None, seed=0):
    """Images flattened to rows, shape ``(count, size * size)`` — the
    layout of the all-pairs similarity kernel (Figure 11)."""
    batch = image_batch(kind, count, size=size, seed=seed)
    return batch.reshape(batch.shape[0], -1)


def background_run_fraction(image):
    """Fraction of pixels inside background runs of length >= 4 (a
    cheap RLE-friendliness measure used by tests)."""
    flat = np.asarray(image).ravel()
    runs = 0
    j = 0
    while j < len(flat):
        start = j
        while j < len(flat) and flat[j] == flat[start]:
            j += 1
        if flat[start] == 0 and j - start >= 4:
            runs += j - start
    return runs / max(1, len(flat))
