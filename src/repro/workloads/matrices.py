"""Harwell-Boeing-style matrix suite (substitute for [15] in the paper).

The real collection is not shippable offline; these generators produce
matrices with the structural features the paper's SpMSpV experiment
exercises — banded diagonals, irregular dense clusters, block
structure, and unstructured scatter — with reproducible seeds.  Each
suite entry is named so benchmark tables read like the paper's.
"""

import numpy as np


def random_sparse_matrix(n, m, density, seed=0):
    """Unstructured uniform sparsity."""
    rng = np.random.default_rng(seed)
    mat = rng.random((n, m))
    mat[rng.random((n, m)) > density] = 0.0
    return mat


def banded_matrix(n, bandwidth, seed=0):
    """Nonzeros within ``bandwidth`` of the diagonal (e.g. finite
    differences)."""
    rng = np.random.default_rng(seed)
    mat = np.zeros((n, n))
    for i in range(n):
        lo = max(0, i - bandwidth)
        hi = min(n, i + bandwidth + 1)
        mat[i, lo:hi] = rng.random(hi - lo) + 0.05
    return mat


def clustered_matrix(n, m, clusters_per_row, cluster_size, seed=0):
    """Irregularly placed dense clusters per row (the 1D-VBL target)."""
    rng = np.random.default_rng(seed)
    mat = np.zeros((n, m))
    for i in range(n):
        count = rng.integers(0, clusters_per_row + 1)
        for _ in range(count):
            width = rng.integers(1, cluster_size + 1)
            start = rng.integers(0, max(1, m - width))
            mat[i, start:start + width] = rng.random(width) + 0.05
    return mat


def block_matrix(n, block, fill_probability, seed=0):
    """Aligned dense blocks (BCSR-style structure)."""
    rng = np.random.default_rng(seed)
    blocks = n // block
    mat = np.zeros((n, n))
    for bi in range(blocks):
        for bj in range(blocks):
            if rng.random() < fill_probability:
                tile = rng.random((block, block)) + 0.05
                mat[bi * block:(bi + 1) * block,
                    bj * block:(bj + 1) * block] = tile
    return mat


def arrow_matrix(n, width, seed=0):
    """Dense first rows/columns plus a diagonal (arrowhead structure,
    common in optimization problems)."""
    rng = np.random.default_rng(seed)
    mat = np.zeros((n, n))
    mat[:width, :] = rng.random((width, n)) + 0.05
    mat[:, :width] = rng.random((n, width)) + 0.05
    mat[np.arange(n), np.arange(n)] = rng.random(n) + 0.05
    return mat


def sparse_vector(n, density=None, count=None, seed=0):
    """Random vector with a nonzero fraction or an exact nonzero count
    (the paper tests both x regimes in Figure 7)."""
    rng = np.random.default_rng(seed)
    vec = np.zeros(n)
    if count is not None:
        count = min(count, n)
        support = rng.choice(n, size=count, replace=False)
    elif density is not None:
        support = np.nonzero(rng.random(n) < density)[0]
    else:
        raise ValueError("give density or count")
    vec[support] = rng.random(len(support)) + 0.05
    return vec


def harwell_boeing_like_suite(n=250, seed=0):
    """A named suite of matrices echoing the HB collection's variety.

    Row populations scale with ``n`` so skipping strategies have the
    dense-ish rows the real collection exhibits (the HB matrices the
    paper benchmarks have hundreds of nonzeros per row region).
    """
    wide = max(8, n // 18)
    cluster = max(6, n // 16)
    block = max(5, n // 32)
    return {
        "bcsstk_like_band3": banded_matrix(n, 3, seed=seed + 1),
        "bcsstk_like_wideband": banded_matrix(n, wide, seed=seed + 2),
        "pores_like_clustered": clustered_matrix(n, n, 4, cluster,
                                                 seed=seed + 3),
        "steam_like_blocks": block_matrix(n, block, 0.12, seed=seed + 4),
        "west_like_scatter": random_sparse_matrix(n, n, 0.03, seed=seed + 5),
        "sherman_like_mixed": (banded_matrix(n, 2, seed=seed + 6)
                               + random_sparse_matrix(n, n, 0.01,
                                                      seed=seed + 7)),
        "lns_like_arrow": arrow_matrix(n, max(4, n // 40), seed=seed + 8),
    }
