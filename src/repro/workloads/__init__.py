"""Workload generators substituting for the paper's datasets."""

from repro.workloads import graphs, images, matrices

__all__ = ["graphs", "images", "matrices"]
