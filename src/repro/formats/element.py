"""Element level: the leaf of every fiber tree, holding scalar values."""

import numpy as np

from repro.ir.nodes import Load
from repro.util.errors import FormatError


class ElementLevel:
    """Stores the scalar values of a tensor in one flat array.

    ``fill_value`` is the background value the enclosing structured
    levels elide (0 for sparse numeric data, ``False`` for boolean
    masks, any constant for run-length images).
    """

    child = None
    shape = None

    def __init__(self, val, fill_value=0.0):
        self.val = np.asarray(val)
        if self.val.ndim != 1:
            raise FormatError("element values must form a flat array")
        self.fill_value = fill_value

    @property
    def fill(self):
        return self.fill_value

    def load(self, ctx, pos):
        """Scalar read ``val[pos]``."""
        return Load(ctx.buffer(self.val, "val"), pos)

    def fiber_count(self):
        return len(self.val)

    def fiber_to_numpy(self, pos):
        return self.val[pos]

    def buffers(self):
        return {"val": self.val}

    def __repr__(self):
        return "ElementLevel(%d values, fill=%r)" % (len(self.val),
                                                     self.fill_value)
