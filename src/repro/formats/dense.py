"""Dense level: every child is stored, addressed by arithmetic."""

import numpy as np

from repro.formats.level import FiberSlice, Level
from repro.ir import build
from repro.looplets import Lookup


class DenseLevel(Level):
    """Fiber ``p`` stores children at positions ``p * shape + j``.

    Supports random access (``locate``), which is also how dense
    *output* tensors are written.  The walk and locate protocols unfurl
    identically — a Lookup over child slices (Figure 6b's locate
    protocol) — because a dense sequence has no structure to expose.
    """

    PROTOCOLS = ("walk", "locate")
    DEFAULT_PROTOCOL = "walk"

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        base = build.times(pos, self.shape)

        def body(j):
            return FiberSlice(self.child, build.plus(base, j))

        return Lookup(body)

    def locate(self, ctx, pos, idx):
        return build.plus(build.times(pos, self.shape), idx)

    def fiber_count(self):
        return self.child.fiber_count() // max(self.shape, 1)

    def fiber_to_numpy(self, pos):
        children = [self.child.fiber_to_numpy(pos * self.shape + j)
                    for j in range(self.shape)]
        return np.array(children)

    def buffers(self):
        return {}

    def __repr__(self):
        return "DenseLevel(%d)" % self.shape
