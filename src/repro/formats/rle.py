"""Run-length level (Figure 3g): maximal runs of repeated values.

Fiber ``p`` is a sequence of runs ``q ∈ [pos[p], pos[p+1])``; run ``q``
extends (exclusively) to index ``right[q]`` and repeats the child fiber
at position ``q``.  Runs tile the whole dimension (a "fill" region is
just a run whose value happens to equal fill), so the unfurl is a bare
Stepper of Runs — which is what lets the compiler apply the
constant-loop rewrite (summing a whole run in O(1), Figure 5's last
rule) on RLE data.
"""

import numpy as np

from repro.formats.level import (
    Level,
    child_payload,
    subtree_dtype,
    subtree_shape,
)
from repro.ir import asm, build, ops
from repro.ir.nodes import Call, Load, Var
from repro.looplets import Run, Stepper
from repro.util.errors import FormatError


class RunLengthLevel(Level):
    """Run-length encoded children; runs cover the full dimension."""

    PROTOCOLS = ("walk",)
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child, pos, right):
        super().__init__(shape, child)
        self.pos = np.asarray(pos, dtype=np.int64)
        self.right = np.asarray(right, dtype=np.int64)
        if len(self.pos) == 0 or self.pos[-1] != len(self.right):
            raise FormatError("pos must end at the run count")
        for p in range(len(self.pos) - 1):
            ends = self.right[self.pos[p]:self.pos[p + 1]]
            if self.shape and (len(ends) == 0 or ends[-1] != self.shape
                               or np.any(np.diff(ends) <= 0)):
                raise FormatError(
                    "fiber %d runs must increase and tile [0, %d)"
                    % (p, self.shape))

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        pos_buf = ctx.buffer(self.pos, "pos")
        right_buf = ctx.buffer(self.right, "right")
        q = Var(ctx.freshen("q"))
        q_stop = Var(ctx.freshen("q_stop"))
        ctx.emit(asm.AssignStmt(q, Load(pos_buf, pos)))
        ctx.emit(asm.AssignStmt(q_stop, Load(pos_buf, build.plus(pos, 1))))

        def seek(ctx, start):
            # First run extending past `start`: right[q] >= start + 1.
            search = Call(ops.SEARCH_GE,
                          [right_buf, q, q_stop, build.plus(start, 1)])
            return [asm.AssignStmt(q, search)]

        def advance(ctx):
            return [asm.AccumStmt(q, ops.ADD, 1)]

        return Stepper(
            stride=Load(right_buf, q),
            body=Run(child_payload(self, q)),
            seek=seek,
            next=advance,
        )

    def fiber_count(self):
        return len(self.pos) - 1

    def fiber_to_numpy(self, pos):
        shape = (self.shape,) + subtree_shape(self.child)
        out = np.full(shape, self.fill, dtype=subtree_dtype(self.child))
        left = 0
        for q in range(self.pos[pos], self.pos[pos + 1]):
            value = self.child.fiber_to_numpy(q)
            out[left:self.right[q]] = value
            left = self.right[q]
        return out

    def buffers(self):
        return {"pos": self.pos, "right": self.right}

    def __repr__(self):
        return "RunLengthLevel(%d, runs=%d)" % (self.shape, len(self.right))
