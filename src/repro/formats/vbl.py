"""Variable block list level (the paper's 1D-VBL, Figure 3b).

Fiber ``p`` stores several maximal contiguous blocks of non-fill
children.  Blocks ``b ∈ [pos[p], pos[p+1])`` each end (exclusive) at
index ``end[b]`` and hold children at positions ``[ofs[b], ofs[b+1])``,
so the block's width is ``ofs[b+1] - ofs[b]`` and it starts at
``end[b] - width``.

Unfurls as a Stepper over blocks, each block a Pipeline of Run(fill)
followed by a dense Lookup — so coiteration touches each *block* once
rather than each element, giving the VBL speedups of Figure 7 when the
other operand is very sparse.
"""

import numpy as np

from repro.formats.level import (
    FiberSlice,
    Level,
    fill_payload,
    subtree_dtype,
    subtree_shape,
)
from repro.ir import asm, build, ops
from repro.ir.nodes import Call, Literal, Load, Var
from repro.looplets import (Case, Jumper, Lookup, Phase, Pipeline, Run,
                            Stepper, Switch)
from repro.util.errors import FormatError


class SparseVBLLevel(Level):
    """Multiple variable-width dense blocks per fiber."""

    PROTOCOLS = ("walk", "gallop")
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child, pos, end, ofs):
        super().__init__(shape, child)
        self.pos = np.asarray(pos, dtype=np.int64)
        self.end = np.asarray(end, dtype=np.int64)
        self.ofs = np.asarray(ofs, dtype=np.int64)
        if len(self.ofs) != len(self.end) + 1:
            raise FormatError("ofs must have one extra sentinel entry")
        if len(self.pos) == 0 or self.pos[-1] != len(self.end):
            raise FormatError("pos must end at the block count")
        for b in range(len(self.end)):
            width = self.ofs[b + 1] - self.ofs[b]
            if width <= 0 or self.end[b] - width < 0 or self.end[b] > self.shape:
                raise FormatError("block %d malformed" % b)

    def unfurl(self, ctx, pos, proto=None):
        proto = self.resolve_protocol(proto)
        pos_buf = ctx.buffer(self.pos, "pos")
        end_buf = ctx.buffer(self.end, "end")
        ofs_buf = ctx.buffer(self.ofs, "ofs")
        b = Var(ctx.freshen("b"))
        b_stop = Var(ctx.freshen("b_stop"))
        ctx.emit(asm.AssignStmt(b, Load(pos_buf, pos)))
        ctx.emit(asm.AssignStmt(b_stop, Load(pos_buf, build.plus(pos, 1))))

        block_end = Load(end_buf, b)
        block_start = build.minus(
            block_end, build.minus(Load(ofs_buf, build.plus(b, 1)),
                                   Load(ofs_buf, b)))

        def block_child(j):
            # Child position: ofs[b+1] - (end[b] - j).
            return FiberSlice(self.child, build.minus(
                build.plus(Load(ofs_buf, build.plus(b, 1)), j), block_end))

        def block_pipeline():
            return Pipeline([
                Phase(Run(fill_payload(self)), stride=block_start),
                Phase(Lookup(block_child)),
            ])

        def seek(ctx, start):
            # First block with end > start, i.e. end >= start + 1.
            search = Call(ops.SEARCH_GE,
                          [end_buf, b, b_stop, build.plus(start, 1)])
            return [asm.AssignStmt(b, search)]

        def advance(ctx):
            return [asm.AccumStmt(b, ops.ADD, 1)]

        stored_stop = Call(ops.IFELSE, [
            build.gt(b_stop, b),
            Load(end_buf, build.minus(b_stop, 1)),
            Literal(0),
        ])

        def make_stepper():
            return Stepper(stride=block_end, body=block_pipeline(),
                           seek=seek, next=advance)

        if proto == "walk":
            stored = make_stepper()
        else:
            # Gallop: lead by whole blocks; when the merged region ends
            # exactly at this block, contribute the block pipeline,
            # otherwise fall back to an inner stepper that seeks.
            def jumper_body(ctx, ext):
                exact = build.eq(block_end, ext.stop)
                return Switch([
                    Case(exact, block_pipeline()),
                    Case(Literal(True), make_stepper()),
                ])

            stored = Jumper(stride=block_end, body=jumper_body,
                            seek=seek, next=advance)

        return Pipeline([
            Phase(stored, stride=stored_stop),
            Phase(Run(fill_payload(self))),
        ])

    def fiber_count(self):
        return len(self.pos) - 1

    def fiber_to_numpy(self, pos):
        shape = (self.shape,) + subtree_shape(self.child)
        out = np.full(shape, self.fill, dtype=subtree_dtype(self.child))
        for b in range(self.pos[pos], self.pos[pos + 1]):
            width = self.ofs[b + 1] - self.ofs[b]
            start = self.end[b] - width
            for step in range(width):
                out[start + step] = self.child.fiber_to_numpy(self.ofs[b] + step)
        return out

    def buffers(self):
        return {"pos": self.pos, "end": self.end, "ofs": self.ofs}

    def __repr__(self):
        return "SparseVBLLevel(%d, blocks=%d)" % (self.shape, len(self.end))
