"""Sparse band level (Figure 3f): one contiguous block per fiber.

Fiber ``p`` stores a single variably-wide band of children starting at
index ``lo[p]``; the band's children sit at positions ``[pos[p],
pos[p+1])``.  Unfurls as Run(fill) / Lookup / Run(fill) — exposing the
dense interior to the compiler, which is precisely what the motivating
example (Figure 1) exploits to skip ahead and randomly access the band.
"""

import numpy as np

from repro.formats.level import (
    FiberSlice,
    Level,
    fill_payload,
    subtree_dtype,
    subtree_shape,
)
from repro.ir import asm, build
from repro.ir.nodes import Load, Var
from repro.looplets import Lookup, Phase, Pipeline, Run
from repro.util.errors import FormatError


class SparseBandLevel(Level):
    """A single contiguous band of non-fill children per fiber."""

    PROTOCOLS = ("walk",)
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child, pos, lo):
        super().__init__(shape, child)
        self.pos = np.asarray(pos, dtype=np.int64)
        self.lo = np.asarray(lo, dtype=np.int64)
        if len(self.lo) != len(self.pos) - 1:
            raise FormatError("need one band start per fiber")
        for p in range(len(self.lo)):
            width = self.pos[p + 1] - self.pos[p]
            if width < 0 or self.lo[p] < 0 or self.lo[p] + width > self.shape:
                raise FormatError("band %d out of bounds" % p)

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        pos_buf = ctx.buffer(self.pos, "pos")
        lo_buf = ctx.buffer(self.lo, "lo")
        q0 = Var(ctx.freshen("q0"))
        lo = Var(ctx.freshen("lo"))
        hi = Var(ctx.freshen("hi"))
        ctx.emit(asm.AssignStmt(q0, Load(pos_buf, pos)))
        ctx.emit(asm.AssignStmt(lo, Load(lo_buf, pos)))
        width = build.minus(Load(pos_buf, build.plus(pos, 1)), q0)
        ctx.emit(asm.AssignStmt(hi, build.plus(lo, width)))

        def band(j):
            return FiberSlice(self.child, build.plus(q0, build.minus(j, lo)))

        return Pipeline([
            Phase(Run(fill_payload(self)), stride=lo),
            Phase(Lookup(band), stride=hi),
            Phase(Run(fill_payload(self))),
        ])

    def fiber_count(self):
        return len(self.pos) - 1

    def fiber_to_numpy(self, pos):
        shape = (self.shape,) + subtree_shape(self.child)
        out = np.full(shape, self.fill, dtype=subtree_dtype(self.child))
        lo = self.lo[pos]
        for offset, q in enumerate(range(self.pos[pos], self.pos[pos + 1])):
            out[lo + offset] = self.child.fiber_to_numpy(q)
        return out

    def buffers(self):
        return {"pos": self.pos, "lo": self.lo}

    def __repr__(self):
        return "SparseBandLevel(%d)" % self.shape
