"""Level formats: the storage half of the Looplet story (Section 4)."""

from repro.formats.bitmap import BitmapLevel
from repro.formats.dense import DenseLevel
from repro.formats.element import ElementLevel
from repro.formats.level import (
    FiberSlice,
    FillFiber,
    Level,
    child_payload,
    fill_payload,
    full_fill,
    subtree_dtype,
    subtree_shape,
)
from repro.formats.packbits import PackBitsLevel
from repro.formats.ragged import RaggedLevel
from repro.formats.rle import RunLengthLevel
from repro.formats.sparse_band import SparseBandLevel
from repro.formats.sparse_list import SparseListLevel
from repro.formats.vbl import SparseVBLLevel
from repro.formats.virtual import SymmetricLevel, TriangularLevel

__all__ = [
    "BitmapLevel",
    "DenseLevel",
    "ElementLevel",
    "FiberSlice",
    "FillFiber",
    "Level",
    "child_payload",
    "fill_payload",
    "full_fill",
    "subtree_dtype",
    "subtree_shape",
    "PackBitsLevel",
    "RaggedLevel",
    "RunLengthLevel",
    "SparseBandLevel",
    "SparseListLevel",
    "SparseVBLLevel",
    "SymmetricLevel",
    "TriangularLevel",
]
