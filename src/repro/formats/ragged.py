"""Ragged level (Figure 3e): a stored prefix followed by fill.

Fiber ``p`` stores its first ``pos[p+1] - pos[p]`` children
contiguously; the remainder of the dimension is fill.  This is the
CoRa-style ragged-array structure, expressed here as an ordinary level
whose unfurl is Pipeline(Lookup, Run(fill)).
"""

import numpy as np

from repro.formats.level import (
    FiberSlice,
    Level,
    fill_payload,
    subtree_dtype,
    subtree_shape,
)
from repro.ir import asm, build
from repro.ir.nodes import Load, Var
from repro.looplets import Lookup, Phase, Pipeline, Run
from repro.util.errors import FormatError


class RaggedLevel(Level):
    """Per-fiber prefix lengths (dense rows of varying width)."""

    PROTOCOLS = ("walk",)
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child, pos):
        super().__init__(shape, child)
        self.pos = np.asarray(pos, dtype=np.int64)
        for p in range(len(self.pos) - 1):
            width = self.pos[p + 1] - self.pos[p]
            if width < 0 or width > self.shape:
                raise FormatError("fiber %d width out of bounds" % p)

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        pos_buf = ctx.buffer(self.pos, "pos")
        q0 = Var(ctx.freshen("q0"))
        width = Var(ctx.freshen("width"))
        ctx.emit(asm.AssignStmt(q0, Load(pos_buf, pos)))
        ctx.emit(asm.AssignStmt(
            width, build.minus(Load(pos_buf, build.plus(pos, 1)), q0)))

        def prefix(j):
            return FiberSlice(self.child, build.plus(q0, j))

        return Pipeline([
            Phase(Lookup(prefix), stride=width),
            Phase(Run(fill_payload(self))),
        ])

    def fiber_count(self):
        return len(self.pos) - 1

    def fiber_to_numpy(self, pos):
        shape = (self.shape,) + subtree_shape(self.child)
        out = np.full(shape, self.fill, dtype=subtree_dtype(self.child))
        for j in range(self.pos[pos + 1] - self.pos[pos]):
            out[j] = self.child.fiber_to_numpy(self.pos[pos] + j)
        return out

    def buffers(self):
        return {"pos": self.pos}

    def __repr__(self):
        return "RaggedLevel(%d)" % self.shape
