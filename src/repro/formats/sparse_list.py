"""Sparse list level (the "compressed" format of TACO, Figure 3d).

Stores the coordinates of non-fill children in a sorted ``idx`` array,
segmented per fiber by a ``pos`` array: fiber ``p`` owns entries
``q ∈ [pos[p], pos[p+1])``, each at index ``idx[q]``.

Two read protocols (Sections 3 and 7 of the paper):

``walk``
    a Pipeline of (a Stepper of Spikes over the stored region, then a
    Run of fill to the end of the dimension).  This is the classic
    iterate-over-nonzeros strategy.

``gallop``
    a Jumper that elects this list a coiteration *leader* (Figure 6a).
    The jumper declares the extent up to its own next nonzero; when the
    merged region ends exactly at that nonzero it contributes a Spike,
    otherwise it falls back to an inner Stepper (which *seeks* — binary
    search — to the start of the region, skipping ahead).  Merging two
    galloping lists yields a mutual-lookahead intersection.
"""

import numpy as np

from repro.formats.level import (
    Level,
    child_payload,
    fill_payload,
    subtree_dtype,
    subtree_shape,
)
from repro.ir import asm, build, ops
from repro.ir.nodes import Call, Literal, Load, Var
from repro.looplets import Case, Jumper, Phase, Pipeline, Run, Spike, Stepper, Switch
from repro.util.errors import FormatError


class SparseListLevel(Level):
    """Sorted coordinate list of non-fill children."""

    PROTOCOLS = ("walk", "gallop")
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child, pos, idx):
        super().__init__(shape, child)
        self.pos = np.asarray(pos, dtype=np.int64)
        self.idx = np.asarray(idx, dtype=np.int64)
        if self.pos.ndim != 1 or self.idx.ndim != 1:
            raise FormatError("pos and idx must be flat arrays")
        if len(self.pos) == 0 or self.pos[-1] != len(self.idx):
            raise FormatError("pos must end at len(idx)")
        for p in range(len(self.pos) - 1):
            segment = self.idx[self.pos[p]:self.pos[p + 1]]
            if len(segment) and (np.any(np.diff(segment) <= 0)
                                 or segment[0] < 0
                                 or segment[-1] >= self.shape):
                raise FormatError(
                    "fiber %d indices must be strictly increasing and "
                    "within [0, %d)" % (p, self.shape))

    def unfurl(self, ctx, pos, proto=None):
        proto = self.resolve_protocol(proto)
        state = self._enter_fiber(ctx, pos)
        if proto == "walk":
            stored = self._stepper(ctx, state)
        else:
            stored = self._jumper(ctx, state)
        return Pipeline([
            Phase(stored, stride=self._stored_stop(state)),
            Phase(Run(fill_payload(self))),
        ])

    def _enter_fiber(self, ctx, pos):
        """Emit per-fiber setup: the position cursor and its bounds."""
        pos_buf = ctx.buffer(self.pos, "pos")
        idx_buf = ctx.buffer(self.idx, "idx")
        q = Var(ctx.freshen("q"))
        q_stop = Var(ctx.freshen("q_stop"))
        ctx.emit(asm.AssignStmt(q, Load(pos_buf, pos)))
        ctx.emit(asm.AssignStmt(q_stop, Load(pos_buf, build.plus(pos, 1))))
        return {"q": q, "q_stop": q_stop, "idx": idx_buf}

    def _stored_stop(self, state):
        """Exclusive end of the stored region: one past the last stored
        coordinate, or 0 for an empty fiber."""
        q, q_stop, idx = state["q"], state["q_stop"], state["idx"]
        return Call(ops.IFELSE, [
            build.gt(q_stop, q),
            build.plus(Load(idx, build.minus(q_stop, 1)), 1),
            Literal(0),
        ])

    def _stride(self, state):
        """Exclusive end of the current child's region."""
        return build.plus(Load(state["idx"], state["q"]), 1)

    def _seek(self, state):
        q, q_stop, idx = state["q"], state["q_stop"], state["idx"]

        def seek(ctx, start):
            search = Call(ops.SEARCH_GE, [idx, q, q_stop, start])
            return [asm.AssignStmt(q, search)]

        return seek

    def _next(self, state):
        q = state["q"]

        def advance(ctx):
            return [asm.AccumStmt(q, ops.ADD, 1)]

        return advance

    def _spike(self, state):
        return Spike(fill_payload(self), child_payload(self, state["q"]))

    def _stepper(self, ctx, state):
        return Stepper(
            stride=self._stride(state),
            body=self._spike(state),
            seek=self._seek(state),
            next=self._next(state),
        )

    def _jumper(self, ctx, state):
        def body(ctx, ext):
            exact = build.eq(self._stride(state), ext.stop)
            return Switch([
                Case(exact, self._spike(state)),
                Case(Literal(True), self._stepper(ctx, state)),
            ])

        return Jumper(
            stride=self._stride(state),
            body=body,
            seek=self._seek(state),
            next=self._next(state),
        )

    def fiber_count(self):
        return len(self.pos) - 1

    def fiber_to_numpy(self, pos):
        shape = (self.shape,) + subtree_shape(self.child)
        out = np.full(shape, self.fill, dtype=subtree_dtype(self.child))
        for q in range(self.pos[pos], self.pos[pos + 1]):
            out[self.idx[q]] = self.child.fiber_to_numpy(q)
        return out

    def buffers(self):
        return {"pos": self.pos, "idx": self.idx}

    def __repr__(self):
        return "SparseListLevel(%d, nnz=%d)" % (self.shape, len(self.idx))
