"""Packed triangular and symmetric matrix formats (Figures 3a and 3c).

Both store only the lower triangle, row-major packed: row ``i`` holds
``i + 1`` values starting at offset ``i * (i + 1) // 2``.  The
triangular row unfurls as Lookup-then-Run(0); the symmetric row covers
the upper part by reading the *transposed* packed location
``val[j * (j + 1) // 2 + i]`` — turning symmetry into an access
protocol rather than a storage duplication.

Both are inner levels whose fiber position is the row number, so they
compose under a DenseLevel exactly like any other inner format.
"""

import numpy as np

from repro.formats.level import FiberSlice, Level
from repro.ir import build
from repro.ir.nodes import Literal
from repro.looplets import Lookup, Phase, Pipeline, Run
from repro.util.errors import FormatError


def _packed_offset(i):
    """IR expression for ``i * (i + 1) // 2``."""
    return build.call("floordiv", build.times(i, build.plus(i, 1)),
                      Literal(2))


class TriangularLevel(Level):
    """Lower-triangular packed rows: values at ``j <= i``, fill above."""

    PROTOCOLS = ("walk",)
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child):
        super().__init__(shape, child)
        expected = shape * (shape + 1) // 2
        if child.fiber_count() != expected:
            raise FormatError(
                "packed triangular storage for n=%d needs %d values, "
                "got %d" % (shape, expected, child.fiber_count()))

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        offset = _packed_offset(pos)

        def row(j):
            return FiberSlice(self.child, build.plus(offset, j))

        return Pipeline([
            Phase(Lookup(row), stride=build.plus(pos, 1)),
            Phase(Run(Literal(self.fill))),
        ])

    def fiber_count(self):
        return self.shape

    def fiber_to_numpy(self, pos):
        out = np.full(self.shape, self.fill,
                      dtype=self.child.val.dtype)
        offset = pos * (pos + 1) // 2
        for j in range(pos + 1):
            out[j] = self.child.fiber_to_numpy(offset + j)
        return out

    def buffers(self):
        return {}

    def __repr__(self):
        return "TriangularLevel(%d)" % self.shape


class SymmetricLevel(Level):
    """Symmetric matrix stored as its packed lower triangle."""

    PROTOCOLS = ("walk",)
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child):
        super().__init__(shape, child)
        expected = shape * (shape + 1) // 2
        if child.fiber_count() != expected:
            raise FormatError(
                "packed symmetric storage for n=%d needs %d values, "
                "got %d" % (shape, expected, child.fiber_count()))

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        offset = _packed_offset(pos)

        def lower(j):
            return FiberSlice(self.child, build.plus(offset, j))

        def upper(j):
            return FiberSlice(self.child,
                              build.plus(_packed_offset(j), pos))

        return Pipeline([
            Phase(Lookup(lower), stride=build.plus(pos, 1)),
            Phase(Lookup(upper)),
        ])

    def fiber_count(self):
        return self.shape

    def fiber_to_numpy(self, pos):
        out = np.empty(self.shape, dtype=self.child.val.dtype)
        for j in range(self.shape):
            i, jj = (pos, j) if j <= pos else (j, pos)
            out[j] = self.child.fiber_to_numpy(i * (i + 1) // 2 + jj)
        return out

    def buffers(self):
        return {}

    def __repr__(self):
        return "SymmetricLevel(%d)" % self.shape
