"""PackBits level (Figure 3h): runs interleaved with literal blocks.

The PackBITS encoding (standardized in TIFF) alternates two group
kinds: a *run* of one repeated value, or a *literal* block of
unstructured values.  Following the paper, a signed marker array
encodes both: group ``g`` covers up to (exclusively) ``abs(idx[g])``,
and is a run when ``idx[g] > 0``, a literal block otherwise.

Runs consume one stored value; literal blocks consume their width.  We
store ``vof[g]``, the value position where group ``g``'s payload
starts, so seeks (binary search over ``abs(idx)``) can restart mid
fiber — the paper's running offset ``s`` becomes the expression
``left(g) = abs(idx[g-1])`` (or the fiber start for the first group).

The unfurl is a Stepper whose body is a *Switch* between a Run and a
Lookup — exercising switch-inside-stepper lowering.
"""

import numpy as np

from repro.formats.level import (
    FiberSlice,
    Level,
    child_payload,
    subtree_dtype,
    subtree_shape,
)
from repro.ir import asm, build, ops
from repro.ir.nodes import Call, Literal, Load, Var
from repro.looplets import Case, Lookup, Run, Stepper, Switch
from repro.util.errors import FormatError


class PackBitsLevel(Level):
    """Alternating runs and literal regions, covering the dimension."""

    PROTOCOLS = ("walk",)
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child, pos, idx, vof):
        super().__init__(shape, child)
        self.pos = np.asarray(pos, dtype=np.int64)
        self.idx = np.asarray(idx, dtype=np.int64)
        self.vof = np.asarray(vof, dtype=np.int64)
        if len(self.pos) == 0 or self.pos[-1] != len(self.idx):
            raise FormatError("pos must end at the group count")
        if len(self.vof) != len(self.idx) + 1:
            raise FormatError("vof needs one sentinel entry")
        for p in range(len(self.pos) - 1):
            ends = np.abs(self.idx[self.pos[p]:self.pos[p + 1]])
            if self.shape and (len(ends) == 0 or ends[-1] != self.shape
                               or np.any(np.diff(ends) <= 0)):
                raise FormatError(
                    "fiber %d groups must increase and tile [0, %d)"
                    % (p, self.shape))

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        pos_buf = ctx.buffer(self.pos, "pos")
        idx_buf = ctx.buffer(self.idx, "idx")
        vof_buf = ctx.buffer(self.vof, "vof")
        g = Var(ctx.freshen("g"))
        g0 = Var(ctx.freshen("g0"))
        g_stop = Var(ctx.freshen("g_stop"))
        ctx.emit(asm.AssignStmt(g0, Load(pos_buf, pos)))
        ctx.emit(asm.AssignStmt(g, g0))
        ctx.emit(asm.AssignStmt(g_stop, Load(pos_buf, build.plus(pos, 1))))

        marker = Load(idx_buf, g)
        end = build.call(ops.ABS, marker)
        left = Call(ops.IFELSE, [
            build.gt(g, g0),
            build.call(ops.ABS, Load(idx_buf, build.minus(g, 1))),
            Literal(0),
        ])

        def literal_child(j):
            # Value position: vof[g] + (j - left).
            return FiberSlice(self.child, build.plus(
                Load(vof_buf, g), build.minus(j, left)))

        def seek(ctx, start):
            search = Call(ops.SEARCH_ABS_GE,
                          [idx_buf, g, g_stop, build.plus(start, 1)])
            return [asm.AssignStmt(g, search)]

        def advance(ctx):
            return [asm.AccumStmt(g, ops.ADD, 1)]

        return Stepper(
            stride=end,
            body=Switch([
                Case(build.gt(marker, 0),
                     Run(child_payload(self, Load(vof_buf, g)))),
                Case(Literal(True), Lookup(literal_child)),
            ]),
            seek=seek,
            next=advance,
        )

    def fiber_count(self):
        return len(self.pos) - 1

    def fiber_to_numpy(self, pos):
        shape = (self.shape,) + subtree_shape(self.child)
        out = np.full(shape, self.fill, dtype=subtree_dtype(self.child))
        left = 0
        for g in range(self.pos[pos], self.pos[pos + 1]):
            end = abs(self.idx[g])
            if self.idx[g] > 0:
                out[left:end] = self.child.fiber_to_numpy(self.vof[g])
            else:
                for j in range(left, end):
                    out[j] = self.child.fiber_to_numpy(
                        self.vof[g] + (j - left))
            left = end
        return out

    def buffers(self):
        return {"pos": self.pos, "idx": self.idx, "vof": self.vof}

    def __repr__(self):
        return "PackBitsLevel(%d, groups=%d)" % (self.shape, len(self.idx))
