"""User-defined formats expressed directly as looplets.

Section 4 of the paper: "an external standard library format could
express protocols using looplets to compose with our framework."  A
:class:`LoopletTensor` is exactly that — a one-dimensional virtual
tensor whose structure is whatever looplet nest its ``unfurl``
function builds.  It composes with every compiler pass and coiterates
with any stored format.

Example — the paper's ``f(i) = sin(pi * i / 7)`` lookup array::

    A = LoopletTensor(100, lambda ctx, pos: Lookup(
        lambda j: build.call(SIN, build.times(j, math.pi / 7))))

or a triangular mask built from runs::

    row_mask = LoopletTensor(n, lambda ctx, pos: Pipeline([
        Phase(Run(Literal(1.0)), stride=...),
        Phase(Run(Literal(0.0)))]))
"""

from repro.cin.builders import access
from repro.util.errors import FormatError


class LoopletTensor:
    """A 1-D virtual tensor defined by an unfurl function.

    ``unfurl_fn(ctx, pos)`` must return a looplet whose leaf payloads
    are scalar IR expressions; it may emit per-fiber setup through
    ``ctx.emit`` and bind numpy buffers with ``ctx.buffer`` exactly
    like the built-in level formats.
    """

    ndim = 1

    def __init__(self, shape, unfurl_fn, name=None, fill=0.0):
        if int(shape) < 0:
            raise FormatError("shape must be nonnegative")
        if not callable(unfurl_fn):
            raise FormatError("unfurl_fn must be callable")
        self.shape = (int(shape),)
        self.unfurl_fn = unfurl_fn
        self.name = name or "V"
        self.fill = fill

    def __getitem__(self, idxs):
        if not isinstance(idxs, tuple):
            idxs = (idxs,)
        if len(idxs) != 1:
            raise FormatError("%s is one-dimensional" % self.name)
        return access(self, *idxs)

    def kernel_buffers(self):
        """No rebindable buffers: whatever ``unfurl_fn`` binds through
        ``ctx.buffer`` stays welded to this tensor object."""
        return {}

    def format_signature(self):
        """Identity-pinned: the structure is an opaque closure, so a
        LoopletTensor is only structurally equal to itself.  Kernel
        caching still works for repeated runs of the same tensor, but
        two distinct LoopletTensors never share a compiled kernel."""
        return ("custom", id(self), self.shape)

    def unfurl_root(self, ctx, proto=None):
        """Unfurl the (single) fiber of this tensor."""
        del proto  # custom formats decide their own protocol
        from repro.ir.nodes import Literal

        return self.unfurl_fn(ctx, Literal(0))

    def __repr__(self):
        return "LoopletTensor(%s, n=%d)" % (self.name, self.shape[0])
