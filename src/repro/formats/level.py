"""Level storage protocol (Section 4 of the paper).

A multidimensional array is decomposed mode-by-mode into a tree of
*levels*; each level stores all the fibers of one dimension, and a
*fiber* maps one index to a subfiber in the child level.  Fibers are
identified by an integer *position* within their level.  Looplets
describe the structure of a single fiber: each level implements
``unfurl`` to produce the looplet nest for the fiber at a given
position, under a chosen access protocol.

Payloads of unfurled looplets are :class:`FiberSlice` handles pointing
at child-level fibers (or scalar IR loads once the element level is
reached — the compiler converts terminal slices via
:meth:`FiberSlice.scalar`).
"""

from repro.ir.nodes import Literal, as_expr
from repro.looplets import Run
from repro.util.errors import FormatError, ProtocolError


class Level:
    """Base class for level formats.

    Subclasses store numpy arrays describing every fiber in the level
    and implement :meth:`unfurl`.  ``child`` is the next level, or an
    :class:`~repro.formats.element.ElementLevel` at the bottom.
    """

    #: protocols this level accepts, in addition to its default.
    PROTOCOLS = ("walk",)
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child):
        if shape is not None and int(shape) < 0:
            raise FormatError("level dimension must be nonnegative")
        self.shape = None if shape is None else int(shape)
        self.child = child

    @property
    def fill(self):
        """The background value of the subtree under this level."""
        level = self
        while getattr(level, "child", None) is not None:
            level = level.child
        return level.fill_value

    def resolve_protocol(self, proto):
        if proto is None or proto == "follow":
            # "follow" asks the format for its passive default.
            proto = self.DEFAULT_PROTOCOL if proto is None else "walk"
        if proto not in self.PROTOCOLS:
            raise ProtocolError(
                "%s does not support the %r protocol (supported: %s)"
                % (type(self).__name__, proto, ", ".join(self.PROTOCOLS)))
        return proto

    def unfurl(self, ctx, pos, proto=None):
        """The looplet nest describing fiber ``pos`` under ``proto``.

        May emit per-fiber setup statements through ``ctx.emit`` (e.g.
        reading the fiber's position bounds); the compiler calls unfurl
        exactly where those statements belong.
        """
        raise NotImplementedError

    def locate(self, ctx, pos, idx):
        """Child position for random access at ``idx`` (writes/locate).

        Only formats with O(1) addressing (dense) support this.
        """
        raise ProtocolError(
            "%s does not support random access" % type(self).__name__)

    def fiber_count(self):
        """How many fibers this level stores."""
        raise NotImplementedError

    def fiber_to_numpy(self, pos):
        """Densify the subtree rooted at fiber ``pos`` (tests/oracles)."""
        raise NotImplementedError

    def buffers(self):
        """Mapping of buffer-name hints to the numpy arrays backing the
        level (used by the compiler to bind kernel arguments)."""
        raise NotImplementedError


class FiberSlice:
    """A handle to one fiber: ``(level, position)``.

    Appears as a looplet payload during lowering; the compiler unfurls
    it further at inner foralls, or converts it to a scalar load when
    the element level is reached.
    """

    __slots__ = ("level", "pos")

    def __init__(self, level, pos):
        self.level = level
        self.pos = as_expr(pos)

    def __repr__(self):
        return "FiberSlice(%s, %r)" % (type(self.level).__name__, self.pos)

    def is_scalar(self):
        """True when this slice points into the element level."""
        return getattr(self.level, "child", None) is None

    def scalar(self, ctx):
        """The scalar IR expression for a terminal slice."""
        if not self.is_scalar():
            raise FormatError("fiber slice %r is not terminal" % (self,))
        return self.level.load(ctx, self.pos)

    def unfurl(self, ctx, proto=None):
        return self.level.unfurl(ctx, self.pos, proto)


class FillFiber:
    """A virtual, entirely-fill fiber (an absent subfiber).

    Produced by sparse levels for the regions between stored children;
    unfurls to a run of fill (recursively for deeper levels).
    """

    __slots__ = ("level",)

    def __init__(self, level):
        self.level = level

    def __repr__(self):
        return "FillFiber(%s)" % type(self.level).__name__

    def is_scalar(self):
        return getattr(self.level, "child", None) is None

    def scalar(self, ctx):
        return Literal(self.level.fill_value)

    def unfurl(self, ctx, proto=None):
        child = self.level.child
        if getattr(child, "child", None) is None:
            payload = Literal(self.level.fill)
        else:
            payload = FillFiber(child)
        return Run(payload)


def subtree_shape(level):
    """The dense shape of the subtree under (and including) ``level``."""
    shape = []
    while getattr(level, "child", None) is not None:
        shape.append(level.shape)
        level = level.child
    return tuple(shape)


def subtree_dtype(level):
    """The element dtype of the subtree under ``level``."""
    while getattr(level, "child", None) is not None:
        level = level.child
    return level.val.dtype


def full_fill(level):
    """A dense numpy array of fill values shaped like one fiber of
    ``level``'s subtree."""
    import numpy as np

    return np.full(subtree_shape(level), level.fill,
                   dtype=subtree_dtype(level))


def child_payload(level, pos):
    """The payload for the stored child of ``level`` at position ``pos``."""
    return FiberSlice(level.child, pos)


def fill_payload(level):
    """The payload for an absent child of ``level``."""
    child = level.child
    if getattr(child, "child", None) is None:
        return Literal(child.fill_value)
    return FillFiber(child)
