"""Bitmap level (Figure 6c): dense storage plus an occupancy table.

Children are stored densely (position ``p * shape + j``), and a flat
boolean table marks which are meaningful; the rest are backgrounds the
compiler may specialize away.  The unfurl is a Lookup whose *body* is a
per-element Switch — the locate protocol of Figure 6c, which "branches
on whether each value is statically zero" and thereby lets zero
annihilation fire inside random-access loops.
"""

import numpy as np

from repro.formats.level import (
    FiberSlice,
    Level,
    fill_payload,
    subtree_dtype,
    subtree_shape,
)
from repro.ir import build
from repro.ir.nodes import Literal, Load
from repro.looplets import Case, Lookup, Switch
from repro.util.errors import FormatError


class BitmapLevel(Level):
    """Densely stored children guarded by a boolean occupancy table."""

    PROTOCOLS = ("walk", "locate")
    DEFAULT_PROTOCOL = "walk"

    def __init__(self, shape, child, tbl):
        super().__init__(shape, child)
        self.tbl = np.asarray(tbl, dtype=bool)
        if self.tbl.ndim != 1:
            raise FormatError("tbl must be a flat boolean array")
        if self.shape and len(self.tbl) % self.shape != 0:
            raise FormatError("tbl length must be a multiple of the shape")

    def unfurl(self, ctx, pos, proto=None):
        self.resolve_protocol(proto)
        tbl_buf = ctx.buffer(self.tbl, "tbl")
        base = build.times(pos, self.shape)

        def body(j):
            slot = build.plus(base, j)
            return Switch([
                Case(Load(tbl_buf, slot), FiberSlice(self.child, slot)),
                Case(Literal(True), fill_payload(self)),
            ])

        return Lookup(body)

    def locate(self, ctx, pos, idx):
        return build.plus(build.times(pos, self.shape), idx)

    def fiber_count(self):
        return len(self.tbl) // max(self.shape, 1)

    def fiber_to_numpy(self, pos):
        shape = (self.shape,) + subtree_shape(self.child)
        out = np.full(shape, self.fill, dtype=subtree_dtype(self.child))
        for j in range(self.shape):
            if self.tbl[pos * self.shape + j]:
                out[j] = self.child.fiber_to_numpy(pos * self.shape + j)
        return out

    def buffers(self):
        return {"tbl": self.tbl}

    def __repr__(self):
        return "BitmapLevel(%d)" % self.shape
