"""Looplets: a language for structured coiteration (CGO 2023).

A Python reproduction of the Looplet language and the Finch compiler.
The public surface lives in :mod:`repro.lang`; subpackages follow the
paper's structure: looplets, CIN, formats, the compiler, and rewrite
rules.
"""

__version__ = "0.1.0"
