"""Seeded random CIN program generation.

The generator draws a *case spec* — a plain JSON-safe dict — from a
``random.Random(seed)`` stream, and :func:`build_case` turns a spec
into fresh tensors plus a CIN program.  The split matters twice over:

* a spec is reproducible (the same seed always yields the same spec,
  and a spec round-trips through JSON), so every failure the
  conformance runner finds can be replayed from a few bytes; and
* a spec is *shrinkable*: the delta-debugging shrinker
  (:mod:`repro.fuzz.shrink`) edits specs, never programs, so every
  reduction step stays inside the grammar the generator defines.

The grammar composes the full registered surface: every level format
(dense / sparse / band / vbl / rle / bitmap / ragged / packbits, with
rle and packbits restricted to the innermost mode), every access
protocol a format supports (walk / gallop / locate / follow), and the
index-modifier chains whose domain semantics the reference interpreter
pins down (offset with or without permit, nested offsets, windows, and
offset-of-window — the shift-of-truncate composition).  Data is
integer-valued floats, so every oracle comparison can demand
bit-identical results (see :mod:`repro.fuzz.conform`).

Loop extents are always explicit, computed as the intersection of each
operand chain's valid index range; an empty intersection is kept (a
zero-trip loop is a legitimate — and historically bug-prone — case).
"""

import random

import numpy as np

import repro.lang as fl

#: Formats legal in any mode.
FORMATS_ANY = ("dense", "sparse", "band", "vbl", "bitmap", "ragged")
#: Formats legal only in the innermost mode (value-compressing leaves).
FORMATS_LEAF_ONLY = ("rle", "packbits")
#: Formats legal in the innermost mode.
FORMATS_INNER = FORMATS_ANY + FORMATS_LEAF_ONLY

#: Per-format access protocols beyond the bare default.  ``None``
#: means "no annotation"; ``follow`` degrades to the passive default
#: on every format.
PROTOCOLS_BY_FORMAT = {
    "dense": (None, "walk", "locate", "follow"),
    "bitmap": (None, "walk", "locate", "follow"),
    "sparse": (None, "walk", "gallop", "follow"),
    "vbl": (None, "walk", "gallop", "follow"),
    "band": (None, "walk", "follow"),
    "rle": (None, "walk", "follow"),
    "packbits": (None, "walk", "follow"),
    "ragged": (None, "walk", "follow"),
}

#: Protocols that can lead a coiteration; every loop index needs at
#: least one operand accessing it with one of these.
LEADER_PROTOCOLS = (None, "walk", "gallop")

#: Program templates.  ``arity`` is the operand rank, ``outputs`` the
#: kind of result tensor.
TEMPLATES = ("reduce", "map", "reduce2d", "map2d", "spmv")

#: Reduction operators drawn for ``increment``/``reduce_into``.
ACCUM_OPS = ("add", "min", "max")
#: Operators combining multiple operand accesses into one expression.
COMBINE_OPS = ("mul", "add", "min", "max")

#: Index-modifier chain kinds (see :func:`chain_extent` for domains).
CHAIN_KINDS = ("plain", "offset", "offset_exact", "offset2", "window",
               "offset_of_window")

_MARKERS = {"walk": fl.walk, "gallop": fl.gallop, "locate": fl.locate,
            "follow": fl.follow}


class GenError(ValueError):
    """A spec violates the generator grammar."""


# ---------------------------------------------------------------------------
# Spec drawing
# ---------------------------------------------------------------------------
def _draw_values(rng, n, lo=-3, hi=3):
    """Integer-valued floats with one of several structural shapes, so
    every format's stored/absent paths get exercised."""
    shape = rng.choice(("scatter", "band", "runs", "dense", "empty"))
    values = [float(rng.randint(lo, hi)) for _ in range(n)]
    if shape == "scatter":
        values = [v if rng.random() < 0.5 else 0.0 for v in values]
    elif shape == "band":
        b_lo = rng.randrange(n) if n else 0
        b_hi = rng.randint(b_lo, n)
        values = [v if b_lo <= k < b_hi else 0.0
                  for k, v in enumerate(values)]
    elif shape == "runs":
        pool = [float(rng.randint(0, 2)) for _ in range(3)]
        values = sorted(rng.choice(pool) for _ in range(n))
    elif shape == "empty":
        values = [0.0] * n
    return values


def _draw_chain(rng, n, profile):
    """One index-modifier chain valid for a dimension of size ``n``."""
    weights = (("plain",) * 6 + ("offset", "offset_exact", "window") * 2
               + ("offset2", "offset_of_window"))
    kind = rng.choice(weights)
    if kind == "plain" or n == 0:
        return {"kind": "plain"}
    if kind == "offset":
        return {"kind": "offset", "delta": rng.randint(-n - 2, n + 2)}
    if kind == "offset_exact":
        return {"kind": "offset_exact", "delta": rng.randint(-n, n)}
    if kind == "offset2":
        return {"kind": "offset2", "d1": rng.randint(-n, n),
                "d2": rng.randint(-n, n)}
    lo = rng.randrange(n)
    hi = rng.randint(lo, n)
    if kind == "window":
        return {"kind": "window", "lo": lo, "hi": hi}
    return {"kind": "offset_of_window", "lo": lo, "hi": hi,
            "delta": rng.randint(-2, 2)}


def chain_extent(chain, n):
    """The loop-index range ``[lo, hi)`` a chain accepts for an operand
    dimension of size ``n`` (the reference interpreter's domain rules).
    """
    kind = chain["kind"]
    if kind == "plain":
        return 0, n
    if kind == "offset":
        return 0, n  # permit-wrapped: out-of-bounds reads are missing
    if kind == "offset_exact":
        delta = chain["delta"]
        return max(0, delta), min(n, n + delta)
    if kind == "offset2":
        return 0, n  # permit-wrapped
    if kind == "window":
        return 0, chain["hi"] - chain["lo"]
    if kind == "offset_of_window":
        # offset(window(i, lo, hi), d) reads coordinate lo + i - d;
        # the window clips the reachable range to [lo, hi) inside the
        # offset-translated tensor domain [d, n + d).
        lo, hi, delta = chain["lo"], chain["hi"], chain["delta"]
        ext_lo = max(0, delta - lo)
        ext_hi = min(hi - lo, n + delta - lo)
        return ext_lo, max(ext_lo, ext_hi)
    raise GenError("unknown chain kind %r" % (kind,))


def chain_needs_coalesce(chain):
    """Whether the chain can evaluate to ``missing`` (permit inside)."""
    return chain["kind"] in ("offset", "offset2")


def _chain_expr(chain, idx):
    """The index expression for ``chain`` over loop variable ``idx``."""
    kind = chain["kind"]
    if kind == "plain":
        return idx
    if kind == "offset":
        return fl.permit(fl.offset(idx, chain["delta"]))
    if kind == "offset_exact":
        return fl.offset(idx, chain["delta"])
    if kind == "offset2":
        return fl.permit(fl.offset(fl.offset(idx, chain["d1"]),
                                   chain["d2"]))
    if kind == "window":
        return fl.window(idx, chain["lo"], chain["hi"])
    if kind == "offset_of_window":
        # Shift-of-truncate: the looplet-level composition the paper's
        # Section 6.1 combinators implement.  No permit — the compiler
        # cannot window an unbounded access — so the loop extent is
        # clipped exactly instead (see :func:`chain_extent`).
        return fl.offset(fl.window(idx, chain["lo"], chain["hi"]),
                         chain["delta"])
    raise GenError("unknown chain kind %r" % (kind,))


def _draw_operand(rng, name, dims, profile, leaf_ok=True):
    """One operand spec: data, per-mode formats/protocols/chains."""
    ndim = len(dims)
    formats = []
    protocols = []
    chains = []
    for mode, n in enumerate(dims):
        innermost = mode == ndim - 1
        pool = FORMATS_INNER if (innermost and leaf_ok) else FORMATS_ANY
        fmt = rng.choice(pool)
        formats.append(fmt)
        protocols.append(rng.choice(PROTOCOLS_BY_FORMAT[fmt]))
        chains.append(_draw_chain(rng, n, profile))
    if ndim == 1:
        data = _draw_values(rng, dims[0])
    else:
        data = [_draw_values(rng, dims[1]) for _ in range(dims[0])]
    return {"name": name, "data": data, "formats": formats,
            "protocols": protocols, "chains": chains}


def _max_len(profile):
    return {"quick": 10, "deep": 24}.get(profile, 10)


def generate_spec(seed, profile="quick"):
    """Draw one case spec from ``seed``; deterministic per seed."""
    rng = random.Random(seed)
    template = rng.choice(TEMPLATES)
    max_len = _max_len(profile)
    spec = {"seed": seed, "template": template,
            "combine": rng.choice(COMBINE_OPS)}
    if template in ("reduce", "map"):
        n = rng.randint(1, max_len)
        count = rng.randint(1, 3 if profile == "deep" else 2)
        spec["operands"] = [
            _draw_operand(rng, "T%d" % k, (n,), profile)
            for k in range(count)]
    elif template in ("reduce2d", "map2d"):
        rows = rng.randint(1, max(2, max_len // 2))
        cols = rng.randint(1, max_len)
        count = rng.randint(1, 2)
        spec["operands"] = [
            _draw_operand(rng, "T%d" % k, (rows, cols), profile)
            for k in range(count)]
    else:  # spmv: matrix times optional vector, indexed A[i, j] * x[j]
        rows = rng.randint(1, max(2, max_len // 2))
        cols = rng.randint(1, max_len)
        operands = [_draw_operand(rng, "T0", (rows, cols), profile)]
        if rng.random() < 0.8:
            operands.append(_draw_operand(rng, "T1", (cols,), profile))
        spec["operands"] = operands
    if template in ("map", "map2d"):
        spec["store"] = rng.random() < 0.6
    else:
        spec["accum"] = rng.choice(ACCUM_OPS)
    _ensure_leader(rng, spec)
    return spec


def _ensure_leader(rng, spec):
    """Force at least one leader-protocol access per loop index.

    ``follow`` and ``locate`` iterate passively; a loop where every
    operand is passive has nothing to drive the coiteration, so one
    operand per index is demoted to an active protocol.
    """
    template = spec["template"]
    for index_pos in range(2 if template.endswith("2d") else 1):
        accesses = []
        for operand in spec["operands"]:
            mode = _index_mode(template, index_pos, operand)
            if mode is not None:
                accesses.append((operand, mode))
        if not accesses:
            continue
        if any(op["protocols"][mode] in LEADER_PROTOCOLS
               for op, mode in accesses):
            continue
        operand, mode = rng.choice(accesses)
        fmt = operand["formats"][mode]
        leaders = [p for p in PROTOCOLS_BY_FORMAT[fmt]
                   if p in LEADER_PROTOCOLS]
        operand["protocols"][mode] = rng.choice(leaders)
    # spmv's j index spans the matrix inner mode and the vector.
    if template == "spmv":
        pairs = [(spec["operands"][0], 1)]
        if len(spec["operands"]) > 1:
            pairs.append((spec["operands"][1], 0))
        if not any(op["protocols"][mode] in LEADER_PROTOCOLS
                   for op, mode in pairs):
            operand, mode = rng.choice(pairs)
            fmt = operand["formats"][mode]
            leaders = [p for p in PROTOCOLS_BY_FORMAT[fmt]
                       if p in LEADER_PROTOCOLS]
            operand["protocols"][mode] = rng.choice(leaders)


def _index_mode(template, index_pos, operand):
    """Which mode of ``operand`` the loop index ``index_pos`` drives,
    or None when the operand does not use that index."""
    ndim = len(operand["formats"])
    if template == "spmv":
        if ndim == 2:
            return index_pos
        return 0 if index_pos == 1 else None
    if index_pos >= ndim:
        return None
    return index_pos


# ---------------------------------------------------------------------------
# Building programs from specs
# ---------------------------------------------------------------------------
class BuiltCase:
    """A spec realized as fresh tensors plus a CIN program."""

    __slots__ = ("spec", "program", "operands", "output", "extents")

    def __init__(self, spec, program, operands, output, extents):
        self.spec = spec
        self.program = program
        self.operands = operands
        self.output = output
        self.extents = extents

    @property
    def tensors(self):
        return list(self.operands) + [self.output]

    def slot_tensors(self):
        """The case's tensors in the compiler's slot (first-use)
        order, as :meth:`CompiledKernel.bind` expects them."""
        from repro.cin.analyze import program_tensors

        return program_tensors(self.program)

    def output_array(self):
        """The output's current value as a numpy array (0-d for
        scalars)."""
        return np.asarray(self.output.to_numpy())


def _operand_dims(operand):
    data = operand["data"]
    if data and isinstance(data[0], list):
        return (len(data), len(data[0]))
    return (len(data),)


def _operand_tensor(operand):
    dims = _operand_dims(operand)
    arr = np.array(operand["data"], dtype=float).reshape(dims)
    return fl.from_numpy(arr, tuple(operand["formats"]),
                         name=operand["name"])


def _operand_access(operand, template, idx_vars):
    """The (possibly marked, possibly coalesced) access expression."""
    ndim = len(operand["formats"])
    idx_exprs = []
    needs_coalesce = False
    for mode in range(ndim):
        if template == "spmv" and ndim == 1:
            index_pos = 1
        else:
            index_pos = mode
        chain = operand["chains"][mode]
        expr = _chain_expr(chain, idx_vars[index_pos])
        needs_coalesce = needs_coalesce or chain_needs_coalesce(chain)
        proto = operand["protocols"][mode]
        if proto is not None:
            expr = _MARKERS[proto](expr)
        idx_exprs.append(expr)
    tensor = _operand_tensor(operand)
    expr = fl.access(tensor, *idx_exprs)
    if needs_coalesce:
        expr = fl.coalesce(expr, 0.0)
    return tensor, expr


def _combine(op_name, exprs):
    if len(exprs) == 1:
        return exprs[0]
    if op_name == "mul":
        out = exprs[0]
        for expr in exprs[1:]:
            out = out * expr
        return out
    if op_name == "add":
        out = exprs[0]
        for expr in exprs[1:]:
            out = out + expr
        return out
    return fl.call(fl.ops.get_op(op_name), *exprs)


def _index_extent(spec, index_pos):
    """Intersection of every operand chain's valid range for one loop
    index; may be empty (a zero-trip loop)."""
    lo, hi = 0, None
    for operand in spec["operands"]:
        mode = _index_mode(spec["template"], index_pos, operand)
        if mode is None:
            continue
        n = _operand_dims(operand)[mode]
        c_lo, c_hi = chain_extent(operand["chains"][mode], n)
        lo = max(lo, c_lo)
        hi = c_hi if hi is None else min(hi, c_hi)
    hi = lo if hi is None else max(lo, hi)
    return lo, hi


def _output_dims(spec):
    """Dense output dims per template (None for a scalar result)."""
    template = spec["template"]
    if template in ("reduce", "reduce2d"):
        return None
    dims = [_operand_dims(op) for op in spec["operands"]]
    if template == "map":
        return (max(d[0] for d in dims),)
    if template == "map2d":
        return (max(d[0] for d in dims), max(d[1] for d in dims))
    return (dims[0][0],)  # spmv: one entry per matrix row


def build_case(spec):
    """Realize ``spec``: fresh tensors, program, explicit extents."""
    template = spec["template"]
    two_d = template in ("reduce2d", "map2d", "spmv")
    idx_vars = fl.indices("i", "j") if two_d else (fl.indices("i"),)
    operands = []
    exprs = []
    for operand in spec["operands"]:
        tensor, expr = _operand_access(operand, template, idx_vars)
        operands.append(tensor)
        exprs.append(expr)
    rhs = _combine(spec["combine"], exprs)

    out_dims = _output_dims(spec)
    if out_dims is None:
        output = fl.Scalar(name="OUT")
        lhs = output[()]
    else:
        output = fl.zeros(out_dims, name="OUT")
        if template == "map2d":
            lhs = output[idx_vars[0], idx_vars[1]]
        else:
            lhs = output[idx_vars[0]]

    if spec.get("store"):
        body = fl.store(lhs, rhs)
    else:
        accum = spec.get("accum", "add")
        body = fl.reduce_into(lhs, fl.ops.get_op(accum), rhs)

    if two_d:
        i_ext = _index_extent(spec, 0)
        j_ext = _index_extent(spec, 1)
        extents = {"i": i_ext, "j": j_ext}
        program = fl.forall(idx_vars[0],
                            fl.forall(idx_vars[1], body, ext=j_ext),
                            ext=i_ext)
    else:
        i_ext = _index_extent(spec, 0)
        extents = {"i": i_ext}
        program = fl.forall(idx_vars[0], body, ext=i_ext)
    return BuiltCase(spec, program, operands, output, extents)


def describe_spec(spec):
    """A one-line human description of a spec (logs, corpus metadata)."""
    parts = []
    for operand in spec["operands"]:
        bits = []
        for fmt, proto, chain in zip(operand["formats"],
                                     operand["protocols"],
                                     operand["chains"]):
            bit = fmt
            if proto:
                bit += ":" + proto
            if chain["kind"] != "plain":
                bit += "+" + chain["kind"]
            bits.append(bit)
        parts.append("%s[%s]" % (operand["name"], ",".join(bits)))
    verb = "store" if spec.get("store") else spec.get("accum", "add")
    return "%s %s(%s) via %s" % (spec["template"], spec["combine"],
                                 " ".join(parts), verb)
