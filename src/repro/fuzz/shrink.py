"""Delta-debugging shrinker: reduce a failing spec to a minimal one.

Given a spec on which :func:`repro.fuzz.conform.conform_spec` reports
divergences, the shrinker greedily applies grammar-preserving
reductions — drop an operand, truncate or zero the data, demote a
format to dense, strip a protocol or modifier chain, pull parameters
toward zero — keeping each candidate only if it *still fails*.  The
loop runs to a fixpoint, so the result is 1-minimal with respect to
the reduction set: no single remaining reduction can be applied
without losing the failure.

Shrinking edits spec dicts, never programs, so every intermediate
candidate is a legal generator output and can itself be replayed.
The final spec is rendered as a standalone repro script (a dozen
lines: the spec as JSON plus one ``conform_spec`` call) by
:func:`repro_script`.
"""

import copy
import json

from repro.fuzz.conform import conform_spec
from repro.fuzz.gen import _operand_dims


def spec_size(spec):
    """A well-founded size metric; every reduction strictly lowers it."""
    size = 0
    for operand in spec["operands"]:
        dims = _operand_dims(operand)
        count = dims[0] if len(dims) == 1 else dims[0] * dims[1]
        size += 8 * count
        size += sum(abs(v) for row in _rows(operand) for v in row)
        size += 4 * sum(1 for fmt in operand["formats"]
                        if fmt != "dense")
        size += 4 * sum(1 for proto in operand["protocols"]
                        if proto is not None)
        for chain in operand["chains"]:
            size += 16 * _chain_weight(chain)
        size += 64  # the operand itself
    return size


def _chain_weight(chain):
    return {"plain": 0, "offset": 2, "offset_exact": 2, "window": 2,
            "offset2": 3, "offset_of_window": 4}[chain["kind"]] \
        + sum(abs(chain.get(k, 0)) for k in ("delta", "d1", "d2"))


def _rows(operand):
    data = operand["data"]
    if data and isinstance(data[0], list):
        return data
    return [data]


def _candidates(spec):
    """Every one-step reduction of ``spec``, most aggressive first."""
    # Drop whole operands (keep at least one).
    if len(spec["operands"]) > 1:
        for pos in range(len(spec["operands"])):
            if spec["template"] == "spmv" and pos == 0:
                continue  # the matrix operand anchors the template
            out = copy.deepcopy(spec)
            del out["operands"][pos]
            yield out
    for pos, operand in enumerate(spec["operands"]):
        dims = _operand_dims(operand)
        # Halve then decrement the trailing dimension.
        for new_len in {dims[-1] // 2, dims[-1] - 1}:
            if 0 < new_len < dims[-1]:
                yield _with_length(spec, pos, new_len)
        if len(dims) == 2:
            for new_rows in {dims[0] // 2, dims[0] - 1}:
                if 0 < new_rows < dims[0]:
                    out = copy.deepcopy(spec)
                    trimmed = out["operands"][pos]
                    trimmed["data"] = trimmed["data"][:new_rows]
                    # The mode-0 chain's parameters may reference rows
                    # that no longer exist; clamp to stay in grammar.
                    _clamp_chain(trimmed["chains"][0], new_rows)
                    yield out
        # Zero halves, then single nonzero entries, then shrink to 1.
        rows = _rows(operand)
        nonzero = [(r, c) for r, row in enumerate(rows)
                   for c, v in enumerate(row) if v]
        if nonzero:
            half = nonzero[:max(1, len(nonzero) // 2)]
            yield _with_zeroed(spec, pos, half)
            if len(nonzero) > 1:
                yield _with_zeroed(spec, pos, nonzero[:1])
                yield _with_zeroed(spec, pos, nonzero[-1:])
        for r, c in nonzero:
            if abs(rows[r][c]) > 1:
                out = copy.deepcopy(spec)
                _rows(out["operands"][pos])[r][c] = \
                    1.0 if rows[r][c] > 0 else -1.0
                yield out
        # Demote formats, strip protocols, simplify chains.
        for mode, fmt in enumerate(operand["formats"]):
            if fmt != "dense":
                out = copy.deepcopy(spec)
                out["operands"][pos]["formats"][mode] = "dense"
                yield out
        for mode, proto in enumerate(operand["protocols"]):
            if proto is not None:
                out = copy.deepcopy(spec)
                out["operands"][pos]["protocols"][mode] = None
                yield out
        for mode, chain in enumerate(operand["chains"]):
            yield from _chain_candidates(spec, pos, mode, chain)


def _with_length(spec, pos, new_len):
    out = copy.deepcopy(spec)
    operand = out["operands"][pos]
    data = operand["data"]
    if data and isinstance(data[0], list):
        operand["data"] = [row[:new_len] for row in data]
        mode = 1
    else:
        operand["data"] = data[:new_len]
        mode = 0
    _clamp_chain(operand["chains"][mode], new_len)
    return out


def _clamp_chain(chain, n):
    for key in ("delta", "d1", "d2"):
        if key in chain:
            chain[key] = max(-n, min(n, chain[key]))
    if "lo" in chain:
        chain["lo"] = min(chain["lo"], max(0, n - 1))
        chain["hi"] = min(chain["hi"], n)
        if chain["hi"] < chain["lo"]:
            chain["hi"] = chain["lo"]


def _with_zeroed(spec, pos, coords):
    out = copy.deepcopy(spec)
    rows = _rows(out["operands"][pos])
    for r, c in coords:
        rows[r][c] = 0.0
    return out


def _chain_candidates(spec, pos, mode, chain):
    kind = chain["kind"]
    if kind == "plain":
        return

    def with_chain(new_chain):
        out = copy.deepcopy(spec)
        out["operands"][pos]["chains"][mode] = new_chain
        return out

    yield with_chain({"kind": "plain"})
    if kind == "offset_of_window":
        yield with_chain({"kind": "window", "lo": chain["lo"],
                          "hi": chain["hi"]})
        yield with_chain({"kind": "offset", "delta": chain["delta"]})
    if kind == "offset2":
        yield with_chain({"kind": "offset",
                          "delta": chain["d1"] + chain["d2"]})
    for key in ("delta", "d1", "d2"):
        value = chain.get(key)
        if value:
            out = with_chain(dict(chain))
            out["operands"][pos]["chains"][mode][key] = \
                value - 1 if value > 0 else value + 1
            yield out
    n = _operand_dims(spec["operands"][pos])[mode]
    if kind in ("window", "offset_of_window"):
        if chain["lo"] > 0:
            out = with_chain(dict(chain))
            out["operands"][pos]["chains"][mode]["lo"] -= 1
            yield out
        if chain["hi"] < n:
            out = with_chain(dict(chain))
            out["operands"][pos]["chains"][mode]["hi"] += 1
            yield out


def shrink_spec(spec, still_fails=None, max_steps=400):
    """The smallest failing spec reachable by greedy reduction.

    ``still_fails`` decides whether a candidate keeps the failure
    (default: :func:`conform_spec` reports any divergence).  Returns
    ``(shrunk_spec, steps_taken)``; the input is returned unchanged
    when it does not fail at all.
    """
    if still_fails is None:
        def still_fails(candidate):
            return not conform_spec(candidate).ok
    if not still_fails(spec):
        return copy.deepcopy(spec), 0
    current = copy.deepcopy(spec)
    steps = 0
    progress = True
    while progress and steps < max_steps:
        progress = False
        current_size = spec_size(current)
        for candidate in _candidates(current):
            if steps >= max_steps:
                break
            if spec_size(candidate) >= current_size:
                continue
            steps += 1
            try:
                failing = still_fails(candidate)
            except Exception:
                failing = False  # a broken candidate is not a repro
            if failing:
                current = candidate
                progress = True
                break
    return current, steps


def repro_script(spec, note=""):
    """A standalone script (well under 15 lines) replaying ``spec``.

    The script asserts zero divergences, so committed to the corpus it
    documents a *fixed* bug: it fails while the bug lives and passes
    forever after.
    """
    payload = json.dumps(spec, separators=(",", ":"), sort_keys=True)
    header = "# repro-looplets fuzz repro"
    if note:
        header += " — " + note
    return "\n".join([
        header,
        "# replay: python this file (or repro.fuzz corpus replay)",
        "import json",
        "",
        "from repro.fuzz import conform_spec",
        "",
        "SPEC = json.loads(%r)" % payload,
        "report = conform_spec(SPEC)",
        'assert report.ok, "\\n".join(str(d) for d in report.divergences)',
        'print("ok:", __file__)',
        "",
    ])
