"""The fuzz campaign driver: generate, conform, shrink, persist.

:func:`run_fuzz` is the loop behind both ``python -m repro.fuzz`` and
the CI smoke job: it derives one case seed per budget step from the
master seed, runs the full oracle battery on each, and on divergence
hands the spec to the shrinker and writes the minimal repro into the
corpus.  Everything is deterministic in (seed, budget, profile).
"""

import time

from repro.fuzz import corpus as corpus_mod
from repro.fuzz.conform import ORACLES, conform_spec
from repro.fuzz.gen import describe_spec, generate_spec
from repro.fuzz.shrink import shrink_spec

#: Recognized campaign profiles (case sizes, batch widths).
PROFILES = ("quick", "deep")


def case_seed(master_seed, step):
    """The derived seed of one budget step (stable across versions)."""
    return (master_seed * 1_000_003 + step * 7_919) & 0x7FFFFFFF


class Failure:
    """One divergence found by a campaign, with its shrunk repro."""

    __slots__ = ("seed", "report", "shrunk", "shrink_steps",
                 "corpus_path")

    def __init__(self, seed, report, shrunk, shrink_steps,
                 corpus_path):
        self.seed = seed
        self.report = report
        self.shrunk = shrunk
        self.shrink_steps = shrink_steps
        self.corpus_path = corpus_path

    def __repr__(self):
        return "Failure(seed=%d, %d divergences, corpus=%r)" % (
            self.seed, len(self.report.divergences), self.corpus_path)


class CampaignResult:
    """The outcome of one :func:`run_fuzz` campaign."""

    def __init__(self, seed, budget, profile, cases, failures,
                 seconds, chaos=False):
        self.seed = seed
        self.budget = budget
        self.profile = profile
        self.cases = cases
        self.failures = failures
        self.seconds = seconds
        self.chaos = chaos

    @property
    def ok(self):
        return not self.failures

    def summary(self):
        oracle_count = len(ORACLES) + (1 if self.chaos else 0)
        lines = [
            "fuzz campaign: seed=%d budget=%d profile=%s%s" % (
                self.seed, self.budget, self.profile,
                " chaos=on" if self.chaos else ""),
            "cases: %d conformed in %.1fs (%.0f oracle runs)" % (
                self.cases, self.seconds, self.cases * oracle_count),
        ]
        if self.ok:
            lines.append("result: PASS — zero divergences across all "
                         "oracle pairs")
        else:
            lines.append("result: FAIL — %d divergent case(s)"
                         % len(self.failures))
            for failure in self.failures:
                lines.append("  seed %d: %s" % (
                    failure.seed,
                    "; ".join(str(d)
                              for d in failure.report.divergences)))
                if failure.corpus_path:
                    lines.append("    shrunk in %d steps -> %s" % (
                        failure.shrink_steps, failure.corpus_path))
        return "\n".join(lines)


def run_fuzz(seed=0, budget=200, profile="quick",
             corpus_dir=corpus_mod.DEFAULT_CORPUS_DIR,
             max_failures=5, shrink=True, log=None, chaos=False):
    """Run one campaign; returns a :class:`CampaignResult`.

    ``budget`` is the number of generated cases.  Divergent cases are
    shrunk (unless ``shrink=False``) and persisted under
    ``corpus_dir`` (set it to None to skip persistence).  The campaign
    stops early once ``max_failures`` distinct failing cases have been
    collected.  ``log`` is an optional ``print``-like callable for
    progress output.  ``chaos=True`` adds the ``batch_chaos`` oracle
    to every case: the processes batch re-runs with an injected worker
    crash, and recovery must still be bit-identical.
    """
    if profile not in PROFILES:
        raise ValueError("unknown profile %r (choose from %s)"
                         % (profile, ", ".join(PROFILES)))
    start = time.perf_counter()
    failures = []
    cases = 0
    for step in range(budget):
        derived = case_seed(seed, step)
        spec = generate_spec(derived, profile)
        report = conform_spec(spec, profile=profile, chaos=chaos)
        cases += 1
        if log is not None and (step + 1) % 50 == 0:
            log("  ... %d/%d cases, %d failure(s)"
                % (step + 1, budget, len(failures)))
        if report.ok:
            continue
        if log is not None:
            log("divergence at case seed %d: %s"
                % (derived, describe_spec(spec)))
            for divergence in report.divergences:
                log("  " + str(divergence))
        shrunk, steps = (spec, 0)
        # The shrink predicate's last True verdict belongs to the spec
        # the loop accepted — i.e. the shrunk result — so its report
        # is reused instead of re-running the oracle battery on it.
        last_failing = {"report": report}

        def still_fails(candidate):
            candidate_report = conform_spec(candidate, profile=profile,
                                            chaos=chaos)
            if not candidate_report.ok:
                last_failing["report"] = candidate_report
            return not candidate_report.ok

        if shrink:
            shrunk, steps = shrink_spec(spec, still_fails)
            if log is not None:
                log("  shrunk in %d steps: %s"
                    % (steps, describe_spec(shrunk)))
        path = None
        if corpus_dir is not None:
            path = corpus_mod.save_entry(
                shrunk, corpus_dir=corpus_dir,
                divergences=last_failing["report"].divergences,
                profile=profile,
                note="found by seed %d (case seed %d)" % (seed,
                                                          derived))
            if log is not None:
                log("  repro written: %s" % path)
        failures.append(Failure(derived, report, shrunk, steps, path))
        if len(failures) >= max_failures:
            break
    return CampaignResult(seed, budget, profile, cases, failures,
                          time.perf_counter() - start, chaos=chaos)
