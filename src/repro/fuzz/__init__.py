"""Generative conformance engine: the seeded kernel fuzzer.

One import surface for the whole pipeline::

    from repro.fuzz import fuzz_one, run_fuzz, conform_spec

    report = fuzz_one(seed=17)          # one case, every oracle pair
    result = run_fuzz(seed=0, budget=200, profile="quick")

Submodules: :mod:`~repro.fuzz.gen` (seeded spec generation),
:mod:`~repro.fuzz.conform` (differential oracles),
:mod:`~repro.fuzz.shrink` (delta debugging + repro scripts),
:mod:`~repro.fuzz.corpus` (persisted repros and anchors),
:mod:`~repro.fuzz.inject` (named bugs for engine self-tests), and
:mod:`~repro.fuzz.engine` (the campaign loop behind the
``python -m repro.fuzz`` CLI).
"""

from repro.fuzz.conform import (
    ORACLES,
    CaseReport,
    Divergence,
    conform_spec,
    fuzz_one,
)
from repro.fuzz.corpus import (
    DEFAULT_CORPUS_DIR,
    corpus_entries,
    load_entry,
    replay_corpus,
    save_entry,
)
from repro.fuzz.engine import PROFILES, CampaignResult, case_seed, run_fuzz
from repro.fuzz.gen import build_case, describe_spec, generate_spec
from repro.fuzz.inject import injectable_bugs, injected_bug
from repro.fuzz.shrink import repro_script, shrink_spec, spec_size

__all__ = [
    "ORACLES", "CaseReport", "Divergence", "conform_spec", "fuzz_one",
    "DEFAULT_CORPUS_DIR", "corpus_entries", "load_entry",
    "replay_corpus", "save_entry",
    "PROFILES", "CampaignResult", "case_seed", "run_fuzz",
    "build_case", "describe_spec", "generate_spec",
    "injectable_bugs", "injected_bug",
    "repro_script", "shrink_spec", "spec_size",
]
