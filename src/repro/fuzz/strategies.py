"""Shared Hypothesis strategies for the property-test suite.

Every ``tests/properties/`` module used to carry its own copy of these
generators; they live here — next to the seeded fuzzer whose grammar
they mirror — so the structural shapes stay in one place and new
formats get picked up by every property test at once.

Hypothesis is a test-only dependency, so this module guards its import
and fails with a clear message if pulled into a non-test context.
"""

import numpy as np

try:
    from hypothesis import strategies as st
except ImportError as exc:  # pragma: no cover - test envs have it
    raise ImportError(
        "repro.fuzz.strategies needs hypothesis (a test extra): "
        "pip install repro-looplets[test]") from exc

#: Every 1-D (innermost-mode) format.
FORMATS_1D = ["dense", "sparse", "band", "vbl", "rle", "bitmap",
              "ragged", "packbits"]
#: Formats legal as the outer mode of a matrix.
FORMATS_OUTER = ["dense", "sparse", "ragged"]
#: Formats exercised as the inner mode of a matrix.
FORMATS_MATRIX_INNER = ["dense", "sparse", "band", "vbl", "rle",
                        "bitmap", "ragged"]

format_1d = st.sampled_from(FORMATS_1D)
format_outer = st.sampled_from(FORMATS_OUTER)
format_matrix_inner = st.sampled_from(FORMATS_MATRIX_INNER)


@st.composite
def structured_vector(draw, max_len=24):
    """A float vector with one of several structural shapes."""
    n = draw(st.integers(min_value=1, max_value=max_len))
    shape = draw(st.sampled_from(["scatter", "band", "runs", "empty",
                                  "dense"]))
    values = draw(st.lists(
        st.floats(min_value=-4, max_value=4, allow_nan=False,
                  width=32).map(lambda v: round(v, 2)),
        min_size=n, max_size=n))
    vec = np.array(values)
    if shape == "scatter":
        keep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        vec[~np.array(keep)] = 0.0
    elif shape == "band":
        lo = draw(st.integers(0, n - 1))
        hi = draw(st.integers(lo, n))
        mask = np.zeros(n, dtype=bool)
        mask[lo:hi] = True
        vec[~mask] = 0.0
    elif shape == "runs":
        pool = draw(st.lists(st.integers(0, 3), min_size=1, max_size=3))
        picks = draw(st.lists(st.sampled_from(pool), min_size=n,
                              max_size=n))
        vec = np.array(picks, dtype=float)
        vec = np.sort(vec)  # longer runs
    elif shape == "empty":
        vec = np.zeros(n)
    return vec


@st.composite
def integer_vector(draw, max_len=24):
    """A float vector holding small integers (exact in float64), for
    bit-identity assertions across optimizer levels."""
    n = draw(st.integers(min_value=1, max_value=max_len))
    shape = draw(st.sampled_from(["scatter", "band", "dense", "empty"]))
    values = draw(st.lists(st.integers(-4, 4), min_size=n, max_size=n))
    vec = np.array(values, dtype=float)
    if shape == "scatter":
        keep = draw(st.lists(st.booleans(), min_size=n, max_size=n))
        vec[~np.array(keep)] = 0.0
    elif shape == "band":
        lo = draw(st.integers(0, n - 1))
        hi = draw(st.integers(lo, n))
        mask = np.zeros(n, dtype=bool)
        mask[lo:hi] = True
        vec[~mask] = 0.0
    elif shape == "empty":
        vec = np.zeros(n)
    return vec


@st.composite
def random_matrix(draw, max_rows=6, max_cols=10):
    """A matrix with random density, including blanked rows (absent
    fibers for sparse outer levels)."""
    rows = draw(st.integers(1, max_rows))
    cols = draw(st.integers(1, max_cols))
    density = draw(st.sampled_from([0.0, 0.2, 0.5, 1.0]))
    seed = draw(st.integers(0, 2 ** 16))
    rng = np.random.default_rng(seed)
    mat = np.round(rng.random((rows, cols)), 2)
    mat[rng.random((rows, cols)) > density] = 0.0
    blank = draw(st.lists(st.booleans(), min_size=rows, max_size=rows))
    mat[np.array(blank)] = 0.0
    return mat


@st.composite
def vector_pair(draw, max_len=20):
    """Two equal-length vectors over a small sparse value pool."""
    n = draw(st.integers(2, max_len))

    def vec():
        values = draw(st.lists(
            st.sampled_from([0.0, 0.0, 1.0, 2.5, -3.0]),
            min_size=n, max_size=n))
        return np.array(values)

    return vec(), vec()
