"""The persisted fuzz corpus: minimal repros plus regression anchors.

Corpus layout (default directory ``fuzz_corpus/`` at the repo root)::

    fuzz_corpus/
        case_<seed>_<digest>.json   the (shrunk) spec + metadata
        case_<seed>_<digest>.py     a standalone assert-conformance script

Every ``.json`` entry carries the spec itself plus provenance: the
originating seed and profile, the oracle pairs that diverged when the
entry was written, and a free-text note.  Entries whose divergences
list is empty are *anchors* — structurally interesting cases committed
so regressions replay them forever (see
``tests/fuzz/test_corpus_replay.py``); entries with divergences are
*repros* of bugs that were subsequently fixed, committed in the same
change as the fix.

:func:`replay_corpus` re-runs every entry through the conformance
engine and reports any that diverge *now* — committed corpus entries
must always pass on a healthy tree.
"""

import hashlib
import json
import os

from repro.fuzz.conform import conform_spec
from repro.fuzz.shrink import repro_script

#: Default corpus directory, resolved relative to the working tree.
DEFAULT_CORPUS_DIR = "fuzz_corpus"

#: Bumped when the entry layout changes incompatibly.
CORPUS_VERSION = 1


def spec_digest(spec):
    """A short stable content digest of one spec."""
    payload = json.dumps(spec, sort_keys=True, separators=(",", ":"))
    return hashlib.sha1(payload.encode("utf-8")).hexdigest()[:10]


def entry_name(spec):
    return "case_%s_%s" % (spec.get("seed", "x"), spec_digest(spec))


def save_entry(spec, corpus_dir=DEFAULT_CORPUS_DIR, divergences=(),
               profile="quick", note=""):
    """Write one spec (plus its repro script) into the corpus.

    Returns the path of the ``.json`` entry.  Idempotent: the name is
    content-addressed, so saving the same spec twice overwrites the
    same files.
    """
    os.makedirs(corpus_dir, exist_ok=True)
    name = entry_name(spec)
    entry = {
        "corpus_version": CORPUS_VERSION,
        "spec": spec,
        "seed": spec.get("seed"),
        "profile": profile,
        "divergences": [str(d) for d in divergences],
        "note": note,
    }
    json_path = os.path.join(corpus_dir, name + ".json")
    with open(json_path, "w") as fh:
        json.dump(entry, fh, indent=2, sort_keys=True)
        fh.write("\n")
    script = repro_script(spec, note=note or "seed %s"
                          % spec.get("seed"))
    with open(os.path.join(corpus_dir, name + ".py"), "w") as fh:
        fh.write(script)
    return json_path


def load_entry(path):
    """One parsed corpus entry (the ``.json`` side)."""
    with open(path) as fh:
        entry = json.load(fh)
    version = entry.get("corpus_version")
    if version != CORPUS_VERSION:
        raise ValueError(
            "corpus entry %s has version %r (expected %d)"
            % (path, version, CORPUS_VERSION))
    return entry


def corpus_entries(corpus_dir=DEFAULT_CORPUS_DIR):
    """Sorted paths of every ``.json`` entry in the corpus."""
    if not os.path.isdir(corpus_dir):
        return []
    return sorted(
        os.path.join(corpus_dir, name)
        for name in os.listdir(corpus_dir)
        if name.endswith(".json"))


def replay_corpus(corpus_dir=DEFAULT_CORPUS_DIR, profile="quick"):
    """Re-conform every corpus entry; returns (reports, failures).

    ``reports`` maps entry path -> :class:`~repro.fuzz.conform.
    CaseReport`; ``failures`` lists the paths that diverge on the
    current tree.
    """
    reports = {}
    failures = []
    for path in corpus_entries(corpus_dir):
        entry = load_entry(path)
        report = conform_spec(entry["spec"], profile=profile)
        reports[path] = report
        if not report.ok:
            failures.append(path)
    return reports, failures
