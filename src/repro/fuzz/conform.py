"""Differential conformance: one generated case, every oracle pair.

Each case spec is executed through every implementation layer that
must agree bit-for-bit:

``interpreter``
    The naive reference interpreter (:mod:`repro.baselines.reference`)
    — the trusted semantics every other oracle is judged against.

``compiled@0`` / ``compiled@1`` / ``compiled@2``
    The full compiler with the target-IR optimizer off, scalar-only,
    and with vectorization.  Instrumented, so the op-count invariant
    (the optimizer never changes the measured work) is checked too.

``c_backend``
    The same program compiled with ``backend="c"``
    (:mod:`repro.codegen`): the optimized target AST lowered to C99,
    built into a shared object, and called through ctypes.  Cases the
    C emitter cannot express fall back to the python backend — the
    oracle still runs them (the fallback path must agree too) and
    reports the effective backend in any divergence it files.  The
    instrumented op count must equal ``compiled@2``'s: the C lowering
    may never change the measured work.

``spec_roundtrip``
    The ``compiled@2`` artifact serialized through
    :meth:`~repro.compiler.kernel.CompiledKernel.to_spec`, rebuilt
    with ``from_spec`` (a fresh ``exec`` of the carried source), and
    rebound to fresh tensors.

``store_roundtrip``
    The ``compiled@2`` artifact persisted into an on-disk
    :class:`~repro.store.KernelStore` (one per process, in a temp
    directory), loaded back by store key, and rebound to fresh
    tensors — the disk tier's write/read/rebuild path must be
    bit-identical too.

``batch_serial`` / ``batch_threads`` / ``batch_processes``
    :func:`repro.exec.batch.run_batch` mapping the kernel over several
    fresh copies of the dataset under each executor; every per-dataset
    snapshot and the aggregate op count must match.

``batch_chaos``
    (``chaos=True`` only) the processes batch re-run under an armed
    :func:`repro.chaos.chaos` plan — one injected worker crash, with a
    retry budget.  Fault tolerance must be *invisible* in the data
    plane: the recovered batch's snapshots and op totals must still be
    bit-identical to the interpreter.

Case data is integer-valued (see :mod:`repro.fuzz.gen`), so every
intermediate is exact in float64 and all comparisons demand
**bit-identical** arrays — there is no tolerance to hide a real
divergence behind.
"""

import atexit
import shutil
import tempfile
import time

import numpy as np

from repro.baselines.reference import interpret
from repro.compiler.kernel import CompiledKernel, Kernel, compile_kernel
from repro.exec.batch import run_batch
from repro.fuzz.gen import build_case, describe_spec, generate_spec

#: Oracle names, in execution order.
ORACLES = ("interpreter", "compiled@0", "compiled@1", "compiled@2",
           "c_backend", "spec_roundtrip", "store_roundtrip",
           "batch_serial", "batch_threads", "batch_processes")

#: The opt-in fault-injection oracle (``conform_spec(..., chaos=True)``).
CHAOS_ORACLE = "batch_chaos"

#: The chaos plan the ``batch_chaos`` oracle arms: one worker crash,
#: anywhere in the fleet, which the retry machinery must absorb.
CHAOS_PLAN = {"worker_crash": {"nth": 1}}

#: Per-profile batch shape: (datasets per batch, workers).
_BATCH_SHAPE = {"quick": (2, 2), "deep": (3, 3)}


class Divergence:
    """One disagreement between two oracles on one case."""

    __slots__ = ("left", "right", "what", "detail")

    def __init__(self, left, right, what, detail):
        self.left = left
        self.right = right
        self.what = what
        self.detail = detail

    @property
    def pair(self):
        return "%s vs %s" % (self.left, self.right)

    def __repr__(self):
        return "Divergence(%s: %s — %s)" % (self.pair, self.what,
                                            self.detail)

    def __str__(self):
        return "%s: %s (%s)" % (self.pair, self.what, self.detail)


class CaseReport:
    """Everything one conformance run learned about one spec."""

    def __init__(self, spec, divergences, oracles_run, seconds):
        self.spec = spec
        self.divergences = divergences
        self.oracles_run = tuple(oracles_run)
        self.seconds = seconds

    @property
    def ok(self):
        return not self.divergences

    def summary(self):
        head = describe_spec(self.spec)
        if self.ok:
            return "ok: %s" % head
        lines = ["DIVERGED: %s" % head]
        lines += ["  " + str(d) for d in self.divergences]
        return "\n".join(lines)

    def __repr__(self):
        state = "ok" if self.ok else "%d divergences" % len(
            self.divergences)
        return "CaseReport(seed=%r, %s)" % (self.spec.get("seed"), state)


def _max_abs_delta(left, right):
    left = np.asarray(left, dtype=float)
    right = np.asarray(right, dtype=float)
    if left.shape != right.shape:
        return "shape %s vs %s" % (left.shape, right.shape)
    if left.size == 0:
        return 0.0
    return float(np.max(np.abs(left - right)))


def _compare(divergences, left_name, right_name, left, right,
             what="output"):
    left_arr = np.asarray(left)
    right_arr = np.asarray(right)
    if left_arr.shape == right_arr.shape and np.array_equal(
            left_arr, right_arr):
        return
    divergences.append(Divergence(
        left_name, right_name, what,
        "max|delta|=%s" % (_max_abs_delta(left_arr, right_arr),)))


def reference_outputs(program):
    """The reference interpreter's outputs for ``program``, as numpy
    arrays in :func:`~repro.cin.analyze.output_tensors` order.

    The trusted side of :func:`verify_candidate`, split out so a
    caller checking many rewrites of one program (the autotuner runs
    dozens of candidates over identical data) pays for the interpreter
    once, not once per candidate.
    """
    from repro.cin.analyze import output_tensors

    reference = interpret(program)
    return [np.asarray(reference.result_for(out))
            for out in output_tensors(program)]


def verify_candidate(program, kernel, name="candidate", expected=None):
    """Bit-identity check of one compiled kernel against the reference
    interpreter — the eligibility gate of the schedule autotuner
    (:mod:`repro.tune`): a candidate with any divergence can never
    become a persisted winner.

    ``kernel`` must be bound to ``program``'s tensors (the tuner's
    protocol rewrite shares tensors, so the rewritten program
    qualifies).  The interpreter runs first — it reads inputs and
    never writes outputs — then the kernel, and every output tensor is
    compared **bit-for-bit** (:func:`numpy.array_equal`, no
    tolerance).  A kernel crash is a divergence too, same as in
    :func:`conform_spec`.  ``expected`` short-circuits the interpreter
    run with precomputed :func:`reference_outputs` (per-candidate
    loops).  Returns a list of :class:`Divergence` (empty =
    conformant).
    """
    from repro.cin.analyze import output_tensors

    divergences = []
    outputs = output_tensors(program)
    if expected is None:
        expected = reference_outputs(program)
    try:
        kernel.run()
    except Exception as exc:
        divergences.append(Divergence(
            "interpreter", name, "crash",
            "%s: %s" % (type(exc).__name__, exc)))
        return divergences
    for pos, (out, want) in enumerate(zip(outputs, expected)):
        to_numpy = getattr(out, "to_numpy", None)
        got = (np.array(to_numpy(), copy=True) if to_numpy is not None
               else np.asarray(out.value))
        _compare(divergences, "interpreter", name, want, got,
                 what="output[%d]" % pos)
    return divergences


def _run_compiled(spec, opt_level):
    """(output array, op count) of a fresh compiled run of ``spec``."""
    case = build_case(spec)
    kernel = compile_kernel(case.program, instrument=True,
                            opt_level=opt_level)
    n_ops = kernel.run()
    return case.output_array(), int(n_ops)


def _run_c_backend(spec):
    """(output, op count, effective backend) of a ``backend="c"`` run.

    The effective backend says whether the case actually exercised the
    C path or fell back to python (both must be bit-identical to the
    interpreter, but a campaign summary wants to know its C coverage).
    """
    case = build_case(spec)
    kernel = compile_kernel(case.program, instrument=True, opt_level=2,
                            backend="c")
    n_ops = kernel.run()
    return case.output_array(), int(n_ops), kernel.effective_backend


def _run_spec_roundtrip(spec):
    """Output of the serialized-then-rebuilt ``compiled@2`` artifact."""
    case = build_case(spec)
    kernel = compile_kernel(case.program, instrument=True, opt_level=2)
    rebuilt = CompiledKernel.from_spec(kernel.to_spec())
    view = Kernel(rebuilt, case.slot_tensors(), case.program)
    n_ops = view.run()
    return case.output_array(), int(n_ops)


_STORE = None


def _oracle_store():
    """One throwaway on-disk store per process, for the disk-tier
    oracle (created lazily, removed at interpreter exit)."""
    global _STORE
    if _STORE is None:
        from repro.store import KernelStore

        root = tempfile.mkdtemp(prefix="fl-conform-store-")
        atexit.register(shutil.rmtree, root, ignore_errors=True)
        _STORE = KernelStore(root)
    return _STORE


def _run_store_roundtrip(spec):
    """Output of the artifact after a disk-store write/read cycle."""
    from repro.store import meta_for_artifact

    case = build_case(spec)
    kernel = compile_kernel(case.program, instrument=True, opt_level=2)
    store = _oracle_store()
    if store.save_artifact(kernel.artifact) is None:
        raise RuntimeError("artifact refused to serialize for the "
                           "store tier")
    rebuilt = store.load_artifact(meta_for_artifact(kernel.artifact))
    if rebuilt is None:
        raise RuntimeError("store round-trip read back a miss for an "
                           "entry written this call")
    view = Kernel(rebuilt, case.slot_tensors(), case.program)
    n_ops = view.run()
    return case.output_array(), int(n_ops)


def _run_batch_oracle(spec, executor, count, workers):
    """Per-dataset snapshots and total ops under one batch executor."""
    template_case = build_case(spec)
    datasets = [build_case(spec).slot_tensors() for _ in range(count)]
    result = run_batch(template_case.program, datasets,
                       executor=executor, max_workers=workers,
                       instrument=True)
    snapshots = [item.outputs[0] for item in result]
    return snapshots, int(result.total_ops)


def _run_chaos_oracle(spec, count, workers):
    """The processes batch with one injected worker crash.

    Returns the same (snapshots, total ops) shape as the plain batch
    oracles plus the batch's fault ledger, so the caller can verify a
    fault actually fired (a chaos oracle that never injects anything
    proves nothing).
    """
    from repro.chaos import chaos as chaos_ctx

    template_case = build_case(spec)
    datasets = [build_case(spec).slot_tensors() for _ in range(count)]
    with chaos_ctx(CHAOS_PLAN):
        result = run_batch(template_case.program, datasets,
                           executor="processes", max_workers=workers,
                           instrument=True, max_retries=3)
    snapshots = [item.outputs[0] for item in result]
    return snapshots, int(result.total_ops), dict(result.faults)


def conform_spec(spec, profile="quick", chaos=False):
    """Run every oracle over ``spec``; returns a :class:`CaseReport`.

    Any oracle *crash* (not just a wrong answer) is recorded as a
    divergence against the interpreter — an engine that errors on a
    grammar-legal case has diverged from the reference, which accepts
    it.
    """
    start = time.perf_counter()
    divergences = []
    oracles_run = ["interpreter"]

    case = build_case(spec)
    reference = interpret(case.program)
    expected = np.asarray(reference.result_for(case.output))

    compiled_ops = {}
    for level in (0, 1, 2):
        name = "compiled@%d" % level
        oracles_run.append(name)
        try:
            got, n_ops = _run_compiled(spec, level)
        except Exception as exc:
            divergences.append(Divergence(
                "interpreter", name, "crash",
                "%s: %s" % (type(exc).__name__, exc)))
            continue
        compiled_ops[level] = n_ops
        _compare(divergences, "interpreter", name, expected, got)
    for level in (1, 2):
        if 0 in compiled_ops and level in compiled_ops \
                and compiled_ops[level] != compiled_ops[0]:
            divergences.append(Divergence(
                "compiled@0", "compiled@%d" % level, "op count",
                "%d vs %d" % (compiled_ops[0], compiled_ops[level])))

    oracles_run.append("c_backend")
    try:
        got, n_ops, effective = _run_c_backend(spec)
        _compare(divergences, "interpreter",
                 "c_backend[%s]" % effective, expected, got)
        if 2 in compiled_ops and n_ops != compiled_ops[2]:
            divergences.append(Divergence(
                "compiled@2", "c_backend[%s]" % effective, "op count",
                "%d vs %d" % (compiled_ops[2], n_ops)))
    except Exception as exc:
        divergences.append(Divergence(
            "interpreter", "c_backend", "crash",
            "%s: %s" % (type(exc).__name__, exc)))

    oracles_run.append("spec_roundtrip")
    try:
        got, n_ops = _run_spec_roundtrip(spec)
        _compare(divergences, "interpreter", "spec_roundtrip",
                 expected, got)
        if 2 in compiled_ops and n_ops != compiled_ops[2]:
            divergences.append(Divergence(
                "compiled@2", "spec_roundtrip", "op count",
                "%d vs %d" % (compiled_ops[2], n_ops)))
    except Exception as exc:
        divergences.append(Divergence(
            "interpreter", "spec_roundtrip", "crash",
            "%s: %s" % (type(exc).__name__, exc)))

    oracles_run.append("store_roundtrip")
    try:
        got, n_ops = _run_store_roundtrip(spec)
        _compare(divergences, "interpreter", "store_roundtrip",
                 expected, got)
        if 2 in compiled_ops and n_ops != compiled_ops[2]:
            divergences.append(Divergence(
                "compiled@2", "store_roundtrip", "op count",
                "%d vs %d" % (compiled_ops[2], n_ops)))
    except Exception as exc:
        divergences.append(Divergence(
            "interpreter", "store_roundtrip", "crash",
            "%s: %s" % (type(exc).__name__, exc)))

    count, workers = _BATCH_SHAPE.get(profile, _BATCH_SHAPE["quick"])
    batch_ops = {}
    for executor in ("serial", "threads", "processes"):
        name = "batch_%s" % executor
        oracles_run.append(name)
        try:
            snapshots, total_ops = _run_batch_oracle(
                spec, executor, count, workers)
        except Exception as exc:
            divergences.append(Divergence(
                "interpreter", name, "crash",
                "%s: %s" % (type(exc).__name__, exc)))
            continue
        batch_ops[executor] = total_ops
        if len(snapshots) != count:
            divergences.append(Divergence(
                "interpreter", name, "dataset count",
                "%d datasets in, %d results out"
                % (count, len(snapshots))))
        if 2 in compiled_ops and total_ops != count * compiled_ops[2]:
            divergences.append(Divergence(
                "compiled@2", name, "op count",
                "%d datasets x %d ops != %d"
                % (count, compiled_ops[2], total_ops)))
        for pos, snapshot in enumerate(snapshots):
            _compare(divergences, "interpreter", name, expected,
                     snapshot, what="output[dataset %d]" % pos)
    executors = [e for e in ("serial", "threads", "processes")
                 if e in batch_ops]
    for other in executors[1:]:
        if batch_ops[other] != batch_ops[executors[0]]:
            divergences.append(Divergence(
                "batch_%s" % executors[0], "batch_%s" % other,
                "op count", "%d vs %d" % (batch_ops[executors[0]],
                                          batch_ops[other])))

    if chaos:
        oracles_run.append(CHAOS_ORACLE)
        try:
            snapshots, total_ops, faults = _run_chaos_oracle(
                spec, count, workers)
        except Exception as exc:
            divergences.append(Divergence(
                "interpreter", CHAOS_ORACLE, "crash",
                "%s: %s" % (type(exc).__name__, exc)))
        else:
            if faults.get("crashes", 0) < 1:
                divergences.append(Divergence(
                    "interpreter", CHAOS_ORACLE, "no fault fired",
                    "armed %r but the ledger shows %r"
                    % (CHAOS_PLAN, faults)))
            if len(snapshots) != count:
                divergences.append(Divergence(
                    "interpreter", CHAOS_ORACLE, "dataset count",
                    "%d datasets in, %d results out"
                    % (count, len(snapshots))))
            if 2 in compiled_ops \
                    and total_ops != count * compiled_ops[2]:
                divergences.append(Divergence(
                    "compiled@2", CHAOS_ORACLE, "op count",
                    "%d datasets x %d ops != %d"
                    % (count, compiled_ops[2], total_ops)))
            for pos, snapshot in enumerate(snapshots):
                _compare(divergences, "interpreter", CHAOS_ORACLE,
                         expected, snapshot,
                         what="output[dataset %d]" % pos)

    return CaseReport(spec, divergences, oracles_run,
                      time.perf_counter() - start)


def fuzz_one(seed, profile="quick", chaos=False):
    """Generate the case for ``seed`` and conform it; the one-call API
    (``fl.fuzz_one(seed)``)."""
    return conform_spec(generate_spec(seed, profile), profile=profile,
                        chaos=chaos)
