"""``python -m repro.fuzz`` — the conformance campaign CLI.

Examples::

    python -m repro.fuzz --seed 0 --budget 200 --profile quick
    python -m repro.fuzz --seed 7 --budget 50 --profile deep --no-shrink
    python -m repro.fuzz --replay                 # re-run the corpus
    python -m repro.fuzz --list-bugs
    python -m repro.fuzz --inject vector-slice-short --budget 100

Exit status is 0 when every oracle pair agreed on every case (and, in
``--replay`` mode, when every corpus entry conforms), 1 otherwise —
except under ``--inject``, where *finding* the planted bug is the
success criterion and a clean run is the failure.
"""

import argparse
import contextlib
import sys

from repro.fuzz import corpus as corpus_mod
from repro.fuzz.engine import PROFILES, run_fuzz
from repro.fuzz.inject import injectable_bugs, injected_bug


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.fuzz",
        description="Seeded differential fuzzing of the looplets "
                    "compiler: interpreter vs opt levels vs spec "
                    "round-trip vs batch executors.")
    parser.add_argument("--seed", type=int, default=0,
                        help="master campaign seed (default 0)")
    parser.add_argument("--budget", type=int, default=200,
                        help="number of generated cases (default 200)")
    parser.add_argument("--profile", choices=PROFILES, default="quick",
                        help="case size / batch width profile")
    parser.add_argument("--corpus", default=corpus_mod.DEFAULT_CORPUS_DIR,
                        help="corpus directory for shrunk repros "
                             "(default fuzz_corpus/)")
    parser.add_argument("--no-corpus", action="store_true",
                        help="do not persist repros")
    parser.add_argument("--no-shrink", action="store_true",
                        help="skip delta debugging on failures")
    parser.add_argument("--max-failures", type=int, default=5,
                        help="stop after this many divergent cases")
    parser.add_argument("--chaos", action="store_true",
                        help="add the batch_chaos oracle: every case "
                             "also runs with an injected worker crash "
                             "and must recover bit-identically")
    parser.add_argument("--replay", action="store_true",
                        help="replay the corpus instead of fuzzing")
    parser.add_argument("--inject", metavar="BUG",
                        help="run with a named bug injected (the "
                             "campaign must catch it)")
    parser.add_argument("--list-bugs", action="store_true",
                        help="list injectable bugs and exit")
    parser.add_argument("--quiet", action="store_true",
                        help="suppress per-case progress output")
    return parser


def _replay(args, log):
    reports, failures = corpus_mod.replay_corpus(args.corpus,
                                                 profile=args.profile)
    log("corpus replay: %d entr%s under %s" % (
        len(reports), "y" if len(reports) == 1 else "ies",
        args.corpus))
    for path, report in sorted(reports.items()):
        log("  %s: %s" % (path, "ok" if report.ok else "DIVERGED"))
    # Failures always print, --quiet or not: a CI replay that exits 1
    # with an empty log would leave nothing to diagnose from.
    for path in failures:
        print("DIVERGED: %s" % path)
        for divergence in reports[path].divergences:
            print("  " + str(divergence))
    if failures:
        print("result: FAIL — %d corpus entr%s diverge" % (
            len(failures), "y" if len(failures) == 1 else "ies"))
        return 1
    print("result: PASS (%d corpus entries conform)" % len(reports))
    return 0


def main(argv=None):
    args = _build_parser().parse_args(argv)
    log = (lambda *a, **k: None) if args.quiet else print
    if args.list_bugs:
        for name, description in injectable_bugs().items():
            print("%-24s %s" % (name, description))
        return 0
    if args.replay:
        return _replay(args, log)

    corpus_dir = None if args.no_corpus else args.corpus
    context = (injected_bug(args.inject) if args.inject
               else contextlib.nullcontext())
    with context:
        result = run_fuzz(
            seed=args.seed, budget=args.budget, profile=args.profile,
            corpus_dir=corpus_dir, max_failures=args.max_failures,
            shrink=not args.no_shrink, log=log, chaos=args.chaos)
    print(result.summary())
    if args.inject:
        if result.ok:
            print("injected bug %r was NOT caught — the conformance "
                  "engine has a blind spot" % args.inject)
            return 1
        print("injected bug %r caught and shrunk as intended"
              % args.inject)
        return 0
    return 0 if result.ok else 1


if __name__ == "__main__":
    sys.exit(main())
