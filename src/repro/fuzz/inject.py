"""Deliberately injectable bugs: the conformance engine's self-test.

A fuzzer that has never caught anything proves nothing.  This module
carries a registry of *named* bugs — each a small, realistic
miscompilation patched into a live compiler seam — so tests and the
CLI (``python -m repro.fuzz --inject NAME``) can demonstrate the whole
catch-shrink-persist pipeline end to end against a known defect.

Each injection is a context manager that monkeypatches one function,
clears the process-wide kernel cache on entry and exit (cached
artifacts would otherwise leak compiled code across the healthy/buggy
boundary in both directions), and restores the original on exit even
if the body raises.
"""

import contextlib

from repro.compiler.kernel import KERNEL_CACHE

#: name -> (human description, patch installer).  Installers return an
#: undo callable.
_BUGS = {}


def injectable_bugs():
    """Mapping of bug name -> one-line description."""
    return {name: desc for name, (desc, _) in sorted(_BUGS.items())}


def _register(name, description):
    def decorate(installer):
        _BUGS[name] = (description, installer)
        return installer
    return decorate


@contextlib.contextmanager
def injected_bug(name):
    """Install the named bug for the duration of the ``with`` block."""
    try:
        _, installer = _BUGS[name]
    except KeyError:
        raise KeyError(
            "unknown injectable bug %r (have: %s)"
            % (name, ", ".join(sorted(_BUGS)))) from None
    KERNEL_CACHE.clear()
    undo = installer()
    try:
        yield
    finally:
        undo()
        KERNEL_CACHE.clear()


@_register("vector-slice-short",
           "vectorizer emits slices one element short (opt_level 2 "
           "dense loops drop their last iteration)")
def _install_vector_slice_short():
    from repro.ir import optimize
    from repro.ir.nodes import Literal
    from repro.ir import build
    from repro.ir.pretty import slice_source
    from repro.rewrite import simplify_expr

    original = optimize._slice_src

    def buggy(buffer, coeff, base, start, stop):
        lo = simplify_expr(build.plus(build.times(Literal(coeff), start),
                                      base))
        hi = simplify_expr(build.plus(build.times(Literal(coeff), stop),
                                      base, Literal(-coeff)))
        return slice_source(buffer, lo, hi, coeff)

    optimize._slice_src = buggy

    def undo():
        optimize._slice_src = original

    return undo


@_register("seek-overshoot",
           "the runtime binary search lands one position late, so "
           "stepper/jumper seeks skip the first stored element at or "
           "after the target")
def _install_seek_overshoot():
    from repro.ir import runtime

    original = runtime.search_ge

    def buggy(idx, lo, hi, key):
        found = original(idx, lo, hi, key)
        return min(found + 1, hi)

    # Kernels resolve search_ge through the frozen helper snapshot,
    # not the module global, so patch the snapshot and drop the cached
    # base namespace on both install and undo.
    runtime._STATIC_HELPERS["search_ge"] = buggy
    runtime._BASE_CACHE["version"] = None

    def undo():
        runtime._STATIC_HELPERS["search_ge"] = original
        runtime._BASE_CACHE["version"] = None

    return undo


@_register("batch-drops-last",
           "the batch engine silently skips the final dataset of every "
           "batch (executor-level result loss)")
def _install_batch_drops_last():
    from repro.exec import batch as batch_mod

    original = batch_mod.KernelPool._resolve

    def buggy(self, datasets):
        resolved = original(self, datasets)
        return resolved[:-1] if len(resolved) > 1 else resolved

    batch_mod.KernelPool._resolve = buggy

    def undo():
        batch_mod.KernelPool._resolve = original

    return undo
