"""Schedule/protocol autotuning with a persisted winners table.

The paper's central claim is that *coiteration strategy* — which
protocol each tensor access uses to traverse its levels — changes the
asymptotics of a kernel, and that the strategy is a compiler choice,
not a format property.  This package closes the loop: instead of the
program author hand-picking ``gallop`` vs ``walk`` per access, the
autotuner enumerates the legal protocol assignments (crossed with
``opt_level`` and backend), times each on representative data, rejects
any candidate that is not **bit-identical** to the reference
interpreter, and persists the fastest survivor into the kernel store's
``tunings/`` table.  From then on ``compile_kernel(program,
tune="apply")`` — or ``FL_KERNEL_TUNE=apply`` for a whole process —
compiles the winning schedule with zero search.

Layout:

:mod:`repro.tune.schedule`
    The schedule representation (JSON dicts over the canonical
    ``collect_accesses`` preorder), the protocol rewriter, the
    protocol-erased tuning key, and candidate enumeration with the
    loop-leader legality filter.

:mod:`repro.tune.engine`
    The search loop: compile → verify against the interpreter → time
    (warmup + median-of-k) → persist the winner; plus the read side
    ``compile_kernel`` calls.

:mod:`repro.tune.__main__`
    ``python -m repro.tune`` — search the benchmark figure registry
    (or one fuzz spec) and print/persist the results.
"""

from repro.tune.engine import (
    clear_tuning_memo,
    lookup_schedule,
    tune_program,
)
from repro.tune.schedule import (
    TUNE_VERSION,
    apply_schedule,
    describe_schedule,
    enumerate_candidates,
    extract_protocols,
    neutral_digest,
    tunable_sites,
    tuning_key_meta,
    validate_schedule,
)

__all__ = [
    "TUNE_VERSION",
    "apply_schedule",
    "clear_tuning_memo",
    "describe_schedule",
    "enumerate_candidates",
    "extract_protocols",
    "lookup_schedule",
    "neutral_digest",
    "tunable_sites",
    "tune_program",
    "tuning_key_meta",
    "validate_schedule",
]
