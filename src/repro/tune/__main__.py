"""``python -m repro.tune`` — drive the schedule autotuner.

Searches the benchmark figure registry (default: every figure) or one
generated fuzz spec, persists each winner into the kernel store's
tunings table, and prints a summary — aligned text by default,
GitHub-flavored markdown with ``--markdown`` (CI pipes it into the job
summary)::

    python -m repro.tune --store .fl_store
    python -m repro.tune --figures fig1_dot,fig8_triangles --budget 8
    python -m repro.tune --spec 1234 --no-persist
    FL_KERNEL_STORE=.fl_store python -m repro.tune --markdown

Exit status is 0 when every requested search completed (win or no
win), 1 on an unknown figure or a search that errored outright.
"""

import argparse
import sys


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.tune",
        description="autotune kernel schedules and persist the winners")
    parser.add_argument(
        "--figures", default="all",
        help="comma-separated figure names from the benchmark "
             "registry, or 'all' (default)")
    parser.add_argument(
        "--spec", type=int, default=None, metavar="SEED",
        help="tune one generated fuzz case instead of the figure "
             "registry")
    parser.add_argument(
        "--budget", type=int, default=None,
        help="max candidates measured per program (default: all)")
    parser.add_argument(
        "--repeats", type=int, default=5,
        help="timing runs per candidate, median taken (default 5)")
    parser.add_argument(
        "--warmup", type=int, default=1,
        help="discarded warmup runs per candidate (default 1)")
    parser.add_argument(
        "--opt-levels", default="1,2",
        help="comma-separated opt levels to search (default 1,2)")
    parser.add_argument(
        "--backends", default=None,
        help="comma-separated backends to search (default: python, "
             "plus c when a toolchain is installed)")
    parser.add_argument(
        "--store", default=None,
        help="kernel store directory (default: the active store / "
             "FL_KERNEL_STORE)")
    parser.add_argument(
        "--no-persist", action="store_true",
        help="search and report only; write nothing to the store")
    parser.add_argument(
        "--markdown", action="store_true",
        help="emit a GitHub-flavored markdown table")
    return parser.parse_args(argv)


def _targets(args):
    """The ``(name, label, make_program)`` list this invocation tunes."""
    if args.spec is not None:
        from repro.fuzz.gen import build_case, generate_spec

        spec = generate_spec(args.spec)
        return [("spec:%d" % args.spec, "fuzz case",
                 lambda spec=spec: build_case(spec).program)]
    from repro.bench.figures import warm_start_programs

    registry = warm_start_programs()
    if args.figures == "all":
        wanted = [entry[0] for entry in registry]
    else:
        wanted = [name.strip() for name in args.figures.split(",")
                  if name.strip()]
    by_name = {entry[0]: entry for entry in registry}
    missing = [name for name in wanted if name not in by_name]
    if missing:
        raise SystemExit(
            "unknown figures: %s (have: %s)"
            % (", ".join(missing), ", ".join(sorted(by_name))))
    return [(name, by_name[name][1], by_name[name][2])
            for name in wanted]


def _fmt_s(seconds):
    return "-" if seconds is None else "%.3g" % seconds


def _fmt_speedup(value):
    return "-" if value is None else "%.2fx" % value


def main(argv=None):
    args = _parse_args(argv if argv is not None else sys.argv[1:])
    from repro.store import KernelStore, using_store
    from repro.tune import describe_schedule, tune_program

    opt_levels = tuple(int(level) for level
                       in args.opt_levels.split(",") if level.strip())
    backends = None
    if args.backends is not None:
        backends = tuple(name.strip()
                         for name in args.backends.split(",")
                         if name.strip())
    store = KernelStore(args.store) if args.store else None

    results = []
    failed = False
    with using_store(store) if store is not None else _noop():
        for name, label, make_program in _targets(args):
            result = tune_program(
                make_program, label=label, opt_levels=opt_levels,
                backends=backends, budget=args.budget,
                repeats=args.repeats, warmup=args.warmup,
                persist=not args.no_persist)
            result["figure"] = name
            results.append(result)
            # An unverifiable program (the reference interpreter
            # cannot run it) is an honest skip, not a failure.
            if result["schedule"] is None \
                    and not result.get("unverifiable"):
                failed = True

    if args.markdown:
        print("| figure | label | candidates | baseline (s) | "
              "tuned (s) | speedup | winner | persisted |")
        print("|---|---|---:|---:|---:|---:|---|---|")
        for r in results:
            print("| %s | %s | %d | %s | %s | %s | `%s` | %s |" % (
                r["figure"], r["label"], r["candidates"],
                _fmt_s(r["baseline_s"]), _fmt_s(r["best_s"]),
                _fmt_speedup(r["speedup"]),
                describe_schedule(r["schedule"]) if r["schedule"]
                else "-",
                "yes" if r["persisted"] else "no"))
    else:
        from repro.bench.harness import Table

        table = Table("schedule autotuner",
                      ["figure", "label", "cands", "baseline (s)",
                       "tuned (s)", "speedup", "winner", "persisted"])
        for r in results:
            table.add(r["figure"], r["label"], r["candidates"],
                      _fmt_s(r["baseline_s"]), _fmt_s(r["best_s"]),
                      _fmt_speedup(r["speedup"]),
                      describe_schedule(r["schedule"])
                      if r["schedule"] else "-",
                      "yes" if r["persisted"] else "no")
        print(table.render())
    wins = sum(1 for r in results
               if r["speedup"] is not None and r["speedup"] > 1.0)
    print()
    print("tuned %d program(s): %d measured win(s), %d persisted"
          % (len(results), wins,
             sum(1 for r in results if r["persisted"])))
    return 1 if failed else 0


def _noop():
    from contextlib import nullcontext

    return nullcontext()


if __name__ == "__main__":
    sys.exit(main())
