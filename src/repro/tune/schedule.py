"""Schedule extraction, rewriting, and candidate enumeration.

A *schedule* is everything the autotuner is allowed to vary without
changing what a program computes:

* the access protocol of every tensor mode (walk / gallop / locate /
  the format default), which decides the coiteration strategy the
  compiler lowers — the paper's headline asymptotic knob,
* ``opt_level`` (1: scalar passes, 2: plus dense-loop vectorization),
* the ``backend`` (``"python"`` / ``"c"``).

Schedules are plain JSON dicts::

    {"protocols": [[proto-or-None, ...] per access], "opt_level": 2,
     "backend": "python"}

``protocols`` lists one entry per :class:`~repro.cin.nodes.Access` in
:func:`~repro.cin.nodes.collect_accesses` preorder — the one canonical
traversal shared by :func:`extract_protocols` (read a program's
schedule) and :func:`apply_schedule` (rebuild the program with a new
one), so a schedule round-trips losslessly.

The *tuning key* is deliberately protocol-erased: protocols are part of
the structural key (two protocol variants of one program compile to
different kernels), so the winners table is addressed by the structural
digest of the program with every protocol reset to the format default
(:func:`neutral_digest`).  Any protocol spelling of a program maps to
the same table row — which is the point: the tuner, not the program
author, decides protocols.
"""

from itertools import product

from repro.cin.analyze import forall_indices, structural_digest, structural_key
from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    Multi,
    Pass,
    Sieve,
    Where,
    collect_accesses,
    index_base,
)
from repro.ir.nodes import Var
from repro.util.errors import ReproError

#: Bumped when the schedule layout or the tuning-key derivation changes
#: incompatibly; part of every tuning key, so old winners read as
#: misses rather than misapply.
TUNE_VERSION = 1

#: Protocols that may *lead* a coiterated loop (drive its position).
#: ``None`` (the format default) resolves to ``walk``; ``locate``
#: probes positions someone else produced and cannot lead alone.
LEADER_PROTOCOLS = (None, "walk", "gallop", "follow")

#: Above this many full-cartesian protocol assignments the enumerator
#: falls back to baseline + single-site mutations.
MAX_CARTESIAN = 64


def extract_protocols(program):
    """The program's per-access protocol tuples, in canonical
    (:func:`collect_accesses` preorder) order, as nested lists."""
    return [list(access.protocols) for access in collect_accesses(program)]


def apply_protocols(program, protocols):
    """``program`` rebuilt with every access's protocols replaced.

    ``protocols`` must list one per-mode sequence per access, in the
    same :func:`collect_accesses` preorder :func:`extract_protocols`
    uses.  Tensors are shared, never copied — the rebuilt program binds
    the same data.  Raises :class:`ReproError` on a count mismatch.
    """
    expected = len(collect_accesses(program))
    if len(protocols) != expected:
        raise ReproError(
            "schedule lists %d access protocol entries, program has %d"
            % (len(protocols), expected))
    queue = [tuple(entry) for entry in protocols]
    position = [0]

    def next_protos(access):
        protos = queue[position[0]]
        position[0] += 1
        if len(protos) != len(access.idxs):
            raise ReproError(
                "schedule entry %d has %d protocols, access %r has "
                "%d modes" % (position[0] - 1, len(protos), access,
                              len(access.idxs)))
        return protos

    def rebuild_expr(expr):
        if isinstance(expr, Access):
            protos = next_protos(expr)  # preorder: self before children
            idxs = tuple(rebuild_expr(idx) for idx in expr.idxs)
            return Access(expr.tensor, idxs, protos)
        children = expr.children()
        if not children:
            return expr
        return expr.rebuild(tuple(rebuild_expr(child)
                                  for child in children))

    def rebuild_stmt(stmt):
        if isinstance(stmt, Assign):
            lhs = rebuild_expr(stmt.lhs)
            rhs = rebuild_expr(stmt.rhs)
            return Assign(lhs, stmt.op, rhs)
        if isinstance(stmt, Forall):
            return Forall(stmt.index, rebuild_stmt(stmt.body),
                          ext=stmt.ext)
        if isinstance(stmt, Sieve):
            return Sieve(rebuild_expr(stmt.cond),
                         rebuild_stmt(stmt.body))
        if isinstance(stmt, Where):
            consumer = rebuild_stmt(stmt.consumer)
            producer = rebuild_stmt(stmt.producer)
            return Where(consumer, producer)
        if isinstance(stmt, Multi):
            return Multi(tuple(rebuild_stmt(child)
                               for child in stmt.stmts))
        if isinstance(stmt, Pass):
            return stmt
        raise ReproError("cannot rewrite statement %r" % (stmt,))

    return rebuild_stmt(program)


def apply_schedule(program, schedule):
    """``program`` rewritten per ``schedule["protocols"]`` (the
    ``opt_level``/``backend`` axes are compile options, applied by the
    caller)."""
    return apply_protocols(program, schedule["protocols"])


def neutral_program(program):
    """``program`` with every protocol reset to the format default."""
    return apply_protocols(
        program,
        [[None] * len(access.idxs)
         for access in collect_accesses(program)])


def neutral_digest(program, length=40):
    """The protocol-erased structural digest — the tuning-table
    address shared by every protocol spelling of one program."""
    return structural_digest(structural_key(neutral_program(program)),
                             length=length)


def tuning_key_meta(program, constant_loop_rewrite=True):
    """The winners-table key for one program structure.

    Mirrors :func:`repro.store.disk.store_key_meta`'s invalidation
    discipline: the same three version axes (op registry, optimizer
    pipeline, codegen module graph) plus the store/tune layout
    versions, so a winner can never outlive the compiler that measured
    it.  Unlike entry keys it carries **no** ``opt_level``/``backend``
    (those are the *value* being looked up) and no
    ``instrument``/``name`` (a tuning is a property of the program
    structure, not of one compile's labeling).
    """
    from repro.ir.ops import registry_version
    from repro.ir.optimize import pipeline_fingerprint
    from repro.store.disk import STORE_VERSION, codegen_fingerprint

    return {
        "kind": "tuning",
        "store_version": STORE_VERSION,
        "tune_version": TUNE_VERSION,
        "structural_digest": neutral_digest(program),
        "constant_loop_rewrite": bool(constant_loop_rewrite),
        "registry_version": registry_version(),
        "pipeline_fingerprint": pipeline_fingerprint(),
        "codegen_fingerprint": codegen_fingerprint(),
    }


def validate_schedule(program, schedule):
    """True when ``schedule`` shape-matches ``program`` and names only
    known axes — the gate a table hit must pass before it is applied
    (a winner recorded for a different program must never rewrite
    this one)."""
    from repro.cin.nodes import PROTOCOLS
    from repro.compiler.kernel import BACKENDS

    if not isinstance(schedule, dict):
        return False
    protocols = schedule.get("protocols")
    accesses = collect_accesses(program)
    if not isinstance(protocols, list) or len(protocols) != len(accesses):
        return False
    for entry, access in zip(protocols, accesses):
        if not isinstance(entry, list) or len(entry) != len(access.idxs):
            return False
        if any(p is not None and p not in PROTOCOLS for p in entry):
            return False
    if not isinstance(schedule.get("opt_level"), int):
        return False
    backend = schedule.get("backend")
    return backend is None or backend in BACKENDS


def tunable_sites(program):
    """The protocol search sites of one program.

    Each site is ``(access position, mode, options)`` where ``options``
    are the protocol names the access's level format supports (always
    including ``None``, the format default).  Only *read* accesses over
    loop indices are tunable: assignment targets keep their protocols
    (outputs are appended/located by the lowerer, not coiterated), and
    a mode whose format supports a single protocol has nothing to
    search.
    """
    from repro.cin.nodes import walk_stmts

    writes = set()
    for stmt in walk_stmts(program):
        if isinstance(stmt, Assign):
            writes.add(id(stmt.lhs))
    sites = []
    for pos, access in enumerate(collect_accesses(program)):
        if id(access) in writes:
            continue
        levels = getattr(access.tensor, "levels", None)
        if not levels:
            continue
        for mode, idx in enumerate(access.idxs):
            if mode >= len(levels):
                continue
            if not isinstance(index_base(idx), Var):
                continue
            supported = tuple(getattr(levels[mode], "PROTOCOLS",
                                      ("walk",)))
            options = (None,) + tuple(p for p in supported
                                      if p != "walk")
            if len(options) > 1:
                sites.append((pos, mode, options))
    return sites


def _legal(program, protocols):
    """True when every coiterated loop keeps at least one leader.

    ``locate`` probes positions another access produced; an index whose
    every access locates has no one to produce positions, and the
    lowering has nothing to drive the loop with.
    """
    by_index = {}
    for access, protos in zip(collect_accesses(program), protocols):
        for mode, idx in enumerate(access.idxs):
            base = index_base(idx)
            if isinstance(base, Var):
                by_index.setdefault(base.name, []).append(protos[mode])
    for name in forall_indices(program):
        seen = by_index.get(name)
        if seen and not any(p in LEADER_PROTOCOLS for p in seen):
            return False
    return True


def enumerate_candidates(program, opt_levels=(1, 2),
                         backends=("python",),
                         max_cartesian=MAX_CARTESIAN):
    """Every candidate schedule for ``program``, default first.

    Protocol assignments come from the full cartesian product over the
    :func:`tunable_sites` when it stays within ``max_cartesian``,
    otherwise from the baseline plus every single-site mutation (a
    coordinate-descent neighborhood).  Illegal assignments (a loop
    left with no leader access) are filtered out; the cross with
    ``opt_levels`` x ``backends`` gives the final list.  The first
    candidate is always the program exactly as written at the default
    compile configuration, so a measured "win" is always a win over
    what the user would have gotten.
    """
    from repro.ir.optimize import DEFAULT_OPT_LEVEL

    baseline = extract_protocols(program)
    sites = tunable_sites(program)
    assignments = [baseline]
    seen = {_freeze(baseline)}

    def admit(protocols):
        key = _freeze(protocols)
        if key in seen or not _legal(program, protocols):
            return
        seen.add(key)
        assignments.append(protocols)

    total = 1
    for _, _, options in sites:
        total *= len(options)
    if sites and total <= max_cartesian:
        for combo in product(*(options for _, _, options in sites)):
            protocols = [list(entry) for entry in baseline]
            for (pos, mode, _), choice in zip(sites, combo):
                protocols[pos][mode] = choice
            admit(protocols)
    else:
        for pos, mode, options in sites:
            for choice in options:
                protocols = [list(entry) for entry in baseline]
                protocols[pos][mode] = choice
                admit(protocols)

    candidates = [{"protocols": baseline, "opt_level": DEFAULT_OPT_LEVEL,
                   "backend": "python"}]
    for protocols in assignments:
        for opt_level in opt_levels:
            for backend in backends:
                candidate = {"protocols": protocols,
                             "opt_level": int(opt_level),
                             "backend": backend}
                if candidate != candidates[0]:
                    candidates.append(candidate)
    return candidates


def _freeze(protocols):
    return tuple(tuple(entry) for entry in protocols)


def describe_schedule(schedule):
    """A compact one-line rendering for tables and logs."""
    protos = "/".join(
        ",".join("-" if p is None else p for p in entry)
        for entry in schedule["protocols"])
    return "%s @%d %s" % (protos, schedule["opt_level"],
                          schedule.get("backend") or "python")
