"""The autotuner search engine: measure, verify, persist, look up.

:func:`tune_program` runs one exhaustive (or budget-truncated) search
over a program's candidate schedules (:mod:`repro.tune.schedule`):
every candidate is compiled through the ordinary kernel pipeline,
**verified bit-identical against the reference interpreter** before it
may compete (:func:`repro.fuzz.conform.verify_candidate` — a fast
wrong answer is not a win, it is a bug), then timed with
warmup-discarded median-of-k (:func:`repro.bench.harness.
median_time_kernel`).  The fastest verified candidate becomes the
*winner* and is persisted into the active
:class:`~repro.store.KernelStore`'s tunings table under a
protocol-erased structural key (:func:`repro.tune.schedule.
tuning_key_meta`).

:func:`lookup_schedule` is the read side ``compile_kernel(...,
tune="apply")`` calls: a table hit (validated against the concrete
program before use) rewrites the compile; a miss compiles the program
as written.  Because the search compiles candidates through the
caching pipeline *under the same store*, the winner's artifact is
already persisted next to its tuning record — a fresh process applying
the winner pays zero search and zero compiles, just two disk reads.
"""

import logging
import time

from repro.tune import schedule as _sched

_log = logging.getLogger("repro.tune")

#: Per-process memo of winners-table hits, keyed by tuning-record
#: digest: one disk read per program structure per process, not one
#: per compile.  Only *hits* memoize — a miss stays a cheap
#: ``os.path.exists`` probe, and a table written later in the process
#: (a tune run) must become visible.
_MEMO = {}


def clear_tuning_memo():
    """Drop the per-process winners memo (tests, and tune runs that
    rewrite the table)."""
    _MEMO.clear()


def lookup_schedule(program, constant_loop_rewrite=True):
    """The persisted winning schedule for ``program``, or None.

    Consults the active store's tunings table under the
    protocol-erased tuning key; any hit is shape-validated against the
    concrete program (:func:`repro.tune.schedule.validate_schedule`)
    before it is returned — a record that does not fit reads as a
    miss, never as a crash or a misapplied rewrite.
    """
    from repro.store import active_store
    from repro.store.disk import entry_digest

    meta = _sched.tuning_key_meta(
        program, constant_loop_rewrite=constant_loop_rewrite)
    digest = entry_digest(meta)
    cached = _MEMO.get(digest)
    if cached is not None:
        return cached
    store = active_store()
    if store is None:
        return None
    record = store.load_tuning(meta)
    if not isinstance(record, dict):
        return None
    schedule = record.get("schedule")
    if not _sched.validate_schedule(program, schedule):
        _log.warning(
            "tuning record %s does not fit the program it keys; "
            "ignoring it", digest)
        return None
    _MEMO[digest] = schedule
    return schedule


def tune_program(make_program, label="program", opt_levels=(1, 2),
                 backends=None, budget=None, repeats=5, warmup=1,
                 constant_loop_rewrite=True, store=None, persist=True):
    """Search one program's schedule space; returns a result dict.

    ``make_program`` builds the program over its representative data
    (fresh tensors are fine; every candidate is rewritten from one
    instance, so all candidates bind *identical* data and their
    timings are comparable).  ``budget`` caps the number of candidates
    measured (the default-configuration baseline always survives the
    cut; the drop is reported, never silent).  ``backends`` defaults
    to ``("python",)`` plus ``"c"`` when a toolchain is installed.

    Candidates compile through the ordinary caching pipeline under
    ``store`` (default: the active store), so the winner's artifact is
    write-behind persisted alongside its tuning record.  With
    ``persist=True`` and a store present the winner lands in the
    tunings table; divergent or crashing candidates are *never*
    eligible, no matter how fast.

    The result dict carries the winner (``schedule``), per-candidate
    ``records``, ``baseline_s``/``best_s``/``speedup``, the counts
    (``candidates``/``measured``/``verified``/``rejected``/
    ``errors``/``dropped``), and ``persisted`` (the record path, or
    None).
    """
    from repro.bench.harness import median_time_kernel
    from repro.compiler.kernel import compile_kernel
    from repro.compiler.options import CompileOptions
    from repro.fuzz.conform import reference_outputs, verify_candidate
    from repro.store import active_store, using_store
    from repro.store.disk import entry_digest

    if backends is None:
        from repro import codegen

        backends = (("python", "c") if codegen.have_toolchain()
                    else ("python",))
    if store is None:
        store = active_store()

    program = make_program()
    meta = _sched.tuning_key_meta(
        program, constant_loop_rewrite=constant_loop_rewrite)
    # One interpreter run covers every candidate: they all rewrite
    # *this* program over *these* tensors, so the trusted answer is a
    # constant of the search.  A program the reference interpreter
    # cannot execute (e.g. output-builder tensors) is unverifiable —
    # no candidate can ever become eligible, so the search is skipped
    # honestly rather than crashed.
    try:
        expected = reference_outputs(program)
    except Exception as exc:
        _log.warning("tune %s: reference interpreter cannot run the "
                     "program (%s: %s); skipping the search",
                     label, type(exc).__name__, exc)
        return {
            "label": label,
            "digest": entry_digest(meta),
            "candidates": 0, "dropped": 0, "measured": 0,
            "verified": 0, "rejected": 0, "errors": 1,
            "baseline_s": None, "best_s": None, "schedule": None,
            "speedup": None, "records": [],
            "persisted": None, "seconds": 0.0,
            "unverifiable": "%s: %s" % (type(exc).__name__, exc),
        }
    candidates = _sched.enumerate_candidates(
        program, opt_levels=opt_levels, backends=backends)
    dropped = 0
    if budget is not None and len(candidates) > max(1, int(budget)):
        kept = max(1, int(budget))
        dropped = len(candidates) - kept
        _log.info("tune %s: budget %d keeps %d of %d candidates",
                  label, kept, kept, len(candidates))
        candidates = candidates[:kept]

    records = []
    start = time.perf_counter()
    for position, candidate in enumerate(candidates):
        record = {"schedule": candidate,
                  "describe": _sched.describe_schedule(candidate),
                  "median_s": None, "verified": False, "error": None}
        records.append(record)
        try:
            variant = _sched.apply_schedule(program, candidate)
            with using_store(store):
                # One frozen options bundle per candidate.
                # tune="off" unconditionally: the search must measure
                # the candidate as enumerated, never re-apply the very
                # table it is rebuilding (FL_KERNEL_TUNE=apply in the
                # environment would otherwise recurse into it).
                kernel = compile_kernel(
                    variant,
                    constant_loop_rewrite=constant_loop_rewrite,
                    options=CompileOptions(
                        opt_level=candidate["opt_level"],
                        backend=candidate["backend"],
                        tune="off"))
        except Exception as exc:
            record["error"] = "%s: %s" % (type(exc).__name__, exc)
            continue
        divergences = verify_candidate(
            variant, kernel, name="candidate[%d]" % position,
            expected=expected)
        if divergences:
            record["error"] = "diverged: %s" % "; ".join(
                str(d) for d in divergences)
            continue
        record["verified"] = True
        record["effective_backend"] = kernel.effective_backend
        record["median_s"] = median_time_kernel(
            kernel, repeats=repeats, warmup=warmup)

    verified = [r for r in records if r["verified"]]
    baseline = records[0] if records and records[0]["verified"] else None
    winner = min(verified, key=lambda r: r["median_s"]) \
        if verified else None

    result = {
        "label": label,
        "digest": entry_digest(meta),
        "candidates": len(candidates),
        "dropped": dropped,
        "measured": len(records),
        "verified": len(verified),
        "rejected": sum(1 for r in records
                        if r["error"] and r["error"].startswith(
                            "diverged")),
        "errors": sum(1 for r in records
                      if r["error"] and not r["error"].startswith(
                          "diverged")),
        "baseline_s": baseline["median_s"] if baseline else None,
        "best_s": winner["median_s"] if winner else None,
        "schedule": winner["schedule"] if winner else None,
        "speedup": (baseline["median_s"] / winner["median_s"]
                    if baseline and winner and winner["median_s"] > 0
                    else None),
        "records": records,
        "persisted": None,
        "seconds": time.perf_counter() - start,
    }
    if persist and winner is not None and store is not None:
        payload = {
            "label": label,
            "schedule": winner["schedule"],
            "median_s": winner["median_s"],
            "baseline_s": result["baseline_s"],
            "speedup": result["speedup"],
            "candidates": len(candidates),
        }
        result["persisted"] = store.save_tuning(meta, payload)
        # The table changed under this process; re-read on next apply.
        _MEMO.pop(entry_digest(meta), None)
    return result
