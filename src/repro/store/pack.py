"""AOT kernel packs: a relocatable ``.flpack`` of compiled specs.

A pack is a zip with one ``manifest.json`` plus one
``specs/<digest>.json`` per kernel, where ``<digest>`` is the store's
content digest of the entry's key (:func:`repro.store.disk.
entry_digest`) — the same addressing a :class:`~repro.store.disk.
KernelStore` uses, so importing a pack into a store is a rename-free
copy.  The manifest records the version axes the pack was built under
(spec layout, op-registry version, optimizer/codegen fingerprints);
:func:`load_pack` skips entries whose axes no longer match instead of
serving stale kernels.

Packs are built from the two kernel populations CI exercises on every
run: the benchmark figure suite (via
:func:`repro.bench.figures.pack_programs`) and the fuzz corpus plus a
deterministic fuzz campaign (the same seeds the ``fuzz-smoke`` job
replays).  A ``warm-kernels`` CI job compiles everything once into a
pack, uploads it, and every downstream job warms its store from the
artifact — so the expensive specialize-and-optimize work happens in
exactly one place per pipeline.
"""

import json
import os
import zipfile

from repro.store.disk import (
    STORE_VERSION,
    entry_digest,
    meta_for_artifact,
)

#: Bumped when the pack layout changes incompatibly.
PACK_VERSION = 1


class PackError(ValueError):
    """A ``.flpack`` could not be read, verified, or loaded."""


def _current_axes():
    """The version axes of the running code, as manifest fields."""
    from repro.compiler.kernel import SPEC_VERSION
    from repro.ir.ops import registry_version
    from repro.ir.optimize import pipeline_fingerprint
    from repro.store.disk import codegen_fingerprint

    return {
        "store_version": STORE_VERSION,
        "spec_version": SPEC_VERSION,
        "registry_version": registry_version(),
        "pipeline_fingerprint": pipeline_fingerprint(),
        "codegen_fingerprint": codegen_fingerprint(),
    }


def _meta_axes(meta):
    return {
        "store_version": meta.get("store_version"),
        "spec_version": meta.get("spec_version"),
        "registry_version": meta.get("registry_version"),
        "pipeline_fingerprint": meta.get("pipeline_fingerprint"),
        "codegen_fingerprint": meta.get("codegen_fingerprint"),
    }


def write_pack(path, entries, note="", base=None):
    """Write ``entries`` as one ``.flpack``; returns a summary dict.

    Each entry is a dict with ``key`` (store key meta), ``spec`` (the
    serialized artifact) and optional ``figure``/``label`` provenance.
    Entries are deduplicated by content digest — the figure registry
    legitimately names one kernel twice (e.g. a kernel shared by two
    benchmark tests).

    ``base`` (a ``.flpack`` path) turns the output into a *diff pack*:
    entries whose content digest already lives in the base are not
    written again — only new or changed kernels carry bytes.  Because
    digests are content-addressed, a changed kernel simply hashes to a
    new digest and is included; an unchanged one is listed in the
    manifest's ``base_digests`` so :func:`verify_pack` and
    :func:`load_pack` can resolve the full set against the base layer.
    This keeps the artifacts a long-lived kernel service republishes
    flat: day-to-day packs ship only the delta.
    """
    base_digests = set()
    if base is not None:
        base_manifest, _ = read_pack(base)
        base_digests = {listed["digest"]
                        for listed in base_manifest.get("entries", [])}
        base_digests.update(base_manifest.get("base_digests", []))
    manifest_entries = []
    by_digest = {}
    deferred = []
    for entry in entries:
        digest = entry_digest(entry["key"])
        if digest in by_digest or digest in deferred:
            continue
        if digest in base_digests:
            deferred.append(digest)
            continue
        by_digest[digest] = entry
        manifest_entries.append({
            "digest": digest,
            "figure": entry.get("figure", ""),
            "label": entry.get("label", ""),
            "name": entry["spec"]["name"],
            "opt_level": entry["spec"]["opt_level"],
            "instrument": entry["spec"]["instrument"],
            "structural_digest": entry["key"]["structural_digest"],
        })
    manifest = dict(_current_axes())
    manifest.update({
        "pack_version": PACK_VERSION,
        "note": note,
        "count": len(manifest_entries),
        "entries": manifest_entries,
        "base": os.path.basename(base) if base else "",
        "base_digests": sorted(deferred),
    })
    with zipfile.ZipFile(path, "w", zipfile.ZIP_DEFLATED) as archive:
        archive.writestr("manifest.json",
                         json.dumps(manifest, indent=2, sort_keys=True))
        for digest, entry in sorted(by_digest.items()):
            archive.writestr(
                "specs/%s.json" % digest,
                json.dumps({"key": entry["key"], "spec": entry["spec"],
                            "figure": entry.get("figure", ""),
                            "label": entry.get("label", "")},
                           sort_keys=True, separators=(",", ":")))
    return {"path": path, "count": len(manifest_entries),
            "deferred": len(deferred)}


def read_pack(path):
    """``(manifest, entries)`` of one pack, digests verified.

    Raises :class:`PackError` when the manifest is unreadable, an
    entry named by the manifest is missing, or an entry's recorded key
    no longer hashes to its digest (bit rot or tampering).
    """
    try:
        with zipfile.ZipFile(path) as archive:
            try:
                manifest = json.loads(archive.read("manifest.json"))
            except (KeyError, ValueError) as exc:
                raise PackError("unreadable pack manifest in %s: %s"
                                % (path, exc))
            if manifest.get("pack_version") != PACK_VERSION:
                raise PackError(
                    "pack %s has pack_version %r (expected %d)"
                    % (path, manifest.get("pack_version"),
                       PACK_VERSION))
            entries = []
            for listed in manifest.get("entries", []):
                digest = listed["digest"]
                try:
                    payload = json.loads(
                        archive.read("specs/%s.json" % digest))
                except (KeyError, ValueError) as exc:
                    raise PackError(
                        "pack %s entry %s unreadable: %s"
                        % (path, digest, exc))
                if entry_digest(payload["key"]) != digest:
                    raise PackError(
                        "pack %s entry %s fails its digest check"
                        % (path, digest))
                payload["digest"] = digest
                entries.append(payload)
    except zipfile.BadZipFile as exc:
        raise PackError("%s is not a pack: %s" % (path, exc))
    return manifest, entries


def verify_pack(path, base=None):
    """Deep-verify one pack; returns a report dict.

    Beyond :func:`read_pack`'s digest checks, every spec is actually
    rebuilt (``from_spec`` re-``exec``\\ s the carried source), and
    entries built under different version axes than the running code
    are listed as ``stale``.

    Layered packs (built with ``write_pack(..., base=...)``) list the
    digests they expect their base layer to carry.  Passing ``base``
    resolves them: every listed digest must actually exist in the base
    pack or the report fails.  Without ``base``, the deferred digests
    are reported as ``unresolved`` — informational, not a failure, so
    a diff pack still self-verifies.
    """
    from repro.compiler.kernel import CompiledKernel

    manifest, entries = read_pack(path)
    axes = _current_axes()
    stale = []
    errors = []
    for entry in entries:
        if _meta_axes(entry["key"]) != axes:
            stale.append(entry["digest"])
            continue
        try:
            CompiledKernel.from_spec(entry["spec"])
        except Exception as exc:
            errors.append("%s: %s: %s" % (entry["digest"],
                                          type(exc).__name__, exc))
    rebuilt = len(entries) - len(stale) - len(errors)
    deferred = list(manifest.get("base_digests", []))
    unresolved = list(deferred)
    if base is not None and deferred:
        base_manifest, _ = read_pack(base)
        have = {listed["digest"]
                for listed in base_manifest.get("entries", [])}
        have.update(base_manifest.get("base_digests", []))
        unresolved = [digest for digest in deferred
                      if digest not in have]
        for digest in unresolved:
            errors.append("%s: listed in base_digests but missing "
                          "from base pack %s" % (digest, base))
    return {
        "path": path,
        "count": len(entries),
        "rebuilt": rebuilt,
        "stale": stale,
        "base": base,
        "deferred": len(deferred),
        "unresolved": unresolved,
        "errors": errors,
        "ok": not errors,
    }


def load_pack(path, store=None, memory=True, base=None):
    """Import a pack's kernels into the process's cache tiers.

    ``store`` is a :class:`~repro.store.disk.KernelStore` (default:
    the active store, when one is configured) — every current-version
    entry is written into it.  With ``memory=True`` (the default) each
    entry is also rebuilt and promoted straight into the in-memory
    :class:`~repro.compiler.kernel.KernelCache`, so even the first
    compile of this very process is a hit; bulk importers (the CLI's
    ``warm``) pass ``memory=False`` to avoid churning the LRU.  Entries whose version axes
    (spec layout, op registry, optimizer/codegen fingerprints) differ
    from the running code are skipped as stale, never served.

    For a diff pack, ``base`` names the base layer: it is loaded
    first, then the diff layers its new/changed entries on top — one
    call imports the full set.

    Returns a summary dict: ``loaded`` / ``stale`` / ``errors``.
    """
    from repro.compiler.kernel import (
        KERNEL_CACHE,
        CompiledKernel,
        artifact_cache_key,
    )
    from repro.store import active_store

    if store is None:
        store = active_store()
    if base is not None:
        base_summary = load_pack(base, store=store, memory=memory)
    else:
        base_summary = {"loaded": 0, "stale": 0, "errors": 0}
    _, entries = read_pack(path)
    axes = _current_axes()
    loaded = stale = errors = 0
    for entry in entries:
        if _meta_axes(entry["key"]) != axes:
            stale += 1
            continue
        if memory:
            try:
                artifact = CompiledKernel.from_spec(entry["spec"])
            except Exception:
                errors += 1
                continue
            KERNEL_CACHE.store(artifact_cache_key(artifact), artifact)
        if store is not None:
            store.save_spec(entry["key"], entry["spec"])
        loaded += 1
    return {"path": path,
            "loaded": loaded + base_summary["loaded"],
            "stale": stale + base_summary["stale"],
            "errors": errors + base_summary["errors"],
            "store": getattr(store, "root", None),
            "memory": bool(memory)}


# -------------------------------------------------------------------------
# Pack building: the kernel populations CI warms ahead of time.
# -------------------------------------------------------------------------
def _entry_for_kernel(kernel, figure, label):
    """One pack entry for a freshly compiled kernel, or None when the
    kernel cannot be serialized (identity-pinned data)."""
    from repro.util.errors import SpecError

    try:
        spec = kernel.artifact.to_spec()
    except SpecError:
        return None
    return {"key": meta_for_artifact(kernel.artifact), "spec": spec,
            "figure": figure, "label": label}


def figure_entries(log=None):
    """Compile every benchmark-figure kernel; returns pack entries.

    The programs come from :func:`repro.bench.figures.pack_programs`,
    the same canonical registry the benchmark scripts build their
    inputs from — which is what guarantees a warmed store actually
    hits when the figures run.
    """
    from repro.bench.figures import pack_programs
    from repro.compiler.kernel import compile_kernel

    entries = []
    for figure, label, make_program, opts in pack_programs():
        kernel = compile_kernel(make_program(), cache="memory", **opts)
        entry = _entry_for_kernel(kernel, figure, label)
        if entry is not None:
            entries.append(entry)
        if log is not None:
            log("  packed %s / %s" % (figure, label))
    return entries


def corpus_entries(corpus_dir=None, opt_levels=(0, 1, 2), log=None):
    """Compile every fuzz-corpus case at each opt level (the exact
    kernels the corpus replay recompiles on every CI run)."""
    from repro.compiler.kernel import compile_kernel
    from repro.fuzz import corpus as corpus_mod
    from repro.fuzz.gen import build_case

    entries = []
    paths = corpus_mod.corpus_entries(
        corpus_mod.DEFAULT_CORPUS_DIR if corpus_dir is None
        else corpus_dir)
    for path in paths:
        spec = corpus_mod.load_entry(path)["spec"]
        for level in opt_levels:
            case = build_case(spec)
            kernel = compile_kernel(case.program, instrument=True,
                                    opt_level=level, cache="memory")
            entry = _entry_for_kernel(kernel, "fuzz_corpus", path)
            if entry is not None:
                entries.append(entry)
        if log is not None:
            log("  packed corpus %s" % path)
    return entries


def campaign_entries(seed, budget, profile="quick",
                     opt_levels=(0, 1, 2), log=None):
    """Compile the kernels of one deterministic fuzz campaign.

    The conformance engine derives its case seeds from ``(seed,
    budget, profile)`` alone, so packing the same triple CI's
    ``fuzz-smoke`` job runs means that job's compiles all come off the
    warmed store.
    """
    from repro.compiler.kernel import compile_kernel
    from repro.fuzz.engine import case_seed
    from repro.fuzz.gen import build_case, generate_spec

    entries = []
    for step in range(budget):
        spec = generate_spec(case_seed(seed, step), profile)
        for level in opt_levels:
            case = build_case(spec)
            kernel = compile_kernel(case.program, instrument=True,
                                    opt_level=level, cache="memory")
            entry = _entry_for_kernel(
                kernel, "fuzz_campaign",
                "seed %d step %d" % (seed, step))
            if entry is not None:
                entries.append(entry)
        if log is not None and (step + 1) % 50 == 0:
            log("  packed campaign %d/%d" % (step + 1, budget))
    return entries
