"""Persistent kernel storage: the on-disk store and AOT kernel packs.

Two artifacts live here, both built on the serialized kernel spec
(:meth:`repro.compiler.kernel.CompiledKernel.to_spec`):

:class:`KernelStore` (:mod:`repro.store.disk`)
    A content-addressed directory of compiled-kernel specs, layered
    *under* the in-memory LRU cache by ``compile_kernel``: memory miss
    → disk lookup → full compile, with every fresh compile written
    behind.  Safe for many processes to share (atomic writes, advisory
    locking, quarantine-on-corruption, LRU eviction by size budget).

``.flpack`` kernel packs (:mod:`repro.store.pack`)
    A single relocatable zip of specs plus a manifest — the
    ahead-of-time compilation unit.  CI's ``warm-kernels`` job builds
    one from the benchmark figures and the fuzz corpus; downstream
    jobs (and :func:`load_pack` callers) import it so their processes
    start warm and compile nothing.

Configuration routes through the package-wide resolver
(:mod:`repro.util.config`) under the one precedence rule — per-call
kwarg > ``fl.configure`` > ``FL_*`` env > default: ``fl.configure(
store_path=..., store_max_bytes=...)`` owns the knobs,
:func:`configure_store` survives as a thin delegating shim, the
``FL_KERNEL_STORE`` environment variable (plus optional
``FL_KERNEL_STORE_MAX_BYTES``) points short-lived processes — batch
workers, CI jobs, serverless handlers — at a shared directory, and
``compile_kernel(cache="memory"|"disk"|False, store=...)`` opts out
(or re-points) per call.

The CLI lives in :mod:`repro.store.__main__`::

    python -m repro.store pack --out kernels.flpack
    python -m repro.store warm --store .fl_store --pack kernels.flpack
    python -m repro.store verify kernels.flpack
    python -m repro.store ls --store .fl_store
    python -m repro.store stats --store .fl_store --min-hit-rate 0.9
"""

import os
from contextlib import contextmanager

from repro.store.disk import (
    KernelStore,
    codegen_fingerprint,
    entry_digest,
    meta_for_artifact,
    meta_for_spec,
    store_key_meta,
)
from repro.store.pack import (
    PACK_VERSION,
    load_pack,
    read_pack,
    verify_pack,
    write_pack,
)

#: Environment variables configuring the default store (resolved via
#: :mod:`repro.util.config`; kept as names for callers and tests).
ENV_STORE = "FL_KERNEL_STORE"
ENV_MAX_BYTES = "FL_KERNEL_STORE_MAX_BYTES"

#: Per-process memo of the env/config-resolved store instance, keyed
#: by ``(root, max_bytes)`` so repeated ``active_store()`` calls do
#: not re-stat the directory.
_memo = {"key": None, "store": None}


def configure_store(path, max_bytes=None):
    """Install (or disable) the process-wide kernel store.

    A thin shim over ``fl.configure(store_path=..., store_max_bytes=
    ...)`` (see :mod:`repro.util.config`), kept for source
    compatibility.  ``path`` may be a directory path, an existing
    :class:`KernelStore`, or None to disable disk caching for the
    process regardless of the environment.  Returns the active store
    (or None).  Overrides the ``FL_KERNEL_STORE`` environment variable
    until called again; :func:`reset_store_config` restores
    environment-driven behavior.

    Kernels compiled with ``backend="c"`` store their shared object as
    a ``.so`` sidecar next to the spec, so warm starts skip the C
    compiler entirely; missing or stale sidecars are rebuilt from the
    stored C source.
    """
    from repro.util import config

    config.replace(config.STORE_OPTION_NAMES,
                   {"store_path": path, "store_max_bytes": max_bytes})
    return active_store()


def reset_store_config():
    """Forget :func:`configure_store`; fall back to the environment."""
    from repro.util import config

    config.clear(*config.STORE_OPTION_NAMES)


def active_store():
    """The store ``compile_kernel`` should use right now, or None.

    Resolved through the package precedence rule on every call
    (``fl.configure(store_path=...)`` wins, else ``FL_KERNEL_STORE``
    is consulted — so spawned workers and subprocesses inherit the
    parent's store with no code changes), with the built
    :class:`KernelStore` instance memoized per ``(root, max_bytes)``.
    """
    from repro.util import config

    path = config.resolve("store_path")
    if not path:
        return None
    if isinstance(path, KernelStore):
        return path
    max_bytes = config.resolve("store_max_bytes")
    key = (os.path.abspath(path), max_bytes)
    if _memo["key"] != key:
        _memo["store"] = KernelStore(path, max_bytes=max_bytes)
        _memo["key"] = key
    return _memo["store"]


def resolve_store(value):
    """One compile's disk tier for a ``store=`` argument.

    ``None`` resolves the active store (configure/env layers),
    ``False`` disables the disk tier for the call, a
    :class:`KernelStore` is used as-is, and a path string opens (or
    creates) that directory.
    """
    if value is None:
        return active_store()
    if value is False:
        return None
    if isinstance(value, KernelStore):
        return value
    return KernelStore(value)


@contextmanager
def using_store(store):
    """Temporarily make ``store`` (a path, store, or None) active.

    The benchmark harness and the tests use this to point one compile
    at one store without leaking process-global state.
    """
    from repro.util import config

    previous = config.snapshot(config.STORE_OPTION_NAMES)
    try:
        yield configure_store(store)
    finally:
        config.restore(previous, config.STORE_OPTION_NAMES)


__all__ = [
    "KernelStore", "PACK_VERSION", "active_store",
    "codegen_fingerprint", "configure_store", "entry_digest",
    "load_pack", "meta_for_artifact", "meta_for_spec", "read_pack",
    "reset_store_config", "resolve_store", "store_key_meta",
    "using_store", "verify_pack", "write_pack",
]
