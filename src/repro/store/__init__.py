"""Persistent kernel storage: the on-disk store and AOT kernel packs.

Two artifacts live here, both built on the serialized kernel spec
(:meth:`repro.compiler.kernel.CompiledKernel.to_spec`):

:class:`KernelStore` (:mod:`repro.store.disk`)
    A content-addressed directory of compiled-kernel specs, layered
    *under* the in-memory LRU cache by ``compile_kernel``: memory miss
    → disk lookup → full compile, with every fresh compile written
    behind.  Safe for many processes to share (atomic writes, advisory
    locking, quarantine-on-corruption, LRU eviction by size budget).

``.flpack`` kernel packs (:mod:`repro.store.pack`)
    A single relocatable zip of specs plus a manifest — the
    ahead-of-time compilation unit.  CI's ``warm-kernels`` job builds
    one from the benchmark figures and the fuzz corpus; downstream
    jobs (and :func:`load_pack` callers) import it so their processes
    start warm and compile nothing.

Configuration is process-global, mirroring the memory tier:
:func:`configure_store` installs a store programmatically, the
``FL_KERNEL_STORE`` environment variable (plus optional
``FL_KERNEL_STORE_MAX_BYTES``) points short-lived processes — batch
workers, CI jobs, serverless handlers — at a shared directory, and
``compile_kernel(cache="memory"|"disk"|False)`` opts out per call.

The CLI lives in :mod:`repro.store.__main__`::

    python -m repro.store pack --out kernels.flpack
    python -m repro.store warm --store .fl_store --pack kernels.flpack
    python -m repro.store verify kernels.flpack
    python -m repro.store ls --store .fl_store
    python -m repro.store stats --store .fl_store --min-hit-rate 0.9
"""

import os
from contextlib import contextmanager

from repro.store.disk import (
    KernelStore,
    codegen_fingerprint,
    entry_digest,
    meta_for_artifact,
    meta_for_spec,
    store_key_meta,
)
from repro.store.pack import (
    PACK_VERSION,
    load_pack,
    read_pack,
    verify_pack,
    write_pack,
)

#: Environment variables configuring the default store.
ENV_STORE = "FL_KERNEL_STORE"
ENV_MAX_BYTES = "FL_KERNEL_STORE_MAX_BYTES"

_configured = False
_active = None


def configure_store(path, max_bytes=None):
    """Install (or disable) the process-wide kernel store.

    ``path`` may be a directory path, an existing :class:`KernelStore`,
    or None to disable disk caching for the process regardless of the
    environment.  Returns the active store (or None).  Overrides the
    ``FL_KERNEL_STORE`` environment variable until called again;
    :func:`reset_store_config` restores environment-driven behavior.

    Kernels compiled with ``backend="c"`` store their shared object as
    a ``.so`` sidecar next to the spec, so warm starts skip the C
    compiler entirely; missing or stale sidecars are rebuilt from the
    stored C source.
    """
    global _configured, _active
    if path is None:
        store = None
    elif isinstance(path, KernelStore):
        store = path
    else:
        store = KernelStore(path, max_bytes=max_bytes)
    _configured = True
    _active = store
    return store


def reset_store_config():
    """Forget :func:`configure_store`; fall back to the environment."""
    global _configured, _active
    _configured = False
    _active = None


def active_store():
    """The store ``compile_kernel`` should use right now, or None.

    An explicit :func:`configure_store` wins; otherwise the
    ``FL_KERNEL_STORE`` environment variable is consulted on every
    call (so spawned workers and subprocesses inherit the parent's
    store with no code changes).
    """
    global _active
    if _configured:
        return _active
    path = os.environ.get(ENV_STORE)
    if not path:
        return None
    max_bytes = os.environ.get(ENV_MAX_BYTES)
    max_bytes = int(max_bytes) if max_bytes else None
    if (_active is None or _active.root != os.path.abspath(path)
            or _active.max_bytes != max_bytes):
        _active = KernelStore(path, max_bytes=max_bytes)
    return _active


@contextmanager
def using_store(store):
    """Temporarily make ``store`` (a path, store, or None) active.

    The benchmark harness and the tests use this to point one compile
    at one store without leaking process-global state.
    """
    global _configured, _active
    previous = (_configured, _active)
    try:
        yield configure_store(store)
    finally:
        _configured, _active = previous


__all__ = [
    "KernelStore", "PACK_VERSION", "active_store",
    "codegen_fingerprint", "configure_store", "entry_digest",
    "load_pack", "meta_for_artifact", "meta_for_spec", "read_pack",
    "reset_store_config", "store_key_meta", "using_store",
    "verify_pack", "write_pack",
]
