"""``python -m repro.store`` — build, warm, and inspect kernel packs.

Subcommands::

    pack    compile the AOT kernel set into one .flpack
    warm    import a pack into a store dir (or compile straight in)
    verify  deep-check a pack (digests, spec rebuilds, version axes)
    ls      list a pack's or a store's entries
    stats   print a store's counters; optionally enforce a hit-rate
            floor (the CI gate) and emit a markdown summary table

Examples::

    python -m repro.store pack --out kernels.flpack --fuzz-campaign 0:200:quick
    python -m repro.store warm --store .fl_store --pack kernels.flpack
    python -m repro.store verify kernels.flpack
    python -m repro.store ls --store .fl_store
    python -m repro.store stats --store .fl_store --min-hit-rate 0.9 --markdown
"""

import argparse
import json
import os
import sys

from repro.store import KernelStore
from repro.store.pack import (
    PackError,
    campaign_entries,
    corpus_entries,
    figure_entries,
    load_pack,
    read_pack,
    verify_pack,
    write_pack,
)


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.store",
        description="Persistent kernel store and AOT kernel packs.")
    sub = parser.add_subparsers(dest="command", required=True)

    pack = sub.add_parser(
        "pack", help="compile the AOT kernel set into a .flpack")
    pack.add_argument("--out", required=True,
                      help="output .flpack path")
    pack.add_argument("--no-figures", action="store_true",
                      help="skip the benchmark-figure kernels")
    pack.add_argument("--corpus", default=None,
                      help="fuzz corpus directory (default "
                           "fuzz_corpus/)")
    pack.add_argument("--no-corpus", action="store_true",
                      help="skip the fuzz-corpus kernels")
    pack.add_argument("--fuzz-campaign", metavar="SEED:BUDGET:PROFILE",
                      default=None,
                      help="also pack the kernels of one deterministic "
                           "fuzz campaign (e.g. 0:200:quick — the CI "
                           "smoke campaign)")
    pack.add_argument("--base", default=None,
                      help="emit a diff pack: entries already in this "
                           ".flpack are listed, not re-packed")
    pack.add_argument("--note", default="",
                      help="free-text provenance recorded in the "
                           "manifest")
    pack.add_argument("--quiet", action="store_true")

    warm = sub.add_parser(
        "warm", help="populate a store directory ahead of time")
    warm.add_argument("--store", required=True,
                      help="store directory to warm")
    warm.add_argument("--pack", default=None,
                      help="import this .flpack (default: compile the "
                           "figure+corpus set directly into the store)")
    warm.add_argument("--base", default=None,
                      help="base .flpack layered under a diff pack")
    warm.add_argument("--max-bytes", type=int, default=None,
                      help="store size budget (LRU eviction past it)")
    warm.add_argument("--quiet", action="store_true")

    verify = sub.add_parser("verify", help="deep-check one pack")
    verify.add_argument("pack", help=".flpack path")
    verify.add_argument("--base", default=None,
                        help="base .flpack resolving a diff pack's "
                             "deferred digests")

    ls = sub.add_parser("ls", help="list pack or store entries")
    group = ls.add_mutually_exclusive_group(required=True)
    group.add_argument("--pack", help=".flpack path")
    group.add_argument("--store", help="store directory")

    stats = sub.add_parser(
        "stats", help="print store counters; optionally gate on them")
    stats.add_argument("--store", required=True,
                       help="store directory")
    stats.add_argument("--min-hit-rate", type=float, default=None,
                       help="exit 1 unless hits/(hits+misses) reaches "
                            "this floor (and at least one lookup "
                            "happened)")
    stats.add_argument("--markdown", action="store_true",
                       help="emit a GitHub-flavored markdown table "
                            "(for $GITHUB_STEP_SUMMARY)")
    return parser


def _parse_campaign(value):
    try:
        seed, budget, profile = value.split(":")
        return int(seed), int(budget), profile
    except ValueError:
        raise SystemExit(
            "--fuzz-campaign must look like SEED:BUDGET:PROFILE, "
            "got %r" % value)


def _cmd_pack(args, log):
    entries = []
    if not args.no_figures:
        log("compiling benchmark-figure kernels ...")
        entries += figure_entries(log=log)
    if not args.no_corpus:
        log("compiling fuzz-corpus kernels ...")
        entries += corpus_entries(corpus_dir=args.corpus, log=log)
    if args.fuzz_campaign:
        seed, budget, profile = _parse_campaign(args.fuzz_campaign)
        log("compiling fuzz-campaign kernels (seed=%d budget=%d "
            "profile=%s) ..." % (seed, budget, profile))
        entries += campaign_entries(seed, budget, profile, log=log)
    summary = write_pack(args.out, entries, note=args.note,
                         base=args.base)
    if args.base:
        print("packed %d kernel(s) -> %s (%d deferred to base %s)"
              % (summary["count"], summary["path"],
                 summary["deferred"], args.base))
    else:
        print("packed %d kernel(s) -> %s" % (summary["count"],
                                             summary["path"]))
    return 0


def _cmd_warm(args, log):
    store = KernelStore(args.store, max_bytes=args.max_bytes)
    if args.pack:
        summary = load_pack(args.pack, store=store, memory=False,
                            base=args.base)
        print("warmed %s: %d loaded, %d stale, %d error(s) from %s"
              % (store.root, summary["loaded"], summary["stale"],
                 summary["errors"], args.pack))
        return 0 if summary["errors"] == 0 else 1
    log("no pack given; compiling the figure+corpus set directly ...")
    entries = figure_entries(log=log) + corpus_entries(log=log)
    seen = set()
    written = 0
    for entry in entries:
        path = store.save_spec(entry["key"], entry["spec"])
        if path not in seen:
            seen.add(path)
            written += 1
    print("warmed %s: compiled %d entr%s in directly"
          % (store.root, written, "y" if written == 1 else "ies"))
    return 0


def _cmd_verify(args):
    report = verify_pack(args.pack, base=args.base)
    print("pack %s: %d entr%s, %d rebuilt, %d stale"
          % (report["path"], report["count"],
             "y" if report["count"] == 1 else "ies",
             report["rebuilt"], len(report["stale"])))
    if report["deferred"]:
        if args.base:
            print("  layered: %d digest(s) deferred to %s, %d missing"
                  % (report["deferred"], args.base,
                     len(report["unresolved"])))
        else:
            print("  layered: %d digest(s) deferred to a base pack "
                  "(pass --base to resolve them)" % report["deferred"])
    for error in report["errors"]:
        print("  ERROR %s" % error)
    if not report["ok"]:
        print("result: FAIL — %d entr%s failed to rebuild"
              % (len(report["errors"]),
                 "y" if len(report["errors"]) == 1 else "ies"))
        return 1
    print("result: PASS")
    return 0


def _cmd_ls(args):
    if args.pack:
        manifest, _ = read_pack(args.pack)
        print("pack %s: %d entr%s (spec v%s, registry v%s, pipeline "
              "%s, codegen %s)"
              % (args.pack, manifest["count"],
                 "y" if manifest["count"] == 1 else "ies",
                 manifest["spec_version"],
                 manifest["registry_version"],
                 manifest["pipeline_fingerprint"],
                 manifest["codegen_fingerprint"]))
        for entry in manifest["entries"]:
            print("  %s  opt=%d%s  %-16s %s"
                  % (entry["digest"][:12], entry["opt_level"],
                     " instr" if entry["instrument"] else "      ",
                     entry["figure"], entry["label"]))
        return 0
    store = KernelStore(args.store)
    listed = store.entries()
    print("store %s: %d entr%s" % (store.root, len(listed),
                                   "y" if len(listed) == 1 else "ies"))
    for path, meta in listed:
        print("  %s  opt=%d%s  %s"
              % (meta["structural_digest"][:12], meta["opt_level"],
                 " instr" if meta["instrument"] else "      ",
                 meta["name"]))
    return 0


def _cmd_stats(args):
    store = KernelStore(args.store)
    stats = store.stats()
    if args.markdown:
        print("### Kernel store `%s`" % stats["root"])
        print()
        print("| metric | value |")
        print("| --- | --- |")
        for name in ("hits", "misses", "hit_rate", "writes",
                     "evictions", "quarantined", "entries", "bytes",
                     "tunings", "tuning_hits", "tuning_misses",
                     "tuning_writes"):
            value = stats.get(name, 0)
            if name == "hit_rate":
                value = "%.1f%%" % (100.0 * value)
            print("| %s | %s |" % (name, value))
        print()
    else:
        print(json.dumps(stats, indent=2, sort_keys=True))
    if args.min_hit_rate is not None:
        lookups = stats["hits"] + stats["misses"]
        if lookups == 0:
            print("store gate: FAIL — no lookups recorded (the store "
                  "was never consulted; is FL_KERNEL_STORE set?)")
            return 1
        if stats["hit_rate"] < args.min_hit_rate:
            print("store gate: FAIL — hit rate %.1f%% is below the "
                  "%.1f%% floor (cold compiles crept back in)"
                  % (100.0 * stats["hit_rate"],
                     100.0 * args.min_hit_rate))
            return 1
        print("store gate: PASS — hit rate %.1f%% (floor %.1f%%)"
              % (100.0 * stats["hit_rate"],
                 100.0 * args.min_hit_rate))
    return 0


def main(argv=None):
    args = _build_parser().parse_args(argv)
    quiet = getattr(args, "quiet", True)
    log = (lambda *a, **k: None) if quiet else print
    try:
        if args.command == "pack":
            return _cmd_pack(args, log)
        if args.command == "warm":
            return _cmd_warm(args, log)
        if args.command == "verify":
            return _cmd_verify(args)
        if args.command == "ls":
            return _cmd_ls(args)
        return _cmd_stats(args)
    except PackError as exc:
        print("error: %s" % exc)
        return 1
    except BrokenPipeError:
        # `... ls | head` under pipefail: a closed pipe is not a
        # failure of the listing.
        os.dup2(os.open(os.devnull, os.O_WRONLY), sys.stdout.fileno())
        return 0


if __name__ == "__main__":
    sys.exit(main())
