"""The persistent on-disk kernel store: compile anywhere, once ever.

The in-memory :class:`~repro.compiler.kernel.KernelCache` amortizes
compilation *within* a process and the batch engine's spec shipping
amortizes it *across workers of one pool*; this module closes the last
gap — across processes and across time.  A :class:`KernelStore` is a
directory of content-addressed entries, each holding one serialized
:meth:`~repro.compiler.kernel.CompiledKernel.to_spec` payload under a
digest of everything that decides whether a cached kernel is still the
kernel the current code would compile:

* the program's structural key (tree shape + per-slot format
  signatures + alias groups, via
  :func:`repro.cin.analyze.structural_digest`),
* the compile flags (``instrument``, ``name``,
  ``constant_loop_rewrite``, ``opt_level``),
* :func:`repro.ir.ops.registry_version` — late-registered ops change
  the runtime namespace kernels ``exec`` against,
* the optimizer-pipeline fingerprint
  (:func:`repro.ir.optimize.pipeline_fingerprint`) plus a codegen
  fingerprint over the lowering/emission modules — a compiler change
  must read as a miss, never as a stale hit, and
* the spec layout version.

Durability discipline (fleets of short-lived processes race on one
store directory):

* **atomic writes** — entries are written to a ``.tmp.<pid>`` sibling
  and ``os.replace``d into place, so a reader never observes a half
  written entry;
* **advisory locking** — mutations (writes, eviction, the persisted
  stats counters) run under an ``fcntl`` lock on ``.lock``; lookups
  read lock-free and rely on the atomic rename;
* **corruption tolerance** — an unreadable or mismatched entry is a
  *miss*: it is moved into ``quarantine/`` (never deleted — it is
  evidence) and the caller recompiles;
* **LRU eviction** — ``max_bytes`` bounds the entry payload; hits
  touch the entry mtime and eviction removes oldest-mtime entries
  first;
* **persisted stats** — ``hits``/``misses``/``writes``/``evictions``/
  ``quarantined`` accumulate in ``stats.json`` across processes, so a
  CI job can assert its warm-start hit rate after the workload exits.
"""

import hashlib
import json
import logging
import os
import shutil
import time
from contextlib import contextmanager

from repro.cin.analyze import structural_digest
from repro.ir.ops import registry_version
from repro.ir.optimize import pipeline_fingerprint
from repro.util.errors import SpecError

_log = logging.getLogger("repro.store")

#: Persisted statistic counters (``stats.json``).  ``stats_resets``
#: counts the times a corrupt stats file (a process killed mid-write)
#: was thrown away and restarted from zero.
COUNTER_NAMES = ("hits", "misses", "writes", "evictions",
                 "quarantined", "stats_resets",
                 "tuning_hits", "tuning_misses", "tuning_writes")

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Bumped when the on-disk entry layout changes incompatibly.
STORE_VERSION = 1

#: Filename prefix of one store entry.
_ENTRY_PREFIX = "k_"

#: Entries live under two-hex-character shard directories
#: (``<root>/ab/k_ab....json``) so a fleet-scale store never piles
#: tens of thousands of files into one directory (directory-listing
#: and rename costs grow with entry count on most filesystems, and
#: the kernel service lists by digest prefix).  Two hex characters can
#: never collide with the reserved ``quarantine``/``tunings``
#: directory names.  Stores written by earlier versions used a flat
#: layout; :meth:`KernelStore.entry_path_for_digest` migrates flat
#: entries into their shard transparently on first touch.
_SHARD_CHARS = 2

#: Filename prefix of one tuning record (``tunings/``).
_TUNING_PREFIX = "t_"

#: Root modules of the code generator: the lowering pipeline entry
#: points, the target IR, and the runtime namespace emitted code
#: executes against.  The fingerprint walks the *import graph* from
#: these roots (:func:`_codegen_modules`), so a new helper module
#: pulled in by the emitter invalidates stored kernels without anyone
#: remembering to list it here.  The optimizer pipeline hashes itself
#: (see :func:`repro.ir.optimize.pipeline_fingerprint`).
_CODEGEN_ROOTS = (
    "repro.compiler.lower",
    "repro.compiler.unfurl",
    "repro.compiler.stmt_simplify",
    "repro.compiler.context",
    "repro.ir.asm",
    "repro.ir.emit",
    "repro.ir.runtime",
    "repro.codegen",
    "repro.codegen.c_emit",
    "repro.codegen.toolchain",
)

_FINGERPRINTS = {}  # roots tuple -> memoized digest


def _module_source(name):
    """The on-disk source bytes of ``name``, or None when the module
    cannot be located or has no file (namespace packages).

    Resolved with ``PathFinder`` directly — unlike
    ``importlib.util.find_spec`` this imports nothing (not even parent
    packages), so fingerprinting never executes backend code.
    """
    from importlib.machinery import PathFinder

    parts = name.split(".")
    path = None
    spec = None
    for depth in range(len(parts)):
        spec = PathFinder.find_spec(".".join(parts[:depth + 1]), path)
        if spec is None:
            return None
        path = spec.submodule_search_locations
    if not spec.origin or not os.path.exists(spec.origin):
        return None
    with open(spec.origin, "rb") as handle:
        return handle.read()


def _imported_modules(source, module, package_prefix):
    """Module names under ``package_prefix`` that ``module`` imports,
    read from its AST (no code is executed)."""
    import ast

    try:
        tree = ast.parse(source)
    except SyntaxError:  # pragma: no cover - unparsable dependency
        return set()
    package = module.rsplit(".", 1)[0] if "." in module else module
    found = set()
    for node in ast.walk(tree):
        if isinstance(node, ast.Import):
            for alias in node.names:
                found.add(alias.name)
        elif isinstance(node, ast.ImportFrom):
            if node.level:  # relative: resolve against this package
                parts = package.split(".")
                if node.level > 1:
                    parts = parts[:-(node.level - 1)]
                base = ".".join(parts)
                if node.module:
                    base = "%s.%s" % (base, node.module)
            else:
                base = node.module or ""
            if base:
                found.add(base)
                # ``from pkg import sub`` may name submodules.
                for alias in node.names:
                    found.add("%s.%s" % (base, alias.name))
    return {name for name in found
            if name == package_prefix
            or name.startswith(package_prefix + ".")}


def _codegen_modules(roots, package_prefix):
    """The transitive import closure of ``roots`` inside the package,
    as ``{module name: source bytes}`` — the actual backend module
    graph, discovered rather than hand-maintained."""
    sources = {}
    queue = list(roots)
    while queue:
        name = queue.pop()
        if name in sources:
            continue
        source = _module_source(name)
        if source is None:
            continue
        sources[name] = source
        queue.extend(_imported_modules(source, name, package_prefix)
                     - sources.keys())
    return sources


def codegen_fingerprint(roots=None, package_prefix=None):
    """A short digest over the code-generation module graph.

    Walks imports transitively from the backend root modules and
    hashes every reachable in-package source file, sorted by module
    name.  Combined with
    :func:`~repro.ir.optimize.pipeline_fingerprint` in every store
    key: editing the lowerer, the emitter, *or any module they pull
    in* must turn all previously stored kernels into misses — and so
    must adding a new module to the graph.

    ``roots``/``package_prefix`` exist for tests; only the default
    (production) call is memoized — explicit roots re-scan, so tests
    can observe a changed module graph.
    """
    memoize = roots is None and package_prefix is None
    if roots is None:
        roots = _CODEGEN_ROOTS
    roots = tuple(roots)
    if package_prefix is None:
        package_prefix = roots[0].split(".")[0]
    key = (roots, package_prefix)
    if memoize:
        cached = _FINGERPRINTS.get(key)
        if cached is not None:
            return cached
    digest = hashlib.sha256()
    sources = _codegen_modules(roots, package_prefix)
    for name in sorted(sources):
        digest.update(name.encode("utf-8"))
        digest.update(b"\0")
        digest.update(sources[name])
    fingerprint = digest.hexdigest()[:16]
    if memoize:
        _FINGERPRINTS[key] = fingerprint
    return fingerprint


def store_key_meta(structural_key, instrument, name,
                   constant_loop_rewrite, opt_level,
                   backend="python"):
    """The plain-dict store key for one compile configuration.

    Carries every version axis the store invalidates on; two metas are
    the same entry exactly when their canonical-JSON digests match
    (:func:`entry_digest`).  ``backend`` is the *requested* backend: a
    C-requested kernel that fell back to python still occupies the
    ``"c"`` slot, so a later process with a working toolchain or a
    fixed emitter reads it as the same entry (and the codegen
    fingerprint, which roots the C emitter, decides staleness).
    """
    from repro.compiler.kernel import SPEC_VERSION

    return {
        "store_version": STORE_VERSION,
        "spec_version": SPEC_VERSION,
        "structural_digest": structural_digest(structural_key,
                                               length=40),
        "instrument": bool(instrument),
        "name": str(name),
        "constant_loop_rewrite": bool(constant_loop_rewrite),
        "opt_level": int(opt_level),
        "backend": str(backend),
        "registry_version": registry_version(),
        "pipeline_fingerprint": pipeline_fingerprint(),
        "codegen_fingerprint": codegen_fingerprint(),
    }


def meta_for_artifact(artifact):
    """The store key of a live :class:`CompiledKernel`."""
    return store_key_meta(
        artifact.structural_key, artifact.instrument, artifact.name,
        artifact.constant_loop_rewrite, artifact.opt_level,
        artifact.backend)


def meta_for_spec(spec):
    """The store key of a serialized artifact (a ``to_spec`` dict).

    Lets a process-pool worker (which receives only the spec) consult
    the store before re-``exec``-ing, and write behind afterwards.
    """
    from repro.compiler.kernel import _frozen

    return store_key_meta(
        _frozen(spec["structural_key"]), spec["instrument"],
        spec["name"], spec["constant_loop_rewrite"],
        spec["opt_level"], spec.get("backend", "python"))


def entry_digest(meta):
    """The content digest (and filename stem) of one store key."""
    payload = json.dumps(meta, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(payload.encode("utf-8")).hexdigest()[:40]


class KernelStore:
    """A concurrency-safe, size-bounded directory of kernel specs.

    ``root`` is created on first use.  ``max_bytes`` bounds the summed
    entry size (None = unbounded); the least recently *used* entries
    are evicted first.  All statistics counters persist in the store
    directory and aggregate across every process that used it.
    """

    def __init__(self, root, max_bytes=None):
        self.root = os.path.abspath(root)
        self.max_bytes = None if max_bytes is None else int(max_bytes)
        try:
            os.makedirs(self.root, exist_ok=True)
        except OSError:
            # Uncreatable root (read-only parent): every lookup will
            # miss and every write will degrade to a no-op, which is
            # the right failure mode for a cache tier configured via
            # environment variable.
            pass
        self._lock_path = os.path.join(self.root, ".lock")
        self._stats_path = os.path.join(self.root, "stats.json")
        self.quarantine_dir = os.path.join(self.root, "quarantine")
        self.tunings_dir = os.path.join(self.root, "tunings")
        # In-memory (per-process) degradation ledger: IO failures the
        # store absorbed instead of raising.  Logged once, counted
        # always, never an exception — a broken disk tier must leave
        # the in-memory tier fully functional.
        self._io_errors = 0
        self._io_warned = False

    def __repr__(self):
        return "KernelStore(%r, max_bytes=%r)" % (self.root,
                                                  self.max_bytes)

    # -- locking and counters ------------------------------------------
    @contextmanager
    def _lock(self):
        """Advisory exclusive lock over every store mutation.

        Best effort: on a read-only store directory (a prewarmed store
        mounted into a fleet container) the lock file cannot be opened
        for append — readers proceed unlocked rather than crashing,
        since the atomic-rename write protocol keeps entry reads safe
        without it.
        """
        if fcntl is None:  # pragma: no cover - non-POSIX fallback
            yield
            return
        try:
            handle = open(self._lock_path, "a+")
        except OSError:
            yield
            return
        with handle:
            fcntl.flock(handle, fcntl.LOCK_EX)
            try:
                yield
            finally:
                fcntl.flock(handle, fcntl.LOCK_UN)

    def _note_io_error(self, where, exc):
        """Record one absorbed IO failure (warn on the first)."""
        self._io_errors += 1
        if not self._io_warned:
            self._io_warned = True
            _log.warning(
                "kernel store %s degraded (%s: %s); continuing "
                "memory-only — further IO errors counted silently",
                self.root, where, exc)

    def _read_counters(self):
        """The persisted counters, tolerant of a corrupt stats file.

        A ``stats.json`` left half-written by a killed process (or
        holding valid JSON of the wrong shape) must never crash store
        use: it reads as empty stats with ``stats_resets`` bumped, and
        the next ``_bump`` persists the reset.
        """
        try:
            # Bytes, not text: undecodable garbage must land in the
            # tolerant parse below, not raise out of the read.
            with open(self._stats_path, "rb") as handle:
                raw = handle.read()
        except OSError:
            return dict.fromkeys(COUNTER_NAMES, 0)  # no stats yet
        try:
            counters = json.loads(raw)
            if not isinstance(counters, dict):
                raise ValueError("stats.json is not an object")
            return {name: int(counters.get(name, 0))
                    for name in COUNTER_NAMES}
        except (ValueError, TypeError):
            reset = dict.fromkeys(COUNTER_NAMES, 0)
            reset["stats_resets"] = 1
            return reset

    def _bump(self, **deltas):
        """Atomically increment the persisted counters (under lock).

        Dropped silently when the store is unwritable: losing counter
        updates on a read-only mount must never break a compile.
        """
        try:
            with self._lock():
                counters = self._read_counters()
                for name, delta in deltas.items():
                    counters[name] = counters.get(name, 0) + delta
                tmp = self._stats_path + ".tmp.%d" % os.getpid()
                with open(tmp, "w") as handle:
                    json.dump(counters, handle)
                os.replace(tmp, self._stats_path)
        except OSError as exc:
            self._note_io_error("stats update", exc)

    # -- keys and paths ------------------------------------------------
    def key_meta(self, structural_key, instrument, name,
                 constant_loop_rewrite, opt_level, backend="python"):
        """See :func:`store_key_meta` (instance-method convenience)."""
        return store_key_meta(structural_key, instrument, name,
                              constant_loop_rewrite, opt_level,
                              backend)

    def _entry_path(self, meta):
        return self.entry_path_for_digest(entry_digest(meta))

    def entry_path_for_digest(self, digest):
        """The sharded spec path addressing ``digest`` — whether or
        not an entry exists there yet.

        The single place the shard-by-digest-prefix layout is decided,
        and the migration point for stores written under the old flat
        layout: when the sharded path is empty but a flat
        ``<root>/k_<digest>.json`` exists, the flat entry (and its
        ``.so`` sidecar) is moved into its shard before the path is
        returned, so pre-shard stores keep serving hits with no warm
        cost beyond one rename per entry.
        """
        path = os.path.join(self.root, digest[:_SHARD_CHARS],
                            _ENTRY_PREFIX + digest + ".json")
        if not os.path.exists(path):
            legacy = os.path.join(self.root,
                                  _ENTRY_PREFIX + digest + ".json")
            if os.path.exists(legacy):
                self._migrate_entry(legacy, path)
        return path

    def _migrate_entry(self, legacy, path):
        """Move one flat-layout entry into its shard directory.

        Spec first, sidecar second — both renames are atomic, and a
        reader racing the window between them merely rebuilds the
        ``.so`` from the spec's carried C source (a slow hit, never a
        wrong one).  A racing migrator loses the ``os.replace`` and
        backs off.
        """
        try:
            os.makedirs(os.path.dirname(path), exist_ok=True)
            os.replace(legacy, path)
        except OSError:
            return  # raced: another process migrated or evicted it
        try:
            os.replace(self._so_sibling(legacy),
                       self._so_sibling(path))
        except OSError:
            pass  # python-backend entry: no sidecar

    @staticmethod
    def _so_sibling(path):
        """The shared-object sidecar of one ``.json`` entry path."""
        return path[:-len(".json")] + ".so"

    def _shard_dirs(self):
        """The shard directories that exist right now, plus the root
        itself (pre-migration flat entries still live there)."""
        dirs = [self.root]
        try:
            names = os.listdir(self.root)
        except OSError:
            return []
        for name in names:
            if len(name) != _SHARD_CHARS:
                continue
            if any(c not in "0123456789abcdef" for c in name):
                continue
            path = os.path.join(self.root, name)
            if os.path.isdir(path):
                dirs.append(path)
        return dirs

    def _entry_files(self):
        """(path, size, mtime) of every entry, oldest mtime first.

        Walks every shard directory plus the flat root (entries a
        pre-shard process wrote and nothing migrated yet).  ``path``
        is always the ``.json`` spec; ``size`` includes the ``.so``
        sidecar when one exists, so eviction accounts the full
        footprint of a C-backend entry.
        """
        entries = []
        for directory in self._shard_dirs():
            try:
                names = os.listdir(directory)
            except OSError:
                continue
            for name in names:
                if not (name.startswith(_ENTRY_PREFIX)
                        and name.endswith(".json")):
                    continue
                path = os.path.join(directory, name)
                try:
                    info = os.stat(path)
                except OSError:
                    continue  # concurrently evicted
                size = info.st_size
                try:
                    size += os.stat(self._so_sibling(path)).st_size
                except OSError:
                    pass  # python-backend entry: no sidecar
                entries.append((path, size, info.st_mtime))
        entries.sort(key=lambda item: (item[2], item[0]))
        return entries

    def read_entry(self, digest):
        """The raw stored entry addressed by ``digest``, served as
        ``(entry, so_path)`` — the kernel service's lookup primitive.

        ``entry`` is the persisted ``{"store_version", "key", "spec"}``
        payload with the recorded key verified to hash back to
        ``digest`` (a mismatch reads as a miss — tamper and collision
        defense, same as :meth:`load_spec`); ``so_path`` is the
        sidecar's path when one exists, else None.  Returns ``(None,
        None)`` on a miss or any defect.  Deliberately does *not*
        touch the persisted hit/miss counters: the service keeps its
        own, and a remote fleet's traffic must not masquerade as local
        lookups.
        """
        path = self.entry_path_for_digest(digest)
        try:
            with open(path) as handle:
                entry = json.load(handle)
            if entry.get("store_version") != STORE_VERSION:
                raise ValueError("store version mismatch")
            if entry_digest(entry.get("key")) != digest:
                raise ValueError("entry key does not hash to %s"
                                 % digest)
        except OSError:
            return None, None
        except (ValueError, KeyError, TypeError):
            self._quarantine(path)
            self._bump(quarantined=1)
            return None, None
        try:
            os.utime(path)  # LRU touch: served entries stay resident
        except OSError:
            pass
        so_path = self._so_sibling(path)
        if not os.path.exists(so_path):
            so_path = None
        return entry, so_path

    # -- reads ---------------------------------------------------------
    def load_spec(self, meta):
        """The stored spec for ``meta``, or None (counts a miss).

        Any defect — unreadable file, malformed JSON, an entry whose
        recorded key does not match — quarantines the entry and reads
        as a miss, so one corrupt file can never poison compiles.
        """
        path = self._entry_path(meta)
        if not os.path.exists(path):
            self._bump(misses=1)
            return None
        try:
            from repro import chaos as _chaos

            if _chaos.active():
                # Chaos fault points: a flaky read raises OSError (the
                # degrade-to-miss path below), a corrupt entry garbles
                # the text so JSON parsing rejects it (the quarantine
                # path below).
                _chaos.inject("store_read_error")
            with open(path) as handle:
                raw = handle.read()
            if _chaos.active():
                raw = _chaos.mangle("store_corrupt_entry", raw)
            entry = json.loads(raw)
            if entry.get("store_version") != STORE_VERSION:
                raise ValueError("store version mismatch")
            if entry.get("key") != meta:
                raise ValueError("entry key does not match its digest")
            spec = entry["spec"]
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            self._bump(misses=1, quarantined=1)
            return None
        try:
            os.utime(path)  # LRU touch: recently used entries survive
        except OSError:
            pass
        self._bump(hits=1)
        return spec

    def load_artifact(self, meta):
        """The rebuilt :class:`CompiledKernel` for ``meta``, or None.

        A spec that no longer rebuilds (its carried source fails to
        ``exec``) is quarantined exactly like a corrupt file — and the
        hit already counted for it is taken back.
        """
        from repro.compiler.kernel import CompiledKernel

        spec = self.load_spec(meta)
        if spec is None:
            return None
        so_path = self._so_sibling(self._entry_path(meta))
        if not os.path.exists(so_path):
            so_path = None  # python entry, or sidecar lost: recompile
        try:
            return CompiledKernel.from_spec(spec, so_path=so_path)
        except Exception:
            self._quarantine(self._entry_path(meta))
            self._bump(hits=-1, misses=1, quarantined=1)
            return None

    def _quarantine(self, path):
        """Move a defective entry aside (never delete: it is the repro
        for whatever corrupted it)."""
        stamp = "%d.%d" % (os.getpid(), int(time.time() * 1e6))
        try:
            os.makedirs(self.quarantine_dir, exist_ok=True)
            target = os.path.join(
                self.quarantine_dir,
                "%s.%s" % (os.path.basename(path), stamp))
            os.replace(path, target)
        except OSError:
            pass  # another process already moved or evicted it
        if path.endswith(".json"):
            sidecar = self._so_sibling(path)
            try:
                os.replace(sidecar, os.path.join(
                    self.quarantine_dir,
                    "%s.%s" % (os.path.basename(sidecar), stamp)))
            except OSError:
                pass  # no sidecar, or already moved

    # -- writes --------------------------------------------------------
    def save_artifact(self, artifact):
        """Persist one compiled artifact; returns the entry path.

        Kernels that cannot leave the process (:class:`SpecError`:
        identity-pinned signatures, out-of-protocol buffers) are
        silently skipped — the store is a cache, not a registry.
        """
        try:
            spec = artifact.to_spec()
        except SpecError:
            return None
        return self.save_spec(meta_for_artifact(artifact), spec,
                              so_path=artifact.so_path)

    def save_spec(self, meta, spec, so_path=None):
        """Persist one serialized spec under ``meta``; returns the
        entry path.  Atomic (tmp + rename) and evicts LRU entries past
        ``max_bytes`` before releasing the lock.

        ``so_path`` (a compiled shared object) is copied next to the
        entry as a ``.so`` sidecar — an optimization, not part of the
        durable contract: the spec alone rebuilds the kernel (the C
        source recompiles on load), so a lost or stale sidecar costs
        one compile, never correctness.
        """
        path = self._entry_path(meta)
        payload = json.dumps(
            {"store_version": STORE_VERSION, "key": meta,
             "spec": spec},
            sort_keys=True, separators=(",", ":"))
        try:
            with self._lock():
                os.makedirs(os.path.dirname(path), exist_ok=True)
                tmp = path + ".tmp.%d" % os.getpid()
                with open(tmp, "w") as handle:
                    handle.write(payload)
                so_target = self._so_sibling(path)
                if so_path is not None and os.path.exists(so_path):
                    so_tmp = so_target + ".tmp.%d" % os.getpid()
                    shutil.copyfile(so_path, so_tmp)
                    os.replace(so_tmp, so_target)
                else:
                    # A python-backend rewrite of this slot must not
                    # leave a stale sidecar behind.
                    try:
                        os.remove(so_target)
                    except OSError:
                        pass
                os.replace(tmp, path)
                evicted = self._evict_locked(keep=path)
        except OSError as exc:
            # An unwritable store (read-only fleet mount, disk full)
            # degrades to a read-only tier: the compile that wanted to
            # write behind still succeeded.
            self._note_io_error("entry write", exc)
            return None
        self._bump(writes=1, evictions=evicted)
        return path

    def _evict_locked(self, keep=None):
        """Drop oldest entries until under ``max_bytes``; returns the
        eviction count.  ``keep`` (the just-written entry) is never
        evicted — a store must be able to hold at least one kernel."""
        if self.max_bytes is None:
            return 0
        entries = self._entry_files()
        total = sum(size for _, size, _ in entries)
        evicted = 0
        for path, size, _ in entries:
            if total <= self.max_bytes:
                break
            if path == keep:
                continue
            try:
                os.remove(path)
            except OSError:
                continue
            try:
                os.remove(self._so_sibling(path))
            except OSError:
                pass  # no sidecar
            total -= size
            evicted += 1
        return evicted

    # -- tunings -------------------------------------------------------
    # The winners table of the schedule autotuner
    # (:mod:`repro.tune`): tiny JSON records under ``tunings/``,
    # addressed by a protocol-erased structural digest plus the same
    # version axes entries invalidate on.  Same durability discipline
    # as entries — atomic tmp+rename writes under the store lock,
    # defects quarantined (never deleted) and read as misses — but no
    # LRU eviction: a tuning record is a few hundred bytes of
    # *measurement*, and rerunning the search it summarizes costs far
    # more than the bytes ever will.

    def _tuning_path(self, meta):
        return os.path.join(
            self.tunings_dir,
            _TUNING_PREFIX + entry_digest(meta) + ".json")

    def save_tuning(self, meta, winner):
        """Persist one tuning winner under ``meta``; returns the
        record path (None when the store is unwritable)."""
        path = self._tuning_path(meta)
        payload = json.dumps(
            {"store_version": STORE_VERSION, "key": meta,
             "winner": winner},
            sort_keys=True, separators=(",", ":"))
        try:
            with self._lock():
                os.makedirs(self.tunings_dir, exist_ok=True)
                tmp = path + ".tmp.%d" % os.getpid()
                with open(tmp, "w") as handle:
                    handle.write(payload)
                os.replace(tmp, path)
        except OSError as exc:
            self._note_io_error("tuning write", exc)
            return None
        self._bump(tuning_writes=1)
        return path

    def load_tuning(self, meta):
        """The stored winner record for ``meta``, or None.

        Exactly the entry contract: a missing record is a miss, and
        any defect (unreadable file, bad JSON, a record whose key does
        not match its digest) is quarantined and reads as a miss.  A
        version-axis change (op registry, pipeline or codegen
        fingerprint, tune layout) lands in a *different* digest, so
        stale winners are simply never found.
        """
        path = self._tuning_path(meta)
        if not os.path.exists(path):
            self._bump(tuning_misses=1)
            return None
        try:
            from repro import chaos as _chaos

            if _chaos.active():
                _chaos.inject("store_read_error")
            with open(path) as handle:
                raw = handle.read()
            if _chaos.active():
                raw = _chaos.mangle("store_corrupt_entry", raw)
            record = json.loads(raw)
            if record.get("store_version") != STORE_VERSION:
                raise ValueError("store version mismatch")
            if record.get("key") != meta:
                raise ValueError("tuning key does not match its digest")
            winner = record["winner"]
        except (OSError, ValueError, KeyError, TypeError):
            self._quarantine(path)
            self._bump(tuning_misses=1, quarantined=1)
            return None
        self._bump(tuning_hits=1)
        return winner

    def tunings(self):
        """Parsed ``(path, key-meta, winner)`` triples of every
        readable tuning record."""
        listed = []
        try:
            names = sorted(os.listdir(self.tunings_dir))
        except OSError:
            return []
        for name in names:
            if not (name.startswith(_TUNING_PREFIX)
                    and name.endswith(".json")):
                continue
            path = os.path.join(self.tunings_dir, name)
            try:
                with open(path) as handle:
                    record = json.load(handle)
                listed.append((path, record["key"], record["winner"]))
            except (OSError, ValueError, KeyError):
                continue
        return listed

    # -- inspection ----------------------------------------------------
    def entries(self):
        """Parsed ``(path, key-meta)`` pairs of every readable entry."""
        listed = []
        for path, _, _ in self._entry_files():
            try:
                with open(path) as handle:
                    entry = json.load(handle)
                listed.append((path, entry["key"]))
            except (OSError, ValueError, KeyError):
                continue
        return listed

    def clear(self):
        """Drop every entry, the quarantine, and the counters."""
        with self._lock():
            for path, _, _ in self._entry_files():
                for victim in (path, self._so_sibling(path)):
                    try:
                        os.remove(victim)
                    except OSError:
                        pass
            shutil.rmtree(self.quarantine_dir, ignore_errors=True)
            shutil.rmtree(self.tunings_dir, ignore_errors=True)
            try:
                os.remove(self._stats_path)
            except OSError:
                pass

    def stats(self):
        """Persisted counters plus live occupancy.

        ``hits``/``misses``/... aggregate across every process that
        ever used this store directory; ``hit_rate`` is their ratio
        (0.0 before any lookup).  ``entries``/``bytes`` are measured
        from the directory right now.
        """
        counters = self._read_counters()
        files = self._entry_files()
        lookups = counters["hits"] + counters["misses"]
        quarantined = 0
        try:
            quarantined = len(os.listdir(self.quarantine_dir))
        except OSError:
            pass
        tunings = 0
        try:
            tunings = sum(
                name.startswith(_TUNING_PREFIX)
                and name.endswith(".json")
                for name in os.listdir(self.tunings_dir))
        except OSError:
            pass
        counters.update({
            "tunings": tunings,
            "entries": len(files),
            "bytes": sum(size for _, size, _ in files),
            "max_bytes": self.max_bytes,
            "hit_rate": (counters["hits"] / lookups) if lookups else 0.0,
            "quarantine_files": quarantined,
            # Per-process: IO failures this store object absorbed
            # (degraded writes, dropped counter updates).
            "io_errors": self._io_errors,
            "root": self.root,
        })
        return counters
