"""CLI for the chaos campaign: ``python -m repro.chaos``.

Runs the fault x executor x policy sweep (see
:mod:`repro.chaos.campaign`) and exits 0 only when every case landed
in its documented state with zero leaked shm segments and zero orphan
workers.  ``--list-faults`` prints the registered fault points;
``--json`` persists the full report for CI artifacts.
"""

import argparse
import json
import sys

from repro.chaos import FAULT_POINTS
from repro.chaos.campaign import (DATASETS, EXECUTORS, POLICIES,
                                  run_campaign)


def _split(text):
    return [part for part in text.split(",") if part]


def main(argv=None):
    parser = argparse.ArgumentParser(
        prog="python -m repro.chaos",
        description="Chaos campaign: fault x executor x policy sweep "
                    "with bit-identity / typed-error / hygiene checks.")
    parser.add_argument("--seed", type=int, default=0,
                        help="campaign seed (datasets and seeded "
                             "probability draws)")
    parser.add_argument("--faults", type=_split, default=None,
                        metavar="A,B",
                        help="comma-separated fault points (default: "
                             "all %d)" % len(FAULT_POINTS))
    parser.add_argument("--executors", type=_split, default=None,
                        metavar="A,B",
                        help="executors to sweep (default: %s)"
                             % ",".join(EXECUTORS))
    parser.add_argument("--policies", type=_split, default=None,
                        metavar="A,B",
                        help="on_failure policies to sweep (default: "
                             "%s)" % ",".join(POLICIES))
    parser.add_argument("--datasets", type=int, default=DATASETS,
                        help="datasets per case (default: %d)"
                             % DATASETS)
    parser.add_argument("--max-retries", type=int, default=1,
                        help="transient retry budget per case "
                             "(default: 1)")
    parser.add_argument("--json", metavar="PATH", default=None,
                        help="write the full report as JSON")
    parser.add_argument("--list-faults", action="store_true",
                        help="print the registered fault points and "
                             "exit")
    args = parser.parse_args(argv)

    if args.list_faults:
        for name in sorted(FAULT_POINTS):
            print("%-20s %s" % (name, FAULT_POINTS[name]))
        return 0

    for name in args.faults or ():
        if name not in FAULT_POINTS:
            parser.error("unknown fault point %r (see --list-faults)"
                         % name)
    for executor in args.executors or ():
        if executor not in EXECUTORS:
            parser.error("unknown executor %r" % executor)
    for policy in args.policies or ():
        if policy not in POLICIES:
            parser.error("unknown policy %r" % policy)

    report = run_campaign(seed=args.seed, faults=args.faults,
                          executors=args.executors,
                          policies=args.policies,
                          count=args.datasets,
                          max_retries=args.max_retries, log=print)
    if args.json:
        with open(args.json, "w") as handle:
            json.dump(report, handle, indent=2, sort_keys=True)
    print("chaos campaign: %d cases, %d violations -> %s"
          % (len(report["cases"]), report["violations"],
             "OK" if report["ok"] else "FAIL"))
    return 0 if report["ok"] else 1


if __name__ == "__main__":
    sys.exit(main())
