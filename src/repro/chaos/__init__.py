"""The unified chaos engine: named, seeded fault injection.

Fault tolerance that has never seen a fault is a hypothesis, not a
property.  This package replaces the ad-hoc ``FL_EXEC_CRASH_FILE``
hook with one registry of *named fault points* wired into the
execution stack's real seams, and one configuration surface that
reaches every process of a worker fleet:

====================  ===================================================
fault point           effect at its injection site
====================  ===================================================
``worker_crash``      a pool worker dies hard mid-dataset (``os._exit``,
                      ``sys.exit``, SIGKILL, or SIGTERM via ``mode=``)
``worker_stall``      a pool worker wedges (sleeps ``stall_s``) so the
                      dispatcher's watchdog must detect and kill it
``shm_attach_fail``   a shared-memory attach raises
                      :class:`~repro.util.errors.ShmAttachError`
``store_read_error``  a kernel-store entry read raises ``OSError``
                      (must degrade to a cache miss, never an exception)
``store_corrupt_entry``  a kernel-store entry reads back garbled (must
                      quarantine and recompile)
``slow_chunk``        a dataset takes ``delay_s`` longer than it should
                      (the watchdog must NOT false-positive on it)
``service_unreachable``  a kernel-service HTTP request raises
                      ``OSError`` (the client must warn once and
                      degrade to the local tiers)
====================  ===================================================

A *plan* maps fault names to firing rules:

``p=<float>``      fire on each eligible hit with probability ``p``,
                   drawn from a ``seed``-derived RNG keyed to the hit
                   number (deterministic given the hit ordering)
``nth=<int>``      fire on exactly the nth eligible hit
``index=<int>``    only hits carrying this dataset index are eligible
(no rule)          fire on every eligible hit

Hit counting is **global across the fleet** when a state directory is
configured (``fl.chaos(...)`` always sets one up): every eligible hit
increments a lock-protected counter file shared by parent and workers,
so ``nth=1`` means "once per run", not "once per process" — which is
what makes *retry succeeds after one crash* a testable scenario.  A
bare ``FL_CHAOS`` environment variable without ``FL_CHAOS_STATE``
falls back to per-process counting.

Configuration travels through the environment (``FL_CHAOS`` holds the
encoded plan) so fork/spawn/forkserver workers all inherit it; the
:func:`chaos` context manager is the programmatic front end::

    with fl.chaos("worker_crash", nth=1):          # one crash, anywhere
        fl.run_batch(program, datasets, executor="processes",
                     max_retries=2)                # ...and it still passes

    with fl.chaos("slow_chunk", p=0.25, seed=7, delay_s=0.01):
        ...

    FL_CHAOS="worker_crash:nth=1;slow_chunk:p=0.5,seed=3" python app.py

``python -m repro.chaos`` runs the campaign sweep (scenario x executor
x failure policy) defined in :mod:`repro.chaos.campaign`.
"""

import contextlib
import os
import random
import shutil
import signal
import sys
import tempfile
import time

from repro.util.errors import ShmAttachError

try:
    import fcntl
except ImportError:  # pragma: no cover - non-POSIX fallback
    fcntl = None

#: Environment variable holding the encoded fault plan.
ENV_PLAN = "FL_CHAOS"

#: Environment variable naming the shared hit-counter directory.
ENV_STATE = "FL_CHAOS_STATE"

#: Registered fault points and what each one does when it fires.
FAULT_POINTS = {
    "worker_crash": "a pool worker process dies hard mid-dataset "
                    "(mode=exit|sys_exit|sigkill|sigterm, exit_code=N)",
    "worker_stall": "a pool worker wedges for stall_s seconds "
                    "(default 3600) so the watchdog must kill it",
    "shm_attach_fail": "attaching a shared-memory segment raises "
                       "ShmAttachError (transient; retries re-stage)",
    "store_read_error": "reading a kernel-store entry raises OSError "
                        "(the store must degrade it to a miss)",
    "store_corrupt_entry": "a kernel-store entry reads back corrupted "
                           "(the store must quarantine and recompile)",
    "slow_chunk": "a dataset sleeps delay_s seconds (default 0.05) "
                  "before executing (watchdog false-positive canary)",
    "service_unreachable": "a kernel-service HTTP request fails with "
                           "OSError (the client must degrade to the "
                           "local tiers, never fail the compile)",
}

#: Keys with structural meaning in a fault rule; everything else is a
#: free-form parameter handed to the firing action.
_RULE_KEYS = ("p", "nth", "index", "seed")


def fault_points():
    """Mapping of fault-point name -> one-line description."""
    return dict(FAULT_POINTS)


class Fault:
    """One fault point's firing rule plus its action parameters."""

    __slots__ = ("name", "p", "nth", "index", "seed", "params")

    def __init__(self, name, p=None, nth=None, index=None, seed=0,
                 **params):
        if name not in FAULT_POINTS:
            raise ValueError(
                "unknown fault point %r (have: %s)"
                % (name, ", ".join(sorted(FAULT_POINTS))))
        if p is not None and nth is not None:
            raise ValueError(
                "fault %r: p= and nth= are mutually exclusive" % name)
        self.name = name
        self.p = None if p is None else float(p)
        self.nth = None if nth is None else int(nth)
        self.index = None if index is None else int(index)
        self.seed = int(seed)
        self.params = dict(params)

    def encode(self):
        parts = []
        if self.p is not None:
            parts.append("p=%r" % self.p)
        if self.nth is not None:
            parts.append("nth=%d" % self.nth)
        if self.index is not None:
            parts.append("index=%d" % self.index)
        if self.seed:
            parts.append("seed=%d" % self.seed)
        for key in sorted(self.params):
            parts.append("%s=%s" % (key, self.params[key]))
        if not parts:
            return self.name
        return "%s:%s" % (self.name, ",".join(parts))

    def __repr__(self):
        return "Fault(%s)" % self.encode()


def _parse_value(text):
    for cast in (int, float):
        try:
            return cast(text)
        except ValueError:
            pass
    return text


def parse_plan(text):
    """Decode an ``FL_CHAOS`` plan string into ``{name: Fault}``.

    Grammar: ``name[:key=value[,key=value...]][;name...]``.  Unknown
    fault names raise — a typo in a chaos plan silently injecting
    nothing would defeat the whole point.
    """
    plan = {}
    for clause in filter(None, (c.strip() for c in text.split(";"))):
        name, _, arg_text = clause.partition(":")
        name = name.strip()
        kwargs = {}
        for pair in filter(None, (p.strip()
                                  for p in arg_text.split(","))):
            key, _, value = pair.partition("=")
            kwargs[key.strip()] = _parse_value(value.strip())
        plan[name] = Fault(name, **kwargs)
    return plan


def encode_plan(plan):
    """The ``FL_CHAOS`` string for ``{name: Fault}``."""
    return ";".join(plan[name].encode() for name in sorted(plan))


# -- per-process plan cache and hit counting -------------------------------

_local = {"text": None, "plan": {}, "hits": {}}


def _plan():
    """The active plan, re-parsed whenever the environment changes."""
    text = os.environ.get(ENV_PLAN) or ""
    if text != _local["text"]:
        _local["text"] = text
        _local["plan"] = parse_plan(text) if text else {}
        _local["hits"] = {}
    return _local["plan"]


def active():
    """Whether any chaos plan is currently configured."""
    return bool(os.environ.get(ENV_PLAN))


def _next_hit(name):
    """This eligible hit's 1-based sequence number.

    Counted in the shared state directory when one is configured (one
    counter file per fault, ``fcntl``-locked, so the count is global
    across every process of the fleet); per-process otherwise.
    """
    state = os.environ.get(ENV_STATE)
    if state and fcntl is not None:
        path = os.path.join(state, "%s.hits" % name)
        try:
            with open(path, "a+") as handle:
                fcntl.flock(handle, fcntl.LOCK_EX)
                handle.seek(0)
                raw = handle.read().strip()
                count = (int(raw) if raw else 0) + 1
                handle.seek(0)
                handle.truncate()
                handle.write(str(count))
                return count
        except (OSError, ValueError):  # pragma: no cover - state gone
            pass
    _local["hits"][name] = _local["hits"].get(name, 0) + 1
    return _local["hits"][name]


def current_env():
    """The ``(plan, state_dir)`` pair to ship to another process."""
    return (os.environ.get(ENV_PLAN), os.environ.get(ENV_STATE))


def apply_env(pair):
    """Adopt a shipped ``(plan, state_dir)`` pair in this process.

    Long-lived pool workers call this on every chunk so the parent's
    chaos configuration is authoritative for the whole fleet: arming
    a plan reaches workers spawned before it, and disarming it (the
    ``with`` block exits) disarms workers that inherited the plan in
    their environment at fork time.
    """
    for key, value in zip((ENV_PLAN, ENV_STATE), pair):
        if value:
            os.environ[key] = value
        else:
            os.environ.pop(key, None)


def should_fire(name, index=None):
    """The fault's action parameters when it fires here, else None.

    ``index`` is the dataset index at sites that have one; a fault
    with an ``index=`` rule is only eligible at matching sites.
    """
    if not os.environ.get(ENV_PLAN):
        return None
    fault = _plan().get(name)
    if fault is None:
        return None
    if fault.index is not None and index != fault.index:
        return None
    hit = _next_hit(name)
    if fault.nth is not None:
        if hit != fault.nth:
            return None
    elif fault.p is not None:
        rng = random.Random("%d:%s:%d" % (fault.seed, name, hit))
        if rng.random() >= fault.p:
            return None
    return dict(fault.params)


def _fire(name, params):
    """Perform the named fault's effect (see :data:`FAULT_POINTS`)."""
    if name == "worker_crash":
        mode = params.get("mode", "exit")
        code = int(params.get("exit_code", 23))
        if mode in ("exit", "os_exit"):
            os._exit(code)
        elif mode == "sys_exit":
            sys.exit(code)
        elif mode == "sigkill":
            os.kill(os.getpid(), signal.SIGKILL)
            time.sleep(30)  # pragma: no cover - waiting for delivery
        elif mode == "sigterm":
            os.kill(os.getpid(), signal.SIGTERM)
            time.sleep(30)  # pragma: no cover - waiting for delivery
        else:
            raise ValueError("unknown worker_crash mode %r" % mode)
    elif name == "worker_stall":
        time.sleep(float(params.get("stall_s", 3600.0)))
    elif name == "slow_chunk":
        time.sleep(float(params.get("delay_s", 0.05)))
    elif name == "shm_attach_fail":
        raise ShmAttachError("chaos-injected shm attach failure")
    elif name == "store_read_error":
        raise OSError("chaos-injected store read error")
    elif name == "service_unreachable":
        raise OSError("chaos-injected service unreachable")
    # store_corrupt_entry fires through mangle(), not here.


def inject(name, index=None):
    """The standard call-site hook: fire the fault's effect when the
    plan says so.  Returns True when it fired and control returned
    (slow_chunk); raising faults raise and dying faults never return.
    No-op (one env lookup) when chaos is inactive."""
    params = should_fire(name, index)
    if params is None:
        return False
    _fire(name, params)
    return True


def mangle(name, data, index=None):
    """Corrupting call-site hook: returns ``data`` garbled when the
    fault fires, unchanged otherwise.  Used by ``store_corrupt_entry``
    — the caller's parser must reject the result."""
    params = should_fire(name, index)
    if params is None:
        return data
    keep = len(data) // 2
    tail = "#chaos#" if isinstance(data, str) else b"#chaos#"
    return data[:keep] + tail


@contextlib.contextmanager
def chaos(spec=None, **rule):
    """Activate a fault plan for the duration of the ``with`` block.

    ``spec`` is one fault-point name (rules/params as keyword
    arguments), an already-encoded plan string (``"a:nth=1;b:p=0.5"``),
    or a ``{name: {rule...}}`` mapping for multiple faults.  The plan
    is exported through ``FL_CHAOS`` so worker processes started (or
    retried) inside the block inherit it, and a fresh shared hit-state
    directory is exported through ``FL_CHAOS_STATE`` so nth-hit rules
    count globally across the fleet.  On exit both variables are
    restored and the state directory is removed.
    """
    if isinstance(spec, dict):
        if rule:
            raise ValueError("pass rules inside the mapping, not both")
        plan = {name: Fault(name, **dict(kw))
                for name, kw in spec.items()}
    elif spec is None:
        raise ValueError("chaos() needs a fault name, plan string, "
                         "or mapping")
    elif (":" in spec or ";" in spec) and not rule:
        plan = parse_plan(spec)
    else:
        plan = {spec: Fault(spec, **rule)}
    text = encode_plan(plan)
    parse_plan(text)  # round-trip validation before export
    previous = {key: os.environ.get(key)
                for key in (ENV_PLAN, ENV_STATE)}
    state_dir = tempfile.mkdtemp(prefix="flchaos-")
    os.environ[ENV_PLAN] = text
    os.environ[ENV_STATE] = state_dir
    _local["text"] = None  # force re-parse against the new env
    try:
        yield plan
    finally:
        for key, value in previous.items():
            if value is None:
                os.environ.pop(key, None)
            else:
                os.environ[key] = value
        _local["text"] = None
        shutil.rmtree(state_dir, ignore_errors=True)


__all__ = [
    "ENV_PLAN", "ENV_STATE", "FAULT_POINTS", "Fault", "active",
    "apply_env", "chaos", "current_env", "encode_plan",
    "fault_points", "inject", "mangle", "parse_plan", "should_fire",
]
