"""The chaos campaign: sweep fault x executor x policy, assert safety.

One campaign proves the fault-tolerance layer's contract the same way
the conformance engine proves the compiler's: systematically, against
a fault-free oracle.  For every registered fault point, every executor
(serial / threads / processes), and every failure policy (raise /
degrade / skip), a case runs the same self-contained workload — a
sparse-times-band dot product over :data:`DATASETS` datasets — under
an armed chaos plan and must end in one of three *documented* states:

``identical``
    the batch succeeded and every output is bit-identical to the
    fault-free serial run (with identical instrumented op totals);

``typed-error``
    the batch raised :class:`~repro.util.errors.BatchExecutionError`
    attributing the poisoned dataset, with the documented cause type
    (``WorkerCrashError`` / ``WorkerStallError``);

``skip-partial``
    (skip policy) exactly the poisoned dataset is reported in
    ``BatchResult.failures`` and every other output is bit-identical.

Which state is *expected* is a function of the case: a worker-level
fault pinned to one dataset (crash/stall at ``index=3``, firing every
attempt) must raise under ``raise``, recover under ``degrade`` (the
dataset re-runs below the processes tier, where the fault point cannot
reach), and be isolated under ``skip``; a one-shot environment fault
(shm attach race, store IO error, corrupt store entry, slow chunk)
must be absorbed — bit-identical — under every policy.  Worker-level
fault points are inert outside the processes executor, so those rows
must come back identical too (the fault genuinely did not fire).

Every case additionally asserts the hygiene invariants: zero leaked
``/dev/shm`` segments, zero orphan worker processes, and — for stall
cases — detection well inside the wedged worker's sleep (the watchdog,
not the 30s stall, bounded the wall time).

Entry point: :func:`run_campaign`; CLI: ``python -m repro.chaos``.
"""

import multiprocessing as mp
import os
import shutil
import tempfile
import time

import numpy as np

import repro.lang as fl
from repro.cin.analyze import program_tensors
from repro.compiler.kernel import KERNEL_CACHE
from repro.exec import shm as _shm
from repro.util.errors import (BatchExecutionError, WorkerCrashError,
                               WorkerStallError)

N = 96
DATASETS = 8
POISON_INDEX = 3  # the dataset worker-level faults are pinned to

EXECUTORS = ("serial", "threads", "processes")
POLICIES = ("raise", "degrade", "skip")

#: How long an injected stall sleeps.  The watchdog (deadline ~1.5s)
#: must detect and kill it long before this elapses; the campaign
#: asserts stall cases finish in a fraction of it.
STALL_S = 30.0
STALL_DEADLINE_S = 1.5


def fault_plan(fault, seed):
    """The chaos plan one campaign case arms for ``fault``."""
    if fault == "worker_crash":
        return {fault: {"index": POISON_INDEX, "exit_code": 23}}
    if fault == "worker_stall":
        return {fault: {"index": POISON_INDEX, "stall_s": STALL_S}}
    if fault == "slow_chunk":
        return {fault: {"p": 0.5, "seed": seed, "delay_s": 0.01}}
    # One-shot environment faults: fire once, anywhere in the fleet.
    return {fault: {"nth": 1}}


def expected_status(fault, executor, policy):
    """The documented outcome of one case (see module docstring)."""
    if executor == "processes" and fault in ("worker_crash",
                                             "worker_stall"):
        return {"raise": "typed-error", "degrade": "identical",
                "skip": "skip-partial"}[policy]
    return "identical"


# -- the workload ----------------------------------------------------------

def _make_pair(seed):
    rng = np.random.default_rng(seed)
    a = np.zeros(N)
    support = rng.choice(N, 12, replace=False)
    a[support] = rng.random(12) + 0.1
    b = np.zeros(N)
    lo = int(rng.integers(0, N - 30))
    b[lo:lo + 20] = rng.random(20) + 0.1
    a[lo] = 1.0
    return a, b


def _dot_program(a, b):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def _datasets(count, seed):
    return [program_tensors(_dot_program(*_make_pair(seed + 1 + k)))
            for k in range(count)]


def _shm_entries():
    prefix = "%s_%d_" % (_shm.SHM_PREFIX, os.getpid())
    try:
        names = os.listdir("/dev/shm")
    except OSError:  # pragma: no cover - non-tmpfs platforms
        return set(_shm.active_segments())
    return {name for name in names if name.startswith(prefix)}


# -- one case --------------------------------------------------------------

def _run_case(kernel, fault, executor, policy, seed, count,
              max_retries):
    """Execute one armed case; returns (status, result, error, stats).

    ``status`` is the observed classification; ``stats`` the
    KernelPool's fault ledger (available even when the map raised).
    """
    datasets = _datasets(count, seed)
    plan = fault_plan(fault, seed)
    deadline = STALL_DEADLINE_S if fault == "worker_stall" else None
    worker_pool = None
    if executor == "processes":
        worker_pool = fl.WorkerPool(max_workers=2)
    kp = fl.KernelPool(kernel, executor=executor,
                       max_workers=None if worker_pool else 2,
                       worker_pool=worker_pool, on_failure=policy,
                       max_retries=max_retries, deadline_s=deadline)
    result = error = None
    try:
        with fl.chaos(plan):
            try:
                result = kp.map(datasets)
            except BatchExecutionError as exc:
                error = exc
        faults = kp.stats()["faults"]
    finally:
        kp.close()
        if worker_pool is not None:
            worker_pool.close()
    if error is not None:
        return "typed-error", result, error, faults
    if result.failures:
        return "skip-partial", result, error, faults
    return "identical", result, error, faults


def _check_case(case, status, result, error, faults, expected_values,
                expected_ops):
    """The per-case assertions; returns a list of violation strings."""
    fault, executor, policy = (case["fault"], case["executor"],
                               case["policy"])
    bad = []
    want = expected_status(fault, executor, policy)
    if status != want:
        detail = ": %s" % error if error is not None else ""
        bad.append("expected %s, observed %s%s"
                   % (want, status, detail))
        return bad

    def check_outputs(items, note):
        for item in items:
            value = item.outputs[0]
            if not np.array_equal(value, expected_values[item.index]):
                bad.append("dataset %d %s diverged from the "
                           "fault-free run" % (item.index, note))

    if status == "identical":
        check_outputs(result.items, "output")
        if len(result) != len(expected_values):
            bad.append("only %d/%d datasets completed"
                       % (len(result), len(expected_values)))
        if result.total_ops != expected_ops:
            bad.append("op total %r != fault-free %r"
                       % (result.total_ops, expected_ops))
    elif status == "skip-partial":
        if set(result.failures) != {POISON_INDEX}:
            bad.append("failures %r != {%d}"
                       % (sorted(result.failures), POISON_INDEX))
        check_outputs(result.items, "surviving output")
        for exc in result.failures.values():
            if not isinstance(exc, BatchExecutionError):
                bad.append("untyped failure %r" % (exc,))
    else:  # typed-error
        if error.index != POISON_INDEX:
            bad.append("error attributed to dataset %d, not %d"
                       % (error.index, POISON_INDEX))
        cause_type = {"worker_crash": WorkerCrashError,
                      "worker_stall": WorkerStallError}[fault]
        if not isinstance(error.cause, cause_type):
            bad.append("cause %s is not %s"
                       % (type(error.cause).__name__,
                          cause_type.__name__))
    if executor == "processes" and fault == "worker_stall":
        if faults.get("stalls", 0) < 1:
            bad.append("no stall recorded by the watchdog")
        if case["elapsed_s"] > STALL_S / 2:
            bad.append("took %.1fs — the stall, not the watchdog, "
                       "bounded the case" % case["elapsed_s"])
    if executor == "processes" and fault == "worker_crash":
        if faults.get("crashes", 0) < 1:
            bad.append("no crash recorded by the pool")
    return bad


# -- the campaign ----------------------------------------------------------

def run_campaign(seed=0, faults=None, executors=None, policies=None,
                 count=DATASETS, max_retries=1, log=None):
    """Run the full sweep; returns a JSON-safe report dict.

    ``report["ok"]`` is True when every case landed in its documented
    state and every hygiene invariant held.  ``faults`` / ``executors``
    / ``policies`` restrict the swept axes (default: everything).
    """
    say = log or (lambda message: None)
    faults = list(faults or sorted(fl.fault_points()))
    executors = list(executors or EXECUTORS)
    policies = list(policies or POLICIES)
    store_root = tempfile.mkdtemp(prefix="flchaos-store-")
    env_before = os.environ.get("FL_KERNEL_STORE")
    os.environ["FL_KERNEL_STORE"] = store_root
    try:
        # Fault-free oracle (serial, warm store written behind).
        template = _dot_program(*_make_pair(seed))
        baseline = fl.run_batch(template, _datasets(count, seed),
                                executor="serial", instrument=True,
                                cache=True)
        expected_values = [item.outputs[0] for item in baseline.items]
        expected_ops = baseline.total_ops
        kernel = fl.compile_kernel(template, instrument=True)
        shm_before = _shm_entries()
        children_before = {proc.pid for proc in mp.active_children()}
        cases = []
        violations = 0
        for fault in faults:
            for executor in executors:
                for policy in policies:
                    if fault.startswith("store_"):
                        # Force the next compile through the disk
                        # store so the read-path fault has something
                        # to bite.
                        KERNEL_CACHE.clear()
                        kernel = fl.compile_kernel(template,
                                                   instrument=True)
                    case = {"fault": fault, "executor": executor,
                            "policy": policy}
                    start = time.perf_counter()
                    status, result, error, fstats = _run_case(
                        kernel, fault, executor, policy, seed, count,
                        max_retries)
                    case["elapsed_s"] = time.perf_counter() - start
                    case["status"] = status
                    case["faults"] = {key: value for key, value
                                      in fstats.items() if value}
                    bad = _check_case(case, status, result, error,
                                      fstats, expected_values,
                                      expected_ops)
                    leaked = _shm_entries() - shm_before
                    if leaked:
                        bad.append("leaked shm segments: %s"
                                   % sorted(leaked))
                    orphans = {proc.pid
                               for proc in mp.active_children()
                               } - children_before
                    if orphans:
                        bad.append("orphan workers: %s"
                                   % sorted(orphans))
                    case["violations"] = bad
                    violations += len(bad)
                    cases.append(case)
                    say("%-20s %-10s %-8s -> %-11s %s"
                        % (fault, executor, policy, status,
                           "OK" if not bad else "; ".join(bad)))
        return {"seed": seed, "datasets": count,
                "max_retries": max_retries, "cases": cases,
                "violations": violations, "ok": violations == 0}
    finally:
        if env_before is None:
            os.environ.pop("FL_KERNEL_STORE", None)
        else:
            os.environ["FL_KERNEL_STORE"] = env_before
        KERNEL_CACHE.clear()
        shutil.rmtree(store_root, ignore_errors=True)
