"""The user-facing language surface, re-exported in one namespace.

    import repro.lang as fl

    i = fl.indices("i")
    C = fl.Scalar(name="C")
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    fl.execute(fl.forall(i, fl.increment(C[()], A[i] * B[i])))
    print(C.value)
"""

from repro.cin.builders import (
    access,
    call,
    coalesce,
    eq,
    follow,
    forall,
    foralls,
    gallop,
    ge,
    gt,
    increment,
    indices,
    land,
    le,
    literal,
    locate,
    lor,
    lt,
    maximum,
    minimum,
    multi,
    ne,
    offset,
    pass_,
    permit,
    reduce_into,
    sieve,
    store,
    walk,
    where,
    window,
)
from repro.compiler.kernel import (
    CompiledKernel,
    Kernel,
    KernelCache,
    compile_kernel,
    execute,
    kernel_cache,
)
from repro.exec import (
    EXECUTORS,
    BatchItem,
    BatchResult,
    KernelPool,
    run_batch,
)
from repro.ir import MISSING, ops
from repro.tensors.output import RunOutput, SparseOutput
from repro.tensors import (
    Scalar,
    convert,
    dropfills,
    Tensor,
    from_numpy,
    symmetric_from_numpy,
    triangular_from_numpy,
    zeros,
)

__all__ = [
    "access", "call", "coalesce", "eq", "follow", "forall", "foralls",
    "gallop", "ge", "gt", "increment", "indices", "land", "le", "literal",
    "locate", "lor", "lt", "maximum", "minimum", "multi", "ne", "offset",
    "pass_", "permit", "reduce_into", "sieve", "store", "walk", "where",
    "window", "CompiledKernel", "Kernel", "KernelCache",
    "compile_kernel", "execute", "kernel_cache", "MISSING", "ops",
    "BatchItem", "BatchResult", "EXECUTORS", "KernelPool", "run_batch",
    "RunOutput", "SparseOutput",
    "Scalar", "Tensor", "convert", "dropfills", "from_numpy",
    "symmetric_from_numpy",
    "triangular_from_numpy", "zeros",
]
