"""The user-facing language surface, re-exported in one namespace.

    import repro.lang as fl

    i = fl.indices("i")
    C = fl.Scalar(name="C")
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("band",), name="B")
    fl.execute(fl.forall(i, fl.increment(C[()], A[i] * B[i])))
    print(C.value)
"""

from repro.cin.builders import (
    access,
    call,
    coalesce,
    eq,
    follow,
    forall,
    foralls,
    gallop,
    ge,
    gt,
    increment,
    indices,
    land,
    le,
    literal,
    locate,
    lor,
    lt,
    maximum,
    minimum,
    multi,
    ne,
    offset,
    pass_,
    permit,
    reduce_into,
    sieve,
    store,
    walk,
    where,
    window,
)
from repro.chaos import chaos, fault_points
from repro.compiler.kernel import (
    CompiledKernel,
    Kernel,
    KernelCache,
    compile_kernel,
    execute,
    kernel_cache,
)
from repro.compiler.options import CompileOptions
from repro.exec import (
    EXECUTORS,
    BatchItem,
    BatchResult,
    KernelPool,
    ShmArena,
    WorkerPool,
    configure_pool,
    default_pool,
    run_batch,
)
from repro.ir import MISSING, ops
from repro.store import (
    KernelStore,
    active_store,
    configure_store,
    load_pack,
)
from repro.tensors.output import RunOutput, SparseOutput
from repro.util.config import configure, runtime_config
from repro.tensors.share import share_dataset, share_tensor
from repro.tensors import (
    Scalar,
    convert,
    dropfills,
    Tensor,
    from_numpy,
    symmetric_from_numpy,
    triangular_from_numpy,
    zeros,
)


def __getattr__(name):
    # Lazy: repro.fuzz builds its programs through this very module
    # (the generator composes the public eDSL), so importing it here
    # eagerly would be circular whichever module loads first.
    if name in ("fuzz_one", "run_fuzz"):
        from repro.fuzz import fuzz_one, run_fuzz

        return {"fuzz_one": fuzz_one, "run_fuzz": run_fuzz}[name]
    # Same story for the autotuner: it compiles candidates through
    # compile_kernel, which this module re-exports.
    if name in ("tune_program", "lookup_schedule", "apply_schedule"):
        from repro.tune import (
            apply_schedule,
            lookup_schedule,
            tune_program,
        )

        return {"tune_program": tune_program,
                "lookup_schedule": lookup_schedule,
                "apply_schedule": apply_schedule}[name]
    # And for the kernel service: most sessions never talk to one, so
    # the HTTP client/server stack only loads when a name is touched.
    if name in ("KernelService", "ServiceClient", "active_client",
                "service_stats", "reset_service_stats"):
        from repro.service import (
            KernelService,
            ServiceClient,
            active_client,
            reset_service_stats,
            service_stats,
        )

        return {"KernelService": KernelService,
                "ServiceClient": ServiceClient,
                "active_client": active_client,
                "service_stats": service_stats,
                "reset_service_stats": reset_service_stats}[name]
    raise AttributeError("module %r has no attribute %r"
                         % (__name__, name))


__all__ = [
    "access", "call", "coalesce", "eq", "follow", "forall", "foralls",
    "gallop", "ge", "gt", "increment", "indices", "land", "le", "literal",
    "locate", "lor", "lt", "maximum", "minimum", "multi", "ne", "offset",
    "pass_", "permit", "reduce_into", "sieve", "store", "walk", "where",
    "window", "CompiledKernel", "Kernel", "KernelCache",
    "compile_kernel", "execute", "kernel_cache", "MISSING", "ops",
    "BatchItem", "BatchResult", "EXECUTORS", "KernelPool", "ShmArena",
    "WorkerPool", "configure_pool", "default_pool", "run_batch",
    "KernelStore", "active_store", "configure_store", "load_pack",
    "CompileOptions", "configure", "runtime_config",
    "KernelService", "ServiceClient", "active_client",
    "reset_service_stats", "service_stats",
    "chaos", "fault_points",
    "fuzz_one", "run_fuzz",
    "apply_schedule", "lookup_schedule", "tune_program",
    "RunOutput", "SparseOutput",
    "Scalar", "Tensor", "convert", "dropfills", "from_numpy",
    "share_dataset", "share_tensor", "symmetric_from_numpy",
    "triangular_from_numpy", "zeros",
]
