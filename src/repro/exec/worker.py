"""Process-pool worker side of the batch engine.

A worker process never receives a compiled function object — function
objects do not pickle, and shipping code objects across process
boundaries would tie the pool to one interpreter state.  Instead each
task carries the kernel's *spec* (see
:meth:`repro.compiler.kernel.CompiledKernel.to_spec`): the optimized
source, the binding plan, and the per-slot format signatures.  The
worker re-``exec``\\ s the source once, memoizes the rebuilt artifact
in a per-process cache, and binds it to each incoming dataset.

When a persistent kernel store is configured (``FL_KERNEL_STORE`` in
the environment workers inherit, or an explicit
:func:`repro.store.configure_store` under the fork start method), the
worker warm-starts from disk before rebuilding from the shipped spec:
a store hit loads the persisted entry, a miss rebuilds from the spec
and writes the entry behind — so the *next* fleet of workers, in any
future process, starts warm.

Everything here must stay importable at module top level so
``concurrent.futures.ProcessPoolExecutor`` can pickle task references
under any start method (fork, spawn, forkserver).
"""

import os
import time

import numpy as np

#: Per-process memo of rebuilt artifacts, keyed by the spec's identity.
#: One worker re-``exec``\\ s each distinct kernel at most once, no
#: matter how many datasets of that kernel it is handed.
_ARTIFACTS = {}


def _spec_key(spec):
    """A hashable identity for one serialized artifact."""
    return (spec["name"], spec["source"], repr(spec["plan"]),
            spec["instrument"], spec["opt_level"],
            spec["constant_loop_rewrite"])


def artifact_from_spec(spec):
    """The rebuilt artifact for ``spec``, memoized per process.

    Returns ``(artifact, cached, store_hit)``: ``cached`` says the
    re-``exec`` was skipped entirely (the per-worker memo hit);
    ``store_hit`` says the rebuild came off the persistent disk store
    rather than the shipped spec.  A store miss writes the spec behind
    so future worker fleets warm-start.
    """
    from repro.compiler.kernel import CompiledKernel
    from repro.store import active_store, meta_for_spec

    key = _spec_key(spec)
    artifact = _ARTIFACTS.get(key)
    if artifact is not None:
        return artifact, True, False
    store = active_store()
    store_hit = False
    if store is not None:
        meta = meta_for_spec(spec)
        artifact = store.load_artifact(meta)
        store_hit = artifact is not None
    if artifact is None:
        artifact = CompiledKernel.from_spec(spec)
        if store is not None:
            store.save_spec(meta, spec)
    _ARTIFACTS[key] = artifact
    return artifact, False, store_hit


def snapshot_tensor(tensor):
    """A detached numpy copy of one output tensor's current value.

    Densifies through ``to_numpy`` when the tensor supports it (real
    tensors and output builders), falling back to the scalar ``value``
    protocol.  Snapshots — not live buffers — are what crosses back
    over the process boundary, so results compare bit-identically
    across executors.
    """
    to_numpy = getattr(tensor, "to_numpy", None)
    if to_numpy is not None:
        return np.array(to_numpy(), copy=True)
    return np.asarray(tensor.value)


def run_spec_task(spec, tensors, index, output_slots):
    """Run one dataset against a spec-rebuilt kernel (worker entry).

    Returns a plain result dict (index, output snapshots, op count,
    worker id, seconds, artifact-cache flag) — everything the parent
    needs to assemble a :class:`repro.exec.batch.BatchItem`.
    """
    start = time.perf_counter()
    artifact, cached, store_hit = artifact_from_spec(spec)
    args = artifact.bind(tensors)
    result = artifact.fn(*args)
    outputs = [snapshot_tensor(tensors[slot]) for slot in output_slots]
    return {
        "index": index,
        "outputs": outputs,
        # Trip-count-scaled counters can come back as numpy ints;
        # normalize so op totals stay plain (and JSON-safe) ints.
        "ops": int(result) if artifact.instrument else None,
        "worker": "pid-%d" % os.getpid(),
        "seconds": time.perf_counter() - start,
        "spec_rebuild": not cached,
        "store_hit": store_hit,
    }
