"""Worker side of the batch engine.

A worker process never receives a compiled function object — function
objects do not pickle, and shipping code objects across process
boundaries would tie the pool to one interpreter state.  Instead the
pool ships each kernel's *spec* (see
:meth:`repro.compiler.kernel.CompiledKernel.to_spec`) **once per
worker**: the first chunk of a kernel carries the spec, every later
chunk carries only its digest, and the worker resolves the digest
against its per-process spec cache.  The worker re-``exec``\\ s the
source once, memoizes the rebuilt artifact, and rebinds it to each
incoming dataset's shared-memory views (:mod:`repro.exec.shm` — no
tensor bytes are unpickled).

When a persistent kernel store is configured (``FL_KERNEL_STORE`` in
the environment workers inherit, or an explicit
:func:`repro.store.configure_store` under the fork start method), the
worker warm-starts from disk before rebuilding from the shipped spec:
a store hit loads the persisted entry, a miss rebuilds from the spec
and writes the entry behind — so the *next* fleet of workers, in any
future process, starts warm.

:func:`worker_main` is the long-lived loop :class:`repro.exec.pool.WorkerPool`
spawns; :func:`run_chunk` is the per-chunk engine, kept free of
process state so the hygiene tests can drive it in-process.
Everything here must stay importable at module top level so worker
processes can start under any start method (fork, spawn, forkserver).
"""

import os
import pickle
import time
from collections import OrderedDict

import numpy as np

#: Per-process memo of rebuilt artifacts, keyed by the spec's identity.
#: One worker re-``exec``\\ s each distinct kernel at most once, no
#: matter how many datasets of that kernel it is handed.  Bounded so a
#: long fuzz campaign against a persistent pool cannot grow a worker
#: without limit.
_ARTIFACTS = OrderedDict()
_ARTIFACT_MEMO_CAP = 256

#: Per-process spec cache, keyed by the digest the pool ships with
#: every chunk.  Filled the first time a kernel reaches this worker;
#: later chunks of the same kernel carry the digest only.
_SPECS = {}


def _spec_key(spec):
    """A hashable identity for one serialized artifact."""
    return (spec["name"], spec["source"], repr(spec["plan"]),
            spec["instrument"], spec["opt_level"],
            spec["constant_loop_rewrite"],
            spec.get("backend", "python"))


def artifact_from_spec(spec):
    """The rebuilt artifact for ``spec``, memoized per process.

    Returns ``(artifact, cached, store_hit, remote_hit)``: ``cached``
    says the re-``exec`` was skipped entirely (the per-worker memo
    hit); ``store_hit`` says the rebuild came off the persistent disk
    store rather than the shipped spec; ``remote_hit`` says it came
    off the fleet kernel service (consulted after a disk miss, when a
    service URL is configured — the worker inherits ``FL_SERVICE_URL``
    like every ``FL_*`` knob).  A miss writes the spec behind into the
    local store so future worker fleets warm-start; the *parent* owns
    the remote push, so a thousand workers never stampede the service
    with the same entry.
    """
    from repro.compiler.kernel import CompiledKernel
    from repro.store import active_store, meta_for_spec

    key = _spec_key(spec)
    artifact = _ARTIFACTS.get(key)
    if artifact is not None:
        _ARTIFACTS.move_to_end(key)
        return artifact, True, False, False
    store = active_store()
    meta = meta_for_spec(spec)
    store_hit = False
    remote_hit = False
    if store is not None:
        artifact = store.load_artifact(meta)
        store_hit = artifact is not None
    if artifact is None and spec.get("c_source"):
        # The worker already holds the spec (it shipped with the
        # chunk), so the remote tier is only worth a round-trip when
        # it can deliver what the spec cannot: the prebuilt ``.so``
        # sidecar, sparing this worker a local C-toolchain compile.
        from repro.service.client import active_client

        client = active_client()
        if client is not None:
            fetched = client.fetch(meta)
            if fetched is not None:
                from repro.compiler.kernel import _artifact_from_remote

                artifact = _artifact_from_remote(
                    fetched[0], fetched[1], store, meta)
                remote_hit = artifact is not None
    if artifact is None:
        artifact = CompiledKernel.from_spec(spec)
        if store is not None:
            # Write behind the freshly compiled .so too (if any), so
            # future worker fleets warm-start without a C compiler.
            store.save_spec(meta, spec, so_path=artifact.so_path)
    _ARTIFACTS[key] = artifact
    while len(_ARTIFACTS) > _ARTIFACT_MEMO_CAP:
        _ARTIFACTS.popitem(last=False)
    return artifact, False, store_hit, remote_hit


def snapshot_tensor(tensor):
    """A detached numpy copy of one output tensor's current value.

    Densifies through ``to_numpy`` when the tensor supports it (real
    tensors and output builders), falling back to the scalar ``value``
    protocol.  Snapshots — never live buffers — are what
    :class:`repro.exec.batch.BatchResult` hands back, so results
    compare bit-identically across executors.
    """
    to_numpy = getattr(tensor, "to_numpy", None)
    if to_numpy is not None:
        return np.array(to_numpy(), copy=True)
    return np.asarray(tensor.value)


def run_spec_task(spec, tensors, index, output_slots):
    """Run one dataset against a spec-rebuilt kernel.

    The one-task-at-a-time predecessor of :func:`run_chunk`, kept for
    direct callers that hold real tensors (no shm transport): returns
    a plain result dict (index, output snapshots, op count, worker id,
    seconds, artifact-cache flag).
    """
    start = time.perf_counter()
    artifact, cached, store_hit, remote_hit = artifact_from_spec(spec)
    args = artifact.bind(tensors)
    result = artifact.fn(*args)
    outputs = [snapshot_tensor(tensors[slot]) for slot in output_slots]
    return {
        "index": index,
        "outputs": outputs,
        # Trip-count-scaled counters can come back as numpy ints;
        # normalize so op totals stay plain (and JSON-safe) ints.
        "ops": int(result) if artifact.instrument else None,
        "worker": "pid-%d" % os.getpid(),
        "seconds": time.perf_counter() - start,
        "spec_rebuild": not cached,
        "store_hit": store_hit,
        "remote_hit": remote_hit,
    }


def _pickle_exception(exc):
    """The exception as pipe-safe bytes, degrading to a RuntimeError
    carrying the original type name when the instance won't pickle."""
    try:
        return pickle.dumps(exc, pickle.HIGHEST_PROTOCOL)
    except Exception:
        fallback = RuntimeError(
            "%s: %s" % (type(exc).__name__, exc))
        return pickle.dumps(fallback, pickle.HIGHEST_PROTOCOL)


def run_chunk(chunk, cache, mark=None):
    """Run one chunk of datasets against shared-memory payloads.

    ``chunk`` carries the kernel digest (plus the spec itself on the
    first chunk a worker sees), the staging segment name, and one
    transport payload per dataset (:func:`repro.exec.shm.describe_args`).
    ``mark`` publishes the in-flight dataset index (the pool's crash
    attribution); ``cache`` is the worker's
    :class:`repro.exec.shm.SegmentCache`.

    Returns per-dataset results (ops, seconds, rebuild/store flags,
    post-run builder state for ``obj_outputs``) plus at most one error
    record; execution stops at the first failing dataset.  Transient
    segment attachments are released on normal completion and caught
    errors — but deliberately NOT while a ``SystemExit``/signal is
    tearing the process down, so the in-flight index stays published
    in the progress array for the pool's crash attribution.
    """
    from repro import chaos as _chaos
    from repro.exec import shm as _shm

    digest = chunk["digest"]
    if chunk.get("spec") is not None:
        _SPECS[digest] = chunk["spec"]
    spec = _SPECS.get(digest)
    worker = "pid-%d" % os.getpid()
    results = []
    error = None
    args = None
    index = None
    try:
        if spec is None:
            raise RuntimeError(
                "worker %s has no spec for digest %s (pool protocol "
                "error: specs ship with a kernel's first chunk)"
                % (worker, digest))
        for payload in chunk["datasets"]:
            index = payload["index"]
            if mark is not None:
                mark(index)
            try:
                if _chaos.active():
                    _chaos.inject("worker_crash", index=index)
                    _chaos.inject("worker_stall", index=index)
                    _chaos.inject("slow_chunk", index=index)
                start = time.perf_counter()
                artifact, cached, store_hit, remote_hit = \
                    artifact_from_spec(spec)
                args = _shm.build_args(payload, chunk.get("staging"),
                                       cache)
                result = artifact.fn(*args)
                seconds = time.perf_counter() - start
                results.append({
                    "index": index,
                    "ops": (int(result) if artifact.instrument
                            else None),
                    "worker": worker,
                    "seconds": seconds,
                    "spec_rebuild": not cached,
                    "store_hit": store_hit,
                    "remote_hit": remote_hit,
                    "obj_updates": {
                        j: dict(payload["objs"][j].__dict__)
                        for j in payload["obj_outputs"]},
                })
            finally:
                args = None
    except Exception as exc:
        error = {"index": index, "exc": _pickle_exception(exc)}
    # Not a finally: a SystemExit propagating through here must leave
    # the in-flight mark standing so the parent can attribute the
    # death to the right dataset.
    if mark is not None:
        mark(-1)
    cache.release_transient()
    if error is not None and error["index"] is None:
        first = chunk["datasets"][0]["index"] if chunk["datasets"] else 0
        error["index"] = first
    return {"worker": worker, "results": results, "error": error}


def worker_main(conn, progress_name, slot, nslots):
    """The long-lived loop of one :class:`repro.exec.pool.WorkerPool`
    worker: attach the pool's progress array, then serve chunk
    messages off the duplex pipe until shutdown or EOF.

    Messages travel as explicit pickle bytes (``send_bytes``) so the
    parent serializes exactly once and can meter the pickled payload
    size — the instrumentation that proves tensor data stays out of
    the pipe.
    """
    from repro.exec import shm as _shm

    cache = _shm.SegmentCache()
    progress = None
    if progress_name is not None:
        seg = cache.attach(progress_name, pinned=True)
        progress = seg.view(0, np.int64, (nslots, 2))

    def mark(value):
        # Column 0 is the in-flight dataset index (crash attribution);
        # column 1 is a heartbeat in monotonic microseconds (the
        # watchdog treats a stale heartbeat as a wedged worker).
        # Monotonic, never wall clock: CLOCK_MONOTONIC is system-wide
        # on Linux so the parent's time.monotonic() reads the same
        # clock, and an NTP step or clock slew can neither frame a
        # healthy worker as stalled nor blind the watchdog.
        if progress is not None:
            progress[slot, 0] = value
            progress[slot, 1] = int(time.monotonic() * 1e6)

    try:
        while True:
            try:
                data = conn.recv_bytes()
            except (EOFError, OSError):
                break
            message = pickle.loads(data)
            if message.get("op") == "shutdown":
                break
            chaos_env = message.pop("chaos", None)
            if chaos_env is not None:
                from repro import chaos as _chaos

                _chaos.apply_env(chaos_env)
            reply = run_chunk(message, cache, mark)
            try:
                conn.send_bytes(
                    pickle.dumps(reply, pickle.HIGHEST_PROTOCOL))
            except (BrokenPipeError, OSError):
                break
    finally:
        cache.close()
        try:
            conn.close()
        except OSError:
            pass
