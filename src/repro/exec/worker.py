"""Process-pool worker side of the batch engine.

A worker process never receives a compiled function object — function
objects do not pickle, and shipping code objects across process
boundaries would tie the pool to one interpreter state.  Instead each
task carries the kernel's *spec* (see
:meth:`repro.compiler.kernel.CompiledKernel.to_spec`): the optimized
source, the binding plan, and the per-slot format signatures.  The
worker re-``exec``\\ s the source once, memoizes the rebuilt artifact
in a per-process cache, and binds it to each incoming dataset.

Everything here must stay importable at module top level so
``concurrent.futures.ProcessPoolExecutor`` can pickle task references
under any start method (fork, spawn, forkserver).
"""

import os
import time

import numpy as np

#: Per-process memo of rebuilt artifacts, keyed by the spec's identity.
#: One worker re-``exec``\\ s each distinct kernel at most once, no
#: matter how many datasets of that kernel it is handed.
_ARTIFACTS = {}


def _spec_key(spec):
    """A hashable identity for one serialized artifact."""
    return (spec["name"], spec["source"], repr(spec["plan"]),
            spec["instrument"], spec["opt_level"])


def artifact_from_spec(spec):
    """The rebuilt artifact for ``spec``, memoized per process.

    Returns ``(artifact, cached)`` where ``cached`` says whether the
    re-``exec`` was skipped (the per-worker artifact cache hit).
    """
    from repro.compiler.kernel import CompiledKernel

    key = _spec_key(spec)
    artifact = _ARTIFACTS.get(key)
    if artifact is not None:
        return artifact, True
    artifact = CompiledKernel.from_spec(spec)
    _ARTIFACTS[key] = artifact
    return artifact, False


def snapshot_tensor(tensor):
    """A detached numpy copy of one output tensor's current value.

    Densifies through ``to_numpy`` when the tensor supports it (real
    tensors and output builders), falling back to the scalar ``value``
    protocol.  Snapshots — not live buffers — are what crosses back
    over the process boundary, so results compare bit-identically
    across executors.
    """
    to_numpy = getattr(tensor, "to_numpy", None)
    if to_numpy is not None:
        return np.array(to_numpy(), copy=True)
    return np.asarray(tensor.value)


def run_spec_task(spec, tensors, index, output_slots):
    """Run one dataset against a spec-rebuilt kernel (worker entry).

    Returns a plain result dict (index, output snapshots, op count,
    worker id, seconds, artifact-cache flag) — everything the parent
    needs to assemble a :class:`repro.exec.batch.BatchItem`.
    """
    start = time.perf_counter()
    artifact, cached = artifact_from_spec(spec)
    args = artifact.bind(tensors)
    result = artifact.fn(*args)
    outputs = [snapshot_tensor(tensors[slot]) for slot in output_slots]
    return {
        "index": index,
        "outputs": outputs,
        # Trip-count-scaled counters can come back as numpy ints;
        # normalize so op totals stay plain (and JSON-safe) ints.
        "ops": int(result) if artifact.instrument else None,
        "worker": "pid-%d" % os.getpid(),
        "seconds": time.perf_counter() - start,
        "spec_rebuild": not cached,
    }
