"""Batched parallel execution of compiled kernels.

``run_batch`` maps one compiled program over many independent
datasets under a serial, thread-pool, or process-pool executor;
``KernelPool`` is the reusable engine underneath.  Process workers
receive serialized kernel *specs*
(:meth:`repro.compiler.kernel.CompiledKernel.to_spec`), never live
function objects.  See :mod:`repro.exec.batch` for the semantics.
"""

from repro.exec.batch import (
    EXECUTORS,
    BatchItem,
    BatchResult,
    KernelPool,
    run_batch,
)

__all__ = [
    "EXECUTORS",
    "BatchItem",
    "BatchResult",
    "KernelPool",
    "run_batch",
]
