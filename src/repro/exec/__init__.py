"""Batched parallel execution of compiled kernels.

``run_batch`` maps one compiled program over many independent
datasets under a serial, thread-pool, or process-pool executor;
``KernelPool`` is the reusable engine underneath.  Process workers
receive serialized kernel *specs*
(:meth:`repro.compiler.kernel.CompiledKernel.to_spec`), never live
function objects.  See :mod:`repro.exec.batch` for the semantics.
"""

from repro.exec.batch import (
    EXECUTORS,
    BatchItem,
    BatchResult,
    KernelPool,
    run_batch,
)
from repro.exec.pool import (
    WorkerPool,
    configure_pool,
    default_pool,
)
from repro.exec.shm import ShmArena

__all__ = [
    "EXECUTORS",
    "BatchItem",
    "BatchResult",
    "KernelPool",
    "ShmArena",
    "WorkerPool",
    "configure_pool",
    "default_pool",
    "run_batch",
]
