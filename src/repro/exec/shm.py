"""Pickle-free shared-memory tensor transport for the batch engine.

The paper's amortization story — compile once per structure, rebind
over many datasets — dies at the process boundary if every dataset is
pickled into the worker: serializing the tensors costs more than the
coiteration kernel they feed.  This module moves tensor payloads
through ``multiprocessing.shared_memory`` segments instead, so the
only bytes that cross the pipe per dataset are small *descriptors*
(segment name, offset, dtype, shape) and the workers rebind numpy
views over the same physical pages.

Two placement strategies, one descriptor protocol:

:class:`ShmArena`
    long-lived residency.  ``arena.add(array)`` copies an array into
    an arena segment once and registers the returned view in a
    process-wide residency table; from then on the array crosses to
    any worker by descriptor only.  Outputs resident in an arena are
    written *in place* by workers — no copy-back at all.  This is what
    the benchmark harness uses: adopt the datasets up front, then
    every repeat of every batch moves zero tensor bytes.

:class:`ShmStaging`
    per-batch transport for arrays that are not arena-resident.  The
    parent lays out every distinct array of the batch (deduplicated by
    identity), creates one segment, copies inputs in, and after the
    batch copies output regions back (:meth:`ShmStaging.writeback`)
    before unlinking.  One segment per batch keeps the /dev/shm
    namespace tidy and makes cleanup deterministic on error paths.

Descriptors are plain tuples::

    ("shm", name, offset, dtype, shape)   arena-resident; worker keeps
                                          the segment attached (pinned)
    ("stg", offset, dtype, shape)         in the batch's staging
                                          segment (named once per
                                          chunk message); detached
                                          after each chunk
    ("obj", k)                            the k-th pickled object of
                                          the dataset (output builders
                                          — plain-Python run/coordinate
                                          streams, never ndarrays)

Cleanup discipline: segments are created with a recognizable
``flshm``-prefixed name, tracked in a module registry
(:func:`active_segments`), and unlinked by their owner exactly once —
``close`` unlinks first so the name disappears from /dev/shm
immediately, while segments that still have live resident views keep
their *mapping* alive until the last view is collected (numpy views
do not protect the mapping on their own: ``SharedMemory.close``
unmaps underneath them without raising).  Workers suppress
``resource_tracker`` registration when attaching (CPython < 3.13
registers attachments too, which would tear down the parent's segment
when a worker exits — bpo-39959).
"""

import os
import threading
import weakref

import numpy as np

from multiprocessing import resource_tracker, shared_memory

#: Prefix of every segment this module creates (leak checks grep for it).
SHM_PREFIX = "flshm"

#: Buffer alignment inside segments (cache-line sized).
_ALIGNMENT = 64

_lock = threading.Lock()
_counter = 0
_active = set()  # segment names created here and not yet unlinked


def _align_up(n):
    return (n + _ALIGNMENT - 1) & ~(_ALIGNMENT - 1)


def _next_name():
    global _counter
    with _lock:
        _counter += 1
        return "%s_%d_%d" % (SHM_PREFIX, os.getpid(), _counter)


def active_segments():
    """Names of segments this process created and has not unlinked.

    Empty after every well-behaved batch — the shm hygiene tests
    assert exactly that on both success and error paths.
    """
    with _lock:
        return sorted(_active)


class ShmSegment:
    """One named shared-memory segment with deterministic cleanup.

    ``create`` makes an owning segment (unlinked by :meth:`close`);
    ``attach`` maps an existing one by name.  The attaching side never
    unlinks and is unregistered from the resource tracker, so a
    worker's exit cannot tear down a segment the parent still owns.
    """

    def __init__(self, shm, owner):
        self._shm = shm
        self.name = shm.name
        self.owner = owner
        self._closed = False
        self._unlinked = False

    @classmethod
    def create(cls, size):
        shm = None
        while shm is None:
            name = _next_name()
            try:
                shm = shared_memory.SharedMemory(
                    name=name, create=True, size=max(int(size), 1))
            except FileExistsError:  # pragma: no cover - recycled pid
                continue
        with _lock:
            _active.add(shm.name)
        return cls(shm, owner=True)

    @classmethod
    def attach(cls, name):
        # Attaching must not (re-)register the segment with a resource
        # tracker: under fork the tracker process is shared with the
        # owner, so an attacher-side unregister would erase the
        # owner's claim, and under spawn the attacher's own tracker
        # would unlink the owner's segment when the worker exits
        # (bpo-39959).  Python 3.13+ exposes track=False; earlier
        # versions need the registration suppressed around the call.
        try:
            shm = shared_memory.SharedMemory(name=name, track=False)
        except TypeError:
            with _lock:
                original = resource_tracker.register
                resource_tracker.register = lambda *args: None
                try:
                    shm = shared_memory.SharedMemory(name=name)
                finally:
                    resource_tracker.register = original
        return cls(shm, owner=False)

    @property
    def size(self):
        return self._shm.size

    def view(self, offset, dtype, shape):
        """A numpy array over the bytes at ``offset``."""
        return np.ndarray(shape, dtype=dtype, buffer=self._shm.buf,
                          offset=offset)

    def close(self, defer_views=None):
        """Release this side's mapping; owners also unlink the name.

        Unlink happens first (and exactly once), so the name leaves
        /dev/shm immediately.  Unmapping must NOT happen under live
        numpy views: ``SharedMemory.close`` unmaps even when views
        still point into the segment (numpy releases its buffer
        export at construction and keeps only a base reference, so
        nothing raises ``BufferError`` — reads after close are
        use-after-free).  Callers that know of live views pass them
        as ``defer_views``: the mapping is then kept alive and
        released only when the last of those views is collected.
        Idempotent.
        """
        if self.owner and not self._unlinked:
            self._unlinked = True
            try:
                self._shm.unlink()
            except FileNotFoundError:  # pragma: no cover
                pass
            with _lock:
                _active.discard(self.name)
        if not self._closed:
            self._closed = True
            if defer_views:
                _DeferredUnmap(self._shm, defer_views)
            else:
                try:
                    self._shm.close()
                except BufferError:  # pragma: no cover - defensive
                    pass

    def __del__(self):  # pragma: no cover - GC-order dependent
        try:
            self.close()
        except Exception:
            pass


#: Deferred unmaps kept alive until their last view is collected.
_deferred = set()


class _DeferredUnmap:
    """Holds a closed-but-unlinked mapping open for its live views.

    An arena can be closed while tensors adopted into it are still in
    use (their level buffers ARE arena views); unmapping at that point
    would turn every later tensor access into a use-after-free.  This
    keeps the underlying ``SharedMemory`` referenced — which keeps the
    pages mapped — and releases it from a weakref callback once every
    known view has been garbage collected.
    """

    def __init__(self, shm, views):
        self._shm = shm
        # weakref.ref hashes via the referent (ndarrays are
        # unhashable), so hold the refs in a list and count down.
        self._alive = len(views)
        with _lock:
            _deferred.add(self)
        self._refs = [weakref.ref(view, self._dropped)
                      for view in views]

    def _dropped(self, ref):
        with _lock:
            self._alive -= 1
            done = self._alive <= 0
        if done:
            try:
                self._shm.close()
            except Exception:  # pragma: no cover - interpreter exit
                pass
            with _lock:
                _deferred.discard(self)


# -- residency registry ---------------------------------------------------

#: id(array) -> (weakref(array), segment name, offset).  Arrays placed
#: by :meth:`ShmArena.add`; looked up on every transport build so
#: resident buffers ship as descriptors, not bytes.
_resident = {}


def _register_resident(array, segment, offset):
    _resident[id(array)] = (weakref.ref(array), segment.name, offset)


def resident_descriptor(array):
    """The ``("shm", ...)`` descriptor for an arena-resident array,
    or None when the array must be staged.  Stale entries (the id was
    recycled after the original view died) are dropped on sight."""
    entry = _resident.get(id(array))
    if entry is None:
        return None
    ref, name, offset = entry
    if ref() is not array:
        del _resident[id(array)]
        return None
    return ("shm", name, offset, array.dtype.str, array.shape)


def resident_bytes():
    """Total bytes currently registered as arena-resident."""
    total = 0
    for ref, _name, _offset in _resident.values():
        array = ref()
        if array is not None:
            total += array.nbytes
    return total


class ShmArena:
    """A bump allocator over owned segments for long-lived residency.

    ``add`` copies an array in once and returns the resident view;
    thereafter the array crosses process boundaries by descriptor.
    Writes through any process's view are immediately visible in every
    other — resident outputs need no copy-back.  Closing the arena
    unlinks every segment; views already made keep working in-process
    until collected, but no new worker can attach.
    """

    def __init__(self, min_segment_bytes=1 << 22):
        self._min_segment = int(min_segment_bytes)
        self._segments = []
        self._current = None
        self._cursor = 0
        self._closed = False

    @property
    def segments(self):
        return list(self._segments)

    def nbytes(self):
        return sum(seg.size for seg in self._segments)

    def add(self, array):
        """Copy ``array`` into the arena; returns the resident view."""
        if self._closed:
            raise RuntimeError("ShmArena is closed")
        if (isinstance(array, np.ndarray)
                and resident_descriptor(array) is not None):
            return array  # already transport-resident: no re-copy
        array = np.ascontiguousarray(array)
        nbytes = max(array.nbytes, 1)
        if (self._current is None
                or self._cursor + nbytes > self._current.size):
            self._current = ShmSegment.create(
                max(self._min_segment, nbytes))
            self._segments.append(self._current)
            self._cursor = 0
        offset = self._cursor
        self._cursor = _align_up(offset + nbytes)
        view = self._current.view(offset, array.dtype, array.shape)
        np.copyto(view, array, casting="no")
        _register_resident(view, self._current, offset)
        return view

    def close(self):
        """Unlink every segment and retire its residency entries.

        Adopted tensors stay usable: segments with live resident
        views keep their mapping until those views are collected
        (the /dev/shm names disappear immediately regardless).
        """
        self._closed = True
        names = {seg.name for seg in self._segments}
        live = {}  # segment name -> live views
        for key, (ref, name, _offset) in list(_resident.items()):
            if name in names:
                view = ref()
                if view is not None:
                    live.setdefault(name, []).append(view)
                _resident.pop(key, None)
            elif ref() is None:
                _resident.pop(key, None)
        segments, self._segments = self._segments, []
        self._current = None
        for seg in segments:
            seg.close(defer_views=live.get(seg.name))

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


# -- per-batch staging ----------------------------------------------------

class ShmStaging:
    """Transport for one batch's non-resident ndarray arguments.

    Two-phase: :meth:`stage` only reserves layout (deduplicating by
    array identity, so an input shared across datasets crosses once);
    :meth:`seal` creates the single segment and copies every staged
    array in.  After the batch, :meth:`writeback` copies output
    regions of *completed* datasets back into the caller's arrays and
    :meth:`close` unlinks — also safe to call on error paths where
    nothing was sealed.
    """

    def __init__(self):
        self._entries = {}  # id(array) -> offset
        self._order = []    # (array, offset) in layout order
        self._writeback = []  # (dataset index, array, offset)
        self._segment = None
        self._cursor = 0
        self._sealed = False

    def stage(self, array, dataset, writes):
        """Reserve transport space for ``array``; returns its
        descriptor.  ``writes`` marks it an output of ``dataset``
        (copied back by :meth:`writeback`)."""
        if self._sealed:
            raise RuntimeError("staging already sealed")
        offset = self._entries.get(id(array))
        if offset is None:
            offset = self._cursor
            self._cursor = _align_up(offset + max(array.nbytes, 1))
            self._entries[id(array)] = offset
            self._order.append((array, offset))
        if writes:
            self._writeback.append((dataset, array, offset))
        return ("stg", offset, array.dtype.str, array.shape)

    def nbytes(self):
        return self._cursor

    @property
    def name(self):
        return self._segment.name if self._segment is not None else None

    def seal(self):
        """Create the segment and copy every staged array in; returns
        the segment name (None when nothing was staged)."""
        if not self._sealed:
            self._sealed = True
            if self._order:
                self._segment = ShmSegment.create(self._cursor)
                for array, offset in self._order:
                    np.copyto(
                        self._segment.view(offset, array.dtype,
                                           array.shape),
                        array, casting="no")
        return self.name

    def writeback(self, completed):
        """Copy staged output regions of the datasets in ``completed``
        back into the caller's arrays."""
        if self._segment is None:
            return
        for dataset, array, offset in self._writeback:
            if dataset in completed:
                np.copyto(
                    array,
                    self._segment.view(offset, array.dtype, array.shape),
                    casting="no")

    def close(self):
        if self._segment is not None:
            segment, self._segment = self._segment, None
            segment.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False


def describe_args(args, staging, dataset, output_ids):
    """The transport payload for one dataset's bound argument list.

    ndarray arguments become shm descriptors (resident ones by lookup,
    the rest via ``staging``); everything else — output builders —
    rides in the payload's ``objs`` list and is pickled, which is fine
    because builders hold the *result stream*, not tensor data.
    ``output_ids`` is the identity set of this dataset's output
    buffers; staged members are marked for write-back and builder
    members have their post-run state returned by the worker
    (``obj_outputs`` positions).
    """
    descs = []
    objs = []
    obj_outputs = []
    for arg in args:
        if isinstance(arg, np.ndarray):
            desc = resident_descriptor(arg)
            if desc is None:
                desc = staging.stage(arg, dataset, id(arg) in output_ids)
            descs.append(desc)
        else:
            if id(arg) in output_ids:
                obj_outputs.append(len(objs))
            descs.append(("obj", len(objs)))
            objs.append(arg)
    return {"args": descs, "objs": objs, "obj_outputs": obj_outputs}


class SegmentCache:
    """Worker-side attachments.

    ``("shm", ...)`` segments are *pinned* — mapped once and kept for
    the cache's lifetime (an arena outlives many batches).  Staging
    segments are *transient* — dropped after every chunk so the parent
    can unlink deterministically at batch end.
    """

    def __init__(self):
        self._pinned = {}
        self._transient = {}

    def attach(self, name, pinned):
        seg = self._pinned.get(name) or self._transient.get(name)
        if seg is None:
            if not pinned:
                # Chaos fault point: a transient (staging) attach is
                # the map racing the parent's unlink — raising here
                # surfaces as a worker-side TransientError the retry
                # policy re-stages.  Pinned attaches (progress array,
                # arenas) are pool infrastructure and stay exempt.
                from repro import chaos as _chaos

                if _chaos.active():
                    _chaos.inject("shm_attach_fail")
            seg = ShmSegment.attach(name)
            (self._pinned if pinned else self._transient)[name] = seg
        return seg

    def release_transient(self):
        segments, self._transient = list(self._transient.values()), {}
        for seg in segments:
            seg.close()

    def close(self):
        self.release_transient()
        segments, self._pinned = list(self._pinned.values()), {}
        for seg in segments:
            seg.close()


def build_args(payload, staging_name, cache):
    """Rebuild one dataset's argument list from its transport payload
    (worker side): shm descriptors become numpy views over attached
    segments, ``obj`` descriptors index the payload's pickled objects."""
    args = []
    for desc in payload["args"]:
        kind = desc[0]
        if kind == "obj":
            args.append(payload["objs"][desc[1]])
        elif kind == "stg":
            _, offset, dtype, shape = desc
            seg = cache.attach(staging_name, pinned=False)
            args.append(seg.view(offset, np.dtype(dtype), shape))
        elif kind == "shm":
            _, name, offset, dtype, shape = desc
            seg = cache.attach(name, pinned=True)
            args.append(seg.view(offset, np.dtype(dtype), shape))
        else:
            raise ValueError("unknown transport descriptor %r" % (kind,))
    return args
