"""Batched parallel execution: one compiled kernel, many datasets.

The paper's compile-once/coiterate-fast design makes the *artifact*
the expensive object and the data cheap to swap (PR 1's binding plan).
This module completes that story for throughput: :func:`run_batch`
maps a single :class:`~repro.compiler.kernel.CompiledKernel` over many
independent datasets concurrently, and :class:`KernelPool` is the
reusable engine underneath it.

Three executors share one semantics::

    serial      in-process loop (the reference; also the baseline the
                benchmark harness measures scaling against)
    threads     a ThreadPoolExecutor; right for ``opt_level=2``
                kernels whose time is spent in GIL-releasing numpy
                slice operations
    processes   the persistent warm :class:`~repro.exec.pool.WorkerPool`;
                right for scalar coiteration kernels that hold the
                GIL.  Workers receive the kernel's serialized *spec*
                once per pool lifetime (never the function object) and
                dataset payloads cross as shared-memory descriptors,
                not pickled tensors — see :mod:`repro.exec.pool` and
                :mod:`repro.exec.shm`.

Every executor returns the same :class:`BatchResult`: per-dataset
output snapshots in dataset order, per-dataset instrumented op counts,
per-worker statistics that aggregate deterministically (the total op
count of a batch is identical across executors — concurrency moves
work, it never changes it), and a per-stage overhead breakdown
(``serialize`` / ``transport`` / ``execute`` / ``collect``) that says
where the batch's wall time went.

Datasets are either full slot-ordered tensor sequences or name ->
tensor mappings applied over the kernel's bound template.  They are
validated *before* any dispatch: format signatures must match the
artifact, and each dataset must carry its own output tensors (shared
output buffers would race under the parallel executors).  Failures
inside a worker propagate as
:class:`~repro.util.errors.BatchExecutionError` with the index of the
dataset that raised — including workers that die hard mid-chunk
(wrapped :class:`~repro.util.errors.WorkerCrashError`) or wedge past
the watchdog deadline (wrapped
:class:`~repro.util.errors.WorkerStallError`), both respawned by the
pool.  Transient failures are retried with backoff up to
``max_retries`` before they count; the ``on_failure`` policy then
decides whether a permanent failure aborts the batch (``raise``),
falls back to a simpler executor for the affected datasets
(``degrade``), or is reported per-dataset in
:attr:`BatchResult.failures` (``skip``).

All three executors write outputs into the caller's dataset tensors in
place: serial and threads run in-process, and the processes executor
writes through shared memory (arena-resident outputs directly, staged
outputs copied back when the batch succeeds).  Code that needs the
results should still read them off the :class:`BatchResult` snapshots,
which behave identically everywhere.
"""

import hashlib
import os
import threading
import time
from concurrent.futures import ThreadPoolExecutor

import numpy as np

from repro.cin.analyze import tensor_binding_buffers
from repro.compiler.kernel import compile_kernel, resolve_name_overrides
from repro.exec import pool as _pool
from repro.exec import shm as _shm
from repro.exec import worker as _worker
from repro.util.errors import (BatchExecutionError, BindingError,
                               is_transient)

#: The executor names :func:`run_batch` accepts.
EXECUTORS = ("serial", "threads", "processes")

#: The failure policies :func:`run_batch` accepts.  ``raise`` aborts
#: on the first failing dataset (the default and the historical
#: behavior); ``degrade`` re-runs failed datasets on progressively
#: simpler executors (processes -> threads -> serial) and only raises
#: when the serial re-run fails too (a genuinely poison dataset);
#: ``skip`` never raises per-dataset — failed datasets land in
#: :attr:`BatchResult.failures` keyed by index.
ON_FAILURE = ("raise", "degrade", "skip")

#: The per-stage overhead keys every executor reports.
OVERHEAD_STAGES = ("serialize_s", "transport_s", "execute_s",
                   "collect_s")

#: The per-batch fault keys every executor reports: the pool's
#: :data:`repro.exec.pool.FAULT_KEYS` plus the datasets re-run on a
#: lower executor tier by the ``degrade`` policy.
FAULT_KEYS = _pool.FAULT_KEYS + ("degraded",)

#: Default transient-failure retry budget per dataset.
DEFAULT_MAX_RETRIES = 2


def _fresh_faults():
    return {key: (0.0 if key == "backoff_s" else 0)
            for key in FAULT_KEYS}


class BatchItem:
    """The result of running one dataset of a batch."""

    __slots__ = ("index", "outputs", "ops", "worker", "seconds")

    def __init__(self, index, outputs, ops, worker, seconds):
        self.index = index
        self.outputs = outputs
        self.ops = ops
        self.worker = worker
        self.seconds = seconds

    def __repr__(self):
        return ("BatchItem(index=%d, ops=%r, worker=%r)"
                % (self.index, self.ops, self.worker))


class BatchResult:
    """All per-dataset results of one :meth:`KernelPool.map` call.

    Items are always in dataset order regardless of completion order.
    ``outputs`` flattens to one snapshot list per dataset;
    ``total_ops`` sums the instrumented op counts (None when the
    kernel was not instrumented); ``stats`` is the pool's cumulative
    per-worker statistics snapshot taken when the batch finished;
    ``overhead`` is this batch's per-stage time breakdown
    (serialize / transport / execute / collect seconds);
    ``faults`` is this batch's fault-tolerance ledger (retries,
    crashes, stalls, transient errors, backoff seconds, datasets
    degraded to a simpler executor); ``failures`` maps dataset index
    -> :class:`~repro.util.errors.BatchExecutionError` for datasets
    the ``skip`` policy gave up on (empty under other policies —
    they raise instead).
    """

    def __init__(self, items, executor, max_workers, wall_seconds,
                 stats=None, overhead=None, faults=None,
                 failures=None):
        self.items = sorted(items, key=lambda item: item.index)
        self.executor = executor
        self.max_workers = max_workers
        self.wall_seconds = wall_seconds
        self.stats = stats or {}
        self.overhead = dict(overhead or {})
        self.faults = dict(faults if faults is not None
                           else _fresh_faults())
        self.failures = dict(failures or {})

    @property
    def outputs(self):
        """Output snapshots, one list of arrays per dataset."""
        return [item.outputs for item in self.items]

    @property
    def total_ops(self):
        """Summed instrumented op count, or None when uninstrumented."""
        if any(item.ops is None for item in self.items):
            return None
        return sum(item.ops for item in self.items)

    @property
    def items_per_second(self):
        """Batch throughput: datasets completed per wall-clock second."""
        if self.wall_seconds <= 0:
            return float("inf") if self.items else 0.0
        return len(self.items) / self.wall_seconds

    def __len__(self):
        return len(self.items)

    def __iter__(self):
        return iter(self.items)

    def __getitem__(self, index):
        return self.items[index]

    def __repr__(self):
        return ("BatchResult(%d items, executor=%r, %.3fs)"
                % (len(self.items), self.executor, self.wall_seconds))


class KernelPool:
    """A reusable executor mapping one kernel over dataset batches.

    Wraps a bound :class:`~repro.compiler.kernel.Kernel` plus an
    executor of the chosen kind; :meth:`map` may be called any number
    of times.  The ``processes`` executor runs on a persistent
    :class:`~repro.exec.pool.WorkerPool`: by default the process-wide
    shared pool (so warm workers and shipped specs survive this
    ``KernelPool``), a private pool when ``max_workers`` differs from
    the shared pool's size, or exactly the pool passed as
    ``worker_pool``.  Use as a context manager or call :meth:`close`
    to release owned resources — the shared default pool and explicit
    ``worker_pool`` arguments are never closed here.

    Per-worker statistics accumulate over the pool's lifetime:
    ``stats()`` reports runs, instrumented op totals, wall seconds,
    spec rebuilds (how many times a process worker had to re-``exec``
    the kernel source), the per-stage overhead breakdown, and — for
    processes — the underlying worker pool's transport counters.
    """

    def __init__(self, kernel, executor="threads", max_workers=None,
                 worker_pool=None, on_failure="raise",
                 max_retries=None, deadline_s=None, backoff_s=None):
        if executor not in EXECUTORS:
            raise ValueError(
                "unknown executor %r (choose from %s)"
                % (executor, ", ".join(EXECUTORS)))
        if on_failure not in ON_FAILURE:
            raise ValueError(
                "unknown on_failure policy %r (choose from %s)"
                % (on_failure, ", ".join(ON_FAILURE)))
        if worker_pool is not None and executor != "processes":
            raise ValueError(
                "worker_pool only applies to the processes executor")
        self._kernel = kernel
        self._artifact = kernel.artifact
        self._output_slots = tuple(kernel.output_slots)
        self.executor = executor
        self._requested_workers = (int(max_workers)
                                   if max_workers else None)
        if executor == "serial":
            self.max_workers = 1
        elif worker_pool is not None:
            self.max_workers = worker_pool.max_workers
        else:
            self.max_workers = int(max_workers or (os.cpu_count() or 1))
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self._pool = None
        self._worker_pool = worker_pool
        self._explicit_pool = worker_pool is not None
        self._owns_worker_pool = False
        self.on_failure = on_failure
        self.max_retries = (DEFAULT_MAX_RETRIES if max_retries is None
                            else int(max_retries))
        self.deadline_s = (None if deadline_s is None
                           else float(deadline_s))
        self.backoff_s = 0.05 if backoff_s is None else float(backoff_s)
        self._spec = None
        self._spec_digest = None
        self._closed = False
        self._lock = threading.Lock()
        self._stats_lock = threading.Lock()
        self._worker_stats = {}
        self._overhead = dict.fromkeys(OVERHEAD_STAGES, 0.0)
        self._faults = _fresh_faults()
        self._thread_ids = threading.local()
        self._thread_counter = 0

    # -- lifecycle -----------------------------------------------------
    def close(self):
        """Release owned executors; the pool cannot map afterwards.

        A private :class:`~repro.exec.pool.WorkerPool` (created when
        ``max_workers`` differed from the shared default's size) is
        closed; the shared default pool and explicitly passed pools
        stay warm for their other users.
        """
        with self._lock:
            self._closed = True
            pool, self._pool = self._pool, None
            worker_pool, owns = self._worker_pool, self._owns_worker_pool
            self._worker_pool = None
            self._owns_worker_pool = False
        if pool is not None:
            pool.shutdown(wait=True)
        if worker_pool is not None and owns:
            worker_pool.close()

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def _ensure_pool(self):
        """The thread executor (threads mode only), created lazily."""
        with self._lock:
            if self._closed:
                raise RuntimeError("KernelPool is closed")
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers)
            return self._pool

    def _ensure_worker_pool(self):
        """The process worker pool: shared default when sizes agree,
        private otherwise, or the explicitly provided one."""
        with self._lock:
            if self._closed:
                raise RuntimeError("KernelPool is closed")
            pool = self._worker_pool
            if pool is not None and not pool.closed:
                return pool
            if self._explicit_pool:
                raise RuntimeError(
                    "the KernelPool's worker_pool is closed")
            shared = _pool.default_pool()
            if (self._requested_workers is None
                    or shared.max_workers == self._requested_workers):
                self._worker_pool = shared
                self._owns_worker_pool = False
                self.max_workers = shared.max_workers
            else:
                self._worker_pool = _pool.WorkerPool(
                    max_workers=self._requested_workers)
                self._owns_worker_pool = True
            return self._worker_pool

    def _ensure_spec(self):
        """The serialized artifact for process workers (memoized).

        Serialized through the bound kernel so the spec's display
        names match this pool's tensors, not whichever binding first
        compiled the cached artifact.
        """
        with self._lock:
            if self._spec is None:
                self._spec = self._kernel.to_spec()
            return self._spec

    def _ensure_spec_digest(self):
        """The ship-once identity of this pool's spec."""
        spec = self._ensure_spec()
        with self._lock:
            if self._spec_digest is None:
                self._spec_digest = hashlib.sha1(
                    repr(_worker._spec_key(spec)).encode()).hexdigest()
            return self._spec_digest

    # -- statistics ----------------------------------------------------
    def _record(self, worker, ops, seconds, spec_rebuild,
                store_hit=False, remote_hit=False):
        with self._stats_lock:
            entry = self._worker_stats.setdefault(
                worker, {"runs": 0, "ops": 0, "seconds": 0.0,
                         "spec_rebuilds": 0, "store_hits": 0,
                         "remote_hits": 0})
            entry["runs"] += 1
            entry["ops"] += ops or 0
            entry["seconds"] += seconds
            entry["spec_rebuilds"] += 1 if spec_rebuild else 0
            entry["store_hits"] += 1 if store_hit else 0
            entry["remote_hits"] += 1 if remote_hit else 0

    def _add_overhead(self, **stages):
        with self._stats_lock:
            for key, value in stages.items():
                self._overhead[key] += value

    def _overhead_snapshot(self):
        with self._stats_lock:
            return dict(self._overhead)

    def _note_fault(self, key, amount=1):
        with self._stats_lock:
            self._faults[key] += amount

    def _merge_faults(self, faults):
        with self._stats_lock:
            for key, value in faults.items():
                self._faults[key] += value

    def _faults_snapshot(self):
        with self._stats_lock:
            return dict(self._faults)

    def stats(self):
        """Cumulative per-worker and aggregate execution statistics.

        The aggregate ``ops`` total is deterministic: for an
        instrumented kernel it equals the sum of every dataset's op
        count, identical no matter which executor ran the batch or how
        the datasets were sharded over workers.  ``overhead`` breaks
        the pool's lifetime wall spend into serialize / transport /
        execute / collect; for the processes executor ``pool`` carries
        the worker pool's transport counters (ship-once, chunks,
        respawns, pickle vs shm bytes).
        """
        with self._stats_lock:
            workers = {name: dict(entry)
                       for name, entry in self._worker_stats.items()}
            overhead = dict(self._overhead)
            faults = dict(self._faults)
        out = {
            "executor": self.executor,
            "max_workers": self.max_workers,
            "runs": sum(e["runs"] for e in workers.values()),
            "ops": sum(e["ops"] for e in workers.values()),
            "spec_rebuilds": sum(e["spec_rebuilds"]
                                 for e in workers.values()),
            "store_hits": sum(e.get("store_hits", 0)
                              for e in workers.values()),
            "remote_hits": sum(e.get("remote_hits", 0)
                               for e in workers.values()),
            "workers": workers,
            "overhead": overhead,
            "faults": faults,
        }
        if self.executor == "processes" and self._worker_pool is not None:
            out["pool"] = self._worker_pool.stats()
        return out

    def _thread_worker_id(self):
        wid = getattr(self._thread_ids, "worker_id", None)
        if wid is None:
            with self._stats_lock:
                wid = "thread-%d" % self._thread_counter
                self._thread_counter += 1
            self._thread_ids.worker_id = wid
        return wid

    # -- dataset resolution --------------------------------------------
    def _resolve(self, datasets):
        """Slot-ordered, signature-checked tensor lists, one per
        dataset; rejects bad datasets before any work is dispatched."""
        template = self._kernel.tensors
        resolved = []
        for index, dataset in enumerate(datasets):
            try:
                if isinstance(dataset, dict):
                    tensors = resolve_name_overrides(template, dataset)
                else:
                    tensors = list(dataset)
                self._artifact.validate(tensors)
            except BindingError as exc:
                raise BindingError("dataset %d: %s" % (index, exc))
            resolved.append(tensors)
        self._check_output_isolation(resolved)
        return resolved

    def _check_output_isolation(self, resolved):
        """No dataset may touch a buffer another dataset writes.

        Two datasets sharing an *output* buffer would overwrite each
        other, and a dataset *reading* a buffer another dataset writes
        races under the parallel executors — either way the batch
        stops being order-independent, so both are rejected.  Sharing
        read-only inputs between datasets stays allowed.
        """
        if len(resolved) < 2:
            return

        def buffer_ids(tensor):
            buffers = tensor_binding_buffers(tensor)
            return ([id(buf) for buf in buffers.values()]
                    or [id(tensor)])

        writers = {}  # id(buffer) -> dataset index that writes it
        for index, tensors in enumerate(resolved):
            for slot in self._output_slots:
                for buf_id in buffer_ids(tensors[slot]):
                    other = writers.setdefault(buf_id, index)
                    if other != index:
                        raise BindingError(
                            "datasets %d and %d share an output "
                            "buffer (slot %d, tensor %r); give every "
                            "dataset its own output tensor"
                            % (other, index, slot,
                               getattr(tensors[slot], "name", "?")))
        output_slots = set(self._output_slots)
        for index, tensors in enumerate(resolved):
            for slot, tensor in enumerate(tensors):
                if slot in output_slots:
                    continue
                for buf_id in buffer_ids(tensor):
                    writer = writers.get(buf_id)
                    if writer is not None and writer != index:
                        raise BindingError(
                            "dataset %d reads a buffer (slot %d, "
                            "tensor %r) that dataset %d writes; the "
                            "batch would not be order-independent"
                            % (index, slot,
                               getattr(tensor, "name", "?"), writer))

    # -- execution -----------------------------------------------------
    def _dataset_names(self, tensors):
        return tuple(getattr(t, "name", "?") for t in tensors)

    def _wrap_failure(self, index, exc, tensors=None):
        """The enriched batch error for one failing dataset: index,
        tensor names, kernel name, and structural-key digest."""
        error = BatchExecutionError(
            index, exc,
            dataset_names=(self._dataset_names(tensors)
                           if tensors is not None else None),
            kernel_name=self._artifact.name,
            structural_key=self._artifact.structural_key)
        # Wrapped failures may be collected (skip policy) instead of
        # raised in an ``except`` block, so chain the cause explicitly.
        error.__cause__ = exc
        return error

    def _run_local(self, index, tensors, worker_id):
        """One dataset, in-process, with the transient retry policy.

        An in-process :class:`TransientError` (store IO flake, shm
        attach race from an arena-resident input) is retried with
        exponential backoff up to ``max_retries``; anything else is a
        deterministic kernel exception and raises immediately.
        """
        attempt = 0
        while True:
            try:
                return self._run_local_once(index, tensors, worker_id)
            except BatchExecutionError as exc:
                if (not is_transient(exc.cause)
                        or attempt >= self.max_retries):
                    raise
                attempt += 1
                self._note_fault("transient_errors")
                self._note_fault("retries")
                delay = min(1.0, self.backoff_s * 2 ** (attempt - 1))
                # The pool's module-private jitter RNG, never the
                # global ``random`` stream (seed-reproducibility of
                # interleaved fuzz/chaos campaigns).
                delay *= 1.0 + _pool._JITTER_RNG.random()  # jitter
                self._note_fault("backoff_s", delay)
                time.sleep(delay)

    def _run_local_once(self, index, tensors, worker_id):
        start = time.perf_counter()
        try:
            args = self._artifact.bind(tensors)
            bound = time.perf_counter()
            result = self._artifact.fn(*args)
            ran = time.perf_counter()
            outputs = [_worker.snapshot_tensor(tensors[slot])
                       for slot in self._output_slots]
        except Exception as exc:
            raise self._wrap_failure(index, exc, tensors) from exc
        # Normalize numpy counter values so op totals stay plain ints.
        ops = int(result) if self._artifact.instrument else None
        done = time.perf_counter()
        self._record(worker_id, ops, done - start, spec_rebuild=False)
        self._add_overhead(serialize_s=bound - start,
                           execute_s=ran - bound,
                           collect_s=done - ran)
        return BatchItem(index, outputs, ops, worker_id, done - start)

    def _run_threaded(self, index, tensors):
        return self._run_local(index, tensors,
                               self._thread_worker_id())

    def map(self, datasets):
        """Run every dataset; returns a :class:`BatchResult`.

        Datasets run concurrently under the pool's executor and
        results come back in dataset order.  What a failing dataset
        does depends on the ``on_failure`` policy: ``raise`` (default)
        raises the first failure (in index order) as a
        :class:`~repro.util.errors.BatchExecutionError` carrying its
        index; ``degrade`` re-runs failed datasets on progressively
        simpler executors before raising only genuinely poison ones;
        ``skip`` completes the batch and reports failed datasets in
        :attr:`BatchResult.failures`.
        """
        resolved = self._resolve(list(datasets))
        start = time.perf_counter()
        before = self._overhead_snapshot()
        faults_before = self._faults_snapshot()
        if not resolved:
            return BatchResult([], self.executor, self.max_workers,
                               0.0, stats=self.stats(),
                               overhead=dict.fromkeys(OVERHEAD_STAGES,
                                                      0.0))
        if self.executor == "serial":
            items, failures = self._map_serial(resolved)
        elif self.executor == "threads":
            items, failures = self._map_threads(resolved)
        else:
            items, failures = self._map_processes(resolved)
        if failures and self.on_failure == "degrade":
            recovered, failures = self._degrade(resolved, failures)
            items.extend(recovered)
        if failures and self.on_failure != "skip":
            raise failures[min(failures)]
        wall = time.perf_counter() - start
        after = self._overhead_snapshot()
        overhead = {key: after[key] - before[key]
                    for key in OVERHEAD_STAGES}
        faults_after = self._faults_snapshot()
        faults = {key: faults_after[key] - faults_before[key]
                  for key in FAULT_KEYS}
        return BatchResult(items, self.executor, self.max_workers,
                           wall, stats=self.stats(), overhead=overhead,
                           faults=faults, failures=failures)

    def _map_serial(self, resolved):
        items, failures = [], {}
        for index, tensors in enumerate(resolved):
            try:
                items.append(self._run_local(index, tensors,
                                             "serial-0"))
            except BatchExecutionError as exc:
                failures[index] = exc
                if self.on_failure == "raise":
                    break
        return items, failures

    def _map_threads(self, resolved):
        pool = self._ensure_pool()
        futures = [pool.submit(self._run_threaded, index, tensors)
                   for index, tensors in enumerate(resolved)]
        items, failures = [], {}
        for index, future in enumerate(futures):
            try:
                items.append(future.result())
            except BatchExecutionError as exc:
                failures[index] = exc
        return items, failures

    def _degrade_stages(self):
        """The fallback ladder below this pool's executor."""
        if self.executor == "processes":
            return ("threads", "serial")
        if self.executor == "threads":
            return ("serial",)
        return ()

    def _degrade(self, resolved, failures):
        """The ``degrade`` policy: re-run failed datasets on each
        simpler executor tier in turn (processes -> threads ->
        serial).  Environment failures recover on the way down; a
        dataset that still fails serially is genuinely poison and
        stays failed.  Returns ``(recovered_items, still_failed)``.
        """
        recovered = []
        still = dict(failures)
        for stage in self._degrade_stages():
            if not still:
                break
            indices = sorted(still)
            self._note_fault("degraded", len(indices))
            if stage == "threads":
                workers = min(len(indices), self.max_workers)
                with ThreadPoolExecutor(max_workers=workers) as pool:
                    futures = {
                        index: pool.submit(self._run_local, index,
                                           resolved[index],
                                           "degrade-threads")
                        for index in indices}
                    for index, future in futures.items():
                        try:
                            recovered.append(future.result())
                            del still[index]
                        except BatchExecutionError as exc:
                            still[index] = exc
            else:
                for index in indices:
                    try:
                        recovered.append(self._run_local(
                            index, resolved[index], "degrade-serial"))
                        del still[index]
                    except BatchExecutionError as exc:
                        still[index] = exc
        return recovered, still

    def _output_buffer_ids(self, tensors):
        """Identity set of this dataset's output buffers (arrays and
        builders) — what the transport must carry back."""
        output_ids = set()
        for slot in self._output_slots:
            buffers = tensor_binding_buffers(tensors[slot])
            for buf in buffers.values():
                output_ids.add(id(buf))
            if not buffers:
                output_ids.add(id(tensors[slot]))
        return output_ids

    def _map_processes(self, resolved):
        """Dispatch one batch over the warm worker pool.

        Serialize: bind every dataset parent-side and describe its
        arguments as shm descriptors (staging anything not
        arena-resident).  Transport: seal the staging segment (one
        copy in), and after the run copy staged output regions back.
        Execute: the pool's chunked dispatch, under this pool's
        deadline/retry settings.  Collect: restore builder outputs,
        snapshot, and assemble items.  Returns ``(items, failures)``
        — policy handling (raise/degrade/skip) is :meth:`map`'s job.
        The staging segment is unlinked on every path.
        """
        spec = self._ensure_spec()
        digest = self._ensure_spec_digest()
        pool = self._ensure_worker_pool()
        t0 = time.perf_counter()
        staging = _shm.ShmStaging()
        tasks = []
        resident_seen = set()
        resident_bytes = 0
        try:
            for index, tensors in enumerate(resolved):
                try:
                    args = self._artifact.bind(tensors)
                except Exception as exc:
                    raise self._wrap_failure(index, exc,
                                             tensors) from exc
                payload = _shm.describe_args(
                    args, staging, index,
                    self._output_buffer_ids(tensors))
                payload["index"] = index
                tasks.append(payload)
                for arg in args:
                    if (isinstance(arg, np.ndarray)
                            and id(arg) not in resident_seen
                            and _shm.resident_descriptor(arg)
                            is not None):
                        resident_seen.add(id(arg))
                        resident_bytes += arg.nbytes
            t1 = time.perf_counter()
            staging_name = staging.seal()
            t2 = time.perf_counter()
            pool.add_shm_bytes(staging.nbytes() + resident_bytes)
            results, pool_failures, faults = pool.run(
                spec, digest, tasks, staging_name,
                deadline_s=self.deadline_s,
                max_retries=self.max_retries,
                fail_fast=(self.on_failure == "raise"))
            self._merge_faults(faults)
            t3 = time.perf_counter()
            staging.writeback({item["index"] for item in results})
            t4 = time.perf_counter()
            by_index = {item["index"]: item for item in results}
            failures = {
                index: self._wrap_failure(index, exc, resolved[index])
                for index, exc in pool_failures}
            items = []
            for index, tensors in enumerate(resolved):
                entry = by_index.get(index)
                if entry is None:
                    # Failed permanently, or never dispatched because
                    # fail_fast stopped the batch after its first
                    # failure.  Neither a result nor any failure is a
                    # pool protocol violation.
                    if not failures:  # pragma: no cover
                        failures[index] = self._wrap_failure(
                            index,
                            RuntimeError("no result for dataset"),
                            tensors)
                    continue
                for position, state in entry["obj_updates"].items():
                    tasks[index]["objs"][position].__dict__.update(
                        state)
                outputs = [_worker.snapshot_tensor(tensors[slot])
                           for slot in self._output_slots]
                self._record(entry["worker"], entry["ops"],
                             entry["seconds"], entry["spec_rebuild"],
                             entry.get("store_hit", False),
                             entry.get("remote_hit", False))
                items.append(BatchItem(index, outputs, entry["ops"],
                                       entry["worker"],
                                       entry["seconds"]))
            t5 = time.perf_counter()
        finally:
            staging.close()
        self._add_overhead(
            serialize_s=t1 - t0,
            transport_s=(t2 - t1) + (t4 - t3),
            execute_s=sum(item["seconds"] for item in results),
            collect_s=t5 - t4)
        return items, failures


def run_batch(program, datasets, executor="serial", max_workers=None,
              instrument=False, opt_level=None, cache=None,
              on_failure="raise", max_retries=None, deadline_s=None,
              backend=None, options=None):
    """Compile ``program`` once and map it over ``datasets``.

    ``datasets`` is a sequence where each element is either a name ->
    tensor mapping (replacing the program's tensors by name, exactly
    like :meth:`~repro.compiler.kernel.Kernel.rebind`) or a full
    slot-ordered tensor sequence.  ``executor`` picks the concurrency
    model (``"serial"``, ``"threads"``, or ``"processes"``; see the
    module docstring for guidance) and ``max_workers`` bounds the pool
    (default: the machine's CPU count — for processes, the shared warm
    :func:`~repro.exec.pool.default_pool`, which stays hot between
    calls).

    ``backend`` selects kernel execution: ``"python"`` or ``"c"``
    (``None`` reads ``fl.configure(backend=...)`` then
    ``FL_KERNEL_BACKEND``; see
    :func:`~repro.compiler.kernel.compile_kernel`), and ``options``
    takes a whole :class:`~repro.compiler.options.CompileOptions`
    bundle — the individual kwargs are sugar over it.  C kernels release
    the GIL during each call, so the ``threads`` executor actually
    scales with them; process-pool workers rebuild C kernels from the
    shipped spec (recompiling, or warm-starting the shared object off
    the configured disk store).

    Fault tolerance: ``on_failure`` picks the policy for failing
    datasets (:data:`ON_FAILURE` — raise / degrade / skip),
    ``max_retries`` bounds transient-failure retries per dataset
    (default :data:`DEFAULT_MAX_RETRIES`), and ``deadline_s`` pins the
    processes executor's watchdog deadline (default: derived from the
    measured chunk cost).

    Returns a :class:`BatchResult` whose per-dataset output snapshots
    and instrumented op counts are identical across executors.  For a
    standing service that maps many batches through one kernel, build
    a :class:`KernelPool` directly and reuse it.
    """
    kernel = compile_kernel(program, instrument=instrument,
                            cache=cache, opt_level=opt_level,
                            backend=backend, options=options)
    with KernelPool(kernel, executor=executor,
                    max_workers=max_workers, on_failure=on_failure,
                    max_retries=max_retries,
                    deadline_s=deadline_s) as pool:
        return pool.map(datasets)
