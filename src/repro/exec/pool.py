"""The persistent warm worker pool under the ``processes`` executor.

The old engine paid the full process tax on every call: a fresh
``ProcessPoolExecutor`` per :class:`~repro.exec.batch.KernelPool`, one
pickled task per dataset, tensors serialized both ways.  For kernels
whose whole point is being cheap per dataset (the paper's
compile-once/coiterate-fast model), that overhead *was* the runtime —
the committed fig1 baseline ran processes at 0.034 scaling efficiency.

:class:`WorkerPool` keeps a fleet of long-lived workers warm across
batches, kernels, and :class:`~repro.exec.batch.KernelPool`
lifetimes:

ship-once kernels
    each worker receives a kernel's spec exactly once per pool
    lifetime (chunks carry a digest; the spec rides along only on a
    worker's first chunk of that kernel), and the worker warm-starts
    from the on-disk :class:`~repro.store.disk.KernelStore` before
    re-``exec``-ing the shipped source.

shared-memory transport
    dataset payloads cross as :mod:`repro.exec.shm` descriptors, not
    pickled tensors; the parent meters both sides (``pickle_bytes``
    vs ``shm_bytes``) so tests can assert tensor data stays out of
    the pipe.

chunked scheduling
    many datasets ride one IPC round-trip.  The chunk size adapts to
    the measured per-item cost (an EMA of worker-reported kernel
    seconds) targeting ``chunk_target_s`` of work per message, capped
    so every worker gets something to do.

self-healing
    each worker publishes the dataset index it is executing in a
    shared progress array; when a worker dies hard the pool reads the
    array to attribute the crash to the right dataset (surfaced as a
    :class:`~repro.util.errors.WorkerCrashError`, wrapped in
    ``BatchExecutionError`` by the batch layer) and respawns the
    worker immediately, so the next ``run_batch`` call sees a full
    fleet.

A module-level default pool (:func:`default_pool`, tuned via
:func:`configure_pool`) is shared by every ``KernelPool`` that does
not bring its own, which is what makes the warm state actually
accumulate across calls.  The default pool is closed at interpreter
exit; explicit pools are context managers.
"""

import atexit
import multiprocessing as mp
import os
import pickle
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection

import numpy as np

from repro.exec import shm as _shm
from repro.exec import worker as _worker
from repro.util.errors import WorkerCrashError

#: Start methods accepted by :class:`WorkerPool` (a subset of the
#: platform's ``multiprocessing.get_all_start_methods()``).
START_METHODS = ("fork", "spawn", "forkserver")

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL


def default_start_method():
    """``fork`` where available (cheap, inherits the warm interpreter),
    else the platform default."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn", "shipped")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        #: spec digests this worker has already received (ship-once).
        self.shipped = set()


class WorkerPool:
    """A fleet of persistent worker processes (see module docstring).

    One batch runs at a time per pool (calls serialize); the pool is
    safe to share between threads and across any number of
    ``KernelPool``/``run_batch`` calls.  Use as a context manager or
    call :meth:`close`; closing is idempotent.
    """

    def __init__(self, max_workers=None, start_method=None,
                 chunk_target_s=0.01):
        self.max_workers = int(max_workers or (os.cpu_count() or 1))
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        method = start_method or default_start_method()
        if method not in mp.get_all_start_methods():
            raise ValueError(
                "start method %r not available on this platform "
                "(choose from %s)"
                % (method, ", ".join(mp.get_all_start_methods())))
        self.start_method = method
        self.chunk_target_s = float(chunk_target_s)
        self._ctx = mp.get_context(method)
        self._lock = threading.RLock()
        self._workers = [None] * self.max_workers
        self._progress = None
        self._progress_view = None
        self._closed = False
        self._per_item_s = None  # EMA of measured per-item seconds
        self._last_chunk_size = None
        self._counters = {
            "batches": 0, "chunks": 0, "respawns": 0,
            "specs_shipped": 0, "workers_spawned": 0,
            "pickle_bytes": 0, "shm_bytes": 0,
        }

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self):
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def close(self):
        """Shut every worker down and unlink the progress segment.

        Idempotent; safe to call while workers are idle.  Workers get
        a shutdown message and a short grace period before being
        terminated.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
            progress, self._progress = self._progress, None
            self._progress_view = None
        for worker in workers:
            if worker is None:
                continue
            try:
                worker.conn.send_bytes(
                    pickle.dumps({"op": "shutdown"}, _PICKLE_PROTO))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            if worker is None:
                continue
            worker.process.join(timeout=2)
            if worker.process.is_alive():  # pragma: no cover - slow exit
                worker.process.terminate()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        if progress is not None:
            progress.close()

    def _ensure_progress(self):
        if self._progress is None:
            self._progress = _shm.ShmSegment.create(8 * self.max_workers)
            self._progress_view = self._progress.view(
                0, np.int64, (self.max_workers,))
            self._progress_view[:] = -1

    def _spawn(self, slot):
        self._ensure_progress()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker.worker_main,
            args=(child_conn, self._progress.name, slot,
                  self.max_workers),
            daemon=True, name="fl-exec-%d" % slot)
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers[slot] = worker
        self._counters["workers_spawned"] += 1
        return worker

    def _respawn(self, slot):
        """Replace a dead worker so the fleet stays at strength."""
        worker = self._workers[slot]
        if worker is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            if worker.process.is_alive():  # pragma: no cover
                worker.process.terminate()
            worker.process.join(timeout=5)
        self._workers[slot] = None
        if self._progress_view is not None:
            self._progress_view[slot] = -1
        self._counters["respawns"] += 1
        return self._spawn(slot)

    # -- scheduling ----------------------------------------------------
    def _pick_chunk_size(self, n):
        """Datasets per IPC round-trip: about ``chunk_target_s`` of
        measured work, clamped so every worker gets a share; before
        any measurement, four chunks per worker."""
        per_worker = max(1, -(-n // self.max_workers))
        if self._per_item_s is None or self._per_item_s <= 0:
            size = max(1, -(-n // (self.max_workers * 4)))
        else:
            size = int(self.chunk_target_s / self._per_item_s) or 1
        size = max(1, min(per_worker, size))
        self._last_chunk_size = size
        return size

    def _send_chunk(self, worker, spec, digest, chunk, staging_name):
        message = {"digest": digest, "staging": staging_name,
                   "datasets": chunk}
        shipped_spec = digest not in worker.shipped
        if shipped_spec:
            message["spec"] = spec
            worker.shipped.add(digest)
        data = pickle.dumps(message, _PICKLE_PROTO)
        self._counters["pickle_bytes"] += len(data)
        self._counters["chunks"] += 1
        if shipped_spec:
            self._counters["specs_shipped"] += 1
        worker.conn.send_bytes(data)

    def run(self, spec, digest, tasks, staging_name=None):
        """Map ``tasks`` (transport payloads, each carrying its
        dataset ``index``) over the warm workers under one kernel.

        Returns ``(results, failures)``: worker result dicts in
        completion order, and ``(index, exception)`` pairs for
        datasets that failed (in-kernel exceptions and worker
        crashes).  Dispatch stops after the first failure; staged
        write-back and error wrapping are the caller's job.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            return self._run_locked(spec, digest, list(tasks),
                                    staging_name)

    def _run_locked(self, spec, digest, tasks, staging_name):
        if not tasks:
            return [], []
        self._counters["batches"] += 1
        chunk_size = self._pick_chunk_size(len(tasks))
        chunks = deque(tasks[i:i + chunk_size]
                       for i in range(0, len(tasks), chunk_size))
        busy = {}  # slot -> chunk in flight
        results = []
        failures = []
        stop = False
        exec_seconds = 0.0
        executed = 0
        while chunks or busy:
            if not stop:
                for slot in range(self.max_workers):
                    if not chunks:
                        break
                    if slot in busy:
                        continue
                    worker = self._workers[slot] or self._spawn(slot)
                    chunk = chunks.popleft()
                    try:
                        self._send_chunk(worker, spec, digest, chunk,
                                         staging_name)
                    except (BrokenPipeError, OSError):
                        # Worker died between batches; put the chunk
                        # back and retry on the respawned process.
                        chunks.appendleft(chunk)
                        self._respawn(slot)
                        continue
                    busy[slot] = chunk
            if not busy:
                break
            conn_of = {self._workers[slot].conn: slot for slot in busy}
            dead_of = {self._workers[slot].process.sentinel: slot
                       for slot in busy}
            ready = mp_connection.wait(list(conn_of) + list(dead_of))
            handled = set()
            for obj in ready:
                slot = conn_of.get(obj, dead_of.get(obj))
                if slot is None or slot in handled:
                    continue
                handled.add(slot)
                worker = self._workers[slot]
                chunk = busy.pop(slot)
                reply = None
                try:
                    if worker.conn.poll():
                        reply = pickle.loads(worker.conn.recv_bytes())
                except (EOFError, OSError):
                    reply = None
                if reply is None:
                    # Hard crash mid-chunk: the progress array says
                    # which dataset was in flight.
                    crashed = int(self._progress_view[slot])
                    if crashed < 0:
                        crashed = chunk[0]["index"]
                    worker.process.join(timeout=1)
                    failures.append((crashed, WorkerCrashError(
                        "pid-%d" % worker.process.pid,
                        worker.process.exitcode, crashed)))
                    self._respawn(slot)
                    stop = True
                    continue
                results.extend(reply["results"])
                for item in reply["results"]:
                    exec_seconds += item["seconds"]
                    executed += 1
                error = reply.get("error")
                if error is not None:
                    try:
                        exc = pickle.loads(error["exc"])
                    except Exception:  # pragma: no cover
                        exc = RuntimeError("worker error")
                    failures.append((error["index"], exc))
                    stop = True
            if stop:
                chunks.clear()
        if executed:
            per_item = exec_seconds / executed
            self._per_item_s = (per_item if self._per_item_s is None
                                else 0.5 * self._per_item_s
                                + 0.5 * per_item)
        return results, failures

    def add_shm_bytes(self, nbytes):
        """Credit transported shared-memory payload bytes (metered by
        the batch layer, which owns staging and residency)."""
        self._counters["shm_bytes"] += int(nbytes)

    def stats(self):
        """Lifetime pool statistics: fleet shape, ship-once and
        chunking counters, transport byte meters, and liveness."""
        with self._lock:
            out = dict(self._counters)
            out["max_workers"] = self.max_workers
            out["start_method"] = self.start_method
            out["chunk_size"] = self._last_chunk_size
            out["per_item_s"] = self._per_item_s
            out["alive"] = sum(
                1 for worker in self._workers
                if worker is not None and worker.process.is_alive())
        return out


# -- the module-level default pool ----------------------------------------

_default_pool = None
_default_lock = threading.Lock()


def default_pool():
    """The process-wide warm pool, created on first use and shared by
    every ``KernelPool`` that does not bring its own."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.closed:
            _default_pool = WorkerPool()
        return _default_pool


def configure_pool(max_workers=None, start_method=None,
                   chunk_target_s=None):
    """Replace the default pool with one of the given shape.

    Closes the current default (its warm state is dropped) and returns
    the new pool.  ``chunk_target_s`` tunes how much measured work one
    IPC round-trip should carry.
    """
    global _default_pool
    with _default_lock:
        if _default_pool is not None and not _default_pool.closed:
            _default_pool.close()
        kwargs = {}
        if chunk_target_s is not None:
            kwargs["chunk_target_s"] = chunk_target_s
        _default_pool = WorkerPool(max_workers=max_workers,
                                   start_method=start_method, **kwargs)
        return _default_pool


def _close_default_pool():  # pragma: no cover - interpreter exit
    global _default_pool
    with _default_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None and not pool.closed:
        pool.close()


atexit.register(_close_default_pool)
