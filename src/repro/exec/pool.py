"""The persistent warm worker pool under the ``processes`` executor.

The old engine paid the full process tax on every call: a fresh
``ProcessPoolExecutor`` per :class:`~repro.exec.batch.KernelPool`, one
pickled task per dataset, tensors serialized both ways.  For kernels
whose whole point is being cheap per dataset (the paper's
compile-once/coiterate-fast model), that overhead *was* the runtime —
the committed fig1 baseline ran processes at 0.034 scaling efficiency.

:class:`WorkerPool` keeps a fleet of long-lived workers warm across
batches, kernels, and :class:`~repro.exec.batch.KernelPool`
lifetimes:

ship-once kernels
    each worker receives a kernel's spec exactly once per pool
    lifetime (chunks carry a digest; the spec rides along only on a
    worker's first chunk of that kernel), and the worker warm-starts
    from the on-disk :class:`~repro.store.disk.KernelStore` before
    re-``exec``-ing the shipped source.

shared-memory transport
    dataset payloads cross as :mod:`repro.exec.shm` descriptors, not
    pickled tensors; the parent meters both sides (``pickle_bytes``
    vs ``shm_bytes``) so tests can assert tensor data stays out of
    the pipe.

chunked scheduling
    many datasets ride one IPC round-trip.  The chunk size adapts to
    the measured per-item cost (an EMA of worker-reported kernel
    seconds) targeting ``chunk_target_s`` of work per message, capped
    so every worker gets something to do.

self-healing
    each worker publishes the dataset index it is executing *and a
    heartbeat timestamp* in a shared progress array; when a worker
    dies hard the pool reads the array to attribute the crash to the
    right dataset (surfaced as a
    :class:`~repro.util.errors.WorkerCrashError`, wrapped in
    ``BatchExecutionError`` by the batch layer) and respawns the
    worker immediately, so the next ``run_batch`` call sees a full
    fleet.

watchdog deadlines
    a worker whose heartbeat stops advancing past the effective
    per-chunk deadline is presumed wedged (deadlock, hung native
    call): the dispatcher kills it, attributes the stall to the
    in-flight dataset (:class:`~repro.util.errors.WorkerStallError`),
    and respawns the slot exactly like a crash.  The deadline is
    explicit (``deadline_s`` on the pool, :func:`configure_pool`, or
    per ``run`` call) or derived from the chunk-cost EMA
    (``max(5s, 50x measured per-item seconds)``); before any
    measurement and with no explicit deadline the watchdog stays off,
    so a cold first chunk can never be killed by a guess.

retry with backoff
    transient failures — crashes, stalls, and worker-raised
    :class:`~repro.util.errors.TransientError`\\ s such as shm attach
    races — are retried on a healthy worker with exponential backoff
    plus jitter, up to ``max_retries`` per dataset.  Deterministic
    kernel exceptions are never retried.  Datasets that merely shared
    a chunk with the suspect are requeued without penalty.

A module-level default pool (:func:`default_pool`, tuned via
:func:`configure_pool`) is shared by every ``KernelPool`` that does
not bring its own, which is what makes the warm state actually
accumulate across calls.  The default pool is closed at interpreter
exit; explicit pools are context managers.
"""

import atexit
import multiprocessing as mp
import os
import pickle
import random
import threading
import time
from collections import deque
from multiprocessing import connection as mp_connection

import numpy as np

from repro import chaos as _chaos
from repro.exec import shm as _shm
from repro.exec import worker as _worker
from repro.util.errors import (WorkerCrashError, WorkerStallError,
                               is_transient)

#: Fault keys reported per ``run`` call and aggregated in ``stats()``.
FAULT_KEYS = ("retries", "crashes", "stalls", "transient_errors",
              "backoff_s")


def _fresh_faults():
    return {key: (0.0 if key == "backoff_s" else 0)
            for key in FAULT_KEYS}

#: Start methods accepted by :class:`WorkerPool` (a subset of the
#: platform's ``multiprocessing.get_all_start_methods()``).
START_METHODS = ("fork", "spawn", "forkserver")

_PICKLE_PROTO = pickle.HIGHEST_PROTOCOL

#: Module-private RNG for retry-backoff jitter, seeded from OS entropy.
#: Never the global ``random`` module: a retry must not perturb the
#: module-level stream (seeded fuzz/chaos campaigns interleave with
#: batch retries and stay reproducible), and a seeded campaign must not
#: make fleet-wide jitter deterministic — which would defeat its
#: thundering-herd purpose.
_JITTER_RNG = random.Random()


def default_start_method():
    """``fork`` where available (cheap, inherits the warm interpreter),
    else the platform default."""
    methods = mp.get_all_start_methods()
    return "fork" if "fork" in methods else methods[0]


class _Worker:
    """Parent-side handle on one worker process."""

    __slots__ = ("process", "conn", "shipped")

    def __init__(self, process, conn):
        self.process = process
        self.conn = conn
        #: spec digests this worker has already received (ship-once).
        self.shipped = set()


class WorkerPool:
    """A fleet of persistent worker processes (see module docstring).

    One batch runs at a time per pool (calls serialize); the pool is
    safe to share between threads and across any number of
    ``KernelPool``/``run_batch`` calls.  Use as a context manager or
    call :meth:`close`; closing is idempotent.
    """

    def __init__(self, max_workers=None, start_method=None,
                 chunk_target_s=0.01, deadline_s=None, max_retries=2,
                 backoff_s=0.05):
        self.max_workers = int(max_workers or (os.cpu_count() or 1))
        if self.max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        method = start_method or default_start_method()
        if method not in mp.get_all_start_methods():
            raise ValueError(
                "start method %r not available on this platform "
                "(choose from %s)"
                % (method, ", ".join(mp.get_all_start_methods())))
        self.start_method = method
        self.chunk_target_s = float(chunk_target_s)
        #: Explicit watchdog deadline in seconds; None derives one
        #: from the chunk-cost EMA once measurements exist.
        self.deadline_s = None if deadline_s is None else float(deadline_s)
        self.max_retries = int(max_retries)
        self.backoff_s = float(backoff_s)
        self._ctx = mp.get_context(method)
        self._lock = threading.RLock()
        self._workers = [None] * self.max_workers
        self._progress = None
        self._progress_view = None
        self._closed = False
        self._per_item_s = None  # EMA of measured per-item seconds
        self._last_chunk_size = None
        self._counters = {
            "batches": 0, "chunks": 0, "respawns": 0,
            "specs_shipped": 0, "workers_spawned": 0,
            "pickle_bytes": 0, "shm_bytes": 0,
            "retries": 0, "crashes": 0, "stalls": 0,
        }

    # -- lifecycle -----------------------------------------------------
    @property
    def closed(self):
        return self._closed

    def __enter__(self):
        return self

    def __exit__(self, *exc_info):
        self.close()
        return False

    def close(self):
        """Shut every worker down and unlink the progress segment.

        Idempotent; safe to call while workers are idle.  Workers get
        a shutdown message and a short grace period before being
        terminated.
        """
        with self._lock:
            if self._closed:
                return
            self._closed = True
            workers, self._workers = self._workers, []
            progress, self._progress = self._progress, None
            self._progress_view = None
        for worker in workers:
            if worker is None:
                continue
            try:
                worker.conn.send_bytes(
                    pickle.dumps({"op": "shutdown"}, _PICKLE_PROTO))
            except (BrokenPipeError, OSError):
                pass
        for worker in workers:
            if worker is None:
                continue
            worker.process.join(timeout=2)
            if worker.process.is_alive():  # pragma: no cover - slow exit
                worker.process.terminate()
                worker.process.join(timeout=2)
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
        if progress is not None:
            progress.close()

    def _ensure_progress(self):
        # Two int64 columns per slot: the in-flight dataset index
        # (crash/stall attribution) and a heartbeat timestamp in
        # monotonic microseconds (watchdog liveness).  Monotonic on
        # both sides: CLOCK_MONOTONIC is system-wide on Linux, so the
        # workers' stamps compare directly against the dispatcher's
        # time.monotonic() and wall-clock steps (NTP, slew) can never
        # skew the deadline math.
        if self._progress is None:
            self._progress = _shm.ShmSegment.create(
                16 * self.max_workers)
            self._progress_view = self._progress.view(
                0, np.int64, (self.max_workers, 2))
            self._progress_view[:, 0] = -1
            self._progress_view[:, 1] = 0

    def _spawn(self, slot):
        self._ensure_progress()
        parent_conn, child_conn = self._ctx.Pipe(duplex=True)
        process = self._ctx.Process(
            target=_worker.worker_main,
            args=(child_conn, self._progress.name, slot,
                  self.max_workers),
            daemon=True, name="fl-exec-%d" % slot)
        process.start()
        child_conn.close()
        worker = _Worker(process, parent_conn)
        self._workers[slot] = worker
        self._counters["workers_spawned"] += 1
        return worker

    def _respawn(self, slot):
        """Replace a dead worker so the fleet stays at strength."""
        worker = self._workers[slot]
        if worker is not None:
            try:
                worker.conn.close()
            except OSError:  # pragma: no cover
                pass
            if worker.process.is_alive():  # pragma: no cover
                worker.process.terminate()
            worker.process.join(timeout=5)
        self._workers[slot] = None
        if self._progress_view is not None:
            self._progress_view[slot] = -1
        self._counters["respawns"] += 1
        return self._spawn(slot)

    def _discard(self, slot):
        """Interrupt hygiene: drop a slot's worker hard, right now.

        Used when the dispatch loop is unwinding on ``KeyboardInterrupt``
        or an unexpected error with chunks still in flight — the worker
        may be mid-kernel and cannot be drained, so it is killed and the
        slot left empty for a lazy respawn on the next ``run``.
        """
        worker = self._workers[slot]
        if worker is None:
            return
        self._workers[slot] = None
        try:
            worker.conn.close()
        except OSError:  # pragma: no cover
            pass
        if worker.process.is_alive():
            worker.process.kill()
        worker.process.join(timeout=5)
        if self._progress_view is not None:
            self._progress_view[slot] = -1

    # -- scheduling ----------------------------------------------------
    def _pick_chunk_size(self, n):
        """Datasets per IPC round-trip: about ``chunk_target_s`` of
        measured work, clamped so every worker gets a share; before
        any measurement, four chunks per worker."""
        per_worker = max(1, -(-n // self.max_workers))
        if self._per_item_s is None or self._per_item_s <= 0:
            size = max(1, -(-n // (self.max_workers * 4)))
        else:
            size = int(self.chunk_target_s / self._per_item_s) or 1
        size = max(1, min(per_worker, size))
        self._last_chunk_size = size
        return size

    def _send_chunk(self, worker, spec, digest, chunk, staging_name):
        message = {"digest": digest, "staging": staging_name,
                   "datasets": chunk,
                   # The parent's chaos configuration rides along so
                   # arming/disarming a plan reaches long-lived
                   # workers regardless of what their environment
                   # captured at spawn time.
                   "chaos": _chaos.current_env()}
        shipped_spec = digest not in worker.shipped
        if shipped_spec:
            message["spec"] = spec
            worker.shipped.add(digest)
        data = pickle.dumps(message, _PICKLE_PROTO)
        self._counters["pickle_bytes"] += len(data)
        self._counters["chunks"] += 1
        if shipped_spec:
            self._counters["specs_shipped"] += 1
        worker.conn.send_bytes(data)

    def _effective_deadline(self, deadline_s):
        """The watchdog deadline for one ``run`` call, in seconds.

        Per-call override wins, then the pool's configured deadline,
        then an EMA-derived guess (generous: 50x the measured
        per-item cost, floored at 5s, so a chunk of slow-but-honest
        datasets is never killed).  Returns None — watchdog off —
        when nothing is configured and nothing has been measured yet,
        and when the caller passes ``0`` explicitly.
        """
        if deadline_s is not None:
            return float(deadline_s) or None
        if self.deadline_s is not None:
            return self.deadline_s or None
        if self._per_item_s is not None and self._per_item_s > 0:
            return max(5.0, 50.0 * self._per_item_s)
        return None

    def run(self, spec, digest, tasks, staging_name=None,
            deadline_s=None, max_retries=None, fail_fast=True):
        """Map ``tasks`` (transport payloads, each carrying its
        dataset ``index``) over the warm workers under one kernel.

        Returns ``(results, failures, faults)``: worker result dicts
        in completion order, ``(index, exception)`` pairs for datasets
        that failed permanently, and the call's fault counters
        (:data:`FAULT_KEYS`).  Transient failures — crashes, stalls,
        worker-raised :class:`TransientError`\\ s — are retried with
        exponential backoff up to ``max_retries`` (default: the
        pool's) before landing in ``failures``; deterministic kernel
        exceptions land there immediately.  With ``fail_fast`` (the
        default) dispatch stops after the first permanent failure;
        policies that want every dataset's outcome pass False.  Staged
        write-back and error wrapping are the caller's job.
        """
        with self._lock:
            if self._closed:
                raise RuntimeError("WorkerPool is closed")
            return self._run_locked(spec, digest, list(tasks),
                                    staging_name, deadline_s,
                                    max_retries, fail_fast)

    def _run_locked(self, spec, digest, tasks, staging_name,
                    deadline_s, max_retries, fail_fast):
        faults = _fresh_faults()
        if not tasks:
            return [], [], faults
        retries_allowed = (self.max_retries if max_retries is None
                           else int(max_retries))
        deadline = self._effective_deadline(deadline_s)
        self._counters["batches"] += 1
        chunk_size = self._pick_chunk_size(len(tasks))
        pending = deque(tasks[i:i + chunk_size]
                        for i in range(0, len(tasks), chunk_size))
        busy = {}  # slot -> (chunk, dispatch monotonic seconds)
        results = []
        done = set()  # dataset indices with a collected result
        failures = []
        attempts = {}  # dataset index -> transient failures so far
        stop = False
        exec_seconds = 0.0
        executed = 0

        def requeue(chunk, suspect, exc, fault_key):
            """Handle one transient failure: penalize the suspect
            dataset (retry with backoff, or fail permanently past the
            retry budget) and requeue chunk-mates whose results were
            lost with it, unpenalized.  Returns True on permanent
            failure."""
            nonlocal stop
            faults[fault_key] += 1
            if fault_key in self._counters:
                self._counters[fault_key] += 1
            survivors = [task for task in chunk
                         if task["index"] not in done
                         and task["index"] != suspect]
            if survivors:
                pending.append(survivors)
            attempts[suspect] = attempts.get(suspect, 0) + 1
            if attempts[suspect] > retries_allowed:
                failures.append((suspect, exc))
                if fail_fast:
                    stop = True
                    pending.clear()
                return True
            faults["retries"] += 1
            self._counters["retries"] += 1
            delay = min(1.0, self.backoff_s
                        * 2 ** (attempts[suspect] - 1))
            delay *= 1.0 + _JITTER_RNG.random()  # jitter
            faults["backoff_s"] += delay
            time.sleep(delay)
            pending.append([task for task in chunk
                            if task["index"] == suspect])
            return False

        def attribute(slot, chunk):
            """The dataset a dead/wedged worker was running, read from
            the progress array and validated against the chunk it was
            actually handed (a stale stamp from an earlier chunk must
            not frame an innocent dataset)."""
            suspect = int(self._progress_view[slot, 0])
            members = {task["index"] for task in chunk}
            if suspect not in members:
                suspect = chunk[0]["index"]
            return suspect

        try:
            while pending or busy:
                if not stop:
                    for slot in range(self.max_workers):
                        if not pending:
                            break
                        if slot in busy:
                            continue
                        worker = (self._workers[slot]
                                  or self._spawn(slot))
                        chunk = pending.popleft()
                        try:
                            self._send_chunk(worker, spec, digest,
                                             chunk, staging_name)
                        except (BrokenPipeError, OSError):
                            # Worker died between batches; put the
                            # chunk back and retry on the respawned
                            # process.
                            pending.appendleft(chunk)
                            self._respawn(slot)
                            continue
                        busy[slot] = (chunk, time.monotonic())
                if not busy:
                    break
                conn_of = {self._workers[slot].conn: slot
                           for slot in busy}
                dead_of = {self._workers[slot].process.sentinel: slot
                           for slot in busy}
                timeout = None
                if deadline is not None:
                    timeout = min(0.5, max(0.01, deadline / 4.0))
                ready = mp_connection.wait(
                    list(conn_of) + list(dead_of), timeout)
                now = time.monotonic()
                handled = set()
                for obj in ready:
                    slot = conn_of.get(obj, dead_of.get(obj))
                    if slot is None or slot in handled:
                        continue
                    handled.add(slot)
                    worker = self._workers[slot]
                    chunk, _ = busy.pop(slot)
                    reply = None
                    try:
                        if worker.conn.poll():
                            reply = pickle.loads(
                                worker.conn.recv_bytes())
                    except (EOFError, OSError):
                        reply = None
                    if reply is None:
                        # Hard crash mid-chunk: the progress array
                        # says which dataset was in flight.
                        crashed = attribute(slot, chunk)
                        worker.process.join(timeout=1)
                        exc = WorkerCrashError(
                            "pid-%d" % worker.process.pid,
                            worker.process.exitcode, crashed)
                        self._respawn(slot)
                        requeue(chunk, crashed, exc, "crashes")
                        continue
                    results.extend(reply["results"])
                    for item in reply["results"]:
                        done.add(item["index"])
                        exec_seconds += item["seconds"]
                        executed += 1
                    error = reply.get("error")
                    if error is not None:
                        try:
                            exc = pickle.loads(error["exc"])
                        except Exception:  # pragma: no cover
                            exc = RuntimeError("worker error")
                        index = error["index"]
                        if is_transient(exc):
                            requeue(chunk, index, exc,
                                    "transient_errors")
                        else:
                            # Deterministic kernel exception: never
                            # retried.  Chunk-mates the worker never
                            # reached still get their turn (the skip
                            # policy needs every outcome).
                            failures.append((index, exc))
                            survivors = [task for task in chunk
                                         if task["index"] not in done
                                         and task["index"] != index]
                            if survivors and not fail_fast:
                                pending.append(survivors)
                            if fail_fast:
                                stop = True
                                pending.clear()
                # Watchdog: a busy slot whose heartbeat (or dispatch)
                # is older than the deadline is wedged — kill,
                # attribute, respawn, retry.
                if deadline is not None:
                    for slot in list(busy):
                        if slot in handled:
                            continue
                        chunk, dispatched = busy[slot]
                        heartbeat = (
                            float(self._progress_view[slot, 1]) / 1e6)
                        if now - max(dispatched, heartbeat) <= deadline:
                            continue
                        del busy[slot]
                        worker = self._workers[slot]
                        stalled = attribute(slot, chunk)
                        worker.process.kill()
                        worker.process.join(timeout=5)
                        exc = WorkerStallError(
                            "pid-%d" % worker.process.pid, stalled,
                            deadline)
                        self._respawn(slot)
                        requeue(chunk, stalled, exc, "stalls")
        except BaseException:
            # Unwinding with chunks in flight (KeyboardInterrupt, a
            # staging error...): the workers may be mid-kernel and
            # cannot be drained — drop them hard so nothing is
            # orphaned, and let the next run respawn lazily.
            for slot in list(busy):
                self._discard(slot)
            raise
        if executed:
            per_item = exec_seconds / executed
            self._per_item_s = (per_item if self._per_item_s is None
                                else 0.5 * self._per_item_s
                                + 0.5 * per_item)
        return results, failures, faults

    def add_shm_bytes(self, nbytes):
        """Credit transported shared-memory payload bytes (metered by
        the batch layer, which owns staging and residency)."""
        self._counters["shm_bytes"] += int(nbytes)

    def stats(self):
        """Lifetime pool statistics: fleet shape, ship-once and
        chunking counters, transport byte meters, and liveness."""
        with self._lock:
            out = dict(self._counters)
            out["max_workers"] = self.max_workers
            out["start_method"] = self.start_method
            out["chunk_size"] = self._last_chunk_size
            out["per_item_s"] = self._per_item_s
            out["deadline_s"] = self.deadline_s
            out["max_retries"] = self.max_retries
            out["alive"] = sum(
                1 for worker in self._workers
                if worker is not None and worker.process.is_alive())
        return out


# -- the module-level default pool ----------------------------------------

_default_pool = None
_default_lock = threading.Lock()

#: WorkerPool constructor argument -> the config option that feeds it
#: (see :mod:`repro.util.config`).
POOL_OPTION_ARGS = {
    "max_workers": "pool_max_workers",
    "start_method": "pool_start_method",
    "chunk_target_s": "pool_chunk_target_s",
    "deadline_s": "pool_deadline_s",
    "max_retries": "pool_max_retries",
    "backoff_s": "pool_backoff_s",
}


def _config_pool_kwargs():
    """The :class:`WorkerPool` constructor kwargs the config resolver
    currently prescribes (``fl.configure(pool_*=...)`` /
    ``FL_POOL_*``); unset options are omitted so the pool's own
    defaults apply."""
    from repro.util import config

    kwargs = {}
    for arg, option in POOL_OPTION_ARGS.items():
        value = config.resolve(option)
        if value is not None:
            kwargs[arg] = value
    return kwargs


def default_pool():
    """The process-wide warm pool, created on first use and shared by
    every ``KernelPool`` that does not bring its own.  Its shape comes
    from the config resolver (``fl.configure(pool_*=...)``, then the
    ``FL_POOL_*`` environment, then machine defaults)."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.closed:
            _default_pool = WorkerPool(**_config_pool_kwargs())
        return _default_pool


def rebuild_default_if_open():
    """Close-and-respawn the default pool so a config change takes
    effect immediately — but only when one is actually running (a
    lazy process keeps its lazy start).  Called by
    :func:`repro.util.config.configure` when pool options change."""
    global _default_pool
    with _default_lock:
        if _default_pool is None or _default_pool.closed:
            return None
        _default_pool.close()
        _default_pool = WorkerPool(**_config_pool_kwargs())
        return _default_pool


def configure_pool(max_workers=None, start_method=None,
                   chunk_target_s=None, deadline_s=None,
                   max_retries=None, backoff_s=None):
    """Replace the default pool with one of the given shape.

    A thin shim over ``fl.configure(pool_*=...)`` (see
    :mod:`repro.util.config`), kept for source compatibility — with
    replace semantics: options not passed here fall back to their
    environment/default values, the current default pool is closed
    (its warm state dropped), and the new pool is returned.
    ``chunk_target_s`` tunes how much measured work one IPC
    round-trip should carry; ``deadline_s`` pins the watchdog
    deadline (instead of the EMA-derived default), ``max_retries``
    and ``backoff_s`` tune the transient-failure retry policy.
    """
    from repro.util import config

    provided = {
        option: value
        for option, value in zip(
            POOL_OPTION_ARGS.values(),
            (max_workers, start_method, chunk_target_s, deadline_s,
             max_retries, backoff_s))
        if value is not None
    }
    # replace(), not configure(): the shim clears every pool override
    # first (replace semantics predate the front door) and rebuilds
    # the pool itself — unconditionally, unlike configure(), because
    # configure_pool() with no arguments has always meant "give me a
    # fresh machine-default pool".
    config.replace(config.POOL_OPTION_NAMES, provided)
    global _default_pool
    with _default_lock:
        if _default_pool is not None and not _default_pool.closed:
            _default_pool.close()
        _default_pool = WorkerPool(**_config_pool_kwargs())
        return _default_pool


def _close_default_pool():  # pragma: no cover - interpreter exit
    global _default_pool
    with _default_lock:
        pool, _default_pool = _default_pool, None
    if pool is not None and not pool.closed:
        pool.close()


atexit.register(_close_default_pool)
