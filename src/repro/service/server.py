"""The kernel service's server half: a store behind four routes.

Deliberately boring infrastructure: stdlib ``ThreadingHTTPServer``
(one thread per request, fine for a cache whose responses are small
JSON bodies), one background compile-queue thread, and the existing
:class:`~repro.store.disk.KernelStore` as the only state.  Everything
durable — atomicity, locking, quarantine, eviction, the persisted
counters — is the store's problem, already solved; the service is a
wire adapter over it.

Routes::

    GET  /healthz            {"ok": true, ...}
    GET  /stats              hit/miss/queue counters (stats.json schema)
    GET  /kernels/<digest>   one entry: {"key", "spec", "so": base64?}
    POST /compile            enqueue a pushed {"key", "spec"} entry
    GET  /packs/<name>       a .flpack artifact from the packs dir

``GET /kernels`` serves the stored entry *with its recorded key* —
the key carries every version axis (spec layout, registry version,
optimizer/codegen fingerprints), so the client compares it against
the key it derived locally and rejects entries compiled under other
code, exactly like the disk store does.  The server never trusts a
pushed entry's digest claim either: ``POST /compile`` re-derives the
digest from the pushed key and verifies the spec rebuilds before the
entry reaches the store.
"""

import base64
import json
import logging
import os
import queue
import threading
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer

from repro.store.disk import STORE_VERSION, KernelStore, entry_digest

_log = logging.getLogger("repro.service")

#: Largest request body ``POST /compile`` accepts (a spec is tens of
#: kilobytes; anything near this is garbage or abuse).
MAX_BODY_BYTES = 32 * 1024 * 1024


class _CompileQueue:
    """The async compile queue behind ``POST /compile``.

    One daemon worker drains pushed entries: rebuild the spec
    (``from_spec`` — which compiles the carried C source into a
    ``.so`` when the toolchain allows), then write spec + sidecar
    into the store.  Submissions are deduplicated at digest level —
    against entries already stored, already queued, and currently
    being compiled — so a thousand workers pushing the same kernel
    cost one compile.
    """

    def __init__(self, store):
        self._store = store
        self._queue = queue.Queue()
        self._lock = threading.Lock()
        self._inflight = set()  # digests queued or compiling
        self._counters = {"queued": 0, "deduped": 0, "compiled": 0,
                          "errors": 0}
        self._thread = threading.Thread(target=self._run,
                                        name="fl-compile-queue",
                                        daemon=True)
        self._thread.start()

    def submit(self, entry):
        """Enqueue one ``{"key", "spec"}`` entry; returns ``(digest,
        queued)`` where ``queued`` is False when dedup dropped it."""
        digest = entry_digest(entry["key"])
        with self._lock:
            if digest in self._inflight:
                self._counters["deduped"] += 1
                return digest, False
            spec_path = self._store.entry_path_for_digest(digest)
            if os.path.exists(spec_path):
                self._counters["deduped"] += 1
                return digest, False
            self._inflight.add(digest)
            self._counters["queued"] += 1
        self._queue.put((digest, entry))
        return digest, True

    def _run(self):
        from repro.compiler.kernel import CompiledKernel

        while True:
            digest, entry = self._queue.get()
            try:
                # Rebuild before storing: a spec that does not rebuild
                # must never be served to the fleet, and rebuilding is
                # also what produces the .so sidecar server-side.
                artifact = CompiledKernel.from_spec(entry["spec"])
                self._store.save_spec(entry["key"], entry["spec"],
                                      so_path=artifact.so_path)
                with self._lock:
                    self._counters["compiled"] += 1
            except Exception as exc:
                with self._lock:
                    self._counters["errors"] += 1
                _log.warning("compile queue: pushed entry %s rejected:"
                             " %s: %s", digest[:12],
                             type(exc).__name__, exc)
            finally:
                with self._lock:
                    self._inflight.discard(digest)
                self._queue.task_done()

    def depth(self):
        with self._lock:
            return len(self._inflight)

    def join(self):
        """Block until every submitted entry is processed (tests)."""
        self._queue.join()

    def counters(self):
        with self._lock:
            return dict(self._counters)


def _is_digest(text):
    return (len(text) == 40
            and all(c in "0123456789abcdef" for c in text))


class _Handler(BaseHTTPRequestHandler):
    """One request against the service's store (``self.server.service``)."""

    server_version = "fl-kernel-service/1"
    protocol_version = "HTTP/1.1"

    def log_message(self, fmt, *args):  # route to logging, not stderr
        _log.debug("%s " + fmt, self.address_string(), *args)

    def _send_json(self, status, payload):
        body = json.dumps(payload, sort_keys=True).encode()
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        self.end_headers()
        self.wfile.write(body)

    def do_GET(self):
        service = self.server.service
        path = self.path.split("?", 1)[0]
        if path == "/healthz":
            self._send_json(200, {"ok": True,
                                  "store": service.store.root,
                                  "store_version": STORE_VERSION})
            return
        if path == "/stats":
            self._send_json(200, service.stats())
            return
        if path.startswith("/kernels/"):
            self._get_kernel(service, path[len("/kernels/"):])
            return
        if path.startswith("/packs/"):
            self._get_pack(service, path[len("/packs/"):])
            return
        self._send_json(404, {"error": "unknown route %s" % path})

    def _get_kernel(self, service, digest):
        if not _is_digest(digest):
            self._send_json(400, {"error": "malformed digest"})
            return
        entry, so_path = service.store.read_entry(digest)
        if entry is None:
            service.bump("misses")
            self._send_json(404, {"error": "unknown kernel",
                                  "digest": digest})
            return
        payload = {"store_version": entry["store_version"],
                   "key": entry["key"], "spec": entry["spec"],
                   "so": None}
        if so_path is not None:
            try:
                with open(so_path, "rb") as handle:
                    payload["so"] = base64.b64encode(
                        handle.read()).decode("ascii")
            except OSError:
                pass  # sidecar raced eviction: the spec alone rebuilds
        service.bump("hits")
        self._send_json(200, payload)

    def _get_pack(self, service, name):
        if (service.packs_dir is None
                or os.path.basename(name) != name
                or not name.endswith(".flpack")):
            self._send_json(404, {"error": "unknown pack %r" % name})
            return
        path = os.path.join(service.packs_dir, name)
        try:
            with open(path, "rb") as handle:
                data = handle.read()
        except OSError:
            self._send_json(404, {"error": "unknown pack %r" % name})
            return
        service.bump("pack_downloads")
        self.send_response(200)
        self.send_header("Content-Type", "application/zip")
        self.send_header("Content-Length", str(len(data)))
        self.end_headers()
        self.wfile.write(data)

    def do_POST(self):
        service = self.server.service
        if self.path.split("?", 1)[0] != "/compile":
            self._send_json(404, {"error": "unknown route"})
            return
        try:
            length = int(self.headers.get("Content-Length", "0"))
            if not 0 < length <= MAX_BODY_BYTES:
                raise ValueError("bad content length %d" % length)
            entry = json.loads(self.rfile.read(length))
            digest = entry_digest(entry["key"])
            if not isinstance(entry["spec"], dict):
                raise ValueError("spec must be an object")
        except (ValueError, KeyError, TypeError) as exc:
            self._send_json(400, {"error": "malformed entry: %s" % exc})
            return
        digest, queued = service.queue.submit(
            {"key": entry["key"], "spec": entry["spec"]})
        service.bump("pushes")
        self._send_json(202, {"digest": digest, "queued": queued,
                              "queue_depth": service.queue.depth()})


class KernelService:
    """One kernel service: a store, a compile queue, an HTTP front.

    ``store`` is a :class:`~repro.store.disk.KernelStore` or a
    directory path; ``packs_dir`` (optional) is where ``GET /packs``
    looks for ``.flpack`` files.  ``port=0`` binds an ephemeral port —
    read :attr:`url` after construction.  :meth:`start` serves on a
    daemon thread (tests, embedded use); :meth:`serve_forever` serves
    on the calling thread (``python -m repro.service``).
    """

    def __init__(self, store, host="127.0.0.1", port=0,
                 packs_dir=None):
        self.store = (store if isinstance(store, KernelStore)
                      else KernelStore(store))
        self.packs_dir = packs_dir
        self.queue = _CompileQueue(self.store)
        self._counters = {"hits": 0, "misses": 0, "pushes": 0,
                          "pack_downloads": 0}
        self._counters_lock = threading.Lock()
        self._httpd = ThreadingHTTPServer((host, port), _Handler)
        self._httpd.daemon_threads = True
        self._httpd.service = self
        self._thread = None

    @property
    def url(self):
        host, port = self._httpd.server_address[:2]
        return "http://%s:%d" % (host, port)

    def bump(self, name):
        with self._counters_lock:
            self._counters[name] += 1

    def stats(self):
        """Service counters in the ``stats.json`` schema — ``hits``/
        ``misses``/``hit_rate`` count wire lookups (not the store's
        local lookups), plus queue counters and the backing store's
        own ``stats()`` under ``"store"``."""
        with self._counters_lock:
            out = dict(self._counters)
        lookups = out["hits"] + out["misses"]
        out["hit_rate"] = out["hits"] / lookups if lookups else 0.0
        out["queue_depth"] = self.queue.depth()
        out.update({"queue_" + k: v
                    for k, v in self.queue.counters().items()})
        out["store"] = self.store.stats()
        return out

    def start(self):
        """Serve on a background daemon thread; returns ``self``."""
        self._thread = threading.Thread(
            target=self._httpd.serve_forever,
            name="fl-kernel-service", daemon=True)
        self._thread.start()
        return self

    def serve_forever(self):
        self._httpd.serve_forever()

    def close(self):
        self._httpd.shutdown()
        self._httpd.server_close()
        if self._thread is not None:
            self._thread.join(timeout=5.0)
            self._thread = None

    def __enter__(self):
        return self.start()

    def __exit__(self, *exc_info):
        self.close()
