"""The fleet-wide kernel service: compile anywhere, once — for everyone.

The cache hierarchy ``compile_kernel`` reads through grew one tier per
scale of sharing: the in-memory LRU shares within a process, the disk
:class:`~repro.store.disk.KernelStore` shares across processes on one
machine, and this package adds the third tier — a long-lived HTTP
service that shares one store across a fleet.  A warm service means a
brand-new machine (empty local store, cold process) completes entire
workloads with **zero local compiles**: every kernel is fetched as a
spec (plus the compiled ``.so`` sidecar when one exists) and imported
into the local tiers on the way in.

Two halves:

:class:`KernelService` (:mod:`repro.service.server`)
    A stdlib ``ThreadingHTTPServer`` in front of a ``KernelStore``:
    ``GET /kernels/<digest>`` serves one entry (version axes ride in
    the entry key, so a client can reject stale kernels), ``POST
    /compile`` enqueues a client-pushed spec on an async compile queue
    with digest-level dedup (the server rebuilds the ``.so`` sidecar
    server-side), ``GET /packs/<name>`` serves ``.flpack`` artifacts,
    and ``/healthz`` / ``/stats`` expose liveness and hit/miss/queue
    counters in the same schema as the store's ``stats.json``.
    ``python -m repro.service --store DIR`` runs it.

:class:`ServiceClient` (:mod:`repro.service.client`)
    The read-through/write-behind side ``compile_kernel`` calls on a
    local miss.  Timeouts and retries reuse the
    :class:`~repro.util.errors.TransientError` taxonomy
    (:class:`~repro.util.errors.ServiceUnreachableError`); an
    unreachable service triggers a warn-once degrade to the local
    tiers with a cooldown, so a dead service costs one timeout per
    cooldown window — never a failed compile, never different bits.

Configuration follows the package precedence rule (kwarg >
``fl.configure`` > ``FL_*`` env > default): ``compile_kernel(...,
remote="http://host:port")`` per call, ``fl.configure(service_url=
...)`` per process, ``FL_SERVICE_URL`` per environment —
``FL_SERVICE_TIMEOUT_S`` and ``FL_SERVICE_RETRIES`` shape the client.
"""

from repro.service.client import (
    DOWN_COOLDOWN_S,
    ServiceClient,
    active_client,
    reset_service_stats,
    service_stats,
)
from repro.service.server import KernelService

__all__ = [
    "DOWN_COOLDOWN_S", "KernelService", "ServiceClient",
    "active_client", "reset_service_stats", "service_stats",
]
