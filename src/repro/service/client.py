"""The kernel service's client half: the remote read-through tier.

``compile_kernel`` calls :meth:`ServiceClient.fetch` after a local
store miss and :meth:`ServiceClient.push` after a local compile
(write-behind) — both built so the remote tier can only ever *save*
work, never break a compile:

* Requests carry a timeout (``FL_SERVICE_TIMEOUT_S``) and a retry
  budget (``FL_SERVICE_RETRIES``) with exponential backoff; an
  exhausted budget raises
  :class:`~repro.util.errors.ServiceUnreachableError` — transient by
  taxonomy, but the client *catches it itself* and degrades.
* Degrading is warn-once with a cooldown: the first unreachable
  event logs one warning, and for :data:`DOWN_COOLDOWN_S` seconds
  the client skips the wire entirely (each skip counted as
  ``remote_degraded``), so a dead service costs one timeout per
  window — not one per compile.
* A corrupt response — unparseable JSON, a key that does not match
  the requested meta (version-axes check), a bad ``.so`` encoding —
  counts ``remote_errors`` and reads as a miss, mirroring the disk
  store's quarantine-as-miss discipline.

Counters accumulate module-wide in the ``faults``-style scheme
(:func:`service_stats`): ``remote_hits`` / ``remote_misses`` /
``remote_pushes`` / ``remote_errors`` / ``remote_degraded``.  The
chaos engine's ``service_unreachable`` fault point injects at the
request boundary, so the whole degrade path is testable without a
real network failure.
"""

import base64
import json
import logging
import threading
import time
import urllib.error
import urllib.request

from repro.store.disk import entry_digest
from repro.util.errors import ServiceUnreachableError

_log = logging.getLogger("repro.service")

#: Seconds the client stays off the wire after an unreachable event.
#: A module attribute so tests (and unusual deployments) can shrink
#: or stretch the window.
DOWN_COOLDOWN_S = 5.0

#: Base of the exponential retry backoff, seconds.
RETRY_BACKOFF_S = 0.05

_stats_lock = threading.Lock()
_stats = {"remote_hits": 0, "remote_misses": 0, "remote_pushes": 0,
          "remote_errors": 0, "remote_degraded": 0}


def _bump(name, delta=1):
    with _stats_lock:
        _stats[name] += delta


def service_stats():
    """Module-wide client-side counters (``faults``-style): how the
    remote tier has behaved in this process."""
    with _stats_lock:
        return dict(_stats)


def reset_service_stats():
    """Zero the client-side counters (tests, benchmark passes)."""
    with _stats_lock:
        for name in _stats:
            _stats[name] = 0


class ServiceClient:
    """One client against one kernel-service base URL.

    ``timeout_s`` and ``retries`` default through the config resolver
    (``FL_SERVICE_TIMEOUT_S`` / ``FL_SERVICE_RETRIES``).  All methods
    are thread-safe; the degrade state (cooldown window, warn-once
    flag) is per-client.
    """

    def __init__(self, url, timeout_s=None, retries=None):
        from repro.util import config

        self.url = url.rstrip("/")
        self.timeout_s = config.resolve("service_timeout_s",
                                        override=timeout_s)
        self.retries = config.resolve("service_retries",
                                      override=retries)
        self._lock = threading.Lock()
        self._down_until = 0.0
        self._warned = False

    # -- transport -----------------------------------------------------
    def _request(self, path, data=None):
        """``(status, body_bytes)`` for one request, after the retry
        budget.  HTTP-level errors (404, 400, 500) are *responses*,
        returned as-is; transport-level failures retry and finally
        raise :class:`ServiceUnreachableError`."""
        from repro import chaos as _chaos

        last = None
        for attempt in range(self.retries + 1):
            if attempt:
                time.sleep(RETRY_BACKOFF_S * (2 ** (attempt - 1)))
            try:
                if _chaos.active():
                    _chaos.inject("service_unreachable")
                request = urllib.request.Request(
                    self.url + path, data=data,
                    headers={"Content-Type": "application/json"}
                    if data is not None else {})
                with urllib.request.urlopen(
                        request, timeout=self.timeout_s) as response:
                    return response.status, response.read()
            except urllib.error.HTTPError as exc:
                # Subclass of URLError — must be caught first.  The
                # service answered; this is a routed response (miss,
                # rejection), not an unreachable service.
                return exc.code, exc.read()
            except (urllib.error.URLError, OSError) as exc:
                last = exc
        raise ServiceUnreachableError(
            "kernel service %s unreachable after %d attempt(s): %s: %s"
            % (self.url, self.retries + 1, type(last).__name__, last))

    # -- degrade bookkeeping -------------------------------------------
    def available(self):
        """Whether the client is willing to touch the wire right now
        (False inside the post-failure cooldown window)."""
        with self._lock:
            return time.monotonic() >= self._down_until

    def _mark_down(self, exc):
        with self._lock:
            self._down_until = time.monotonic() + DOWN_COOLDOWN_S
            first = not self._warned
            self._warned = True
        if first:
            _log.warning(
                "%s; degrading to local tiers for %.1fs per failure "
                "(further failures logged at debug level)",
                exc, DOWN_COOLDOWN_S)
        else:
            _log.debug("%s; degrading to local tiers", exc)

    def _degraded(self):
        _bump("remote_degraded")
        return None

    # -- the tier ------------------------------------------------------
    def fetch(self, meta):
        """The remote entry for store-key ``meta``, as ``(spec,
        so_bytes)`` — or None on miss, corrupt response, or a degraded
        service.  Never raises: the remote tier is an optimization.

        The returned entry's recorded key must equal ``meta`` exactly;
        since the key carries every version axis, this is the same
        staleness rejection the disk store applies.
        """
        if not self.available():
            return self._degraded()
        digest = entry_digest(meta)
        try:
            status, body = self._request("/kernels/" + digest)
        except ServiceUnreachableError as exc:
            _bump("remote_errors")
            self._mark_down(exc)
            return self._degraded()
        if status == 404:
            _bump("remote_misses")
            return None
        try:
            if status != 200:
                raise ValueError("unexpected status %d" % status)
            payload = json.loads(body)
            if payload["key"] != meta:
                raise ValueError(
                    "entry key mismatch for %s (stale or corrupt "
                    "service entry)" % digest[:12])
            spec = payload["spec"]
            if not isinstance(spec, dict):
                raise ValueError("spec must be an object")
            so_bytes = (base64.b64decode(payload["so"])
                        if payload.get("so") else None)
        except (ValueError, KeyError, TypeError) as exc:
            _log.warning("kernel service %s returned a corrupt entry "
                         "for %s (%s); treating as a miss",
                         self.url, digest[:12], exc)
            _bump("remote_errors")
            _bump("remote_misses")
            return None
        _bump("remote_hits")
        return spec, so_bytes

    def push(self, meta, spec):
        """Write-behind one locally compiled entry; returns whether
        the service accepted it.  Never raises."""
        if not self.available():
            self._degraded()
            return False
        body = json.dumps({"key": meta, "spec": spec},
                          sort_keys=True).encode()
        try:
            status, _ = self._request("/compile", data=body)
        except ServiceUnreachableError as exc:
            _bump("remote_errors")
            self._mark_down(exc)
            self._degraded()
            return False
        if status != 202:
            _bump("remote_errors")
            return False
        _bump("remote_pushes")
        return True

    # -- auxiliary routes ----------------------------------------------
    def healthz(self):
        """The service's health payload, or None when unreachable."""
        try:
            status, body = self._request("/healthz")
            return json.loads(body) if status == 200 else None
        except (ServiceUnreachableError, ValueError):
            return None

    def server_stats(self):
        """The service's ``/stats`` payload (raises
        :class:`ServiceUnreachableError` when it cannot answer —
        callers of this route want the truth, not a degrade)."""
        status, body = self._request("/stats")
        if status != 200:
            raise ServiceUnreachableError(
                "kernel service %s /stats returned %d"
                % (self.url, status))
        return json.loads(body)

    def fetch_pack(self, name, dest):
        """Download pack ``name`` to path ``dest``; returns ``dest``
        or None (miss or degraded)."""
        if not self.available():
            return self._degraded()
        try:
            status, body = self._request("/packs/" + name)
        except ServiceUnreachableError as exc:
            _bump("remote_errors")
            self._mark_down(exc)
            return self._degraded()
        if status != 200:
            _bump("remote_misses")
            return None
        with open(dest, "wb") as handle:
            handle.write(body)
        _bump("remote_hits")
        return dest


#: Per-process client memo: one client per base URL, so the degrade
#: cooldown and warn-once state survive across compiles.
_client_memo = {}
_client_memo_lock = threading.Lock()


def active_client(url=None):
    """The :class:`ServiceClient` the compile path should use, or
    None when no remote tier is configured.

    ``url`` is the per-call ``remote=`` value: a base URL wins
    outright, ``False`` disables the remote tier for this call, and
    None resolves ``fl.configure(service_url=...)`` then
    ``FL_SERVICE_URL``.  Clients are memoized per URL so cooldown
    state is shared process-wide.
    """
    from repro.util import config

    if url is False:
        return None
    resolved = config.resolve("service_url", override=url)
    if not resolved:
        return None
    resolved = resolved.rstrip("/")
    with _client_memo_lock:
        client = _client_memo.get(resolved)
        if client is None:
            client = ServiceClient(resolved)
            _client_memo[resolved] = client
        return client


def reset_clients():
    """Drop the client memo (tests: forget cooldown/warn state)."""
    with _client_memo_lock:
        _client_memo.clear()
