"""``python -m repro.service`` — run the fleet kernel service.

Examples::

    # Serve an existing (warm) store on an explicit port:
    python -m repro.service --store .fl_store --port 8090

    # Warm the store from a pack first, then serve, sharing packs:
    python -m repro.service --store .fl_store --warm kernels.flpack \\
        --packs-dir packs/ --port 8090

The service is read-mostly infrastructure: clients GET entries by
digest and POST freshly compiled specs, which an async queue rebuilds
(producing the ``.so`` sidecar server-side) and persists.  Point
clients at it with ``FL_SERVICE_URL=http://host:port``,
``fl.configure(service_url=...)``, or ``compile_kernel(...,
remote=...)``.
"""

import argparse
import logging
import sys

from repro.service.server import KernelService
from repro.store import KernelStore
from repro.store.pack import PackError, load_pack


def _build_parser():
    parser = argparse.ArgumentParser(
        prog="python -m repro.service",
        description="Serve a kernel store to a fleet over HTTP.")
    parser.add_argument("--store", required=True,
                        help="kernel-store directory to serve")
    parser.add_argument("--host", default="127.0.0.1",
                        help="bind address (default 127.0.0.1)")
    parser.add_argument("--port", type=int, default=8090,
                        help="bind port (default 8090; 0 = ephemeral)")
    parser.add_argument("--max-bytes", type=int, default=None,
                        help="store size budget (LRU eviction past it)")
    parser.add_argument("--packs-dir", default=None,
                        help="directory served under GET /packs/")
    parser.add_argument("--warm", default=None, metavar="PACK",
                        help="import this .flpack into the store "
                             "before serving")
    parser.add_argument("--warm-base", default=None, metavar="PACK",
                        help="base pack layered under a --warm diff "
                             "pack")
    return parser


def main(argv=None):
    args = _build_parser().parse_args(argv)
    logging.basicConfig(
        level=logging.INFO,
        format="%(asctime)s %(name)s %(levelname)s %(message)s")
    store = KernelStore(args.store, max_bytes=args.max_bytes)
    if args.warm:
        try:
            summary = load_pack(args.warm, store=store, memory=False,
                                base=args.warm_base)
        except PackError as exc:
            print("error: %s" % exc)
            return 1
        print("warmed %s: %d loaded, %d stale, %d error(s)"
              % (store.root, summary["loaded"], summary["stale"],
                 summary["errors"]))
    service = KernelService(store, host=args.host, port=args.port,
                            packs_dir=args.packs_dir)
    print("serving kernel store %s on %s" % (store.root, service.url),
          flush=True)
    try:
        service.serve_forever()
    except KeyboardInterrupt:
        print("shutting down")
    return 0


if __name__ == "__main__":
    sys.exit(main())
