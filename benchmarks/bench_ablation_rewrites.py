"""A2 — ablation: the constant-loop (run summation) rewrite.

Figure 5's last rule turns ``@loop i ∈ a:b C[] += v`` into a single
scaled update.  With the rewrite off, summing run-length-encoded data
degenerates to per-element work; with it on, work is O(runs).  This is
the rewrite that makes RLE reductions (Figures 10/11) viable.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.bench.harness import Table

RUN_LENGTHS = (1, 10, 100, 1000)
TOTAL = 12000


def rle_vector(run_length, seed=0):
    rng = np.random.default_rng(seed)
    runs = TOTAL // run_length
    return np.repeat(rng.integers(1, 9, size=runs).astype(float),
                     run_length)


def sum_kernel(vec, rewrite, instrument=False):
    R = fl.from_numpy(vec, ("rle",), name="R")
    S = fl.Scalar(name="S")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(S[()], R[i]))
    kernel = fl.compile_kernel(prog, instrument=instrument,
                               constant_loop_rewrite=rewrite)
    return kernel, S


@pytest.mark.parametrize("rewrite", [True, False])
def test_rle_sum(benchmark, rewrite):
    vec = rle_vector(100, seed=2)
    kernel, S = sum_kernel(vec, rewrite)
    benchmark(kernel.run)
    assert S.value == pytest.approx(vec.sum())


def test_report_rewrite_ablation(benchmark, write_report):
    table = Table("Ablation A2: run-summation rewrite on RLE reductions",
                  ["run length", "ops (rewrite off)", "ops (rewrite on)",
                   "speedup"])
    gains = {}
    for run_length in RUN_LENGTHS:
        vec = rle_vector(run_length, seed=2)
        off_kernel, off_s = sum_kernel(vec, rewrite=False,
                                       instrument=True)
        off_ops = off_kernel.run()
        assert off_s.value == pytest.approx(vec.sum())
        on_kernel, on_s = sum_kernel(vec, rewrite=True, instrument=True)
        on_ops = on_kernel.run()
        assert on_s.value == pytest.approx(vec.sum())
        gains[run_length] = off_ops / max(on_ops, 1)
        table.add(run_length, off_ops, on_ops, gains[run_length])
    write_report("ablation_rewrites", [table])
    # The rewrite's win scales with run length.
    assert gains[1000] > gains[10] > gains[1] * 0.99
    assert gains[1000] > 50
    kernel, _ = sum_kernel(rle_vector(1000, seed=2), rewrite=True)
    benchmark(kernel.run)
