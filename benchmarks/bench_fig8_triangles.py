"""E4 — Figure 8: triangle counting with galloping intersections.

``C[] += A[i,j] * A[j,k] * AT[i,k]`` over SNAP-like power-law graphs.
The paper's result: galloping gives order-of-magnitude speedups over
merge-based intersection on skewed degree distributions.
"""

import pytest

from repro.baselines import twofinger
from repro.bench.figures import fig8_suite
from repro.bench.harness import Table, amortization_table, assert_amortized
from repro.bench.kernels import triangle_count, triangle_count_program
from repro.workloads import graphs


@pytest.fixture(scope="module")
def suite():
    # The canonical graph suite lives in repro.bench.figures, shared
    # with the AOT kernel-pack builder.
    return fig8_suite()


@pytest.mark.parametrize("protocol", ["walk", "gallop"])
def test_triangles_looplets(benchmark, suite, protocol):
    adj = suite["ca_like_powerlaw"]
    kernel, C = triangle_count(adj, protocol)
    benchmark(kernel.run)
    assert C.value == graphs.triangle_count_reference(adj)


def test_triangles_taco_merge(benchmark, suite):
    adj = suite["ca_like_powerlaw"]
    pos, idx = graphs.adjacency_to_csr(adj)
    result = benchmark(lambda: twofinger.triangle_count_merge(
        pos, idx, adj.shape[0]))
    assert result[0] == graphs.triangle_count_reference(adj)


def test_report_fig8(benchmark, suite, write_report):
    table = Table("Figure 8: triangle counting work (merge steps / ops)",
                  ["graph", "taco merge", "finch walk", "finch gallop",
                   "gallop speedup"])
    gallop_wins = []
    for name, adj in suite.items():
        expected = graphs.triangle_count_reference(adj)
        pos, idx = graphs.adjacency_to_csr(adj)
        count, merge_steps = twofinger.triangle_count_merge(
            pos, idx, adj.shape[0])
        assert count == expected
        walk_kernel, walk_c = triangle_count(adj, "walk", instrument=True)
        walk_ops = walk_kernel.run()
        assert walk_c.value == expected
        gallop_kernel, gallop_c = triangle_count(adj, "gallop",
                                                 instrument=True)
        gallop_ops = gallop_kernel.run()
        assert gallop_c.value == expected
        table.add(name, merge_steps, walk_ops, gallop_ops,
                  merge_steps / max(gallop_ops, 1))
        gallop_wins.append(merge_steps / max(gallop_ops, 1))
    write_report("fig8_triangles", [table])
    # Galloping beats the merge model on the skewed graphs.
    assert max(gallop_wins) > 1.0
    kernel, _ = triangle_count(suite["p2p_like_sparse"], "gallop")
    benchmark(kernel.run)


def test_report_fig8_amortization(suite, write_report):
    """Compile-once/run-many: one triangle-counting artifact serves
    every same-sized graph in the suite via rebinding."""
    adj = suite["ca_like_powerlaw"]
    table = amortization_table(
        "Figure 8 amortization: gallop triangle count, fresh tensors "
        "per run",
        lambda: triangle_count_program(adj, "gallop")[0])
    write_report("fig8_triangles_amortization", [table])
    assert_amortized(table)


def test_report_fig8_optimization(suite, write_report,
                                  write_json_report):
    """Optimizer on vs off for gallop triangle counting: the A[i,j]
    factor hoists out of the innermost intersection loop, and the
    count must not change."""
    from repro.bench.harness import optimization_table

    adj = suite["ca_like_powerlaw"]
    table, payload = optimization_table(
        "Figure 8 optimization: gallop triangle count (ca-like)",
        lambda: triangle_count_program(adj, "gallop")[0])
    write_report("fig8_triangles_optimization", [table])
    write_json_report("fig8_triangles", payload)
    assert payload["max_abs_diff"] == 0.0
