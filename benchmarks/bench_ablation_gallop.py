"""A1 — ablation: galloping vs stepping as skew varies.

Intersect two sparse vectors whose nonzero counts differ by a swept
ratio.  Stepping costs O(nnz_a + nnz_b); galloping costs
O(min * log(max/min)).  The crossover (galloping wins once the skew is
large) is the design rationale for jumper-before-stepper priority in
Section 6.2.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.bench.harness import Table

N = 20000
SMALL = 12
RATIOS = (1, 4, 16, 64, 256)


def vectors(ratio, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros(N)
    a[rng.choice(N, SMALL, replace=False)] = 1.0
    b = np.zeros(N)
    b[rng.choice(N, SMALL * ratio, replace=False)] = 1.0
    return a, b


def intersect_kernel(a, b, proto, instrument=False):
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("sparse",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    marker = {"walk": fl.walk, "gallop": fl.gallop}[proto]
    prog = fl.forall(i, fl.increment(
        C[()], fl.access(A, marker(i)) * fl.access(B, marker(i))))
    return fl.compile_kernel(prog, instrument=instrument), C


@pytest.mark.parametrize("proto", ["walk", "gallop"])
@pytest.mark.parametrize("ratio", [1, 256])
def test_intersection(benchmark, proto, ratio):
    a, b = vectors(ratio, seed=5)
    kernel, C = intersect_kernel(a, b, proto)
    benchmark(kernel.run)
    assert C.value == pytest.approx(float(a @ b))


def test_report_gallop_crossover(benchmark, write_report):
    table = Table("Ablation A1: stepping vs galloping intersection work",
                  ["nnz ratio", "walk ops", "gallop ops",
                   "gallop speedup"])
    speedups = {}
    for ratio in RATIOS:
        a, b = vectors(ratio, seed=5)
        expected = float(a @ b)
        walk_kernel, walk_c = intersect_kernel(a, b, "walk",
                                               instrument=True)
        walk_ops = walk_kernel.run()
        assert walk_c.value == pytest.approx(expected)
        gallop_kernel, gallop_c = intersect_kernel(a, b, "gallop",
                                                   instrument=True)
        gallop_ops = gallop_kernel.run()
        assert gallop_c.value == pytest.approx(expected)
        speedups[ratio] = walk_ops / max(gallop_ops, 1)
        table.add(ratio, walk_ops, gallop_ops, speedups[ratio])
    write_report("ablation_gallop", [table])
    # Galloping must win increasingly as the skew grows, and by a lot
    # at the extreme.
    assert speedups[256] > speedups[1]
    assert speedups[256] > 10.0
    a, b = vectors(256, seed=5)
    kernel, _ = intersect_kernel(a, b, "gallop")
    benchmark(kernel.run)
