"""E1 — Figure 1: sparse-list x sparse-band dot product.

The motivating example: an iterator-over-nonzeros two-finger merge
visits every nonzero of both operands, while the looplet kernel skips
to the band and randomly accesses it.  We time both and compare the
deterministic work counts.
"""

import os

import numpy as np
import pytest

import repro.lang as fl
from repro.baselines import twofinger
from repro.bench.figures import (
    FIG1_BATCH_N as BATCH_N,
    FIG1_DENSE_N as DENSE_N,
    fig1_dense_inputs,
    fig1_dense_dot_program as dense_dot_program,
    fig1_inputs as make_inputs,
    fig1_looplet_program as looplet_program,
)
from repro.bench.harness import (
    Table,
    amortization_table,
    assert_amortized,
    optimization_table,
    throughput_table,
)
from repro.cin.analyze import program_tensors

# Canonical sizes, seeds, and program builders live in
# repro.bench.figures: the AOT kernel-pack builder compiles the same
# registry, which is what lets a warmed store serve this script's
# compiles.  Change shapes there, not here.
BATCH_ITEMS = 8


def looplet_kernel(a, b, instrument=False):
    prog, C = looplet_program(a, b)
    return fl.compile_kernel(prog, instrument=instrument), C


@pytest.fixture(scope="module")
def inputs():
    return make_inputs()


def test_looplets_list_x_band(benchmark, inputs):
    a, b = inputs
    kernel, C = looplet_kernel(a, b)
    benchmark(kernel.run)
    assert C.value == pytest.approx(float(a @ b))


def test_two_finger_merge(benchmark, inputs):
    a, b = inputs
    a_idx, a_val = twofinger.coords_of(a)
    b_idx, b_val = twofinger.coords_of(b)
    result = benchmark(lambda: twofinger.dot_merge(a_idx, a_val,
                                                   b_idx, b_val))
    assert result[0] == pytest.approx(float(a @ b))


def test_report_fig1(benchmark, inputs, write_report):
    a, b = inputs
    kernel, C = looplet_kernel(a, b, instrument=True)
    looplet_ops = kernel.run()
    a_idx, a_val = twofinger.coords_of(a)
    b_idx, b_val = twofinger.coords_of(b)
    _, merge_steps = twofinger.dot_merge(a_idx, a_val, b_idx, b_val)

    table = Table("Figure 1: list x band dot product (work counts)",
                  ["strategy", "ops", "vs merge"])
    table.add("two-finger merge (TACO model)", merge_steps, 1.0)
    table.add("looplets (skip + random access)", looplet_ops,
              merge_steps / max(looplet_ops, 1))
    write_report("fig1_dot", [table])
    # The looplet kernel's work tracks the band overlap, not total nnz.
    assert looplet_ops < merge_steps
    benchmark(kernel.run)


def test_report_fig1_amortization(write_report):
    """Compile once, rebind many: later compiles of the same structure
    over fresh data are kernel-cache hits that skip lowering."""
    seeds = iter(range(100))
    table = amortization_table(
        "Figure 1 amortization: list x band dot, fresh data per run",
        lambda: looplet_program(*make_inputs(seed=next(seeds)))[0])
    write_report("fig1_dot_amortization", [table])
    assert_amortized(table)


def test_report_fig1_optimization(write_report, write_json_report,
                                  inputs):
    """Optimizer on vs off over identical data, per backend.

    The dense-dense dot is the smoke-perf gate: its inner loop must
    vectorize to ``_np.dot``, which has to beat the scalar-emitted
    loop by at least 5x even at this small size.  The sparse list x
    band kernel is the C backend's gate: its scalar merge loop is
    interpreter-bound (the vectorizer cannot touch it — the python
    rows hover around 1x), so compiled C is the only way it beats the
    interpreter, and it must do so by at least 1.5x with bit-identical
    results.
    """
    da, db = fig1_dense_inputs(DENSE_N)
    dense_table, dense_payload = optimization_table(
        "Figure 1 optimization: dense x dense dot (n=%d)" % DENSE_N,
        lambda: dense_dot_program(da, db)[0])
    a, b = inputs
    sparse_table, sparse_payload = optimization_table(
        "Figure 1 optimization: list x band dot",
        lambda: looplet_program(a, b)[0], backends=("c",))
    write_report("fig1_dot_optimization", [dense_table, sparse_table])
    write_json_report("fig1_dot", {"dense_dot": dense_payload,
                                   "list_x_band_dot": sparse_payload})
    # The vectorized dense dot must be >= 5x faster than the scalar
    # emission, with identical results (CI smoke-perf gate).
    assert dense_payload["max_abs_diff"] < 1e-9
    assert sparse_payload["max_abs_diff"] < 1e-9
    assert dense_payload["speedup"] >= 5.0, dense_payload

    # The C backend gate: the sparse merge kernel must actually run as
    # C (no silent fallback) and beat the interpreter by >= 1.5x with
    # bit-identical output (also encoded in check_regression.py).
    c_row = sparse_payload["backends"]["c"]
    assert c_row["effective"] == "c", sparse_payload
    assert c_row["max_abs_diff"] == 0.0, sparse_payload
    assert c_row["speedup"] >= 1.5, sparse_payload

    kernel = fl.compile_kernel(dense_dot_program(da, db)[0])
    assert "_np.dot" in kernel.source
    assert "_np.dot" not in kernel.raw_source


def test_report_fig1_throughput(write_report, write_json_report):
    """Batched dense-dot throughput across the batch executors.

    The vectorized dense dot spends its time in ``_np.dot``, which
    releases the GIL, so the thread pool must scale: on a multi-core
    machine the threads executor has to reach at least 2x the serial
    executor's items/sec (the CI bench-regression gate).  Outputs and
    aggregate op counts must be identical under every executor.
    """
    rng = np.random.default_rng(23)
    template, _ = dense_dot_program(*fig1_dense_inputs(BATCH_N,
                                                       seed=23))
    datasets = [
        program_tensors(dense_dot_program(rng.random(BATCH_N),
                                          rng.random(BATCH_N))[0])
        for _ in range(BATCH_ITEMS)
    ]
    workers = min(4, os.cpu_count() or 1)
    table, payload = throughput_table(
        "Figure 1 throughput: batched dense dot (n=%d, %d datasets)"
        % (BATCH_N, BATCH_ITEMS),
        template, datasets, max_workers=workers)
    write_report("fig1_dot_throughput", [table])
    write_json_report("fig1_dot_throughput", payload)
    assert payload["identical"], payload
    threads = payload["executors"]["threads"]
    if workers >= 3:
        # The CI scaling gate: GIL-releasing slice kernels must let
        # the thread pool actually run in parallel.  2-core boxes are
        # exempt — 2.0x there would demand perfectly linear scaling
        # with zero pool overhead.
        assert threads["speedup_vs_serial"] >= 2.0, payload
    elif workers == 2:
        assert threads["speedup_vs_serial"] >= 1.2, payload
    processes = payload["executors"]["processes"]
    if workers >= 4:
        # The warm-pool + shared-memory gate: the cheapest kernel in
        # the suite is transport-dominated, so real multi-core scaling
        # here means the data plane is not pickling tensors per batch.
        assert processes["efficiency"] >= 0.7, payload
