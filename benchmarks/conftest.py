"""Shared fixtures for the benchmark suite.

Each figure's module both *times* the compiled kernels (pytest-
benchmark) and regenerates the paper's table/figure as deterministic
operation counts, written to ``benchmarks/reports/<name>.txt`` so the
results survive output capture (they are summarized in
EXPERIMENTS.md).
"""

import os

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


@pytest.fixture(scope="session")
def report_dir():
    os.makedirs(REPORT_DIR, exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    def _write(name, tables):
        path = os.path.join(report_dir, name + ".txt")
        rendered = "\n\n".join(table.render() for table in tables)
        with open(path, "w") as handle:
            handle.write(rendered + "\n")
        print()
        print(rendered)
        return path

    return _write
