"""Shared fixtures for the benchmark suite.

Each figure's module both *times* the compiled kernels (pytest-
benchmark) and regenerates the paper's table/figure as deterministic
operation counts, written to ``benchmarks/reports/<name>.txt`` so the
results survive output capture (they are summarized in
EXPERIMENTS.md).
"""

import json
import os

import pytest

REPORT_DIR = os.path.join(os.path.dirname(__file__), "reports")


def pytest_addoption(parser):
    parser.addoption(
        "--bench-json", action="store_true", default=False,
        help="also write machine-readable benchmark results as "
             "benchmarks/reports/BENCH_<name>.json (compile/run times, "
             "cache hits, optimized-vs-unoptimized speedups)")


@pytest.fixture(scope="session")
def report_dir():
    os.makedirs(REPORT_DIR, exist_ok=True)
    return REPORT_DIR


@pytest.fixture(scope="session")
def write_report(report_dir):
    def _write(name, tables):
        path = os.path.join(report_dir, name + ".txt")
        rendered = "\n\n".join(table.render() for table in tables)
        with open(path, "w") as handle:
            handle.write(rendered + "\n")
        print()
        print(rendered)
        return path

    return _write


@pytest.fixture(scope="session")
def write_json_report(report_dir, request):
    """Write a JSON benchmark payload, gated on ``--bench-json``.

    Returns the written path, or None when the flag is off (so tests
    can call it unconditionally).
    """
    enabled = request.config.getoption("--bench-json")

    def _write(name, payload):
        if not enabled:
            return None
        path = os.path.join(report_dir, "BENCH_%s.json" % name)
        with open(path, "w") as handle:
            json.dump(payload, handle, indent=2, sort_keys=True)
            handle.write("\n")
        return path

    return _write
