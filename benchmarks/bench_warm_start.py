"""Warm start: a warmed persistent store ends recompilation.

The paper's kernels are expensive to specialize and infinitely
reusable per structural key; the persistent on-disk store
(:mod:`repro.store`) carries that reuse across *processes*.  This
benchmark is the proof the CI pipeline gates on: against a warmed
store, a fresh process compiles **zero** kernels for all six
reproduced figures — every compile is a disk hit, and the rebuilt
kernels produce bit-identical outputs to fresh cold compiles.

In CI, ``FL_KERNEL_STORE`` points at a store warmed from the
``warm-kernels`` job's ``.flpack`` artifact.  Locally (no env var)
the benchmark warms a temporary store itself first, so the table is
meaningful anywhere.
"""

import os
import shutil
import tempfile

import pytest

from repro.bench.figures import warm_start_programs
from repro.bench.harness import warm_start_table
from repro.compiler.kernel import compile_kernel, kernel_cache
from repro.store import KernelStore


@pytest.fixture(scope="module")
def store():
    path = os.environ.get("FL_KERNEL_STORE")
    if path:
        yield KernelStore(path)
        return
    tmp = tempfile.mkdtemp(prefix="fl-warm-start-")
    warmed = KernelStore(tmp)
    # Self-warm: compile the six figure kernels once and persist their
    # specs, exactly what `python -m repro.store warm` would do.
    for _, _, make_program, opts in warm_start_programs():
        kernel_cache().clear()
        kernel = compile_kernel(make_program(), cache=False, **opts)
        warmed.save_artifact(kernel.artifact)
    yield warmed
    shutil.rmtree(tmp, ignore_errors=True)


def test_report_warm_start(store, write_report, write_json_report):
    """Zero compiles in the warm process, bit-identical outputs.

    ``hit_rate == 1.0`` is the CI gate: any figure kernel missing the
    store means a fleet process somewhere is silently paying full
    compile cost again (a pack/registry drift, a fingerprint bump
    without a re-warm, or store corruption)."""
    table, payload = warm_start_table(
        "Warm start: six figures against a warmed kernel store",
        warm_start_programs(), store)
    write_report("warm_start", [table])
    write_json_report("warm_start", payload)
    assert payload["identical"], payload
    assert payload["cold_compiles"] == 0, payload
    assert payload["hit_rate"] == 1.0, payload
