"""E7 — Figure 11: all-pairs image similarity.

Pairwise Euclidean distances between linearized images via the paper's
two-statement kernel (norms, then a where-scoped inner product).  The
shape to reproduce: VBL exploits the white background and clustered ink
of digit images; RLE is better on noisier Omniglot-like backgrounds
(run-summation over run pairs); dense does the most work.
"""

import os

import numpy as np
import pytest

from repro.baselines import dense_ref
from repro.bench.figures import (
    FIG11_COUNT as COUNT,
    FIG11_FORMATS as FORMATS,
    fig11_batch as batch,
)
from repro.bench.harness import (
    Table,
    amortization_table,
    assert_amortized,
    throughput_table,
)
from repro.bench.kernels import all_pairs_similarity, all_pairs_similarity_program
from repro.cin.analyze import program_tensors
from repro.workloads import images

# Batch size, formats, and image generation live in
# repro.bench.figures, shared with the AOT kernel-pack builder.


@pytest.mark.parametrize("fmt", FORMATS)
def test_all_pairs_digits(benchmark, fmt):
    data = batch("digit", 20)
    kernel, O = all_pairs_similarity(data, fmt)
    benchmark(kernel.run)
    np.testing.assert_allclose(O.to_numpy(),
                               dense_ref.all_pairs_numpy(data),
                               atol=1e-9)


def test_report_fig11(benchmark, write_report):
    tables = []
    results = {}
    for kind, size in (("digit", 20), ("character", 24)):
        table = Table("Figure 11 (%s-like images, %d images of %dx%d)"
                      % (kind, COUNT, size, size),
                      ["format", "ops", "vs dense"])
        data = batch(kind, size)
        expected = dense_ref.all_pairs_numpy(data)
        ops = {}
        for fmt in FORMATS:
            kernel, O = all_pairs_similarity(data, fmt,
                                             instrument=True)
            ops[fmt] = kernel.run()
            np.testing.assert_allclose(O.to_numpy(), expected,
                                       atol=1e-9)
            table.add(fmt, ops[fmt], ops["dense"] / max(ops[fmt], 1))
        results[kind] = ops
        tables.append(table)
    write_report("fig11_allpairs", tables)
    # Structured formats beat dense on white-background images, with
    # VBL the strongest on clustered digit ink (the paper's shape).
    assert results["digit"]["vbl"] < results["digit"]["dense"]
    assert results["digit"]["vbl"] < results["digit"]["sparse"]
    # On Omniglot-like images the uniform nonzero paper tone defeats
    # sparse and VBL, while RLE still sees long runs (the paper's
    # Figure 11 inversion).
    assert results["character"]["rle"] < results["character"]["sparse"]
    assert results["character"]["rle"] < results["character"]["vbl"]
    data = batch("digit", 20)
    kernel, _ = all_pairs_similarity(data, "vbl")
    benchmark(kernel.run)


def test_report_fig11_amortization(write_report):
    """Compile-once/run-many: the two-statement all-pairs program
    compiles once per format and rebinds over fresh batches."""
    table = amortization_table(
        "Figure 11 amortization: all-pairs (vbl), fresh batch per run",
        lambda: all_pairs_similarity_program(batch("digit", 20),
                                             "vbl")[0])
    write_report("fig11_allpairs_amortization", [table])
    assert_amortized(table)


def test_report_fig11_throughput(write_report, write_json_report):
    """Batched all-pairs throughput: one VBL kernel, many image
    batches.

    The two-statement all-pairs program is the heaviest kernel in the
    suite, so it is the end-to-end check that the batch engine keeps
    multi-output programs (norms, distances, and the scalar
    accumulator) deterministic under every executor.
    """
    batches = [
        images.linearized_batch("digit", COUNT, size=20, seed=seed)
        for seed in range(8)
    ]
    template = all_pairs_similarity_program(batches[0], "vbl")[0]
    datasets = [
        program_tensors(all_pairs_similarity_program(data, "vbl")[0])
        for data in batches
    ]
    workers = min(4, os.cpu_count() or 1)
    table, payload = throughput_table(
        "Figure 11 throughput: batched all-pairs (vbl, %d batches)"
        % len(batches),
        template, datasets, max_workers=workers)
    write_report("fig11_allpairs_throughput", [table])
    write_json_report("fig11_allpairs_throughput", payload)
    assert payload["identical"], payload
    if workers >= 4:
        # The heaviest kernel amortizes transport best: multi-core
        # efficiency is the end-to-end warm-pool acceptance check.
        processes = payload["executors"]["processes"]
        assert processes["efficiency"] >= 0.6, payload


def test_report_fig11_optimization(write_report, write_json_report):
    """Optimizer on vs off for all-pairs similarity in both the vbl
    (sparse coiteration) and dense (vectorizable inner product)
    formats, over identical batches."""
    from repro.bench.harness import optimization_table

    data = batch("digit", 20)
    vbl_table, vbl_payload = optimization_table(
        "Figure 11 optimization: all-pairs (vbl)",
        lambda: all_pairs_similarity_program(data, "vbl")[0])
    dense_table, dense_payload = optimization_table(
        "Figure 11 optimization: all-pairs (dense)",
        lambda: all_pairs_similarity_program(data, "dense")[0])
    write_report("fig11_allpairs_optimization",
                 [vbl_table, dense_table])
    write_json_report("fig11_allpairs", {"vbl": vbl_payload,
                                         "dense": dense_payload})
    assert vbl_payload["max_abs_diff"] < 1e-9
    assert dense_payload["max_abs_diff"] < 1e-9
    # Dense all-pairs has a vectorizable inner product: the optimized
    # variant must not be slower.
    assert dense_payload["speedup"] > 1.0
