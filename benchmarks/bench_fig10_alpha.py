"""E6 — Figure 10: alpha blending on digit-like and sketch-like images.

``A[i,j] = round_u8(alpha*B[i,j] + beta*C[i,j])`` with dense, sparse,
and RLE input formats; the structured variants assemble the output as
runs.  The paper's shape: RLE wins when images have long background
runs (Humansketches), and loses its edge on noisy small images
(Omniglot).
"""

import numpy as np
import pytest

from repro.baselines import dense_ref
from repro.bench.figures import (
    FIG10_ALPHA as ALPHA,
    FIG10_BETA as BETA,
    FIG10_FORMATS as FORMATS,
    fig10_image_pair as image_pair,
)
from repro.bench.harness import Table, amortization_table, assert_amortized
from repro.bench.kernels import alpha_blend, alpha_blend_program

# Blend weights, formats, and image generation live in
# repro.bench.figures, shared with the AOT kernel-pack builder.


@pytest.mark.parametrize("fmt", FORMATS)
def test_blend_digit_images(benchmark, fmt):
    img_b, img_c = image_pair("digit", seed=1)
    kernel, out = alpha_blend(img_b, img_c, ALPHA, BETA, fmt)
    benchmark(kernel.run)
    np.testing.assert_array_equal(
        out.to_numpy(), dense_ref.alpha_blend_numpy(img_b, img_c,
                                                    ALPHA, BETA))


@pytest.mark.parametrize("fmt", FORMATS)
def test_blend_sketch_images(benchmark, fmt):
    img_b, img_c = image_pair("sketch", seed=2)
    kernel, out = alpha_blend(img_b, img_c, ALPHA, BETA, fmt)
    benchmark(kernel.run)
    np.testing.assert_array_equal(
        out.to_numpy(), dense_ref.alpha_blend_numpy(img_b, img_c,
                                                    ALPHA, BETA))


def test_report_fig10(benchmark, write_report):
    tables = []
    shapes = {}
    for kind in ("digit", "character", "sketch"):
        table = Table("Figure 10 (%s-like images): alpha blending work, "
                      "mean of 4 pairs" % kind,
                      ["format", "mean ops", "vs dense"])
        totals = {fmt: 0 for fmt in FORMATS}
        pairs = 4
        for pair in range(pairs):
            img_b, img_c = image_pair(kind, seed=10 + pair)
            expected = dense_ref.alpha_blend_numpy(img_b, img_c,
                                                   ALPHA, BETA)
            for fmt in FORMATS:
                kernel, out = alpha_blend(img_b, img_c, ALPHA, BETA,
                                          fmt, instrument=True)
                totals[fmt] += kernel.run()
                np.testing.assert_array_equal(out.to_numpy(), expected)
        for fmt in FORMATS:
            table.add(fmt, totals[fmt] / pairs,
                      totals["dense"] / max(totals[fmt], 1))
        shapes[kind] = totals
        tables.append(table)
    write_report("fig10_alpha", tables)
    # RLE beats dense whenever background runs dominate.
    assert shapes["sketch"]["rle"] < shapes["sketch"]["dense"]
    assert shapes["digit"]["rle"] < shapes["digit"]["dense"]
    img_b, img_c = image_pair("digit", seed=1)
    kernel, _ = alpha_blend(img_b, img_c, ALPHA, BETA, "rle")
    benchmark(kernel.run)


def test_report_fig10_amortization(write_report):
    """Compile-once/run-many: one RLE blend artifact serves every
    image pair of the same size via rebinding."""
    seeds = iter(range(1, 100))
    table = amortization_table(
        "Figure 10 amortization: RLE alpha blend, fresh images per run",
        lambda: alpha_blend_program(*image_pair("digit",
                                                seed=next(seeds)),
                                    ALPHA, BETA, "rle")[0])
    write_report("fig10_alpha_amortization", [table])
    assert_amortized(table)


def test_report_fig10_optimization(write_report, write_json_report):
    """Optimizer on vs off for the RLE alpha blend; the uint8 output
    must be bit-identical."""
    from repro.bench.harness import optimization_table

    img_b, img_c = image_pair("digit", seed=1)
    table, payload = optimization_table(
        "Figure 10 optimization: RLE alpha blend (digit-like)",
        lambda: alpha_blend_program(img_b, img_c, ALPHA, BETA,
                                    "rle")[0])
    write_report("fig10_alpha_optimization", [table])
    write_json_report("fig10_alpha", payload)
    assert payload["max_abs_diff"] == 0.0
