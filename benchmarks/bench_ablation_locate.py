"""A3 — ablation: plain locate vs bitmap-switch protocols (Fig. 6b/6c).

Random access into dense storage treats every slot as a potential
nonzero; the bitmap protocol wraps each access in a switch on the
occupancy table, letting zero-annihilation skip the multiply.  The
benefit grows with the emptiness of the bitmap operand.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.bench.harness import Table

N = 6000
DENSITIES = (0.01, 0.1, 0.5, 1.0)


def make_pair(density, seed=0):
    rng = np.random.default_rng(seed)
    sparse_side = np.zeros(N)
    support = rng.choice(N, max(1, int(N * density)), replace=False)
    sparse_side[support] = rng.random(len(support)) + 0.1
    dense_side = rng.random(N)
    return sparse_side, dense_side


def dot_kernel(sparse_side, dense_side, fmt, instrument=False):
    A = fl.from_numpy(sparse_side, (fmt,), name="A")
    B = fl.from_numpy(dense_side, ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
    return fl.compile_kernel(prog, instrument=instrument), C


@pytest.mark.parametrize("fmt", ["dense", "bitmap"])
def test_bitmap_vs_dense(benchmark, fmt):
    sparse_side, dense_side = make_pair(0.01, seed=4)
    kernel, C = dot_kernel(sparse_side, dense_side, fmt)
    benchmark(kernel.run)
    assert C.value == pytest.approx(float(sparse_side @ dense_side))


def test_report_locate_ablation(benchmark, write_report):
    table = Table("Ablation A3: locate (dense) vs bitmap-switch work",
                  ["density", "dense ops", "bitmap ops", "bitmap gain"])
    gains = {}
    for density in DENSITIES:
        sparse_side, dense_side = make_pair(density, seed=4)
        expected = float(sparse_side @ dense_side)
        dense_kernel, dense_c = dot_kernel(sparse_side, dense_side,
                                           "dense", instrument=True)
        dense_ops = dense_kernel.run()
        assert dense_c.value == pytest.approx(expected)
        bitmap_kernel, bitmap_c = dot_kernel(sparse_side, dense_side,
                                             "bitmap", instrument=True)
        bitmap_ops = bitmap_kernel.run()
        assert bitmap_c.value == pytest.approx(expected)
        gains[density] = dense_ops / max(bitmap_ops, 1)
        table.add(density, dense_ops, bitmap_ops, gains[density])
    write_report("ablation_locate", [table])
    # The bitmap's update skipping pays off only in sparse regimes —
    # at full density the extra branch is pure overhead.
    assert gains[0.01] > gains[1.0]
    sparse_side, dense_side = make_pair(0.01, seed=4)
    kernel, _ = dot_kernel(sparse_side, dense_side, "bitmap")
    benchmark(kernel.run)
