"""E5 — Figure 9: dense vs sparse convolution as sparsity increases.

A masked 2D convolution over a randomly sparse grid.  The paper's
shape: the sparse kernel scales linearly with density and overtakes the
dense kernel below ~5% density (9.5x at 1% on their testbed).  The
grid is scaled to pure-Python sizes (DESIGN.md).
"""

import numpy as np
import pytest

from repro.baselines import dense_ref
from repro.bench.figures import (
    FIG9_DENSITIES as DENSITIES,
    FIG9_FILTER as FILTER,
    FIG9_GRID as GRID,
    fig9_grid as make_grid,
)
from repro.bench.harness import Table, amortization_table, assert_amortized
from repro.bench.kernels import dense_convolution, masked_convolution, masked_convolution_program

# Grid size, filter, and densities live in repro.bench.figures,
# shared with the AOT kernel-pack builder.


@pytest.mark.parametrize("density", [0.01, 0.10])
def test_sparse_convolution(benchmark, density):
    grid = make_grid(density, seed=3)
    kernel, C = masked_convolution(grid, FILTER)
    benchmark(kernel.run)
    np.testing.assert_allclose(
        C.to_numpy(), dense_ref.masked_convolve2d_numpy(grid, FILTER),
        atol=1e-12)


def test_dense_convolution(benchmark):
    grid = make_grid(0.05, seed=3)
    kernel, C = dense_convolution(grid, FILTER)
    benchmark(kernel.run)
    np.testing.assert_allclose(
        C.to_numpy(), dense_ref.convolve2d_numpy(grid, FILTER),
        atol=1e-12)


def test_report_fig9(benchmark, write_report):
    table = Table("Figure 9: convolution work vs density "
                  "(5x5 filter, %dx%d grid)" % (GRID, GRID),
                  ["density", "dense ops", "sparse ops",
                   "sparse speedup"])
    speedup_at = {}
    for density in DENSITIES:
        grid = make_grid(density, seed=3)
        dense_kernel, _ = dense_convolution(grid, FILTER,
                                            instrument=True)
        dense_ops = dense_kernel.run()
        sparse_kernel, C = masked_convolution(grid, FILTER,
                                              instrument=True)
        sparse_ops = sparse_kernel.run()
        np.testing.assert_allclose(
            C.to_numpy(), dense_ref.masked_convolve2d_numpy(grid, FILTER),
            atol=1e-12)
        speedup_at[density] = dense_ops / max(sparse_ops, 1)
        table.add(density, dense_ops, sparse_ops, speedup_at[density])
    write_report("fig9_convolution", [table])
    # The paper's shape: sparse wins at low density, and the advantage
    # shrinks monotonically as density rises.
    assert speedup_at[0.01] > speedup_at[0.20]
    assert speedup_at[0.01] > 2.0
    kernel, _ = masked_convolution(make_grid(0.01, seed=3), FILTER)
    benchmark(kernel.run)


def test_report_fig9_amortization(write_report):
    """Compile-once/run-many: one masked-convolution artifact serves
    every density level (same structure, different data)."""
    densities = iter(list(DENSITIES) * 2)
    table = amortization_table(
        "Figure 9 amortization: masked convolution, fresh grid per run",
        lambda: masked_convolution_program(
            make_grid(next(densities), seed=3), FILTER)[0])
    write_report("fig9_convolution_amortization", [table])
    assert_amortized(table)


def test_report_fig9_optimization(write_report, write_json_report):
    """Optimizer on vs off for the masked convolution over identical
    grids; outputs must match exactly (no dense loop reassociates)."""
    from repro.bench.harness import optimization_table

    grid = make_grid(0.05, seed=3)
    table, payload = optimization_table(
        "Figure 9 optimization: masked convolution (5% density)",
        lambda: masked_convolution_program(grid, FILTER)[0])
    write_report("fig9_convolution_optimization", [table])
    write_json_report("fig9_convolution", payload)
    assert payload["max_abs_diff"] < 1e-12
