"""E2/E3 — Figure 7: SpMSpV coiteration strategies.

``y[i] += A[i,j] * x[j]`` with the merge in the inner loop, over a
Harwell-Boeing-like matrix suite, under two x regimes: 10% dense
(Fig. 7a) and exactly 10 nonzeros (Fig. 7b).  Strategies: two-finger
walk, leader A (gallop A), follower A (gallop x), both galloping, and
the VBL format.  The TACO-model baseline is the hand-written two-finger
merge.
"""

import os

import numpy as np
import pytest

from repro.baselines import twofinger
from repro.bench.figures import fig7_suite, fig7_vector
from repro.bench.harness import (
    Table,
    amortization_table,
    assert_amortized,
    summarize,
    throughput_table,
)
from repro.bench.kernels import SPMSPV_STRATEGIES, spmspv, spmspv_program
from repro.cin.analyze import program_tensors

# Suite size and vector regimes live in repro.bench.figures, shared
# with the AOT kernel-pack builder.
make_x = fig7_vector


@pytest.fixture(scope="module")
def suite():
    return fig7_suite()


@pytest.mark.parametrize("strategy", SPMSPV_STRATEGIES)
@pytest.mark.parametrize("regime", ["dense10pct", "count10"])
def test_spmspv_strategy(benchmark, suite, strategy, regime):
    mat = suite["pores_like_clustered"]
    vec = make_x(regime, seed=7)
    kernel, y = spmspv(mat, vec, strategy)
    benchmark(kernel.run)
    np.testing.assert_allclose(y.to_numpy(), mat @ vec)


@pytest.mark.parametrize("regime", ["dense10pct", "count10"])
def test_spmspv_taco_baseline(benchmark, suite, regime):
    mat = suite["pores_like_clustered"]
    vec = make_x(regime, seed=7)
    pos, idx, val = twofinger.csr_of(mat)
    x_idx, x_val = twofinger.coords_of(vec)
    result = benchmark(lambda: twofinger.spmspv_merge(
        pos, idx, val, x_idx, x_val, mat.shape[0]))
    np.testing.assert_allclose(result[0], mat @ vec)


@pytest.mark.parametrize("regime", ["dense10pct", "count10"])
def test_report_fig7(benchmark, suite, regime, write_report):
    """Work-count speedups over the TACO-model merge, across the suite
    (the boxes of Figure 7 as min/median/max)."""
    vec = make_x(regime, seed=7)
    speedups = {s: [] for s in SPMSPV_STRATEGIES}
    for name, mat in suite.items():
        pos, idx, val = twofinger.csr_of(mat)
        x_idx, x_val = twofinger.coords_of(vec)
        ref, merge_steps = twofinger.spmspv_merge(
            pos, idx, val, x_idx, x_val, mat.shape[0])
        for strategy in SPMSPV_STRATEGIES:
            kernel, y = spmspv(mat, vec, strategy, instrument=True)
            ops = kernel.run()
            np.testing.assert_allclose(y.to_numpy(), ref)
            speedups[strategy].append(merge_steps / max(ops, 1))
    table = Table("Figure 7 (%s): SpMSpV work speedup vs two-finger "
                  "merge over HB-like suite" % regime,
                  ["strategy", "min", "median", "max"])
    for strategy, values in speedups.items():
        lo, mid, hi = summarize(values)
        table.add(strategy, lo, mid, hi)
    write_report("fig7_spmspv_%s" % regime, [table])
    if regime == "count10":
        # With a very sparse x, skipping strategies beat plain walking
        # somewhere in the suite (the paper's big-win regime).
        best_skip = max(max(speedups["follow_A"]),
                        max(speedups["vbl"]))
        assert best_skip > max(speedups["walk_walk"])
    kernel, _ = spmspv(suite["pores_like_clustered"], vec, "walk_walk")
    benchmark(kernel.run)


def test_report_fig7_amortization(suite, write_report):
    """Compile-once/run-many: the SpMSpV structure compiles on the
    first matrix and rebinds (cache hit) for every other matrix of the
    same shape/format in the suite."""
    mats = iter(list(suite.values()) * 2)
    vec = make_x("count10", seed=7)
    table = amortization_table(
        "Figure 7 amortization: SpMSpV, fresh matrix per run",
        lambda: spmspv_program(next(mats), vec, "walk_walk")[0])
    write_report("fig7_spmspv_amortization", [table])
    assert_amortized(table)


def test_report_fig7_throughput(suite, write_report,
                                write_json_report):
    """Batched SpMSpV throughput: one kernel, the whole matrix suite.

    The scalar coiteration kernel holds the GIL, so this is the
    process-pool regime: each worker rebuilds the kernel from its
    serialized spec once and then runs every matrix it is handed.
    Outputs and aggregate op counts must match the serial executor
    bit for bit.
    """
    vec = make_x("dense10pct", seed=7)
    mats = list(suite.values()) * 2  # 8+ datasets from the 4 matrices
    template = spmspv_program(mats[0], vec, "walk_walk")[0]
    datasets = [
        program_tensors(spmspv_program(mat, vec, "walk_walk")[0])
        for mat in mats
    ]
    workers = min(4, os.cpu_count() or 1)
    table, payload = throughput_table(
        "Figure 7 throughput: batched SpMSpV over the HB-like suite "
        "(%d datasets)" % len(datasets),
        template, datasets, max_workers=workers)
    write_report("fig7_spmspv_throughput", [table])
    write_json_report("fig7_spmspv_throughput", payload)
    assert payload["identical"], payload
    if workers >= 4:
        # GIL-bound scalar coiteration only scales across processes;
        # the warm pool must turn the fleet into real throughput.
        processes = payload["executors"]["processes"]
        assert processes["efficiency"] >= 0.6, payload


def test_report_fig7_optimization(suite, write_report,
                                  write_json_report):
    """Optimizer on vs off for SpMSpV over identical data: the sparse
    coiteration gains come from LICM/CSE/dead-store cleanup, and the
    results must not change."""
    from repro.bench.harness import optimization_table

    mat = suite["pores_like_clustered"]
    vec = make_x("dense10pct", seed=7)
    table, payload = optimization_table(
        "Figure 7 optimization: SpMSpV walk_walk (pores-like)",
        lambda: spmspv_program(mat, vec, "walk_walk")[0])
    write_report("fig7_spmspv_optimization", [table])
    write_json_report("fig7_spmspv", payload)
    assert payload["max_abs_diff"] < 1e-9
