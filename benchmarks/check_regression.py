#!/usr/bin/env python3
"""Benchmark-regression gate: compare fresh BENCH_*.json reports to baselines.

The bench suite writes machine-readable payloads to
``benchmarks/reports/BENCH_<fig>.json`` when run with ``--bench-json``.
This script compares every committed baseline under
``benchmarks/baselines/`` against its freshly generated counterpart and
fails (exit code 1) when the perf trajectory regresses:

* a run-time metric (``run_s``, ``wall_seconds``, or a per-stage
  batch overhead: ``serialize_s``, ``transport_s``, ``execute_s``,
  ``collect_s``) got more than ``--max-regression`` slower (default
  0.30, i.e. 30%),
* a speedup metric (``speedup``, ``speedup_vs_serial``) dropped by more
  than the same fraction, or a scaling ``efficiency`` dropped while
  the worker count stayed the same (efficiency is only comparable
  between runs with equal ``max_workers``),
* a deterministic op count (``total_ops``) *increased* — op counts do
  not depend on machine speed, so any growth is a real work regression,
* a determinism flag (``identical``, ``bit_identical``) flipped from
  true to false, or an output deviation (``max_abs_diff``) grew past
  tolerance,
* an absolute speedup gate was missed (e.g. the vectorized dense dot
  must stay at least 5x over the scalar emission),
* a kernel-store metric regressed: a ``hit_rate`` dropped below its
  baseline, a ``disk_hit`` flag flipped to false, or ``cold_compiles``
  grew — a warm-start benchmark silently falling back to cold
  compilation is a fleet-wide cost regression even when every kernel
  still runs fast, or
* a baseline report has no fresh counterpart (the benchmark silently
  stopped running).

With ``--store DIR`` the persistent kernel store's cross-process
counters are read after the fact and printed; ``--min-hit-rate``
turns them into a gate (fail when the whole benchmark run's disk-hit
rate is below the floor, or when the store saw no lookups at all —
i.e. ``FL_KERNEL_STORE`` silently stopped being honored).
``--github-summary`` appends a markdown digest to the file named by
``$GITHUB_STEP_SUMMARY`` when that variable is set.

Fresh reports with no committed baseline are listed as warnings: commit
them under ``benchmarks/baselines/`` to start tracking them.  To
refresh every baseline from the current reports (after an intentional
perf change, or on new hardware), run with ``--refresh``.

Baselines are machine-specific for the wall-clock metrics; CI compares
runner against runner, and a local refresh is required before local
comparisons mean anything.  The op-count and determinism checks are
machine-independent.
"""

import argparse
import json
import os
import shutil
import sys

#: Numeric tolerance below which ``max_abs_diff`` values are noise.
DIFF_TOLERANCE = 1e-9

#: Run-time comparisons are skipped when both sides are under this
#: many seconds: at that scale timer/interpreter jitter dominates any
#: real signal.  Micro-kernels stay gated through their op counts,
#: speedups, and determinism flags, which are noise-free.
MIN_SECONDS = 0.005

#: Absolute floors applied to fresh payloads, independent of the
#: baseline: (report name, dotted metric path, floor, gating path,
#: minimum workers).  When the gating path is given, the gate only
#: applies if its value is >= the gate's worker minimum — parallel
#: floors are unreachable on small boxes, where pool overhead eats
#: the headroom, so the gates are nproc-aware and self-skip there.
MIN_GATE_WORKERS = 3

#: Scaling-efficiency floors only mean something on a genuinely
#: multi-core runner: below four workers the "ideal" is too close to
#: the overhead noise to gate on.
EFFICIENCY_GATE_WORKERS = 4

SPEEDUP_GATES = [
    ("BENCH_fig1_dot", "dense_dot.speedup", 5.0, None, 0),
    # The C backend gate: the scalar sparse merge loop — where the
    # vectorizer cannot help and the python rows sit around 1x — must
    # beat the interpreter by >= 1.5x once compiled to native code.
    ("BENCH_fig1_dot", "list_x_band_dot.backends.c.speedup", 1.5,
     None, 0),
    (
        "BENCH_fig1_dot_throughput",
        "executors.threads.speedup_vs_serial",
        2.0,
        "executors.threads.max_workers",
        MIN_GATE_WORKERS,
    ),
    # The warm-pool + shared-memory data plane: process workers must
    # deliver real multi-core scaling, not merely beat serial.  The
    # dense-dot batch is the hardest case (cheapest kernel, transport
    # dominated), hence the highest floor.
    (
        "BENCH_fig1_dot_throughput",
        "executors.processes.efficiency",
        0.7,
        "executors.processes.max_workers",
        EFFICIENCY_GATE_WORKERS,
    ),
    (
        "BENCH_fig7_spmspv_throughput",
        "executors.processes.efficiency",
        0.6,
        "executors.processes.max_workers",
        EFFICIENCY_GATE_WORKERS,
    ),
    (
        "BENCH_fig11_allpairs_throughput",
        "executors.processes.efficiency",
        0.6,
        "executors.processes.max_workers",
        EFFICIENCY_GATE_WORKERS,
    ),
]


def flatten(payload, prefix=""):
    """Flatten nested dicts/lists to ``{dotted.path: leaf_value}``."""
    flat = {}
    if isinstance(payload, dict):
        for key, value in payload.items():
            path = "%s.%s" % (prefix, key) if prefix else str(key)
            flat.update(flatten(value, path))
    elif isinstance(payload, list):
        for position, value in enumerate(payload):
            path = "%s.%d" % (prefix, position) if prefix else str(position)
            flat.update(flatten(value, path))
    else:
        flat[prefix] = payload
    return flat


def _supporting_times(flat, path):
    """The timing values a speedup metric at ``path`` was derived
    from: sibling ``variants.*.run_s`` entries for optimization
    payloads, sibling ``wall_seconds`` entries (all executors) for
    throughput payloads."""
    if "." in path:
        parent, leaf = path.rsplit(".", 1)
    else:
        parent, leaf = "", path
    times = []
    if leaf == "speedup":
        prefix = parent + "." if parent else ""
        times = [
            value
            for key, value in flat.items()
            if key.startswith(prefix + "variants.") and key.endswith(".run_s")
        ]
    elif leaf in ("speedup_vs_serial", "efficiency"):
        # parent is "...executors.<name>"; compare against every
        # executor's wall time under the same "...executors." scope.
        scope = parent.rsplit(".", 1)[0] + "." if "." in parent else ""
        times = [
            value
            for key, value in flat.items()
            if key.startswith(scope) and key.endswith(".wall_seconds")
        ]
    return times


def compare_payloads(name, baseline, fresh, max_regression=0.30,
                     min_seconds=MIN_SECONDS):
    """Compare one baseline/fresh report pair.

    Returns ``(failures, checked)``: human-readable failure strings
    and the number of metrics that were actually compared.  Only
    known metric leaves are compared; noisy values (compile times,
    cache occupancy, titles) are ignored, and run-time metrics where
    both sides sit under ``min_seconds`` are treated as unmeasurable
    jitter.
    """
    failures = []
    checked = 0
    base_flat = flatten(baseline)
    fresh_flat = flatten(fresh)
    for path, base_value in sorted(base_flat.items()):
        leaf = path.rsplit(".", 1)[-1]
        if leaf in ("run_s", "wall_seconds", "serialize_s",
                    "transport_s", "execute_s", "collect_s"):
            if path not in fresh_flat:
                failures.append("%s: %s missing from fresh report" % (name, path))
                continue
            if base_value < min_seconds and fresh_flat[path] < min_seconds:
                continue
            checked += 1
            limit = base_value * (1.0 + max_regression)
            if fresh_flat[path] > limit:
                failures.append(
                    "%s: %s regressed %.3gs -> %.3gs (limit %.3gs)"
                    % (name, path, base_value, fresh_flat[path], limit)
                )
        elif leaf in ("speedup", "speedup_vs_serial", "efficiency"):
            if path not in fresh_flat:
                failures.append("%s: %s missing from fresh report" % (name, path))
                continue
            if leaf == "efficiency":
                # Efficiency = speedup / workers: comparing runs with
                # different fleet sizes (e.g. a 1-core refresh against
                # a 4-core CI runner) is meaningless, so only gate when
                # both sides measured the same max_workers.  The
                # absolute SPEEDUP_GATES floors still apply.
                workers_path = path.rsplit(".", 1)[0] + ".max_workers"
                if base_flat.get(workers_path) != fresh_flat.get(workers_path):
                    continue
            times = _supporting_times(base_flat, path) + _supporting_times(
                fresh_flat, path
            )
            if times and any(value < min_seconds for value in times):
                # A ratio is only trustworthy when both of its sides
                # are measurable: one sub-floor side (e.g. a dense dot
                # vectorized down to microseconds) makes the whole
                # ratio jitter.  Absolute SPEEDUP_GATES still apply.
                continue
            checked += 1
            floor = base_value * (1.0 - max_regression)
            if fresh_flat[path] < floor:
                failures.append(
                    "%s: %s dropped %.3gx -> %.3gx (floor %.3gx)"
                    % (name, path, base_value, fresh_flat[path], floor)
                )
        elif leaf == "total_ops":
            if path not in fresh_flat:
                failures.append("%s: %s missing from fresh report" % (name, path))
                continue
            checked += 1
            if (
                base_value is not None
                and fresh_flat[path] is not None
                and fresh_flat[path] > base_value
            ):
                failures.append(
                    "%s: %s op count grew %d -> %d (machine-independent "
                    "work regression)" % (name, path, base_value, fresh_flat[path])
                )
        elif leaf == "hit_rate":
            if path not in fresh_flat:
                failures.append("%s: %s missing from fresh report" % (name, path))
                continue
            checked += 1
            if fresh_flat[path] < base_value:
                failures.append(
                    "%s: %s store hit rate dropped %.1f%% -> %.1f%% "
                    "(cold compiles crept back in)"
                    % (name, path, 100 * base_value, 100 * fresh_flat[path])
                )
        elif leaf == "cold_compiles":
            if path not in fresh_flat:
                failures.append("%s: %s missing from fresh report" % (name, path))
                continue
            checked += 1
            if fresh_flat[path] > base_value:
                failures.append(
                    "%s: %s grew %d -> %d (the warm process is "
                    "compiling again)" % (name, path, base_value, fresh_flat[path])
                )
        elif leaf in ("identical", "bit_identical", "disk_hit"):
            if path not in fresh_flat:
                failures.append("%s: %s missing from fresh report" % (name, path))
                continue
            checked += 1
            if base_value and not fresh_flat[path]:
                reason = (
                    "the store no longer serves this kernel"
                    if leaf == "disk_hit"
                    else "executors no longer agree"
                )
                failures.append(
                    "%s: %s flipped to false (%s)" % (name, path, reason)
                )
        elif leaf == "max_abs_diff":
            if path not in fresh_flat:
                failures.append("%s: %s missing from fresh report" % (name, path))
                continue
            checked += 1
            limit = max(base_value, DIFF_TOLERANCE)
            if fresh_flat[path] > limit:
                failures.append(
                    "%s: %s output deviation grew %.3g -> %.3g"
                    % (name, path, base_value, fresh_flat[path])
                )
    return failures, checked


def check_gates(name, fresh):
    """Absolute speedup-gate failures for one fresh report."""
    failures = []
    flat = flatten(fresh)
    for gate_name, path, floor, requires, min_workers in SPEEDUP_GATES:
        if gate_name != name:
            continue
        if requires is not None and flat.get(requires, 0) < min_workers:
            continue
        value = flat.get(path)
        if value is None:
            failures.append("%s: gate metric %s missing" % (name, path))
        elif value < floor:
            failures.append(
                "%s: gate miss: %s is %.3gx, floor %.3gx" % (name, path, value, floor)
            )
    return failures


def check_store(store_dir, min_hit_rate):
    """(failures, stats) for the persistent kernel store's counters.

    The counters persist in the store directory across processes, so
    this runs *after* the benchmark suite exited and still sees every
    lookup the suite made.  A store that saw zero lookups fails the
    gate outright: it means the suite ran without the disk tier (env
    var lost, store misconfigured) and "no regression" would be
    vacuous.
    """
    try:
        import repro.store
    except ModuleNotFoundError:
        # Running as a script against the source tree (no installed
        # package): benchmarks/ sits next to src/.
        sys.path.insert(
            0,
            os.path.join(os.path.dirname(os.path.dirname(os.path.abspath(__file__))), "src"),
        )
        import repro.store

    stats = repro.store.KernelStore(store_dir).stats()
    failures = []
    lookups = stats["hits"] + stats["misses"]
    if min_hit_rate is not None:
        if lookups == 0:
            failures.append(
                "store %s: no lookups recorded — the benchmark run "
                "never consulted the disk tier (is FL_KERNEL_STORE "
                "set?)" % store_dir
            )
        elif stats["hit_rate"] < min_hit_rate:
            failures.append(
                "store %s: disk-hit rate %.1f%% below the %.1f%% floor "
                "(%d cold compile(s) crept back in)"
                % (
                    store_dir,
                    100 * stats["hit_rate"],
                    100 * min_hit_rate,
                    stats["misses"],
                )
            )
    return failures, stats


def write_github_summary(lines):
    """Append markdown ``lines`` to $GITHUB_STEP_SUMMARY, if set."""
    path = os.environ.get("GITHUB_STEP_SUMMARY")
    if not path:
        return
    with open(path, "a") as handle:
        handle.write("\n".join(lines) + "\n")


def report_names(directory):
    """Sorted BENCH_*.json names (without extension) in ``directory``."""
    if not os.path.isdir(directory):
        return []
    return sorted(
        os.path.splitext(entry)[0]
        for entry in os.listdir(directory)
        if entry.startswith("BENCH_") and entry.endswith(".json")
    )


def load(directory, name):
    with open(os.path.join(directory, name + ".json")) as handle:
        return json.load(handle)


def refresh_baselines(reports_dir, baselines_dir):
    """Copy every fresh BENCH_*.json report over the baselines."""
    os.makedirs(baselines_dir, exist_ok=True)
    names = report_names(reports_dir)
    for name in names:
        shutil.copyfile(
            os.path.join(reports_dir, name + ".json"),
            os.path.join(baselines_dir, name + ".json"),
        )
        print("refreshed %s" % name)
    return 0 if names else 2


def main(argv=None):
    here = os.path.dirname(os.path.abspath(__file__))
    parser = argparse.ArgumentParser(
        description="fail when committed benchmark baselines regress"
    )
    parser.add_argument(
        "--baselines",
        default=os.path.join(here, "baselines"),
        help="directory of committed baseline BENCH_*.json files",
    )
    parser.add_argument(
        "--reports",
        default=os.path.join(here, "reports"),
        help="directory of freshly generated BENCH_*.json files",
    )
    parser.add_argument(
        "--max-regression",
        type=float,
        default=0.30,
        help="fractional run-time/speedup tolerance (default 0.30)",
    )
    parser.add_argument(
        "--min-seconds",
        type=float,
        default=MIN_SECONDS,
        help="ignore run-time metrics where both sides are under this "
        "many seconds (timer jitter; default %g)" % MIN_SECONDS,
    )
    parser.add_argument(
        "--refresh",
        action="store_true",
        help="overwrite the baselines with the current reports and exit",
    )
    parser.add_argument(
        "--store",
        default=None,
        help="persistent kernel-store directory to audit after the "
        "comparison (reads its cross-process counters)",
    )
    parser.add_argument(
        "--min-hit-rate",
        type=float,
        default=None,
        help="fail unless the store's disk-hit rate reaches this "
        "floor (requires --store; 0.0-1.0)",
    )
    parser.add_argument(
        "--github-summary",
        action="store_true",
        help="append a markdown digest to $GITHUB_STEP_SUMMARY",
    )
    args = parser.parse_args(argv)

    if args.refresh:
        return refresh_baselines(args.reports, args.baselines)

    baseline_names = report_names(args.baselines)
    fresh_names = report_names(args.reports)
    if not baseline_names:
        print("no baselines under %s" % args.baselines)
        return 2

    failures = []
    compared = 0
    for name in baseline_names:
        if name not in fresh_names:
            failures.append(
                "%s: baseline has no fresh report (benchmark did not run)" % name
            )
            continue
        baseline = load(args.baselines, name)
        fresh = load(args.reports, name)
        pair_failures, checked = compare_payloads(
            name,
            baseline,
            fresh,
            max_regression=args.max_regression,
            min_seconds=args.min_seconds,
        )
        pair_failures.extend(check_gates(name, fresh))
        compared += checked
        status = "FAIL" if pair_failures else "ok"
        print("%-40s %s (%d metrics)" % (name, status, checked))
        failures.extend(pair_failures)
    for name in fresh_names:
        if name not in baseline_names:
            print(
                "%-40s new (no baseline; commit benchmarks/baselines/%s.json "
                "to track it)" % (name, name)
            )

    store_stats = None
    if args.store:
        store_failures, store_stats = check_store(args.store, args.min_hit_rate)
        failures.extend(store_failures)
        print(
            "store %s: %d hits / %d misses (%.1f%% hit rate), "
            "%d entr%s, %d quarantined"
            % (
                args.store,
                store_stats["hits"],
                store_stats["misses"],
                100 * store_stats["hit_rate"],
                store_stats["entries"],
                "y" if store_stats["entries"] == 1 else "ies",
                store_stats["quarantined"],
            )
        )

    if args.github_summary:
        lines = ["### Benchmark regression gate", ""]
        if store_stats is not None:
            lines += [
                "| store metric | value |",
                "| --- | --- |",
                "| hits | %d |" % store_stats["hits"],
                "| misses | %d |" % store_stats["misses"],
                "| hit rate | %.1f%% |" % (100 * store_stats["hit_rate"]),
                "| entries | %d |" % store_stats["entries"],
                "| bytes | %d |" % store_stats["bytes"],
                "| quarantined | %d |" % store_stats["quarantined"],
                "",
            ]
        if failures:
            lines.append("**%d regression(s):**" % len(failures))
            lines += ["- %s" % failure for failure in failures]
        else:
            lines.append("all %d compared metrics within tolerance" % compared)
        write_github_summary(lines)

    if failures:
        print("\n%d regression(s) against committed baselines:" % len(failures))
        for failure in failures:
            print("  - %s" % failure)
        return 1
    print("\nall %d compared metrics within tolerance" % compared)
    return 0


if __name__ == "__main__":
    sys.exit(main())
