"""Tests for the mask protocol and custom looplet formats."""

import numpy as np
import pytest

import repro.lang as fl
from repro.formats.custom import LoopletTensor
from repro.ir import Literal, build
from repro.looplets import Lookup, Phase, Pipeline, Run
from repro.modifiers import one_hot
from repro.util.errors import FormatError


class TestOneHotMask:
    def test_scatter_becomes_sequential(self):
        """@∀ i A[i] = B[f(i)] via a sieve over the mask protocol."""
        src = np.array([10.0, 20.0, 30.0, 40.0, 50.0])
        B = fl.from_numpy(src, ("dense",), name="B")
        A = fl.zeros(5, name="A")
        i, j = fl.indices("i", "j")
        # f(i) = (2 * i) % 5 — a permutation read.
        f_i = fl.call(fl.ops.MOD, 2 * i, 5)
        mask = one_hot(5, f_i, name="mask")
        prog = fl.forall(i, fl.forall(j, fl.sieve(
            mask[j], fl.store(A[i], B[j]))))
        kernel = fl.compile_kernel(prog, instrument=True)
        ops_count = kernel.run()
        expected = np.array([src[(2 * k) % 5] for k in range(5)])
        np.testing.assert_allclose(A.to_numpy(), expected)
        # One guarded store per i — the inner loop never materializes.
        assert ops_count == 5

    def test_mask_counts_one_position(self):
        mask = one_hot(10, Literal(4), name="m")
        C = fl.Scalar(name="C")
        j = fl.indices("j")
        prog = fl.forall(j, fl.increment(C[()], fl.call(
            fl.ops.IFELSE, mask[j], 1.0, 0.0)))
        fl.execute(prog)
        assert C.value == 1.0

    def test_mask_intersected_with_sparse(self):
        vec = np.zeros(10)
        vec[[2, 4, 7]] = [1.0, 2.0, 3.0]
        V = fl.from_numpy(vec, ("sparse",), name="V")
        mask = one_hot(10, Literal(4), name="m")
        C = fl.Scalar(name="C")
        j = fl.indices("j")
        # Multiplying by a boolean mask: False annihilates (0 * x).
        prog = fl.forall(j, fl.increment(C[()], mask[j] * V[j]))
        fl.execute(prog)
        assert C.value == 2.0


class TestLoopletTensor:
    def test_function_defined_array(self):
        """The paper's f(i) = i^2 virtual array."""
        A = LoopletTensor(6, lambda ctx, pos: Lookup(
            lambda j: build.times(j, j)), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == sum(k * k for k in range(6))

    def test_composes_with_stored_formats(self):
        vec = np.zeros(6)
        vec[[1, 4]] = [2.0, 3.0]
        V = fl.from_numpy(vec, ("sparse",), name="V")
        A = LoopletTensor(6, lambda ctx, pos: Lookup(
            lambda j: build.plus(j, 1)), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i] * V[i])))
        assert C.value == 2.0 * 2 + 5.0 * 3

    def test_structured_virtual_tensor_skips_work(self):
        half = LoopletTensor(100, lambda ctx, pos: Pipeline([
            Phase(Run(Literal(0.0)), stride=Literal(50)),
            Phase(Run(Literal(1.0))),
        ]), name="half")
        dense = fl.from_numpy(np.ones(100), ("dense",), name="D")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.increment(C[()], half[i] * dense[i])),
            instrument=True)
        ops_count = kernel.run()
        assert C.value == 50.0
        # The zero phase vanishes; the one phase run-sums per element?
        # No — dense is a lookup, so 50 adds remain, but never 100.
        assert ops_count <= 51

    def test_validation(self):
        with pytest.raises(FormatError):
            LoopletTensor(-1, lambda ctx, pos: Run(Literal(0.0)))
        with pytest.raises(FormatError):
            LoopletTensor(5, 42)
        tensor = LoopletTensor(5, lambda ctx, pos: Run(Literal(0.0)))
        with pytest.raises(FormatError):
            tensor[fl.indices("i"), fl.indices("j")]

    def test_extent_inferred_from_shape(self):
        A = LoopletTensor(7, lambda ctx, pos: Run(Literal(2.0)),
                          name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        fl.execute(fl.forall(i, fl.increment(C[()], A[i])))
        assert C.value == 14.0
