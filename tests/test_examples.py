"""Every example script must run cleanly (they assert internally)."""

import os
import subprocess
import sys

import pytest

_EXAMPLES_DIR = os.path.join(os.path.dirname(__file__), os.pardir,
                             "examples")
_EXAMPLES = sorted(name for name in os.listdir(_EXAMPLES_DIR)
                   if name.endswith(".py"))


def _subprocess_env():
    """Child processes need `repro` importable even when the parent
    found it through pytest's `pythonpath` ini (not the environment)."""
    src = os.path.abspath(os.path.join(os.path.dirname(__file__),
                                       os.pardir, "src"))
    env = dict(os.environ)
    existing = env.get("PYTHONPATH")
    env["PYTHONPATH"] = (src + os.pathsep + existing) if existing else src
    return env


def test_examples_are_present():
    assert len(_EXAMPLES) >= 3  # the deliverable floor
    assert "quickstart.py" in _EXAMPLES


@pytest.mark.parametrize("script", _EXAMPLES)
def test_example_runs(script):
    result = subprocess.run(
        [sys.executable, os.path.join(_EXAMPLES_DIR, script)],
        capture_output=True, text=True, timeout=240,
        env=_subprocess_env())
    assert result.returncode == 0, result.stderr[-2000:]
    assert result.stdout.strip(), "examples should narrate their output"


def test_module_demo_runs():
    result = subprocess.run(
        [sys.executable, "-m", "repro"],
        capture_output=True, text=True, timeout=120,
        env=_subprocess_env())
    assert result.returncode == 0, result.stderr[-2000:]
    assert "Emitted kernel" in result.stdout
