"""Correctness tests for the benchmark kernel builders.

The benchmark suite asserts these too, but a fast unit-level check
keeps `pytest tests/` self-contained.
"""

import numpy as np
import pytest

from repro.baselines import dense_ref
from repro.bench import kernels
from repro.workloads import graphs, images, matrices


class TestSpMSpVBuilders:
    @pytest.mark.parametrize("strategy", kernels.SPMSPV_STRATEGIES)
    def test_all_strategies_agree(self, strategy):
        mat = matrices.clustered_matrix(20, 20, 2, 5, seed=1)
        vec = matrices.sparse_vector(20, count=4, seed=2)
        kernel, y = kernels.spmspv(mat, vec, strategy)
        kernel.run()
        np.testing.assert_allclose(y.to_numpy(), mat @ vec)

    def test_unknown_strategy(self):
        mat = np.zeros((3, 3))
        vec = np.zeros(3)
        with pytest.raises(KeyError):
            kernels.spmspv(mat, vec, "zigzag")


class TestTriangleBuilder:
    @pytest.mark.parametrize("protocol", ["walk", "gallop"])
    def test_counts(self, protocol):
        adj = graphs.erdos_renyi_adjacency(18, 0.3, seed=3)
        kernel, C = kernels.triangle_count(adj, protocol)
        kernel.run()
        assert C.value == graphs.triangle_count_reference(adj)


class TestConvolutionBuilders:
    def test_masked_matches_reference(self):
        grid = matrices.random_sparse_matrix(12, 12, 0.1, seed=4)
        filt = np.ones((3, 3)) / 9.0
        kernel, C = kernels.masked_convolution(grid, filt)
        kernel.run()
        np.testing.assert_allclose(
            C.to_numpy(), dense_ref.masked_convolve2d_numpy(grid, filt),
            atol=1e-12)

    def test_dense_matches_reference(self):
        grid = matrices.random_sparse_matrix(10, 10, 0.2, seed=5)
        filt = np.ones((3, 3)) / 9.0
        kernel, C = kernels.dense_convolution(grid, filt)
        kernel.run()
        np.testing.assert_allclose(
            C.to_numpy(), dense_ref.convolve2d_numpy(grid, filt),
            atol=1e-12)


class TestImageBuilders:
    @pytest.mark.parametrize("fmt", ["dense", "sparse", "rle"])
    def test_alpha_blend(self, fmt):
        img_b = images.digit_like(16, seed=6)
        img_c = images.digit_like(16, seed=7)
        kernel, out = kernels.alpha_blend(img_b, img_c, 0.3, 0.7, fmt)
        kernel.run()
        np.testing.assert_array_equal(
            out.to_numpy(),
            dense_ref.alpha_blend_numpy(img_b, img_c, 0.3, 0.7))

    @pytest.mark.parametrize("fmt", ["dense", "sparse", "vbl", "rle"])
    def test_all_pairs(self, fmt):
        data = images.linearized_batch("digit", 3, size=12, seed=8)
        kernel, O = kernels.all_pairs_similarity(data, fmt)
        kernel.run()
        np.testing.assert_allclose(O.to_numpy(),
                                   dense_ref.all_pairs_numpy(data),
                                   atol=1e-9)
