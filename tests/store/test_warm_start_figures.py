"""The warm-start proof, as a tier-1 test: a *fresh process* with a
warmed store compiles zero kernels for all six bench figures, and its
outputs are bit-identical to cold compiles.

Two subprocesses run the same six canonical figure kernels
(:func:`repro.bench.figures.warm_start_programs`) against one store
directory named by ``FL_KERNEL_STORE``:

* the **cold** child starts on an empty store — six misses, six
  compiles, six write-behinds;
* the **warm** child starts next — six hits, *zero* compiles, and
  output hashes bit-identical to the cold child's.

Both runs happen in pristine subprocesses (not the pytest process):
the store key includes the op-registry version, and other tests
legitimately register ops, so only a fresh interpreter state matches
what a real fleet process would compute.
"""

import json
import os
import subprocess
import sys

import pytest

import repro

_CHILD = r"""
import hashlib, json, os, sys
from repro.bench.figures import warm_start_programs
from repro.bench.harness import _snapshot_outputs
from repro.compiler.kernel import compile_kernel
from repro.store import KernelStore

report = {"figures": {}}
for figure, label, make_program, opts in warm_start_programs():
    program = make_program()
    kernel = compile_kernel(program, **opts)
    kernel.run()
    digest = hashlib.sha256()
    for snap in _snapshot_outputs(program):
        digest.update(snap.tobytes())
    report["figures"][figure] = {
        "from_cache": kernel.from_cache,
        "hash": digest.hexdigest(),
    }
report["stats"] = KernelStore(os.environ["FL_KERNEL_STORE"]).stats()
print(json.dumps(report))
"""


def _run_child(store_dir):
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env["FL_KERNEL_STORE"] = str(store_dir)
    result = subprocess.run(
        [sys.executable, "-c", _CHILD], env=env, timeout=300,
        capture_output=True, text=True)
    assert result.returncode == 0, result.stderr
    return json.loads(result.stdout.strip().splitlines()[-1])


@pytest.fixture(scope="module")
def cold_and_warm(tmp_path_factory):
    store_dir = tmp_path_factory.mktemp("fl_store")
    return _run_child(store_dir), _run_child(store_dir)


def test_cold_process_compiles_and_warms_the_store(cold_and_warm):
    cold, _ = cold_and_warm
    figures = cold["figures"]
    assert len(figures) == 6
    assert not any(entry["from_cache"] for entry in figures.values())
    stats = cold["stats"]
    assert stats["hits"] == 0
    assert stats["misses"] == len(figures)
    # Write-behind: the cold run left every kernel persisted.
    assert stats["entries"] == len(figures)
    assert stats["writes"] == len(figures)


def test_fresh_process_compiles_zero_kernels(cold_and_warm):
    cold, warm = cold_and_warm
    figures = warm["figures"]
    assert set(figures) == set(cold["figures"])
    # Every figure compile came off the store ...
    assert all(entry["from_cache"] for entry in figures.values()), \
        figures
    # ... the warm process saw six hits and ZERO new misses/writes ...
    stats = warm["stats"]
    assert stats["hits"] == len(figures)
    assert stats["misses"] == cold["stats"]["misses"]
    assert stats["writes"] == cold["stats"]["writes"]
    # ... and its outputs are bit-identical to the cold compiles.
    for figure, entry in figures.items():
        assert entry["hash"] == cold["figures"][figure]["hash"], figure
