"""The shard-by-digest-prefix store layout and flat-store migration.

Entries land under ``<root>/<digest[:2]>/k_<digest>.json`` so a
fleet-scale store never piles tens of thousands of files into one
directory.  Stores written by pre-shard code (entries flat in the
root) must keep working: reads see them, and touching one migrates it
into its shard directory transparently.  ``read_entry`` — the kernel
service's lookup primitive — is covered here too.
"""

import json
import os

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.store import KernelStore, entry_digest, using_store
from repro.store.disk import _ENTRY_PREFIX, _SHARD_CHARS


@pytest.fixture(autouse=True)
def clean_cache():
    kernel_cache().clear()
    yield
    kernel_cache().clear()


def dot_program(n=50, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, 6, replace=False)] = 1.0
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def store_one(store, seed=0, **opts):
    with using_store(store):
        kernel = fl.compile_kernel(dot_program(seed=seed), **opts)
    return kernel


def sole_entry_path(store):
    paths = [path for path, _, _ in store._entry_files()]
    assert len(paths) == 1, paths
    return paths[0]


def flatten(store, path):
    """Demote one sharded entry to the legacy flat layout."""
    flat = os.path.join(store.root, os.path.basename(path))
    os.replace(path, flat)
    so = path[:-len(".json")] + ".so"
    if os.path.exists(so):
        os.replace(so, flat[:-len(".json")] + ".so")
    return flat


def test_entries_land_in_shard_directories(tmp_path):
    store = KernelStore(tmp_path)
    store_one(store)
    path = sole_entry_path(store)
    shard = os.path.basename(os.path.dirname(path))
    name = os.path.basename(path)
    assert len(shard) == _SHARD_CHARS
    assert name.startswith(_ENTRY_PREFIX)
    digest = name[len(_ENTRY_PREFIX):-len(".json")]
    assert digest[:_SHARD_CHARS] == shard


def test_flat_entry_read_through_and_migrated(tmp_path):
    store = KernelStore(tmp_path)
    store_one(store)
    flat = flatten(store, sole_entry_path(store))
    assert os.path.exists(flat)

    # A fresh process over the demoted store: the lookup still hits
    # (zero compiles) and migrates the entry into its shard dir.
    kernel_cache().clear()
    fresh = KernelStore(tmp_path)
    kernel = store_one(fresh, seed=1)
    assert kernel.from_cache
    assert not os.path.exists(flat)
    migrated = sole_entry_path(fresh)
    assert os.path.dirname(migrated) != str(tmp_path).rstrip(os.sep)
    assert (os.path.basename(os.path.dirname(migrated))
            == os.path.basename(flat)[len(_ENTRY_PREFIX):][:_SHARD_CHARS])


def test_flat_entries_visible_to_walkers(tmp_path):
    store = KernelStore(tmp_path)
    store_one(store, seed=0)
    store_one(store, seed=0, opt_level=1)
    # Demote one of the two; both must still be enumerated.
    paths = [path for path, _, _ in store._entry_files()]
    assert len(paths) == 2
    flatten(store, paths[0])
    assert len(store._entry_files()) == 2
    assert store.stats()["entries"] == 2


def test_eviction_covers_both_layouts(tmp_path):
    store = KernelStore(tmp_path)
    store_one(store, seed=0)
    flat = flatten(store, sole_entry_path(store))
    # Writing into a tiny-budget store sweeps LRU entries; the flat
    # legacy entry is fair game even though it never migrated.
    small = KernelStore(tmp_path, max_bytes=1)
    kernel_cache().clear()
    store_one(small, seed=0, opt_level=1)
    assert not os.path.exists(flat)
    assert small.stats()["evictions"] >= 1


def test_read_entry_round_trip(tmp_path):
    store = KernelStore(tmp_path)
    store_one(store)
    path = sole_entry_path(store)
    digest = os.path.basename(path)[len(_ENTRY_PREFIX):-len(".json")]
    entry, so_path = store.read_entry(digest)
    assert entry is not None
    assert set(entry) >= {"store_version", "key", "spec"}
    assert entry_digest(entry["key"]) == digest
    # The spec rebuilds into a working kernel.
    from repro.compiler.kernel import CompiledKernel

    artifact = CompiledKernel.from_spec(entry["spec"])
    assert artifact is not None
    if so_path is not None:
        assert os.path.exists(so_path)


def test_read_entry_misses_and_rejects_defects(tmp_path):
    store = KernelStore(tmp_path)
    assert store.read_entry("0" * 40) == (None, None)
    store_one(store)
    path = sole_entry_path(store)
    digest = os.path.basename(path)[len(_ENTRY_PREFIX):-len(".json")]
    with open(path, "w") as handle:
        handle.write("{ not json")
    entry, so_path = store.read_entry(digest)
    assert entry is None and so_path is None
    # The defective entry was quarantined, not left to fail again.
    assert not os.path.exists(path)


def test_read_entry_rejects_digest_mismatch(tmp_path):
    store = KernelStore(tmp_path)
    store_one(store)
    path = sole_entry_path(store)
    digest = os.path.basename(path)[len(_ENTRY_PREFIX):-len(".json")]
    with open(path) as handle:
        entry = json.load(handle)
    entry["key"]["name"] = "tampered"
    with open(path, "w") as handle:
        json.dump(entry, handle)
    assert store.read_entry(digest) == (None, None)


def test_concurrent_migration_single_survivor(tmp_path):
    """Two stores racing the same flat entry: exactly one migrated
    copy survives and both read it."""
    store = KernelStore(tmp_path)
    store_one(store)
    flatten(store, sole_entry_path(store))
    left = KernelStore(tmp_path)
    right = KernelStore(tmp_path)
    kernel_cache().clear()
    a = store_one(left, seed=1)
    kernel_cache().clear()
    b = store_one(right, seed=2)
    assert a.from_cache and b.from_cache
    assert len(left._entry_files()) == 1
