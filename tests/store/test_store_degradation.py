"""Store degradation: a damaged or unwritable disk tier must cost
performance, never correctness.

Three failure families: a corrupt ``stats.json`` (killed writer,
garbage, wrong JSON shape) reads as reset counters with
``stats_resets`` bumped; write failures (read-only root) degrade the
store to memory-only behind a warn-once log and an ``io_errors``
counter; chaos-injected read faults (flaky IO, corrupt entries)
degrade to a miss + quarantine and the kernel recompiles
bit-identically.
"""

import json
import logging
import os

import numpy as np
import pytest

import repro.lang as fl
from repro import chaos
from repro.compiler.kernel import kernel_cache
from repro.store import KernelStore, reset_store_config, using_store


@pytest.fixture(autouse=True)
def clean_state():
    kernel_cache().clear()
    reset_store_config()
    yield
    kernel_cache().clear()
    reset_store_config()


def dot_program(n=60, seed=0):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, max(3, n // 8), replace=False)] = 1.0
    b = rng.random(n)
    A = fl.from_numpy(a, ("sparse",), name="A")
    B = fl.from_numpy(b, ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C, float(a @ b)


CORRUPT_STATS = [
    ("binary", b"\x00\xff\x9cnot json at all\x81"),
    ("json-list", b"[1, 2, 3]"),
    ("half-written", b'{"hits": 4, "miss'),
    ("wrong-types", b'{"hits": "many", "writes": {"a": 1}}'),
]


@pytest.mark.parametrize(
    "payload", [p for _, p in CORRUPT_STATS],
    ids=[name for name, _ in CORRUPT_STATS])
def test_corrupt_stats_json_resets_instead_of_crashing(tmp_path,
                                                       payload):
    """Any corrupt stats.json reads as zeroed counters with
    stats_resets=1; the next counter update persists the reset and
    counting resumes."""
    store = KernelStore(tmp_path)
    with using_store(store):
        program, C, expected = dot_program()
        fl.compile_kernel(program).run()
        assert C.value == pytest.approx(expected)
    assert store.stats()["writes"] == 1

    stats_path = os.path.join(str(tmp_path), "stats.json")
    with open(stats_path, "wb") as handle:
        handle.write(payload)

    stats = store.stats()
    assert stats["stats_resets"] == 1
    assert stats["writes"] == 0
    assert stats["entries"] == 1  # the entry itself is untouched

    kernel_cache().clear()
    with using_store(store):
        program, C, expected = dot_program()
        fl.compile_kernel(program).run()
        assert C.value == pytest.approx(expected)
    persisted = json.load(open(stats_path))
    assert persisted["stats_resets"] == 1
    assert persisted["hits"] == 1


def test_unwritable_root_degrades_to_memory_only(tmp_path,
                                                 monkeypatch, caplog):
    """Every write failure is absorbed: compiles succeed, io_errors
    counts them, and exactly one warning is logged."""
    store = KernelStore(tmp_path)

    def read_only(src, dst):
        raise OSError(30, "Read-only file system", dst)

    monkeypatch.setattr(os, "replace", read_only)
    with caplog.at_level(logging.WARNING, logger="repro.store"):
        with using_store(store):
            program, C, expected = dot_program()
            fl.compile_kernel(program).run()
            assert C.value == pytest.approx(expected)
    stats = store.stats()
    assert stats["io_errors"] >= 2  # miss bump + entry write, at least
    assert stats["entries"] == 0  # nothing landed on disk
    warnings = [record for record in caplog.records
                if "degraded" in record.getMessage()]
    assert len(warnings) == 1, "the degradation warning must fire once"


@pytest.mark.parametrize("fault", ["store_read_error",
                                   "store_corrupt_entry"])
def test_chaos_read_faults_degrade_to_quarantined_miss(tmp_path,
                                                       fault):
    """A flaky or corrupted entry read becomes a quarantine + miss —
    the kernel recompiles from source, bit-identically, and the store
    refills on the next write."""
    store = KernelStore(tmp_path)
    with using_store(store):
        program, C, expected = dot_program()
        fl.compile_kernel(program).run()
    assert store.stats()["entries"] == 1

    kernel_cache().clear()
    with using_store(store):
        with chaos.chaos(fault, nth=1):
            program, C, expected = dot_program()
            fl.compile_kernel(program).run()  # must not raise
            assert C.value == pytest.approx(expected)
    stats = store.stats()
    assert stats["quarantined"] == 1
    assert stats["misses"] >= 2  # first-ever compile, then the fault
    assert stats["entries"] == 1  # rewritten behind the recompile

    kernel_cache().clear()
    with using_store(store):  # fault disarmed: reads hit again
        program, C, expected = dot_program()
        fl.compile_kernel(program).run()
        assert C.value == pytest.approx(expected)
    assert store.stats()["hits"] >= 1
