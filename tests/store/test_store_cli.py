"""``python -m repro.store``: pack / warm / verify / ls / stats.

The CLI is what CI's staged pipeline drives, so every subcommand is
exercised in-process through ``main(argv)`` — including the hit-rate
gate's exit codes, which is what turns a silent cold-compile fallback
into a red build.
"""

import shutil

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.fuzz import corpus as corpus_mod
from repro.store import KernelStore, reset_store_config, using_store
from repro.store.__main__ import main


@pytest.fixture(autouse=True)
def clean_state():
    kernel_cache().clear()
    reset_store_config()
    yield
    kernel_cache().clear()
    reset_store_config()


@pytest.fixture()
def mini_corpus(tmp_path):
    """A one-entry corpus dir (cheap to compile at three levels)."""
    source = corpus_mod.corpus_entries()[0]
    corpus_dir = tmp_path / "corpus"
    corpus_dir.mkdir()
    shutil.copy(source, corpus_dir)
    return str(corpus_dir)


def test_pack_verify_ls_warm_stats(tmp_path, mini_corpus, capsys):
    pack_path = str(tmp_path / "kernels.flpack")
    assert main(["pack", "--out", pack_path, "--no-figures",
                 "--corpus", mini_corpus, "--quiet"]) == 0
    out = capsys.readouterr().out
    assert "packed 3 kernel(s)" in out  # one case at opt 0/1/2

    assert main(["verify", pack_path]) == 0
    assert "PASS" in capsys.readouterr().out

    assert main(["ls", "--pack", pack_path]) == 0
    out = capsys.readouterr().out
    assert "3 entries" in out and "fuzz_corpus" in out

    store_dir = str(tmp_path / "store")
    assert main(["warm", "--store", store_dir, "--pack",
                 pack_path]) == 0
    assert "3 loaded" in capsys.readouterr().out

    assert main(["ls", "--store", store_dir]) == 0
    assert "3 entries" in capsys.readouterr().out

    # No lookups yet: the gate must fail loudly, not pass vacuously.
    assert main(["stats", "--store", store_dir,
                 "--min-hit-rate", "0.5"]) == 1
    assert "no lookups" in capsys.readouterr().out

    # Consume the warmed store: the corpus case compiles as pure hits.
    spec = corpus_mod.load_entry(
        corpus_mod.corpus_entries(mini_corpus)[0])["spec"]
    from repro.fuzz.gen import build_case

    with using_store(KernelStore(store_dir)):
        for level in (0, 1, 2):
            kernel_cache().clear()
            case = build_case(spec)
            kernel = fl.compile_kernel(case.program, instrument=True,
                                       opt_level=level)
            assert kernel.from_cache
    assert main(["stats", "--store", store_dir,
                 "--min-hit-rate", "1.0"]) == 0
    assert "PASS" in capsys.readouterr().out

    # Markdown mode renders the summary table CI appends to
    # $GITHUB_STEP_SUMMARY.
    assert main(["stats", "--store", store_dir, "--markdown"]) == 0
    out = capsys.readouterr().out
    assert "| hit_rate | 100.0% |" in out


def test_stats_gate_fails_below_floor(tmp_path):
    store = KernelStore(tmp_path)
    store._bump(hits=1, misses=3)
    assert main(["stats", "--store", str(tmp_path),
                 "--min-hit-rate", "0.5"]) == 1
    assert main(["stats", "--store", str(tmp_path),
                 "--min-hit-rate", "0.2"]) == 0


def test_warm_without_pack_compiles_directly(tmp_path, mini_corpus,
                                             monkeypatch, capsys):
    """`warm` with no pack compiles the registry straight into the
    store; the figure set is monkeypatched down to one kernel so the
    test stays fast."""
    import repro.bench.figures as figures

    def one_program():
        a = np.arange(40, dtype=float)
        A = fl.from_numpy(a, ("dense",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        return fl.forall(i, fl.increment(C[()], A[i]))

    monkeypatch.setattr(
        figures, "pack_programs",
        lambda: [("fig_test", "one", one_program, {})])
    monkeypatch.setattr(corpus_mod, "DEFAULT_CORPUS_DIR", mini_corpus)
    store_dir = str(tmp_path / "store")
    assert main(["warm", "--store", store_dir, "--quiet"]) == 0
    assert "compiled 4 entries" in capsys.readouterr().out
    assert KernelStore(store_dir).stats()["entries"] == 4
