"""Multiprocess stress: N processes race one store directory.

Each worker process repeatedly compiles the same small program family
with the disk tier as its only cache (the memory LRU is cleared
between compiles), against one shared store.  The store's contract
under that race:

* no worker ever crashes or reads a corrupt entry (atomic writes mean
  a reader sees an old entry or a new one, never a torn one),
* results are bit-identical across every worker and every iteration,
* each distinct kernel is compiled at most once per worker (the race
  window: workers that miss before the first write lands), never more,
* with a tight size budget, eviction under the race still never
  corrupts — it only converts hits back into recompiles.
"""

import json
import os
import subprocess
import sys

import repro

#: Worker body: compiles PROGRAMS x ROUNDS with a cleared memory cache
#: (every compile goes to disk), prints result digests + stats.
_WORKER = r"""
import json, sys
import numpy as np
import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.store import KernelStore, using_store

root, max_bytes, rounds = sys.argv[1], sys.argv[2], int(sys.argv[3])
store = KernelStore(root, max_bytes=None if max_bytes == "none"
                    else int(max_bytes))
sizes = (41, 53, 67, 79)
results = {}
with using_store(store):
    for _ in range(rounds):
        for n in sizes:
            kernel_cache().clear()
            rng = np.random.default_rng(n)
            a = np.zeros(n)
            a[rng.choice(n, n // 5, replace=False)] = \
                rng.integers(1, 5, n // 5).astype(float)
            b = rng.integers(0, 5, n).astype(float)
            A = fl.from_numpy(a, ("sparse",), name="A")
            B = fl.from_numpy(b, ("dense",), name="B")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            fl.execute(fl.forall(i, fl.increment(C[()], A[i] * B[i])))
            value = float(C.value)
            previous = results.setdefault(str(n), value)
            assert previous == value, (n, previous, value)
print(json.dumps({"results": results, "pid": __import__("os").getpid()}))
"""

SIZES = (41, 53, 67, 79)


def _spawn_workers(store_dir, count, max_bytes="none", rounds=3):
    src = os.path.dirname(os.path.dirname(
        os.path.abspath(repro.__file__)))
    env = dict(os.environ)
    env["PYTHONPATH"] = src + os.pathsep + env.get("PYTHONPATH", "")
    env.pop("FL_KERNEL_STORE", None)
    procs = [
        subprocess.Popen(
            [sys.executable, "-c", _WORKER, str(store_dir),
             str(max_bytes), str(rounds)],
            stdout=subprocess.PIPE, stderr=subprocess.PIPE, env=env)
        for _ in range(count)
    ]
    outputs = []
    for proc in procs:
        out, err = proc.communicate(timeout=120)
        assert proc.returncode == 0, err.decode()
        outputs.append(json.loads(out.decode().strip().splitlines()[-1]))
    return outputs


def test_racing_processes_agree_and_share_compiles(tmp_path):
    workers = 4
    outputs = _spawn_workers(tmp_path, workers)
    # Bit-identical results across every worker.
    baseline = outputs[0]["results"]
    for output in outputs[1:]:
        assert output["results"] == baseline

    from repro.store import KernelStore

    store = KernelStore(tmp_path)
    stats = store.stats()
    # Every kernel present, nothing quarantined, no torn tmp files.
    assert stats["entries"] == len(SIZES)
    assert stats["quarantined"] == 0
    leftovers = [name for name in os.listdir(tmp_path)
                 if ".tmp." in name]
    assert leftovers == []
    # Compiles happen only in the race window: at most one write per
    # kernel per worker, and at least one per kernel overall.  Every
    # later lookup is a hit (3 rounds x 4 sizes x 4 workers lookups).
    assert len(SIZES) <= stats["writes"] <= len(SIZES) * workers
    lookups = stats["hits"] + stats["misses"]
    assert lookups == 3 * len(SIZES) * workers
    assert stats["misses"] == stats["writes"]
    # A fresh process now warm-starts with zero compiles.
    for _, meta in store.entries():
        assert meta["name"] == "kernel"


def test_racing_processes_with_eviction_stay_correct(tmp_path):
    """A budget that only fits ~2 entries forces constant eviction
    under the race; correctness must survive (only hit rates may
    suffer)."""
    outputs = _spawn_workers(tmp_path, 3, max_bytes=4000, rounds=2)
    baseline = outputs[0]["results"]
    for output in outputs[1:]:
        assert output["results"] == baseline

    from repro.store import KernelStore

    stats = KernelStore(tmp_path).stats()
    assert stats["quarantined"] == 0
    assert stats["evictions"] > 0
    assert stats["bytes"] <= 4000
