"""The persistent on-disk kernel store: tiers, eviction, corruption.

Covers the disk tier's contract one property at a time: read-through /
write-behind layering under the memory LRU, the ``cache=`` escape
hatches, version-mismatch invalidation (op registry bumps), quarantine
on corruption, LRU eviction by size budget, and the persisted
cross-process statistics counters.
"""

import json
import os

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.ir import ops as ops_mod
from repro.store import (
    KernelStore,
    active_store,
    configure_store,
    entry_digest,
    meta_for_artifact,
    meta_for_spec,
    reset_store_config,
    using_store,
)


@pytest.fixture(autouse=True)
def clean_state():
    kernel_cache().clear()
    reset_store_config()
    yield
    kernel_cache().clear()
    reset_store_config()


def dot_program(n=60, seed=0, fmt="sparse"):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, max(3, n // 8), replace=False)] = 1.0
    A = fl.from_numpy(a, (fmt,), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C, a


def test_write_behind_then_read_through(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        program, C, a = dot_program()
        kernel = fl.compile_kernel(program)
        kernel.run()
        expected = C.value
    stats = store.stats()
    assert stats == {**stats, "writes": 1, "misses": 1, "hits": 0}
    assert stats["entries"] == 1

    # A fresh "process": memory cache cleared, same store.
    kernel_cache().clear()
    with using_store(store):
        program2, C2, _ = dot_program(seed=1)
        kernel2 = fl.compile_kernel(program2)
        assert kernel2.from_cache  # disk hit, zero compiles
        kernel2.run()
    assert store.stats()["hits"] == 1
    # The rebuilt kernel computes the same function.
    program3, C3, _ = dot_program()
    fl.execute(program3, cache=False)
    assert C3.value == pytest.approx(expected)


def test_disk_hit_promotes_into_memory(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        fl.compile_kernel(dot_program()[0])
        kernel_cache().clear()
        fl.compile_kernel(dot_program(seed=1)[0])   # disk hit
        before = store.stats()["hits"]
        fl.compile_kernel(dot_program(seed=2)[0])   # memory hit now
        assert store.stats()["hits"] == before
    assert kernel_cache().stats()["hits"] == 1


def test_cache_memory_mode_skips_disk(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        fl.compile_kernel(dot_program()[0], cache="memory")
    stats = store.stats()
    assert stats["writes"] == 0
    assert stats["hits"] + stats["misses"] == 0


def test_cache_disk_mode_skips_memory(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        fl.compile_kernel(dot_program()[0], cache="disk")
        assert len(kernel_cache()) == 0
        kernel = fl.compile_kernel(dot_program()[0], cache="disk")
        assert kernel.from_cache
    assert store.stats()["hits"] == 1


def test_cache_false_touches_nothing(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        fl.compile_kernel(dot_program()[0], cache=False)
    assert store.stats()["writes"] == 0
    assert len(kernel_cache()) == 0


def test_cache_mode_validated():
    with pytest.raises(ValueError, match="cache must be"):
        fl.compile_kernel(dot_program()[0], cache="both")


def test_registry_version_bump_invalidates(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        kernel = fl.compile_kernel(dot_program()[0])
        meta = meta_for_artifact(kernel.artifact)
        assert store.load_spec(meta) is not None
        # A late op registration changes the runtime namespace kernels
        # exec against: every stored entry must read as a miss.
        ops_mod.register_op(ops_mod.Op("store_test_noop",
                                       lambda x: x))
        stale_meta = meta_for_artifact(kernel.artifact)
        assert stale_meta != meta
        assert store.load_spec(stale_meta) is None
        kernel_cache().clear()
        recompiled = fl.compile_kernel(dot_program()[0])
        assert not recompiled.from_cache  # disk could not serve it
    assert store.stats()["entries"] == 2  # old + recompiled


def test_corrupt_entry_quarantined_and_recompiled(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        kernel = fl.compile_kernel(dot_program()[0])
        meta = meta_for_artifact(kernel.artifact)
        path = store._entry_path(meta)
        with open(path, "w") as handle:
            handle.write('{"truncated')
        kernel_cache().clear()
        recompiled = fl.compile_kernel(dot_program()[0])
        assert not recompiled.from_cache
    stats = store.stats()
    assert stats["quarantined"] == 1
    assert stats["quarantine_files"] == 1
    assert os.listdir(store.quarantine_dir)
    # The recompile healed the store: the entry is back and loadable.
    assert store.load_spec(meta) is not None


def test_key_mismatch_is_corruption(tmp_path):
    """An entry whose recorded key does not hash to its filename is
    quarantined, not served (digest-collision and tamper defense)."""
    store = KernelStore(tmp_path)
    kernel = fl.compile_kernel(dot_program()[0], cache=False)
    store.save_artifact(kernel.artifact)
    meta = meta_for_artifact(kernel.artifact)
    path = store._entry_path(meta)
    with open(path) as handle:
        entry = json.load(handle)
    entry["key"]["opt_level"] = 0  # no longer matches the digest
    with open(path, "w") as handle:
        json.dump(entry, handle)
    assert store.load_spec(meta) is None
    assert store.stats()["quarantined"] == 1


def test_unrebuildable_spec_quarantined(tmp_path):
    """A stored spec whose source no longer execs is quarantined by
    load_artifact and the already-counted hit is taken back."""
    store = KernelStore(tmp_path)
    kernel = fl.compile_kernel(dot_program()[0], cache=False)
    store.save_artifact(kernel.artifact)
    meta = meta_for_artifact(kernel.artifact)
    path = store._entry_path(meta)
    with open(path) as handle:
        entry = json.load(handle)
    entry["spec"]["source"] = "def kernel(:\n"  # SyntaxError on exec
    with open(path, "w") as handle:
        json.dump(entry, handle)
    assert store.load_artifact(meta) is None
    stats = store.stats()
    assert stats["quarantined"] == 1
    assert stats["hits"] == 0


def test_lru_eviction_by_size_budget(tmp_path):
    kernel = fl.compile_kernel(dot_program()[0], cache=False)
    spec = kernel.artifact.to_spec()
    entry_bytes = len(json.dumps(spec))
    store = KernelStore(tmp_path, max_bytes=3 * entry_bytes)
    metas = []
    for position in range(5):
        meta = dict(meta_for_artifact(kernel.artifact))
        meta["structural_digest"] = "%040d" % position
        store.save_spec(meta, spec)
        os.utime(store._entry_path(meta),
                 (1_000_000 + position, 1_000_000 + position))
        metas.append(meta)
    # Budget holds ~2 full entries after the wrapper overhead; the
    # oldest-mtime entries are gone, the newest survive.
    stats = store.stats()
    assert stats["evictions"] >= 2
    assert stats["bytes"] <= 3 * entry_bytes
    assert store.load_spec(metas[-1]) is not None
    assert store.load_spec(metas[0]) is None


def test_hits_touch_mtime_for_lru(tmp_path):
    kernel = fl.compile_kernel(dot_program()[0], cache=False)
    spec = kernel.artifact.to_spec()
    meta_a = dict(meta_for_artifact(kernel.artifact))
    meta_a["structural_digest"] = "a" * 40
    meta_b = dict(meta_a, structural_digest="b" * 40)
    store = KernelStore(tmp_path)
    store.save_spec(meta_a, spec)
    store.save_spec(meta_b, spec)
    os.utime(store._entry_path(meta_a), (1_000_000, 1_000_000))
    os.utime(store._entry_path(meta_b), (2_000_000, 2_000_000))
    assert store.load_spec(meta_a) is not None  # touches a's mtime
    entries = store._entry_files()
    assert entries[0][0] == store._entry_path(meta_b)  # b now oldest


def test_meta_for_spec_matches_meta_for_artifact():
    kernel = fl.compile_kernel(dot_program()[0], cache=False,
                               instrument=True, opt_level=1)
    artifact = kernel.artifact
    spec = json.loads(json.dumps(artifact.to_spec()))
    assert meta_for_spec(spec) == meta_for_artifact(artifact)
    assert entry_digest(meta_for_spec(spec)) == \
        entry_digest(meta_for_artifact(artifact))


def test_distinct_compile_flags_distinct_entries(tmp_path):
    store = KernelStore(tmp_path)
    with using_store(store):
        fl.compile_kernel(dot_program()[0])
        fl.compile_kernel(dot_program()[0], instrument=True)
        fl.compile_kernel(dot_program()[0], opt_level=0)
        fl.compile_kernel(dot_program()[0], constant_loop_rewrite=False)
    assert store.stats()["entries"] == 4


def test_env_var_configures_store(tmp_path, monkeypatch):
    monkeypatch.setenv("FL_KERNEL_STORE", str(tmp_path))
    monkeypatch.setenv("FL_KERNEL_STORE_MAX_BYTES", "123456")
    store = active_store()
    assert store is not None
    assert store.root == str(tmp_path)
    assert store.max_bytes == 123456
    # configure_store(None) beats the environment ...
    configure_store(None)
    assert active_store() is None
    # ... until the config is reset.
    reset_store_config()
    assert active_store() is not None


def test_stats_shape(tmp_path):
    stats = KernelStore(tmp_path).stats()
    for key in ("hits", "misses", "writes", "evictions", "quarantined",
                "entries", "bytes", "max_bytes", "hit_rate", "root"):
        assert key in stats
    assert stats["hit_rate"] == 0.0


def test_clear_resets_everything(tmp_path):
    store = KernelStore(tmp_path)
    kernel = fl.compile_kernel(dot_program()[0], cache=False)
    store.save_artifact(kernel.artifact)
    store.load_spec(meta_for_artifact(kernel.artifact))
    store.clear()
    stats = store.stats()
    assert stats["entries"] == 0
    assert stats["hits"] == 0 and stats["writes"] == 0


def test_readonly_store_serves_hits_and_drops_writes(tmp_path):
    """A prewarmed store on an unwritable mount must keep serving hits
    and silently drop writes/counters — never crash a compile.

    Simulated by replacing the lock file and stats file with
    directories (open() fails with IsADirectoryError even for root,
    which chmod-based read-only checks would not)."""
    store = KernelStore(tmp_path)
    with using_store(store):
        fl.compile_kernel(dot_program()[0])  # warm one entry
    os.remove(store._lock_path)
    os.remove(store._stats_path)
    os.mkdir(store._lock_path)      # open(.lock, "a+") now raises
    os.mkdir(store._stats_path + ".tmp.%d" % os.getpid())
    kernel_cache().clear()
    with using_store(store):
        hit = fl.compile_kernel(dot_program(seed=1)[0])
        assert hit.from_cache  # the hit still lands, unlocked
        # A structurally new kernel compiles fine; the counter
        # updates are dropped, not raised.
        fresh = fl.compile_kernel(dot_program(n=90, seed=2)[0])
        assert not fresh.from_cache
    assert store.stats()["hits"] == 0  # counters were unwritable


def test_unwritable_entries_degrade_to_read_only_tier(tmp_path,
                                                      monkeypatch):
    """When the entry rename itself fails (truly read-only mount,
    disk full), save_spec returns None and the compile succeeds."""
    import repro.store.disk as disk_mod

    store = KernelStore(tmp_path)
    kernel = fl.compile_kernel(dot_program()[0], cache=False)

    def refuse(src, dst):
        raise PermissionError("read-only file system")

    monkeypatch.setattr(disk_mod.os, "replace", refuse)
    assert store.save_artifact(kernel.artifact) is None
    with using_store(store):
        compiled = fl.compile_kernel(dot_program(seed=3)[0])
        assert not compiled.from_cache
    monkeypatch.undo()
    assert store.stats()["entries"] == 0


def test_uncreatable_store_root_degrades_to_no_tier(tmp_path):
    blocker = tmp_path / "not-a-dir"
    blocker.write_text("file, not dir")
    store = KernelStore(blocker / "store")
    with using_store(store):
        kernel = fl.compile_kernel(dot_program()[0])
        assert not kernel.from_cache
    assert store.stats()["entries"] == 0


class TestCodegenFingerprint:
    """The fingerprint is derived from the backend's actual import
    graph, not a hand-maintained module list (PR 6 satellite)."""

    @staticmethod
    def _package(root, extra_module=False, body_suffix=""):
        pkg = root / "fpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "emitter.py").write_text(
            "from fpkg import helper\n\n"
            "def emit():\n    return helper.help()\n" + body_suffix)
        helper = "def help():\n    return 1\n"
        if extra_module:
            helper = "from fpkg import newpass\n" + helper
            (pkg / "newpass.py").write_text("def run():\n    return 2\n")
        (pkg / "helper.py").write_text(helper)
        return pkg

    def test_walks_transitive_imports(self, tmp_path, monkeypatch):
        from repro.store.disk import _codegen_modules

        self._package(tmp_path)
        monkeypatch.syspath_prepend(str(tmp_path))
        modules = _codegen_modules(("fpkg.emitter",), "fpkg")
        # The package __init__ rides along (``from fpkg import ...``).
        assert set(modules) == {"fpkg", "fpkg.emitter", "fpkg.helper"}

    def test_adding_a_codegen_module_changes_fingerprint(
            self, tmp_path, monkeypatch):
        """A brand-new module pulled into the graph — the case a
        hand-maintained list silently misses — must invalidate."""
        from repro.store.disk import codegen_fingerprint

        base = tmp_path / "a"
        base.mkdir()
        self._package(base)
        monkeypatch.syspath_prepend(str(base))
        before = codegen_fingerprint(("fpkg.emitter",), "fpkg")

        import importlib
        grown = tmp_path / "b"
        grown.mkdir()
        self._package(grown, extra_module=True)
        monkeypatch.syspath_prepend(str(grown))
        importlib.invalidate_caches()
        after = codegen_fingerprint(("fpkg.emitter",), "fpkg")
        assert before != after

    def test_editing_a_leaf_module_changes_fingerprint(
            self, tmp_path, monkeypatch):
        from repro.store.disk import codegen_fingerprint

        base = tmp_path / "a"
        base.mkdir()
        self._package(base)
        monkeypatch.syspath_prepend(str(base))
        before = codegen_fingerprint(("fpkg.emitter",), "fpkg")

        import importlib
        edited = tmp_path / "b"
        edited.mkdir()
        pkg = edited / "fpkg"
        pkg.mkdir()
        (pkg / "__init__.py").write_text("")
        (pkg / "emitter.py").write_text(
            "from fpkg import helper\n\n"
            "def emit():\n    return helper.help()\n")
        (pkg / "helper.py").write_text("def help():\n    return 99\n")
        monkeypatch.syspath_prepend(str(edited))
        importlib.invalidate_caches()
        after = codegen_fingerprint(("fpkg.emitter",), "fpkg")
        assert before != after

    def test_production_fingerprint_is_stable_and_covers_backend(self):
        from repro.store.disk import (_CODEGEN_ROOTS, _codegen_modules,
                                      codegen_fingerprint)

        first = codegen_fingerprint()
        assert first == codegen_fingerprint()
        assert len(first) == 16
        modules = _codegen_modules(_CODEGEN_ROOTS, "repro")
        # Roots are in their own closure, and the walk found
        # dependencies no hand-written list mentioned.
        assert set(_CODEGEN_ROOTS) <= set(modules)
        assert len(modules) > len(_CODEGEN_ROOTS)
