"""AOT kernel packs: write/read/verify/load and staleness handling."""

import json
import zipfile

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.store import (
    KernelStore,
    meta_for_artifact,
    reset_store_config,
    using_store,
)
from repro.store.pack import (
    PackError,
    load_pack,
    read_pack,
    verify_pack,
    write_pack,
)


@pytest.fixture(autouse=True)
def clean_state():
    kernel_cache().clear()
    reset_store_config()
    yield
    kernel_cache().clear()
    reset_store_config()


def dot_program(n=50, seed=0):
    rng = np.random.default_rng(seed)
    A = fl.from_numpy(rng.random(n), ("dense",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i])), C


def pack_entry(opts=None, n=50):
    kernel = fl.compile_kernel(dot_program(n=n)[0], cache=False,
                               **(opts or {}))
    return {"key": meta_for_artifact(kernel.artifact),
            "spec": kernel.artifact.to_spec(),
            "figure": "test", "label": "dot n=%d opts=%r" % (n, opts)}


def test_pack_roundtrip_and_verify(tmp_path):
    path = str(tmp_path / "kernels.flpack")
    entries = [pack_entry(), pack_entry({"instrument": True}),
               pack_entry(n=70)]
    summary = write_pack(path, entries, note="unit test")
    assert summary["count"] == 3
    manifest, decoded = read_pack(path)
    assert manifest["note"] == "unit test"
    assert manifest["count"] == 3
    assert {entry["digest"] for entry in decoded} == \
        {item["digest"] for item in manifest["entries"]}
    report = verify_pack(path)
    assert report["ok"]
    assert report["rebuilt"] == 3
    assert report["stale"] == []


def test_pack_deduplicates_by_digest(tmp_path):
    path = str(tmp_path / "kernels.flpack")
    summary = write_pack(path, [pack_entry(), pack_entry()])
    assert summary["count"] == 1


def test_load_pack_into_store_and_memory(tmp_path):
    path = str(tmp_path / "kernels.flpack")
    write_pack(path, [pack_entry(), pack_entry(n=70)])
    store = KernelStore(tmp_path / "store")
    summary = load_pack(path, store=store)
    assert summary["loaded"] == 2 and summary["errors"] == 0
    assert store.stats()["entries"] == 2
    # Memory promotion: the very first compile of this process hits.
    kernel = fl.compile_kernel(dot_program()[0], cache="memory")
    assert kernel.from_cache
    kernel.run()
    # And a fresh "process" (cleared memory) hits the store.
    kernel_cache().clear()
    with using_store(store):
        assert fl.compile_kernel(dot_program()[0]).from_cache


def test_load_pack_skips_stale_entries(tmp_path):
    path = str(tmp_path / "kernels.flpack")
    entry = pack_entry()
    entry["key"] = dict(entry["key"], registry_version=-1)
    write_pack(path, [entry, pack_entry(n=70)])
    store = KernelStore(tmp_path / "store")
    summary = load_pack(path, store=store, memory=False)
    assert summary["loaded"] == 1
    assert summary["stale"] == 1
    assert store.stats()["entries"] == 1
    report = verify_pack(path)
    assert report["ok"] and len(report["stale"]) == 1


def test_tampered_pack_fails_digest_check(tmp_path):
    path = str(tmp_path / "kernels.flpack")
    write_pack(path, [pack_entry()])
    with zipfile.ZipFile(path) as archive:
        manifest = json.loads(archive.read("manifest.json"))
        digest = manifest["entries"][0]["digest"]
        payload = json.loads(archive.read("specs/%s.json" % digest))
    payload["key"]["opt_level"] = 0
    tampered = str(tmp_path / "tampered.flpack")
    with zipfile.ZipFile(tampered, "w") as archive:
        archive.writestr("manifest.json", json.dumps(manifest))
        archive.writestr("specs/%s.json" % digest,
                         json.dumps(payload))
    with pytest.raises(PackError, match="digest"):
        read_pack(tampered)


def test_not_a_pack(tmp_path):
    path = str(tmp_path / "nonsense.flpack")
    with open(path, "w") as handle:
        handle.write("not a zip")
    with pytest.raises(PackError, match="not a pack"):
        read_pack(path)


def test_fl_load_pack_export(tmp_path):
    path = str(tmp_path / "kernels.flpack")
    write_pack(path, [pack_entry()])
    summary = fl.load_pack(path)
    assert summary["loaded"] == 1
    assert fl.compile_kernel(dot_program()[0],
                             cache="memory").from_cache
