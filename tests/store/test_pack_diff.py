"""Layered (diff) kernel packs: write against a base, verify, load.

``write_pack(base=...)`` defers every digest the base pack already
carries, so a nightly pack ships only what changed since the release
pack.  ``verify_pack(base=...)`` resolves the deferred digests (a
missing one is an error); ``load_pack(base=...)`` loads base first,
then the diff.  Layering is transitive: a diff-of-a-diff defers
against the whole chain.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro.compiler.kernel import kernel_cache
from repro.store import (
    KernelStore,
    meta_for_artifact,
    read_pack,
    reset_store_config,
    using_store,
)
from repro.store.pack import load_pack, verify_pack, write_pack


@pytest.fixture(autouse=True)
def clean_state():
    kernel_cache().clear()
    reset_store_config()
    yield
    kernel_cache().clear()
    reset_store_config()


def dot_program(n=50, seed=0):
    rng = np.random.default_rng(seed)
    A = fl.from_numpy(rng.random(n), ("dense",), name="A")
    B = fl.from_numpy(rng.random(n), ("dense",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    return fl.forall(i, fl.increment(C[()], A[i] * B[i]))


def pack_entry(n=50, opts=None):
    kernel = fl.compile_kernel(dot_program(n=n), cache=False,
                               **(opts or {}))
    return {"key": meta_for_artifact(kernel.artifact),
            "spec": kernel.artifact.to_spec(),
            "figure": "test", "label": "dot n=%d" % n}


def test_diff_pack_defers_base_digests(tmp_path):
    base = str(tmp_path / "base.flpack")
    diff = str(tmp_path / "diff.flpack")
    shared = pack_entry(n=50)
    write_pack(base, [shared, pack_entry(n=60)])
    fresh = pack_entry(n=70)
    summary = write_pack(diff, [shared, fresh], base=base)
    # The shared entry shipped as a deferred digest, not a payload.
    assert summary["count"] == 1
    assert summary["deferred"] == 1
    manifest, decoded = read_pack(diff)
    assert manifest["base"] == "base.flpack"
    assert len(manifest["base_digests"]) == 1
    assert len(decoded) == 1


def test_diff_pack_verify_layered(tmp_path):
    base = str(tmp_path / "base.flpack")
    diff = str(tmp_path / "diff.flpack")
    shared = pack_entry(n=50)
    write_pack(base, [shared])
    write_pack(diff, [shared, pack_entry(n=70)], base=base)
    # With the base on hand every deferred digest resolves.
    report = verify_pack(diff, base=base)
    assert report["ok"]
    assert report["deferred"] == 1
    assert report["unresolved"] == []
    # Without it, the deferral is reported but not fatal.
    alone = verify_pack(diff)
    assert alone["ok"]
    assert len(alone["unresolved"]) == 1


def test_diff_pack_verify_missing_base_digest_fails(tmp_path):
    base = str(tmp_path / "base.flpack")
    other = str(tmp_path / "other.flpack")
    diff = str(tmp_path / "diff.flpack")
    shared = pack_entry(n=50)
    write_pack(base, [shared])
    write_pack(other, [pack_entry(n=60)])
    write_pack(diff, [shared, pack_entry(n=70)], base=base)
    # Verified against the WRONG base: the deferred digest is missing.
    report = verify_pack(diff, base=other)
    assert not report["ok"]
    assert report["errors"]


def test_diff_pack_load_layers_base_first(tmp_path):
    base = str(tmp_path / "base.flpack")
    diff = str(tmp_path / "diff.flpack")
    shared = pack_entry(n=50)
    write_pack(base, [shared, pack_entry(n=60)])
    write_pack(diff, [shared, pack_entry(n=70)], base=base)
    store = KernelStore(tmp_path / "store")
    summary = load_pack(diff, store=store, memory=False, base=base)
    # Base (2 entries) + the diff's one fresh entry.
    assert summary["loaded"] == 3
    assert summary["errors"] == 0
    assert store.stats()["entries"] == 3
    # Every kernel — shared and fresh — warm-starts off the store.
    kernel_cache().clear()
    with using_store(store):
        for n in (50, 60, 70):
            assert fl.compile_kernel(dot_program(n=n)).from_cache, n


def test_diff_of_diff_is_transitive(tmp_path):
    v1 = str(tmp_path / "v1.flpack")
    v2 = str(tmp_path / "v2.flpack")
    v3 = str(tmp_path / "v3.flpack")
    a, b, c = pack_entry(n=50), pack_entry(n=60), pack_entry(n=70)
    write_pack(v1, [a])
    write_pack(v2, [a, b], base=v1)
    # v3 against v2 must also defer what v2 itself deferred to v1.
    summary = write_pack(v3, [a, b, c], base=v2)
    assert summary["count"] == 1
    assert summary["deferred"] == 2


def test_diff_pack_with_no_overlap_is_a_full_pack(tmp_path):
    base = str(tmp_path / "base.flpack")
    diff = str(tmp_path / "diff.flpack")
    write_pack(base, [pack_entry(n=50)])
    summary = write_pack(diff, [pack_entry(n=60)], base=base)
    assert summary["count"] == 1
    assert summary["deferred"] == 0
    report = verify_pack(diff)
    assert report["ok"] and report["deferred"] == 0
