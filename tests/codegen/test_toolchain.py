"""Unit tests for the C toolchain layer and the prelude's semantics.

The prelude helpers carry the bit-identity contract for the operators
whose C and Python semantics differ — floor division and modulo on
negative operands, banker's rounding — so they get direct probes here:
a tiny hand-written translation unit reusing the real ``_PRELUDE`` is
compiled and compared against the Python operators over a sign grid.
"""

import ctypes

import numpy as np
import pytest

from repro import codegen
from repro.codegen import toolchain
from repro.codegen.c_emit import _PRELUDE

needs_cc = pytest.mark.skipif(
    not codegen.have_toolchain(), reason="no C compiler on PATH")

_PROBE = _PRELUDE + r"""
#define FL_EXPORT __attribute__((visibility("default")))

FL_EXPORT int64_t probe(void **fl_args) {
    const int64_t *iin = (const int64_t *) fl_args[0];
    int64_t *iout = (int64_t *) fl_args[1];
    const double *fin = (const double *) fl_args[2];
    double *fout = (double *) fl_args[3];
    iout[0] = fl_floordiv_i64(iin[0], iin[1]);
    iout[1] = fl_mod_i64(iin[0], iin[1]);
    iout[2] = fl_round_u8(fin[0]);
    fout[0] = fl_div((double) iin[0], (double) iin[1]);
    return 0;
}
"""


def _run_probe(a, b, f):
    so_path = toolchain.compile_shared(_PROBE, name="probe")
    fn = toolchain.load_symbol(so_path, "probe")
    iin = np.array([a, b], dtype=np.int64)
    iout = np.zeros(3, dtype=np.int64)
    fin = np.array([f], dtype=np.float64)
    fout = np.zeros(1, dtype=np.float64)
    arrays = (iin, iout, fin, fout)
    ptrs = (ctypes.c_void_p * 4)(*(arr.ctypes.data for arr in arrays))
    fn(ptrs)
    return iout, fout


@needs_cc
class TestPreludeSemantics:
    @pytest.mark.parametrize("a", [-7, -1, 0, 1, 7, 9223372036854])
    @pytest.mark.parametrize("b", [-3, -1, 1, 3])
    def test_floordiv_mod_match_python(self, a, b):
        iout, fout = _run_probe(a, b, 0.0)
        assert iout[0] == a // b
        assert iout[1] == a % b
        assert fout[0] == a / b          # true division, always double

    @pytest.mark.parametrize(
        "f", [0.5, 1.5, 2.5, -0.5, -1.5, 3.4999, 254.5, 255.0, 999.0])
    def test_round_u8_matches_python_runtime(self, f):
        from repro.ir.runtime import _round_u8

        iout, _ = _run_probe(1, 1, f)
        # Banker's rounding (ties-to-even, like np.rint), clamped to
        # the packbits byte range — same contract as the runtime.
        assert iout[2] == _round_u8(f)


@needs_cc
class TestToolchain:
    def test_compile_shared_memoizes_by_digest(self):
        first = toolchain.compile_shared(_PROBE, name="probe")
        second = toolchain.compile_shared(_PROBE, name="probe")
        assert first == second

    def test_compile_error_carries_stderr(self):
        with pytest.raises(codegen.ToolchainError) as err:
            toolchain.compile_shared("this is not C\n", name="broken")
        assert "broken" in str(err.value)

    def test_load_symbol_missing_name_degrades(self):
        so_path = toolchain.compile_shared(_PROBE, name="probe")
        with pytest.raises(codegen.ToolchainError):
            toolchain.load_symbol(so_path, "no_such_symbol")

    def test_entry_validates_dtype_and_contiguity(self):
        source = _PRELUDE + (
            '\n#define FL_EXPORT '
            '__attribute__((visibility("default")))\n'
            'FL_EXPORT int64_t ident(void **fl_args) {\n'
            '    return ((const int64_t *) fl_args[0])[0];\n'
            '}\n')
        entry, _ = codegen.kernel_entry(source, "ident", ["int64"])
        good = np.array([41, 2], dtype=np.int64)
        assert entry(good) == 41
        with pytest.raises(codegen.ToolchainError):
            entry(np.array([1.0]))                   # wrong dtype
        with pytest.raises(codegen.ToolchainError):
            entry(np.arange(8, dtype=np.int64)[::2])  # not contiguous
        with pytest.raises(codegen.ToolchainError):
            entry([1, 2])                             # not an ndarray


class TestDiscovery:
    def test_bogus_fl_cc_means_no_toolchain(self, monkeypatch):
        monkeypatch.setenv("FL_CC", "/nonexistent/not-a-compiler")
        toolchain.reset()
        try:
            assert toolchain.compiler_path() is None
            assert not codegen.have_toolchain()
        finally:
            monkeypatch.undo()
            toolchain.reset()

    def test_probe_is_memoized(self):
        first = toolchain.compiler_path()
        assert toolchain.compiler_path() is first
