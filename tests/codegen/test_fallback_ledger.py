"""Regression tests for the bounded fallback ledger.

The latent bug: the ledger was an unbounded list, so a long-lived
worker fleet compiling many C-unsupported kernels grew it without
limit, and the natural "fix" of truncating on read would have silently
hidden current degradation.  The ledger is now a ``deque(maxlen=...)``
that keeps the *newest* events and counts what it displaced on
``fallback_events().dropped``.
"""

import collections

import pytest

from repro import codegen


@pytest.fixture(autouse=True)
def clean_ledger():
    codegen.clear_fallback_events()
    yield
    codegen.clear_fallback_events()


def fill(count, start=0):
    for n in range(start, start + count):
        codegen.note_fallback("k%d" % n, "reason %d" % n)


def test_overflow_keeps_newest_and_counts_dropped(monkeypatch):
    monkeypatch.setattr(codegen, "_FALLBACKS",
                        collections.deque(maxlen=4))
    monkeypatch.setattr(codegen, "_FALLBACK_DROPPED", 0)
    monkeypatch.setattr(codegen, "_FALLBACK_SEEN", set())

    fill(3)
    events = codegen.fallback_events()
    assert list(events) == [("k0", "reason 0"), ("k1", "reason 1"),
                            ("k2", "reason 2")]
    assert events.dropped == 0

    fill(3, start=3)
    events = codegen.fallback_events()
    # Newest four survive; the two oldest were displaced and counted.
    assert list(events) == [("k2", "reason 2"), ("k3", "reason 3"),
                            ("k4", "reason 4"), ("k5", "reason 5")]
    assert events.dropped == 2
    assert len(events) == 4


def test_snapshot_is_list_compatible():
    fill(3)
    events = codegen.fallback_events()
    assert isinstance(events, list)
    assert events[0] == ("k0", "reason 0")
    assert events[-2:] == [("k1", "reason 1"), ("k2", "reason 2")]
    names = [name for name, _reason in events]
    assert names == ["k0", "k1", "k2"]
    # The snapshot is a copy: mutating it leaves the ledger alone.
    events.clear()
    assert len(codegen.fallback_events()) == 3


def test_clear_resets_dropped_counter(monkeypatch):
    monkeypatch.setattr(codegen, "_FALLBACKS",
                        collections.deque(maxlen=2))
    monkeypatch.setattr(codegen, "_FALLBACK_DROPPED", 0)
    monkeypatch.setattr(codegen, "_FALLBACK_SEEN", set())

    fill(5)
    assert codegen.fallback_events().dropped == 3
    codegen.clear_fallback_events()
    events = codegen.fallback_events()
    assert list(events) == []
    assert events.dropped == 0


def test_production_cap_is_bounded():
    assert codegen._FALLBACKS.maxlen == codegen._FALLBACK_CAP
    assert codegen._FALLBACK_CAP >= 256
