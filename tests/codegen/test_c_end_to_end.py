"""End-to-end tests for the C kernel backend.

The contract under test (docs/backends.md): a kernel compiled with
``backend="c"`` is *bit-identical* to the same kernel on the python
backend — over every level format and every access protocol the
format accepts — and when no C toolchain is available the compile
degrades to the python backend loudly (one ledger entry per fallback)
but gracefully (results stay correct).

Data is integer-valued throughout, so every comparison is exact
``==``; there is no tolerance for a divergence to hide behind.
"""

import numpy as np
import pytest

import repro.lang as fl
from repro import codegen
from repro.codegen import toolchain
from repro.fuzz.gen import FORMATS_INNER, PROTOCOLS_BY_FORMAT

needs_cc = pytest.mark.skipif(
    not codegen.have_toolchain(), reason="no C compiler on PATH")

#: Annotation builders keyed by protocol name (None = bare access).
_PROTO = {
    None: lambda i: i,
    "walk": fl.walk,
    "gallop": fl.gallop,
    "locate": fl.locate,
    "follow": fl.follow,
}

MATRIX = [(fmt, proto)
          for fmt in FORMATS_INNER
          for proto in PROTOCOLS_BY_FORMAT[fmt]]


def _vector_data(rng):
    """An integer-valued vector with runs, gaps, and a dense band."""
    a = np.zeros(64)
    a[5:15] = rng.integers(1, 9, 10)       # a dense band
    a[20:24] = 3.0                         # an actual run (rle/packbits)
    idx = rng.choice(np.arange(30, 60), 6, replace=False)
    a[idx] = rng.integers(1, 9, 6)         # scattered singletons
    return a


def _dot(fmt, proto, backend, a, b):
    """Compile the fmt/proto dot product on ``backend``; run it.

    ``opt_level=1`` (the full scalar pipeline, no vectorizer): the
    matrix exercises the C emitter itself, and vectorized kernels take
    the *designed* fallback path instead — covered separately by
    :class:`TestUnsupportedConstructFallback`.
    """
    A = fl.from_numpy(a, (fmt,), name="A")
    B = fl.from_numpy(b, ("sparse",), name="B")
    C = fl.Scalar(name="C")
    i = fl.indices("i")
    prog = fl.forall(i, fl.increment(
        C[()], fl.access(A, _PROTO[proto](i)) * fl.access(B, fl.walk(i))))
    kernel = fl.compile_kernel(prog, backend=backend, opt_level=1)
    kernel.run()
    return float(C.value), kernel


@needs_cc
class TestDifferentialMatrix:
    """Every format x protocol: python vs C, exact equality."""

    @pytest.mark.parametrize(
        "fmt,proto", MATRIX,
        ids=["%s-%s" % (f, p or "plain") for f, p in MATRIX])
    def test_dot_bit_identical(self, fmt, proto):
        rng = np.random.default_rng(sum(map(ord, fmt + (proto or ""))))
        a = _vector_data(rng)
        b = np.zeros(64)
        b[rng.choice(64, 9, replace=False)] = rng.integers(1, 9, 9)
        py_val, py_kernel = _dot(fmt, proto, "python", a, b)
        c_val, c_kernel = _dot(fmt, proto, "c", a, b)
        assert py_kernel.effective_backend == "python"
        assert c_kernel.effective_backend == "c", (
            "C emitter fell back on %s/%s: %r"
            % (fmt, proto, codegen.fallback_events()[-3:]))
        assert c_val == py_val          # bit-identity, no tolerance
        assert py_val == float(np.sum(np.rint(a * b)))

    def test_reduce_2d_bit_identical(self):
        rng = np.random.default_rng(11)
        m = np.zeros((12, 16))
        m[rng.random((12, 16)) < 0.3] = 1.0
        m *= rng.integers(1, 7, (12, 16))
        v = np.zeros(16)
        v[rng.choice(16, 5, replace=False)] = rng.integers(1, 7, 5)
        i, j = fl.indices("i", "j")

        def run(backend):
            A = fl.from_numpy(m, ("dense", "sparse"), name="A")
            x = fl.from_numpy(v, ("sparse",), name="x")
            C = fl.Scalar(name="C")
            prog = fl.forall(i, fl.forall(j, fl.increment(
                C[()], fl.access(A, i, fl.gallop(j)) *
                fl.access(x, fl.gallop(j)))))
            kernel = fl.compile_kernel(prog, backend=backend,
                                       opt_level=1)
            kernel.run()
            return float(C.value), kernel

        py_val, _ = run("python")
        c_val, c_kernel = run("c")
        assert c_kernel.effective_backend == "c"
        assert c_val == py_val == float(np.sum(m @ v))

    def test_spmv_dense_output_falls_back_bit_identical(self):
        # Tensor-output kernels initialize their value buffer with a
        # numpy ``.fill`` Raw statement the C emitter refuses (buffer
        # lengths never cross the C ABI), so the whole kernel takes
        # the designed fallback — and must still be bit-identical.
        rng = np.random.default_rng(12)
        m = np.zeros((8, 10))
        m[rng.random((8, 10)) < 0.4] = 2.0
        v = rng.integers(0, 5, 10).astype(float)
        i, j = fl.indices("i", "j")

        def run(backend):
            A = fl.from_numpy(m, ("dense", "sparse"), name="A")
            x = fl.from_numpy(v, ("dense",), name="x")
            y = fl.from_numpy(np.zeros(8), ("dense",), name="y")
            prog = fl.forall(i, fl.forall(j, fl.increment(
                y[i], fl.access(A, i, fl.gallop(j)) *
                fl.access(x, fl.locate(j)))))
            kernel = fl.compile_kernel(prog, backend=backend,
                                       opt_level=1)
            kernel.run()
            return y.to_numpy().copy(), kernel

        py_out, _ = run("python")
        c_out, c_kernel = run("c")
        assert c_kernel.backend == "c"
        assert c_kernel.effective_backend == "python"
        np.testing.assert_array_equal(c_out, py_out)
        np.testing.assert_array_equal(py_out, m @ v)


@needs_cc
class TestBackendPlumbing:
    def test_backends_occupy_distinct_cache_slots(self):
        a = np.zeros(32)
        a[::3] = 2.0

        def compile_one(backend):
            A = fl.from_numpy(a, ("sparse",), name="A")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            return fl.compile_kernel(
                fl.forall(i, fl.increment(C[()], fl.access(A, i))),
                backend=backend)

        k_py = compile_one("python")
        k_c = compile_one("c")
        assert k_py.backend == "python" and k_c.backend == "c"
        assert k_c.artifact is not k_py.artifact
        # Same backend again is a cache hit: the artifact is shared.
        assert compile_one("c").artifact is k_c.artifact

    def test_spec_round_trip_recompiles_c(self):
        from repro.compiler.kernel import CompiledKernel

        a = np.zeros(32)
        a[4:9] = 3.0
        A = fl.from_numpy(a, ("sparse",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.increment(C[()], fl.access(A, i))),
            backend="c", cache=False)
        assert kernel.effective_backend == "c"
        spec = kernel.to_spec()
        assert spec["backend"] == "c"
        assert "int64_t" in spec["c_source"]      # C source travels
        assert "so_path" not in spec              # the .so never does
        rebuilt = CompiledKernel.from_spec(spec)
        assert rebuilt.so_path is not None        # recompiled on load
        assert rebuilt.backend == "c"

    def test_env_var_selects_backend(self, monkeypatch):
        monkeypatch.setenv("FL_KERNEL_BACKEND", "c")
        a = np.zeros(16)
        a[3:7] = 4.0
        A = fl.from_numpy(a, ("band",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.increment(C[()], fl.access(A, i))),
            opt_level=1, cache=False)
        assert kernel.backend == "c"
        assert kernel.effective_backend == "c"
        kernel.run()
        assert float(C.value) == 16.0

    def test_store_keeps_so_sidecar(self, tmp_path):
        from repro.store import reset_store_config

        fl.configure_store(str(tmp_path))
        try:
            a = np.zeros(24)
            a[2:12] = 5.0
            A = fl.from_numpy(a, ("vbl",), name="A")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            prog = fl.forall(i, fl.increment(C[()], fl.access(A, i)))
            kernel = fl.compile_kernel(prog, backend="c",
                                       opt_level=1, cache="disk")
            assert kernel.effective_backend == "c"
            sidecars = list(tmp_path.rglob("*.so"))
            assert len(sidecars) == 1
            # A warm start loads the sidecar: no recompile, same dir.
            warm = fl.compile_kernel(prog, backend="c",
                                     opt_level=1, cache="disk")
            assert warm.effective_backend == "c"
            assert warm.so_path == str(sidecars[0])
        finally:
            reset_store_config()


class TestNoCompilerFallback:
    """backend="c" with no toolchain: loud, graceful, correct."""

    @pytest.fixture
    def broken_toolchain(self, monkeypatch):
        monkeypatch.setenv("FL_CC", "/nonexistent/definitely-not-a-cc")
        toolchain.reset()
        codegen.clear_fallback_events()
        yield
        monkeypatch.undo()
        toolchain.reset()

    def test_falls_back_loudly_and_correctly(self, broken_toolchain):
        assert not codegen.have_toolchain()
        a = np.zeros(40)
        a[7:19] = 2.0
        A = fl.from_numpy(a, ("sparse",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        kernel = fl.compile_kernel(
            fl.forall(i, fl.increment(C[()], fl.access(A, i))),
            backend="c", cache=False)
        assert kernel.backend == "c"                 # the request
        assert kernel.effective_backend == "python"  # the reality
        assert kernel.so_path is None
        kernel.run()
        assert float(C.value) == 24.0                # still correct
        events = codegen.fallback_events()
        assert events, "fallback must be recorded in the ledger"
        name, reason = events[-1]
        assert "no C compiler" in reason

    def test_fallback_warns_once_per_reason(self, broken_toolchain, caplog):
        import logging

        a = np.zeros(16)
        a[1:5] = 1.0
        i = fl.indices("i")
        with caplog.at_level(logging.WARNING, logger="repro.codegen"):
            for _ in range(3):
                A = fl.from_numpy(a, ("sparse",), name="A")
                C = fl.Scalar(name="C")
                fl.compile_kernel(
                    fl.forall(i, fl.increment(C[()], fl.access(A, i))),
                    backend="c", cache=False)
        warnings = [r for r in caplog.records
                    if "C backend unavailable" in r.getMessage()]
        assert len(warnings) == 1                    # warn-once


@needs_cc
class TestUnsupportedConstructFallback:
    def test_vectorized_kernel_falls_back(self):
        codegen.clear_fallback_events()
        a = np.arange(1.0, 65.0)
        b = np.ones(64)

        def compile_dense(backend):
            A = fl.from_numpy(a, ("dense",), name="A")
            B = fl.from_numpy(b, ("dense",), name="B")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            prog = fl.forall(i, fl.increment(
                C[()], fl.access(A, i) * fl.access(B, i)))
            kernel = fl.compile_kernel(
                prog, backend=backend, opt_level=2, cache=False)
            kernel.run()
            return float(C.value), kernel

        py_val, _ = compile_dense("python")
        c_val, c_kernel = compile_dense("c")
        assert c_kernel.backend == "c"
        # The vectorizer emits numpy slice Raw statements the C
        # emitter refuses; the kernel must degrade, not break.
        assert c_kernel.effective_backend == "python"
        assert c_val == py_val == float(a @ b)
        reasons = [r for _, r in codegen.fallback_events()]
        assert any("vectorized" in r or "Raw" in r for r in reasons)
