"""Structural keys: program identity up to the data it binds."""

import numpy as np

import repro.lang as fl
from repro.cin.analyze import (
    buffer_alias_groups,
    structural_key,
    tensor_signature,
)
from repro.formats.custom import LoopletTensor
from repro.looplets import Run
from repro.ir.nodes import Literal


def dot(a_fmt="sparse", b_fmt="band", n=20, seed=0, names=("A", "B", "C"),
        proto=None):
    rng = np.random.default_rng(seed)
    a = np.zeros(n)
    a[rng.choice(n, 3, replace=False)] = rng.random(3)
    b = np.zeros(n)
    b[n // 4:n // 2] = rng.random(n // 2 - n // 4)
    A = fl.from_numpy(a, (a_fmt,), name=names[0])
    B = fl.from_numpy(b, (b_fmt,), name=names[1])
    C = fl.Scalar(name=names[2])
    i = fl.indices("i")
    a_idx = proto(i) if proto is not None else i
    return fl.forall(i, fl.increment(C[()], fl.access(A, a_idx) * B[i]))


class TestKeyEquality:
    def test_same_structure_different_data(self):
        assert structural_key(dot(seed=1)) == structural_key(dot(seed=2))

    def test_tensor_names_ignored(self):
        assert (structural_key(dot(names=("A", "B", "C")))
                == structural_key(dot(names=("X", "Y", "Z"))))

    def test_key_is_hashable(self):
        hash(structural_key(dot()))


class TestKeyInequality:
    def test_format_changes_key(self):
        assert (structural_key(dot(a_fmt="sparse"))
                != structural_key(dot(a_fmt="dense")))

    def test_shape_changes_key(self):
        assert structural_key(dot(n=20)) != structural_key(dot(n=21))

    def test_protocol_changes_key(self):
        assert (structural_key(dot(proto=fl.gallop))
                != structural_key(dot(proto=None)))

    def test_reduction_op_changes_key(self):
        A = fl.from_numpy(np.arange(6.0), ("dense",), name="A")
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        prog_sum = fl.forall(i, fl.increment(C[()], A[i]))
        prog_max = fl.forall(i, fl.reduce_into(C[()], "max", A[i]))
        assert structural_key(prog_sum) != structural_key(prog_max)

    def test_fill_changes_key(self):
        def rle_sum(fill):
            vec = np.full(10, fill)
            vec[4] = 3.0
            A = fl.from_numpy(vec, ("rle",), fill=fill, name="A")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            return fl.forall(i, fl.increment(C[()], A[i]))

        assert structural_key(rle_sum(0.0)) != structural_key(rle_sum(2.0))

    def test_dtype_changes_key(self):
        def typed_sum(dtype):
            A = fl.from_numpy(np.arange(6, dtype=dtype), ("dense",),
                              name="A")
            C = fl.Scalar(name="C")
            i = fl.indices("i")
            return fl.forall(i, fl.increment(C[()], A[i]))

        assert (structural_key(typed_sum(np.float64))
                != structural_key(typed_sum(np.float32)))


class TestCustomTensors:
    def _virtual(self):
        return LoopletTensor(8, lambda ctx, pos: Run(Literal(1.0)),
                             name="V")

    def _prog(self, V):
        C = fl.Scalar(name="C")
        i = fl.indices("i")
        return fl.forall(i, fl.increment(C[()], fl.access(V, i)))

    def test_identity_pinned(self):
        V = self._virtual()
        assert (structural_key(self._prog(V))
                == structural_key(self._prog(V)))
        assert (structural_key(self._prog(self._virtual()))
                != structural_key(self._prog(self._virtual())))

    def test_opaque_signature_for_unknown_objects(self):
        sig = tensor_signature(object())
        assert sig[0] == "opaque"


class TestAliasGroups:
    def test_shared_buffer_detected(self):
        data = np.zeros((4, 5))
        data[1, 2] = 1.0
        A = fl.from_numpy(data, ("dense", "sparse"), name="A")
        B = fl.Tensor(A.levels, A.element, name="B")  # same storage
        groups = buffer_alias_groups([A, B])
        assert groups  # pos/idx/val all shared
        for group in groups:
            slots = {slot for slot, _ in group}
            assert slots == {0, 1}

    def test_distinct_tensors_have_no_groups(self):
        A = fl.from_numpy(np.ones(4), ("dense",), name="A")
        B = fl.from_numpy(np.ones(4), ("dense",), name="B")
        assert buffer_alias_groups([A, B]) == ()

    def test_aliasing_changes_key(self):
        data = np.zeros((4, 5))
        data[1, 2] = 1.0
        A = fl.from_numpy(data, ("dense", "sparse"), name="A")
        shared = fl.Tensor(A.levels, A.element, name="B")
        fresh = fl.from_numpy(data, ("dense", "sparse"), name="B")
        C = fl.Scalar(name="C")
        i, j = fl.indices("i", "j")

        def prog(B):
            return fl.forall(i, fl.forall(j, fl.increment(
                C[()], A[i, j] * B[i, j])))

        assert structural_key(prog(shared)) != structural_key(prog(fresh))
