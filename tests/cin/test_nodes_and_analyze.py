"""Unit tests for CIN nodes, builders, and static analysis."""

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.analyze import (
    check_program,
    forall_indices,
    infer_extents,
    output_tensors,
    program_tensors,
)
from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    OffsetExpr,
    PermitExpr,
    Sieve,
    WindowExpr,
    collect_accesses,
    index_base,
    walk_stmts,
)
from repro.ir import Extent, Literal, Var, ops
from repro.util.errors import DimensionError, ReproError


@pytest.fixture
def vectors():
    A = fl.from_numpy(np.zeros(8), ("sparse",), name="A")
    B = fl.from_numpy(np.zeros(8), ("dense",), name="B")
    C = fl.Scalar(name="C")
    return A, B, C


class TestAccessNode:
    def test_protocol_count_checked(self, vectors):
        A, _, _ = vectors
        with pytest.raises(ReproError):
            Access(A, (Var("i"),), protocols=("walk", "walk"))

    def test_unknown_protocol_rejected(self, vectors):
        A, _, _ = vectors
        with pytest.raises(ReproError):
            Access(A, (Var("i"),), protocols=("zigzag",))

    def test_structural_equality_by_tensor_identity(self, vectors):
        A, B, _ = vectors
        assert Access(A, (Var("i"),)) == Access(A, (Var("i"),))
        assert Access(A, (Var("i"),)) != Access(B, (Var("i"),))

    def test_substitution_reaches_modifier_deltas(self, vectors):
        from repro.ir.nodes import substitute

        A, _, _ = vectors
        idx = PermitExpr(OffsetExpr(Var("d"), Var("j")))
        acc = Access(A, (idx,))
        out = substitute(acc, {"d": Literal(5)})
        assert out.idxs[0].base.delta == Literal(5)

    def test_index_base(self):
        idx = PermitExpr(OffsetExpr(Literal(1), WindowExpr(
            Literal(0), Literal(4), Var("k"))))
        assert index_base(idx) == Var("k")


class TestBuilders:
    def test_foralls_nesting_order(self, vectors):
        A, _, C = vectors
        stmt = fl.foralls(["i", "j"], fl.increment(C[()], Literal(1.0)))
        assert isinstance(stmt, Forall) and stmt.index.name == "i"
        assert stmt.body.index.name == "j"

    def test_protocol_marker_on_modifier_rejected(self):
        with pytest.raises(ReproError):
            fl.offset(fl.gallop(Var("j")), 2)

    def test_reduce_into_validates_op(self, vectors):
        A, _, C = vectors
        with pytest.raises(ReproError):
            Assign(C[()], 42, Literal(1.0))

    def test_assignment_target_must_be_access(self):
        with pytest.raises(ReproError):
            Assign(Var("x"), ops.ADD, Literal(1.0))

    def test_expression_operators(self, vectors):
        A, B, _ = vectors
        i = fl.indices("i")
        expr = 2.0 * A[i] + B[i] / 3.0 - 1.0
        # Accesses expose their index variables (substitution must
        # reach them) but hide the tensors themselves.
        assert expr.free_vars() == {"i"}


class TestAnalysis:
    def test_program_tensors_in_order(self, vectors):
        A, B, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i] * B[i]))
        tensors = program_tensors(prog)
        assert tensors[0] is C or tensors[0] is A  # lhs visited first
        assert any(t is B for t in tensors)

    def test_output_detection(self, vectors):
        A, _, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i]))
        assert output_tensors(prog) == [C]

    def test_forall_indices_outermost_first(self, vectors):
        A, _, C = vectors
        prog = fl.foralls(["i", "j"], fl.increment(C[()], Literal(1.0)),
                          exts={"i": (0, 2), "j": (0, 3)})
        assert forall_indices(prog) == ["i", "j"]

    def test_extent_inference_from_shape(self, vectors):
        A, _, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i]))
        assert infer_extents(prog)["i"] == Extent(0, 8)

    def test_extent_inference_window(self, vectors):
        A, _, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], fl.access(
            A, fl.window(i, 2, 6))))
        assert infer_extents(prog)["i"] == Extent(0, 4)

    def test_permit_gives_no_candidate(self, vectors):
        A, _, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], fl.access(
            A, fl.permit(i))))
        with pytest.raises(DimensionError):
            infer_extents(prog)

    def test_explicit_extent_wins(self, vectors):
        A, _, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i]), ext=(0, 3))
        assert infer_extents(prog)["i"] == Extent(0, 3)

    def test_conflicting_static_extents(self, vectors):
        A, _, C = vectors
        short = fl.from_numpy(np.zeros(5), ("dense",), name="S")
        i = fl.indices("i")
        prog = fl.forall(i, fl.increment(C[()], A[i] * short[i]))
        with pytest.raises(DimensionError):
            infer_extents(prog)

    def test_rank_mismatch(self, vectors):
        A, _, C = vectors
        i, j = fl.indices("i", "j")
        prog = fl.forall(i, fl.forall(j, fl.increment(
            C[()], Access(A, (i, j)))))
        with pytest.raises(DimensionError):
            infer_extents(prog)

    def test_duplicate_index_rejected(self, vectors):
        A, _, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, fl.forall(i, fl.increment(C[()], A[i])))
        with pytest.raises(ReproError):
            check_program(prog)

    def test_modified_output_index_rejected(self, vectors):
        A, _, _ = vectors
        y = fl.zeros(8, name="y")
        i = fl.indices("i")
        bad = Assign(Access(y, (fl.offset(i, 1),)), ops.ADD, A[i])
        with pytest.raises(ReproError):
            check_program(fl.forall(i, bad))

    def test_collect_accesses_covers_sieve_conditions(self, vectors):
        A, _, C = vectors
        i = fl.indices("i")
        prog = fl.forall(i, Sieve(fl.gt(A[i], 0.0),
                                  fl.increment(C[()], Literal(1.0))))
        accesses = collect_accesses(prog)
        assert any(acc.tensor is A for acc in accesses)

    def test_walk_stmts_preorder(self, vectors):
        A, _, C = vectors
        i, j = fl.indices("i", "j")
        prog = fl.forall(i, fl.forall(j, fl.increment(C[()], Literal(1.0)),
                                      ext=(0, 1)), ext=(0, 1))
        kinds = [type(s).__name__ for s in walk_stmts(prog)]
        assert kinds == ["Forall", "Forall", "Assign"]
