"""Tests for the CIN text parser."""

import numpy as np
import pytest

import repro.lang as fl
from repro.cin.nodes import (
    Access,
    Assign,
    Forall,
    OffsetExpr,
    PermitExpr,
    WindowExpr,
)
from repro.cin.parser import parse
from repro.ir import Call, Literal, Var
from repro.util.errors import ParseError


@pytest.fixture
def tensors():
    return {
        "A": fl.from_numpy(np.zeros((4, 5)), ("dense", "sparse"),
                           name="A"),
        "x": fl.from_numpy(np.zeros(5), ("sparse",), name="x"),
        "y": fl.zeros(4, name="y"),
        "C": fl.Scalar(name="C"),
    }


class TestStructure:
    def test_spmv(self, tensors):
        stmt = parse("forall i, j: y[i] += A[i, j] * x[j]", tensors)
        assert isinstance(stmt, Forall)
        assert stmt.index == Var("i")
        inner = stmt.body
        assert isinstance(inner, Forall)
        assert inner.index == Var("j")
        assign = inner.body
        assert isinstance(assign, Assign)
        assert assign.op.name == "add"
        assert assign.lhs.tensor is tensors["y"]

    def test_scalar_output(self, tensors):
        stmt = parse("forall i, j: C[] += A[i, j]", tensors)
        assign = stmt.body.body
        assert assign.lhs.tensor is tensors["C"]
        assert assign.lhs.idxs == ()

    def test_protocols(self, tensors):
        stmt = parse("forall j: C[] += x[j::gallop]", tensors)
        assign = stmt.body
        accesses = [assign.rhs] if isinstance(assign.rhs, Access) else []
        assert accesses[0].protocols == ("gallop",)

    def test_explicit_extent(self, tensors):
        stmt = parse("forall j in 0:3: C[] += x[j]", tensors)
        assert stmt.ext is not None
        assert stmt.ext.stop == Literal(3)

    def test_modifiers(self, tensors):
        stmt = parse("forall i, j: y[i] += "
                     "coalesce(x[permit(offset(j, 2 - i))], 0)", tensors)
        assign = stmt.body.body
        call = assign.rhs
        assert call.op.name == "coalesce"
        idx = call.args[0].idxs[0]
        assert isinstance(idx, PermitExpr)
        assert isinstance(idx.base, OffsetExpr)

    def test_window(self, tensors):
        stmt = parse("forall k: C[] += x[window(k, 1, 4)]", tensors)
        idx = stmt.body.rhs.idxs[0]
        assert isinstance(idx, WindowExpr)
        assert idx.lo == Literal(1)

    def test_reduction_ops(self, tensors):
        stmt = parse("forall j: C[] max= x[j]", tensors)
        assert stmt.body.op.name == "max"

    def test_comparison_and_logic(self, tensors):
        stmt = parse("forall i, j: C[] += (A[i, j] != 0) && (x[j] > 1)",
                     tensors)
        rhs = stmt.body.body.rhs
        assert isinstance(rhs, Call) and rhs.op.name == "and"

    def test_scalar_parameters(self, tensors):
        stmt = parse("forall j: C[] += alpha * x[j]", tensors,
                     scalars={"alpha": 0.5})
        rhs = stmt.body.rhs
        assert Literal(0.5) in rhs.args


class TestErrors:
    def test_unknown_protocol(self, tensors):
        with pytest.raises(ParseError):
            parse("forall j: C[] += x[j::zigzag]", tensors)

    def test_bad_character(self, tensors):
        with pytest.raises(ParseError):
            parse("forall j: C[] += x[j] @ 2", tensors)

    def test_missing_colon(self, tensors):
        with pytest.raises(ParseError):
            parse("forall j C[] += x[j]", tensors)

    def test_assign_to_expression(self, tensors):
        with pytest.raises(ParseError):
            parse("forall j: 3 += x[j]", tensors)

    def test_trailing_garbage(self, tensors):
        with pytest.raises(ParseError):
            parse("forall j: C[] += x[j] x", tensors)

    def test_tensor_without_indices(self, tensors):
        with pytest.raises(ParseError):
            parse("forall j: C[] += A", tensors)

    def test_error_carries_location(self, tensors):
        with pytest.raises(ParseError) as info:
            parse("forall j: C[] += x[j::zigzag]", tensors)
        assert "line 1" in str(info.value)


class TestEndToEnd:
    def test_parsed_spmv_executes(self, tensors):
        rng = np.random.default_rng(0)
        mat = rng.random((4, 5))
        vec = rng.random(5)
        A = fl.from_numpy(mat, ("dense", "sparse"), name="A")
        x = fl.from_numpy(vec, ("sparse",), name="x")
        y = fl.zeros(4, name="y")
        stmt = parse("forall i, j: y[i] += A[i, j] * x[j]",
                     {"A": A, "x": x, "y": y})
        fl.execute(stmt)
        np.testing.assert_allclose(y.to_numpy(), mat @ vec)

    def test_parsed_gallop_dot(self):
        rng = np.random.default_rng(1)
        a = rng.random(40); a[a < 0.7] = 0
        b = rng.random(40); b[b < 0.7] = 0
        A = fl.from_numpy(a, ("sparse",), name="A")
        B = fl.from_numpy(b, ("sparse",), name="B")
        C = fl.Scalar(name="C")
        stmt = parse("forall i: C[] += A[i::gallop] * B[i::gallop]",
                     {"A": A, "B": B, "C": C})
        fl.execute(stmt)
        assert C.value == pytest.approx(float(a @ b))

    def test_parsed_convolution(self):
        rng = np.random.default_rng(2)
        a = rng.random(20); a[a < 0.5] = 0
        filt = np.array([0.25, 0.5, 0.25])
        A = fl.from_numpy(a, ("sparse",), name="A")
        F = fl.from_numpy(filt, ("dense",), name="F")
        B = fl.zeros(20, name="B")
        stmt = parse(
            "forall i, j in 0:3: B[i] += "
            "coalesce(A[permit(offset(j, 1 - i))], 0) * "
            "coalesce(F[permit(j)], 0)",
            {"A": A, "F": F, "B": B})
        fl.execute(stmt)
        np.testing.assert_allclose(B.to_numpy(),
                                   np.convolve(a, filt[::-1], mode="same"),
                                   atol=1e-12)
